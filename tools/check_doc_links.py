"""Check that every relative markdown link in the documentation resolves.

Scans ``docs/*.md`` plus the root-level ``*.md`` files for inline links
(``[text](target)``), skips external schemes (http/https/mailto) and
pure-anchor links, strips ``#fragment`` suffixes, and verifies the target
exists relative to the linking file.  Exit 0 when every link resolves,
exit 1 with one line per broken link otherwise.

Usage: ``python tools/check_doc_links.py [repo_root]``
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

# Inline markdown links: [text](target).  Images ([!]...) share the same
# target syntax, so the pattern covers both.  Reference-style links are
# not used in this repository's docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")

# Machine-generated reference dumps (arxiv retrievals, exemplar snippets,
# per-PR task briefs) carry extraction artifacts we don't maintain.
_SKIP = {"PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def doc_files(root: Path) -> List[Path]:
    files = sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() else []
    files += sorted(path for path in root.glob("*.md") if path.name not in _SKIP)
    return files


def iter_links(path: Path) -> Iterable[Tuple[int, str]]:
    in_code_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def broken_links(files: Iterable[Path]) -> List[str]:
    problems: List[str] = []
    for path in files:
        for lineno, target in iter_links(path):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(f"{path}:{lineno}: broken link -> {target}")
    return problems


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    files = doc_files(root)
    if not files:
        print(f"error: no markdown files found under {root}", file=sys.stderr)
        return 1
    problems = broken_links(files)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} broken link(s) across {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"doc links OK: {len(files)} file(s) checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
