"""Golden-figure regression tests.

The benchmark harness regenerates the paper's figures into ``results/``; the
asserts there are deliberately loose (paper-level tolerances), so a numeric
drift in the models could rewrite ``results/`` without any test noticing.
These tests re-derive the key rows of three checked-in result files from the
library and pin them to the exact golden values, so any drift fails tier-1
instead of silently corrupting ``results/``.

Golden sources (regenerate with ``pytest benchmarks/ -q`` and re-pin
deliberately if a model change is intended):

* ``results/figure3_program_latency.txt``
* ``results/figure5_iso_latency.txt``
* ``results/figure6b_soc_breakdown.txt``
"""

import pytest

from repro.area.soc import figure6b_breakdown
from repro.core.config import PelsConfig
from repro.power.scenarios import (
    ISO_LATENCY_IBEX_HZ,
    ISO_LATENCY_PELS_HZ,
    measure_idle_power,
    measure_linking_power,
)
from repro.workloads.threshold import ThresholdWorkloadConfig, run_pels_threshold_workload


class TestFigure3ProgramLatency:
    """Golden rows of results/figure3_program_latency.txt."""

    def test_sequenced_alert_latency(self):
        result = run_pels_threshold_workload(
            ThresholdWorkloadConfig(n_events=4, use_instant_alert=False)
        )
        assert result.events_serviced == 4
        assert result.alerts_raised == 4
        assert result.mean_latency == pytest.approx(21.0)
        assert result.worst_latency == 21

    def test_instant_alert_latency(self):
        result = run_pels_threshold_workload(
            ThresholdWorkloadConfig(n_events=4, use_instant_alert=True)
        )
        assert result.events_serviced == 4
        assert result.alerts_raised == 4
        assert result.mean_latency == pytest.approx(15.0)
        assert result.worst_latency == 15


class TestFigure5IsoLatencyPower:
    """Golden rows of results/figure5_iso_latency.txt (values in µW)."""

    GOLDEN = {
        "idle_ibex": {
            "window_cycles": 1000,
            "Others": 357.5,
            "PELS": 0.0,
            "Processor": 77.0,
            "RAM": 82.5,
            "Interconnect": 0.0,
            "Leakage": 267.0,
            "Total": 784.0,
        },
        "idle_pels": {
            "window_cycles": 1000,
            "Others": 175.5,
            "PELS": 40.6,
            "Processor": 0.0,
            "RAM": 40.5,
            "Interconnect": 0.0,
            "Leakage": 270.0,
            "Total": 526.6,
        },
        "linking_ibex": {
            "window_cycles": 174,
            "Others": 371.7,
            "PELS": 0.0,
            "Processor": 312.6,
            "RAM": 340.4,
            "Interconnect": 52.2,
            "Leakage": 267.0,
            "Total": 1343.9,
        },
        "linking_pels": {
            "window_cycles": 132,
            "Others": 184.7,
            "PELS": 34.2,
            "Processor": 0.0,
            "RAM": 40.5,
            "Interconnect": 15.3,
            "Leakage": 270.0,
            "Total": 544.8,
        },
    }

    @pytest.fixture(scope="class")
    def measured(self):
        return {
            "idle_ibex": measure_idle_power("ibex", ISO_LATENCY_IBEX_HZ, idle_cycles=1000),
            "idle_pels": measure_idle_power("pels", ISO_LATENCY_PELS_HZ, idle_cycles=1000),
            "linking_ibex": measure_linking_power("ibex", ISO_LATENCY_IBEX_HZ, n_events=6),
            "linking_pels": measure_linking_power("pels", ISO_LATENCY_PELS_HZ, n_events=6),
        }

    @pytest.mark.parametrize("scenario", sorted(GOLDEN))
    def test_breakdown_matches_golden(self, measured, scenario):
        golden = self.GOLDEN[scenario]
        result = measured[scenario]
        assert result.breakdown.window_cycles == golden["window_cycles"]
        for component in ("Others", "PELS", "Processor", "RAM", "Interconnect", "Leakage"):
            assert result.breakdown.component(component) == pytest.approx(
                golden[component], abs=0.05
            ), f"{scenario}/{component} drifted"
        assert result.total_uw == pytest.approx(golden["Total"], abs=0.1)

    def test_headline_ratios_match_golden(self, measured):
        linking_ratio = measured["linking_ibex"].total_uw / measured["linking_pels"].total_uw
        idle_ratio = measured["idle_ibex"].total_uw / measured["idle_pels"].total_uw
        assert round(linking_ratio, 2) == pytest.approx(2.47)
        assert round(idle_ratio, 2) == pytest.approx(1.49)


class TestFigure6bSocBreakdown:
    """Golden rows of results/figure6b_soc_breakdown.txt."""

    GOLDEN_KGE = {
        "Interconnect": 36.0,
        "PELS": 24.7,
        "Peripherals": 115.0,
        "Processing domain": 85.0,
        "SRAM": 2359.3,
    }
    GOLDEN_LOGIC_PERCENT = {
        "Interconnect": 13.8,
        "PELS": 9.5,
        "Peripherals": 44.1,
        "Processing domain": 32.6,
    }

    @pytest.fixture(scope="class")
    def breakdown(self):
        return figure6b_breakdown(PelsConfig(n_links=4, scm_lines=6))

    def test_absolute_area_matches_golden(self, breakdown):
        for block, kge in self.GOLDEN_KGE.items():
            assert breakdown["absolute_kge"][block] == pytest.approx(kge, abs=0.05), block

    def test_logic_fractions_match_golden(self, breakdown):
        for block, percent in self.GOLDEN_LOGIC_PERCENT.items():
            assert breakdown["logic_fractions"][block] * 100 == pytest.approx(
                percent, abs=0.05
            ), block
        assert sum(breakdown["logic_fractions"].values()) == pytest.approx(1.0)

    def test_sram_dominates_total_area(self, breakdown):
        assert breakdown["with_sram_fractions"]["SRAM"] * 100 == pytest.approx(90.0, abs=0.05)
