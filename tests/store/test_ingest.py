"""Ingest semantics: validation, idempotent dedup, conflict rollback."""

import json
from dataclasses import replace

import pytest

from repro.store import (
    StoreError,
    campaign_points,
    connect,
    ingest_directories,
    ingest_directory,
    reconstruct_results_payload,
)
from repro.sweep.artifacts import write_artifacts
from repro.sweep.campaign import CampaignSpec, ShardSpec
from repro.sweep.execute import execute_campaign
from repro.sweep.merge import merge_shards, write_merged_artifacts

SPEC = CampaignSpec(
    name="store-ingest-test",
    description="small store-ingest-test campaign",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (40_000, 60_000),
        "sample_period_cycles": (2_000, 4_000),
    },
)


def _fresh_artifacts(out_dir, spec=SPEC):
    """Run the campaign, write artifacts, return (paths, campaign_dir)."""
    result = execute_campaign(spec, jobs=1)
    paths = write_artifacts(spec, result, out_dir)
    return paths, out_dir / spec.name


def _shard_dirs(tmp_path, count):
    dirs = []
    for index in range(count):
        result = execute_campaign(SPEC, jobs=1, shard=ShardSpec(index=index, count=count))
        write_artifacts(SPEC, result, tmp_path / f"shard{index}")
        dirs.append(tmp_path / f"shard{index}" / SPEC.name)
    return dirs


@pytest.fixture()
def store(tmp_path):
    conn = connect(tmp_path / "store.sqlite")
    yield conn
    conn.close()


class TestIngest:
    def test_full_run_ingests_every_point(self, tmp_path, store):
        _, campaign_dir = _fresh_artifacts(tmp_path)
        report = ingest_directory(store, campaign_dir)
        assert report.ok
        assert report.kind == "full"
        assert report.campaign == SPEC.name
        assert report.inserted == 4
        assert report.deduplicated == 0
        assert report.conflicts == []

    def test_reingest_inserts_zero_rows(self, tmp_path, store):
        """The idempotency acceptance criterion: re-ingesting the same
        artifacts deduplicates everything and inserts nothing."""
        _, campaign_dir = _fresh_artifacts(tmp_path)
        ingest_directory(store, campaign_dir)
        again = ingest_directory(store, campaign_dir)
        assert again.ok
        assert again.inserted == 0
        assert again.deduplicated == 4

    def test_reconstruction_is_byte_identical(self, tmp_path, store):
        """Canonical-JSON column storage must reproduce the ingested
        results.json byte for byte."""
        paths, campaign_dir = _fresh_artifacts(tmp_path)
        ingest_directory(store, campaign_dir)
        payload = reconstruct_results_payload(store, SPEC.name)
        rebuilt = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode()
        assert rebuilt == paths["results_json"].read_bytes()

    def test_stored_records_match_originals_exactly(self, tmp_path, store):
        paths, campaign_dir = _fresh_artifacts(tmp_path)
        ingest_directory(store, campaign_dir)
        original = json.loads(paths["results_json"].read_text())["points"]
        campaign_id = store.execute(
            "SELECT id FROM campaigns WHERE name = ?", (SPEC.name,)
        ).fetchone()["id"]
        assert campaign_points(store, campaign_id) == original

    def test_missing_artifacts_are_an_error(self, tmp_path, store):
        with pytest.raises(StoreError, match=r"results\.json"):
            ingest_directory(store, tmp_path / "nowhere")

    def test_spec_hash_mismatch_is_rejected(self, tmp_path, store):
        # A manifest whose stored hash disagrees with its own campaign
        # block is tampered/corrupt — same rejection as sweep merge.
        paths, campaign_dir = _fresh_artifacts(tmp_path)
        manifest = json.loads(paths["manifest_json"].read_text())
        manifest["campaign"]["base_seed"] += 1
        paths["manifest_json"].write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="spec_hash"):
            ingest_directory(store, campaign_dir)

    def test_malformed_record_is_rejected_before_write(self, tmp_path, store):
        paths, campaign_dir = _fresh_artifacts(tmp_path)
        payload = json.loads(paths["results_json"].read_text())
        del payload["points"][1]["seed"]
        paths["results_json"].write_text(json.dumps(payload))
        with pytest.raises(StoreError):
            ingest_directory(store, campaign_dir)
        assert store.execute("SELECT COUNT(*) AS n FROM points").fetchone()["n"] == 0

    def test_wall_seconds_scavenged_from_manifest(self, tmp_path, store):
        _, campaign_dir = _fresh_artifacts(tmp_path)
        ingest_directory(store, campaign_dir)
        walls = [
            row["wall_seconds"]
            for row in store.execute("SELECT wall_seconds FROM points ORDER BY point_index")
        ]
        assert len(walls) == 4
        assert all(wall > 0 for wall in walls)


class TestConflicts:
    def test_conflict_rolls_back_whole_directory(self, tmp_path, store):
        """A colliding index with different content condemns the directory:
        nothing from it lands, and the conflicting indices are reported."""
        _, dir_a = _fresh_artifacts(tmp_path / "a")
        ingest_directory(store, dir_a)

        # Same campaign identity, different content at point 2.
        paths, dir_b = _fresh_artifacts(tmp_path / "b")
        payload = json.loads(paths["results_json"].read_text())
        payload["points"][2]["stats"]["samples_taken"] += 1
        paths["results_json"].write_text(json.dumps(payload))

        report = ingest_directory(store, dir_b)
        assert not report.ok
        assert report.inserted == 0
        assert [conflict["index"] for conflict in report.conflicts] == [2]
        # The store still holds exactly the first directory's rows.
        assert store.execute("SELECT COUNT(*) AS n FROM points").fetchone()["n"] == 4
        again = ingest_directory(store, dir_a)
        assert again.deduplicated == 4

    def test_conflicting_directory_does_not_block_others(self, tmp_path, store):
        _, dir_a = _fresh_artifacts(tmp_path / "a")
        other = replace(SPEC, name="store-ingest-test-b", base_seed=7)
        _, dir_other = _fresh_artifacts(tmp_path / "other", spec=other)
        ingest_directory(store, dir_a)

        paths, dir_bad = _fresh_artifacts(tmp_path / "bad")
        payload = json.loads(paths["results_json"].read_text())
        payload["points"][0]["stats"]["samples_taken"] += 1
        paths["results_json"].write_text(json.dumps(payload))

        report = ingest_directories(store, [dir_bad, dir_other])
        assert not report.ok
        assert report.conflicts == 1
        # The clean directory still ingested.
        assert report.inserted == 4


class TestShardAndMergedIngest:
    def test_shard_slices_and_merged_run_dedup_cleanly(self, tmp_path, store):
        """Shards overlap the merged campaign they produced; ingesting both
        must insert each point exactly once."""
        shard_dirs = _shard_dirs(tmp_path, 2)
        merged = merge_shards(shard_dirs)
        write_merged_artifacts(merged, tmp_path / "merged")

        shard_report = ingest_directories(store, shard_dirs)
        assert shard_report.ok
        assert shard_report.inserted == 4
        assert [directory.kind for directory in shard_report.directories] == ["shard", "shard"]

        merged_report = ingest_directory(store, tmp_path / "merged" / SPEC.name)
        assert merged_report.ok
        assert merged_report.kind == "merged"
        assert merged_report.inserted == 0
        assert merged_report.deduplicated == 4

    def test_merged_provenance_lands_in_ingest_log(self, tmp_path, store):
        shard_dirs = _shard_dirs(tmp_path, 2)
        merged = merge_shards(shard_dirs)
        write_merged_artifacts(merged, tmp_path / "merged")

        ingest_directory(store, tmp_path / "merged" / SPEC.name)
        row = store.execute("SELECT kind, merged_from FROM ingests").fetchone()
        assert row["kind"] == "merged"
        sources = json.loads(row["merged_from"])
        assert len(sources) == 2
