"""Schema versioning: fresh init, newer-than-code rejection, migrations."""

import pytest

from repro.store import (
    MIGRATIONS,
    STORE_SCHEMA_VERSION,
    SchemaVersionError,
    StoreError,
    connect,
    schema_version,
)
from repro.store import schema as schema_module


class TestConnect:
    def test_fresh_database_initialises_at_current_version(self, tmp_path):
        conn = connect(tmp_path / "store.sqlite")
        try:
            assert schema_version(conn) == STORE_SCHEMA_VERSION
            tables = {
                row["name"]
                for row in conn.execute("SELECT name FROM sqlite_master WHERE type='table'")
            }
            assert {"campaigns", "points", "ingests", "store_meta"} <= tables
            meta = conn.execute(
                "SELECT value FROM store_meta WHERE key='schema_version'"
            ).fetchone()
            assert meta["value"] == str(STORE_SCHEMA_VERSION)
        finally:
            conn.close()

    def test_wal_mode_and_row_factory(self, tmp_path):
        conn = connect(tmp_path / "store.sqlite")
        try:
            assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        finally:
            conn.close()

    def test_reopen_is_a_noop(self, tmp_path):
        connect(tmp_path / "store.sqlite").close()
        conn = connect(tmp_path / "store.sqlite")
        try:
            assert schema_version(conn) == STORE_SCHEMA_VERSION
        finally:
            conn.close()

    def test_create_false_refuses_missing_file(self, tmp_path):
        # A typo'd store path must be a named error, never a silently
        # materialised empty store answering "no rows".
        with pytest.raises(StoreError, match="no such store database"):
            connect(tmp_path / "typo.sqlite", create=False)


class TestVersioning:
    def test_newer_database_is_rejected(self, tmp_path):
        path = tmp_path / "store.sqlite"
        conn = connect(path)
        conn.execute(f"PRAGMA user_version = {STORE_SCHEMA_VERSION + 1}")
        conn.close()
        with pytest.raises(SchemaVersionError, match="newer than this code"):
            connect(path)

    def test_older_database_without_migration_is_rejected(self, tmp_path, monkeypatch):
        path = tmp_path / "store.sqlite"
        connect(path).close()
        # Tomorrow's code bumps the version but forgot the migration step.
        monkeypatch.setattr(schema_module, "STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 1)
        with pytest.raises(SchemaVersionError, match="no migration"):
            connect(path)

    def test_registered_migration_walks_old_database_forward(self, tmp_path, monkeypatch):
        path = tmp_path / "store.sqlite"
        connect(path).close()

        monkeypatch.setattr(schema_module, "STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 2)
        monkeypatch.setattr(schema_module, "MIGRATIONS", dict(MIGRATIONS))
        applied = []

        @schema_module.register_migration(STORE_SCHEMA_VERSION)
        def _step_one(conn):
            applied.append(STORE_SCHEMA_VERSION)
            conn.execute("ALTER TABLE campaigns ADD COLUMN migrated_once INTEGER DEFAULT 0")

        @schema_module.register_migration(STORE_SCHEMA_VERSION + 1)
        def _step_two(conn):
            applied.append(STORE_SCHEMA_VERSION + 1)

        conn = connect(path)
        try:
            assert applied == [STORE_SCHEMA_VERSION, STORE_SCHEMA_VERSION + 1]
            assert schema_version(conn) == STORE_SCHEMA_VERSION + 2
            meta = conn.execute(
                "SELECT value FROM store_meta WHERE key='schema_version'"
            ).fetchone()
            assert meta["value"] == str(STORE_SCHEMA_VERSION + 2)
        finally:
            conn.close()

    def test_duplicate_migration_registration_is_an_error(self, monkeypatch):
        monkeypatch.setattr(schema_module, "MIGRATIONS", dict(MIGRATIONS))
        schema_module.register_migration(41)(lambda conn: None)
        with pytest.raises(ValueError, match="already registered"):
            schema_module.register_migration(41)(lambda conn: None)
