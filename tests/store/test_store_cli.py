"""CLI tests for ``python -m repro.run store``: exit codes and output."""

import json

import pytest

from repro.run import main


@pytest.fixture()
def campaign_dir(tmp_path):
    assert main(["sweep", "smoke", "--out", str(tmp_path / "sweeps")]) == 0
    return tmp_path / "sweeps" / "smoke"


@pytest.fixture()
def db(tmp_path):
    return str(tmp_path / "store.sqlite")


class TestStoreDispatch:
    def test_bare_store_prints_usage_and_exits_2(self, capsys):
        assert main(["store"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_help_lists_subcommands(self, capsys):
        assert main(["store", "--help"]) == 0
        out = capsys.readouterr().out
        for name in ("ingest", "query", "info"):
            assert name in out

    def test_unknown_subcommand_is_exit_2(self, capsys):
        assert main(["store", "frobnicate"]) == 2
        assert "frobnicate" in capsys.readouterr().err


class TestStoreIngestCli:
    def test_ingest_then_reingest_reports_dedup(self, campaign_dir, db, capsys):
        assert main(["store", "ingest", str(campaign_dir), "--db", db]) == 0
        assert "4 inserted" in capsys.readouterr().out
        assert main(["store", "ingest", str(campaign_dir), "--db", db]) == 0
        assert "4 deduplicated" in capsys.readouterr().out

    def test_json_report_is_parseable(self, campaign_dir, db, capsys):
        assert main(["store", "ingest", str(campaign_dir), "--db", db, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["inserted"] == 4
        assert report["ok"] is True
        (directory,) = report["directories"]
        assert directory["kind"] == "full"

    def test_bad_directory_is_exit_2(self, tmp_path, db, capsys):
        assert main(["store", "ingest", str(tmp_path / "empty"), "--db", db]) == 2
        assert "results.json" in capsys.readouterr().err

    def test_conflict_is_exit_1(self, campaign_dir, db, tmp_path, capsys):
        assert main(["store", "ingest", str(campaign_dir), "--db", db]) == 0
        payload = json.loads((campaign_dir / "results.json").read_text())
        payload["points"][0]["stats"]["samples_taken"] += 1
        (campaign_dir / "results.json").write_text(json.dumps(payload))
        assert main(["store", "ingest", str(campaign_dir), "--db", db]) == 1
        assert "conflict" in capsys.readouterr().err


class TestStoreQueryCli:
    def test_query_table_csv_json(self, campaign_dir, db, capsys, tmp_path):
        main(["store", "ingest", str(campaign_dir), "--db", db])
        capsys.readouterr()

        assert main(["store", "query", "--db", db, "--campaign", "smoke"]) == 0
        assert "power_uw.Total" in capsys.readouterr().out

        out_file = tmp_path / "rows.csv"
        assert (
            main(
                [
                    "store",
                    "query",
                    "--db",
                    db,
                    "--columns",
                    "index,seed,power_uw.Total",
                    "--format",
                    "csv",
                    "--out",
                    str(out_file),
                ]
            )
            == 0
        )
        lines = out_file.read_text().strip().split("\n")
        assert lines[0] == "index,seed,power_uw.Total"
        assert len(lines) == 5

    def test_aggregate_and_group_by(self, campaign_dir, db, capsys):
        main(["store", "ingest", str(campaign_dir), "--db", db])
        capsys.readouterr()
        assert (
            main(
                [
                    "store",
                    "query",
                    "--db",
                    db,
                    "--aggregate",
                    "count",
                    "--aggregate",
                    "mean:power_uw.Total",
                    "--group-by",
                    "campaign",
                    "--format",
                    "json",
                ]
            )
            == 0
        )
        (group,) = json.loads(capsys.readouterr().out)
        assert group["campaign"] == "smoke"
        assert group["count"] == 4
        assert group["mean:power_uw.Total"] > 0

    def test_group_by_without_aggregate_is_exit_2(self, db, campaign_dir, capsys):
        main(["store", "ingest", str(campaign_dir), "--db", db])
        assert main(["store", "query", "--db", db, "--group-by", "campaign"]) == 2
        assert "--aggregate" in capsys.readouterr().err

    def test_missing_database_is_exit_2(self, tmp_path, capsys):
        assert main(["store", "query", "--db", str(tmp_path / "nope")]) == 2
        assert "no such store database" in capsys.readouterr().err

    def test_bad_filter_is_exit_2(self, db, campaign_dir, capsys):
        main(["store", "ingest", str(campaign_dir), "--db", db])
        assert main(["store", "query", "--db", db, "--where", "nonsense"]) == 2


class TestStoreInfoCli:
    def test_info_summarises_coverage(self, campaign_dir, db, capsys):
        main(["store", "ingest", str(campaign_dir), "--db", db])
        capsys.readouterr()
        assert main(["store", "info", "--db", db]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out
        assert "4/4" in out

    def test_info_json(self, campaign_dir, db, capsys):
        main(["store", "ingest", str(campaign_dir), "--db", db])
        capsys.readouterr()
        assert main(["store", "info", "--db", db, "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["total_points"] == 4

    def test_missing_database_is_exit_2(self, tmp_path, capsys):
        assert main(["store", "info", "--db", str(tmp_path / "nope")]) == 2
