"""--resume-from-store: byte-identity with manifest resume, validation."""

from dataclasses import replace

import pytest

from repro.store import StoreError, connect, ingest_directory, load_reusable_results_from_store
from repro.sweep.artifacts import write_artifacts
from repro.sweep.campaign import CampaignSpec
from repro.sweep.execute import execute_campaign
from repro.sweep.resume import ResumeError, load_reusable_results

SPEC = CampaignSpec(
    name="store-resume-test",
    description="small store-resume-test campaign",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (40_000, 60_000),
        "sample_period_cycles": (2_000, 4_000),
    },
)


@pytest.fixture()
def populated(tmp_path):
    """Fresh artifacts at tmp_path/fresh/<name>, ingested into a store."""
    result = execute_campaign(SPEC, jobs=1)
    paths = write_artifacts(SPEC, result, tmp_path / "fresh")
    db_path = tmp_path / "store.sqlite"
    conn = connect(db_path)
    ingest_directory(conn, tmp_path / "fresh" / SPEC.name)
    conn.close()
    return paths, db_path


class TestLoadFromStore:
    def test_recovers_every_point_with_timings(self, populated):
        _, db_path = populated
        reusable = load_reusable_results_from_store(SPEC, db_path)
        assert sorted(reusable) == [0, 1, 2, 3]
        for point in reusable.values():
            assert point.reused is True
            assert point.wall_seconds > 0

    def test_matches_manifest_resume_exactly(self, tmp_path, populated):
        """The two resume paths go through the same validation gate and must
        hand back the same points — this is what makes them interchangeable."""
        _, db_path = populated
        from_store = load_reusable_results_from_store(SPEC, db_path)
        from_manifest = load_reusable_results(SPEC, tmp_path / "fresh")
        assert sorted(from_store) == sorted(from_manifest)
        for index in from_manifest:
            store_point, manifest_point = from_store[index], from_manifest[index]
            assert store_point.stats == manifest_point.stats
            assert store_point.power_uw == manifest_point.power_uw
            assert store_point.area_kge == manifest_point.area_kge
            assert store_point.seed == manifest_point.seed
            assert store_point.wall_seconds == manifest_point.wall_seconds

    def test_resumed_run_is_byte_identical(self, tmp_path, populated):
        """The acceptance criterion: resuming purely from the store recomputes
        nothing and reproduces the artifacts byte for byte."""
        fresh_paths, db_path = populated
        reuse = load_reusable_results_from_store(SPEC, db_path)
        resumed = execute_campaign(SPEC, jobs=1, reuse=reuse)
        assert resumed.n_reused == 4
        resumed_paths = write_artifacts(SPEC, resumed, tmp_path / "resumed")
        for key in ("results_json", "results_csv"):
            assert resumed_paths[key].read_bytes() == fresh_paths[key].read_bytes()

    def test_unknown_campaign_means_no_reuse(self, populated):
        _, db_path = populated
        other = replace(SPEC, name="never-ingested", base_seed=3)
        assert load_reusable_results_from_store(other, db_path) == {}

    def test_missing_database_is_an_error(self, tmp_path):
        # An explicit store path that doesn't exist is a typo, not a cue to
        # silently recompute the whole campaign.
        with pytest.raises(StoreError, match="no such store database"):
            load_reusable_results_from_store(SPEC, tmp_path / "typo.sqlite")

    def test_tampered_record_disagreeing_with_expansion_raises(self, populated):
        _, db_path = populated
        conn = connect(db_path)
        conn.execute("UPDATE points SET seed = seed + 1 WHERE point_index = 1")
        conn.commit()
        conn.close()
        with pytest.raises(ResumeError, match="disagrees with the current expansion"):
            load_reusable_results_from_store(SPEC, db_path)


class TestCliResumeFromStore:
    def test_cli_reuses_everything_byte_identically(self, tmp_path, capsys):
        from repro.run import main

        assert main(["sweep", "smoke", "--out", str(tmp_path / "a")]) == 0
        assert main(["store", "ingest", str(tmp_path / "a" / "smoke"), "--db", str(tmp_path / "db")]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "sweep",
                    "smoke",
                    "--out",
                    str(tmp_path / "b"),
                    "--resume-from-store",
                    str(tmp_path / "db"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4 reused" in out
        for name in ("results.json", "results.csv"):
            assert (tmp_path / "b" / "smoke" / name).read_bytes() == (
                tmp_path / "a" / "smoke" / name
            ).read_bytes()

    def test_cli_missing_store_is_exit_2(self, tmp_path, capsys):
        from repro.run import main

        code = main(
            ["sweep", "smoke", "--out", str(tmp_path), "--resume-from-store", str(tmp_path / "nope")]
        )
        assert code == 2
        assert "--resume-from-store" in capsys.readouterr().err
