"""Query API: filters, projection, aggregation, rendering, store info."""

import json

import pytest

from repro.store import (
    StoreError,
    aggregate_rows,
    connect,
    format_rows,
    ingest_directory,
    parse_aggregate,
    parse_filter,
    select_rows,
    store_info,
)
from repro.sweep.artifacts import write_artifacts
from repro.sweep.campaign import CampaignSpec
from repro.sweep.execute import execute_campaign
from repro.sweep.resume import spec_hash

SPEC = CampaignSpec(
    name="store-query-test",
    description="small store-query-test campaign",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (40_000, 60_000),
        "sample_period_cycles": (2_000, 4_000),
    },
)


@pytest.fixture()
def store(tmp_path):
    result = execute_campaign(SPEC, jobs=1)
    write_artifacts(SPEC, result, tmp_path)
    conn = connect(tmp_path / "store.sqlite")
    ingest_directory(conn, tmp_path / SPEC.name)
    yield conn
    conn.close()


class TestParseFilter:
    def test_operators_parse_longest_first(self):
        assert parse_filter("param.x<=8").op == "<="
        assert parse_filter("param.x<8").op == "<"
        assert parse_filter("stat.ok==true").value is True
        assert parse_filter("scenario==duty-cycled-logging").value == "duty-cycled-logging"

    def test_malformed_filter_is_a_named_error(self):
        with pytest.raises(StoreError, match="filter"):
            parse_filter("no-operator-here")

    def test_malformed_aggregate_is_a_named_error(self):
        assert parse_aggregate("count") == ("count", None)
        assert parse_aggregate("mean:power_uw.Total") == ("mean", "power_uw.Total")
        with pytest.raises(StoreError, match="aggregate"):
            parse_aggregate("median:power_uw.Total")


class TestSelectRows:
    def test_all_rows_carry_namespaced_columns(self, store):
        rows = select_rows(store)
        assert len(rows) == 4
        for row in rows:
            assert row["campaign"] == SPEC.name
            assert row["scenario"] == SPEC.scenario
            assert "param.sample_period_cycles" in row
            assert "power_uw.Total" in row
            assert "stat.samples_taken" in row

    def test_campaign_filter_accepts_name_and_spec_hash(self, store):
        assert len(select_rows(store, campaign=SPEC.name)) == 4
        assert len(select_rows(store, campaign=spec_hash(SPEC))) == 4

    def test_unknown_campaign_is_a_named_error(self, store):
        with pytest.raises(StoreError, match="no-such"):
            select_rows(store, campaign="no-such-campaign")

    def test_where_filters_and_columns_project(self, store):
        rows = select_rows(
            store,
            where=(parse_filter("horizon_cycles>=60000"),),
            columns=["index", "horizon_cycles", "power_uw.Total"],
        )
        assert rows
        for row in rows:
            assert sorted(row) == ["horizon_cycles", "index", "power_uw.Total"]
            assert row["horizon_cycles"] >= 60_000

    def test_no_matching_rows_is_empty_not_error(self, store):
        assert select_rows(store, where=(parse_filter("horizon_cycles>999999999"),)) == []


class TestAggregates:
    def test_count_min_mean_max(self, store):
        rows = select_rows(store)
        out = aggregate_rows(
            rows, [("count", None), ("min", "horizon_cycles"), ("max", "horizon_cycles")]
        )
        assert out == [
            {"count": 4, "min:horizon_cycles": 40_000, "max:horizon_cycles": 60_000}
        ]

    def test_group_by_parameter(self, store):
        rows = select_rows(store)
        out = aggregate_rows(
            rows, [("count", None), ("mean", "power_uw.Total")], group_by=("param.sample_period_cycles",)
        )
        assert [group["param.sample_period_cycles"] for group in out] == [2_000, 4_000]
        for group in out:
            assert group["count"] == 2
            assert group["mean:power_uw.Total"] > 0

    def test_cross_campaign_group_by(self, tmp_path, store):
        from dataclasses import replace

        other = replace(SPEC, name="store-query-test-b", base_seed=9)
        result = execute_campaign(other, jobs=1)
        write_artifacts(other, result, tmp_path / "b")
        ingest_directory(store, tmp_path / "b" / other.name)

        out = aggregate_rows(select_rows(store), [("count", None)], group_by=("campaign",))
        assert out == [
            {"campaign": SPEC.name, "count": 4},
            {"campaign": other.name, "count": 4},
        ]


class TestRendering:
    def test_csv_and_json_round_trip(self, store):
        rows = select_rows(store, columns=["index", "seed", "power_uw.Total"])
        as_json = json.loads(format_rows(rows, "json"))
        assert as_json == rows
        csv_text = format_rows(rows, "csv")
        lines = csv_text.strip().split("\n")
        assert lines[0] == "index,seed,power_uw.Total"
        assert len(lines) == 5

    def test_empty_table_renders_placeholder(self):
        assert "(no rows)" in format_rows([], "table")


class TestStoreInfo:
    def test_summary_counts_coverage_and_ingests(self, store, tmp_path):
        ingest_directory(store, tmp_path / SPEC.name)  # dedup pass -> 2nd ingest row
        info = store_info(store)
        assert info["total_points"] == 4
        (campaign,) = info["campaigns"]
        assert campaign["name"] == SPEC.name
        assert campaign["points_stored"] == 4
        assert campaign["points_total"] == 4
        assert campaign["complete"] is True
        assert campaign["ingests"] == 2
