"""The on-disk plan/snapshot cache: keys, hits, atomicity, silent fallback.

The contract under test: a :class:`~repro.cache.PlanCache` can make a run
faster or leave it untouched, never wrong — every corrupt, truncated, or
stale entry is counted, noted, evicted, and answered with the next-best
candidate or ``None`` (a cold start), and publishes are atomic and
best-effort.
"""

import os

import pytest

from repro.cache import CacheError, PlanCache, group_cache_key
from repro.sim.snapshot import SNAPSHOT_SCHEMA_VERSION
from repro.workloads.registry import scenario

HORIZONS = [30_000, 60_000]


@pytest.fixture()
def prepared():
    instance = scenario("duty-cycled-logging").batch_prepare(list(HORIZONS), False)
    instance.simulator.step(HORIZONS[0])
    return instance


@pytest.fixture()
def cache(tmp_path):
    return PlanCache(tmp_path / "plan-cache")


KEY = group_cache_key("duty-cycled-logging", False, {}, HORIZONS)


class TestGroupCacheKey:
    def test_key_is_computable_without_a_prepared_instance(self):
        assert len(KEY) == 64 and set(KEY) <= set("0123456789abcdef")

    def test_key_covers_every_identity_dimension(self):
        base = group_cache_key("s", False, {"a": 1}, [10, 20])
        assert group_cache_key("s", False, {"a": 1}, [10, 20]) == base
        assert group_cache_key("other", False, {"a": 1}, [10, 20]) != base
        assert group_cache_key("s", True, {"a": 1}, [10, 20]) != base
        assert group_cache_key("s", False, {"a": 2}, [10, 20]) != base
        assert group_cache_key("s", False, {"a": 1}, [10, 30]) != base
        assert group_cache_key("s", False, {"a": 1}, [10, 20, 30]) != base

    def test_param_order_does_not_matter(self):
        assert group_cache_key("s", False, {"a": 1, "b": 2}, [10]) == group_cache_key(
            "s", False, {"b": 2, "a": 1}, [10]
        )

    def test_schema_version_is_part_of_the_key(self, monkeypatch):
        import repro.cache.plan_cache as module

        before = group_cache_key("s", False, {}, [10])
        monkeypatch.setattr(module, "SNAPSHOT_SCHEMA_VERSION", SNAPSHOT_SCHEMA_VERSION + 1)
        assert group_cache_key("s", False, {}, [10]) != before


class TestPublishAndLookup:
    def test_round_trip(self, cache, prepared):
        assert cache.publish(KEY, prepared, HORIZONS[0]) is True
        restored = cache.lookup(KEY, HORIZONS[0])
        assert restored is not None and restored.base_tick == HORIZONS[0]
        assert restored.prepared.simulator.current_cycle == HORIZONS[0]
        assert cache.counters.as_dict() == {"hits": 1, "misses": 0, "writes": 1, "errors": 0}

    def test_empty_cache_is_a_counted_miss(self, cache):
        assert cache.lookup(KEY, HORIZONS[0]) is None
        assert cache.counters.misses == 1

    def test_lookup_prefers_the_deepest_candidate(self, cache, prepared):
        cache.publish(KEY, prepared, HORIZONS[0])
        prepared.simulator.step(HORIZONS[1] - HORIZONS[0])
        cache.publish(KEY, prepared, HORIZONS[1])
        assert cache.lookup(KEY, HORIZONS[1]).base_tick == HORIZONS[1]
        assert cache.lookup(KEY, HORIZONS[1] - 1).base_tick == HORIZONS[0]

    def test_exact_lookup_ignores_shallower_entries(self, cache, prepared):
        cache.publish(KEY, prepared, HORIZONS[0])
        assert cache.lookup(KEY, HORIZONS[1], exact=True) is None
        assert cache.lookup(KEY, HORIZONS[0], exact=True).base_tick == HORIZONS[0]

    def test_publish_skips_existing_entries(self, cache, prepared):
        assert cache.publish(KEY, prepared, HORIZONS[0]) is True
        assert cache.publish(KEY, prepared, HORIZONS[0]) is False
        assert cache.counters.writes == 1

    def test_publish_rejects_cycle_zero(self, cache, prepared):
        assert cache.publish(KEY, prepared, 0) is False
        assert cache.counters.writes == 0

    def test_publish_is_atomic(self, cache, prepared):
        cache.publish(KEY, prepared, HORIZONS[0])
        entry_dir = cache.root / KEY[:2] / KEY
        assert sorted(p.name for p in entry_dir.iterdir()) == [f"{HORIZONS[0]}.snap"]
        assert not list(cache.root.rglob("*.tmp"))

    def test_unpicklable_publish_is_noted_not_raised(self, cache, prepared):
        class Poison:
            def __reduce__(self):
                raise TypeError("no")

        prepared.poison = Poison()
        assert cache.publish(KEY, prepared, HORIZONS[0]) is False
        assert cache.counters.errors == 1
        assert any("not picklable" in note for note in cache.notes)


class TestSilentFallback:
    @pytest.fixture()
    def snap_path(self, cache, prepared):
        cache.publish(KEY, prepared, HORIZONS[0])
        return cache.root / KEY[:2] / KEY / f"{HORIZONS[0]}.snap"

    def _expect_fallback(self, cache, note_fragment):
        fresh = PlanCache(cache.root)  # clean counters, same directory
        assert fresh.lookup(KEY, HORIZONS[0]) is None
        assert fresh.counters.misses == 1
        assert fresh.counters.errors == 1
        assert any(note_fragment in note for note in fresh.notes)
        return fresh

    def test_corrupt_entry(self, cache, snap_path):
        snap_path.write_bytes(b"this is not a snapshot")
        self._expect_fallback(cache, "bad magic")

    def test_truncated_entry(self, cache, snap_path):
        snap_path.write_bytes(snap_path.read_bytes()[:50])
        self._expect_fallback(cache, "truncated")

    def test_stale_schema_entry(self, cache, snap_path):
        blob = snap_path.read_bytes().replace(
            b'"schema_version":%d' % SNAPSHOT_SCHEMA_VERSION,
            b'"schema_version":%d' % (SNAPSHOT_SCHEMA_VERSION + 1),
        )
        snap_path.write_bytes(blob)
        self._expect_fallback(cache, "stale snapshot schema")

    def test_unusable_entries_are_evicted_so_publish_can_heal(
        self, cache, prepared, snap_path
    ):
        snap_path.write_bytes(b"garbage")
        self._expect_fallback(cache, "bad magic")
        assert not snap_path.exists()
        assert cache.publish(KEY, prepared, HORIZONS[0]) is True
        fresh = PlanCache(cache.root)
        assert fresh.lookup(KEY, HORIZONS[0]).base_tick == HORIZONS[0]
        assert fresh.counters.errors == 0

    def test_corrupt_deep_entry_falls_back_to_shallower(self, cache, prepared):
        cache.publish(KEY, prepared, HORIZONS[0])
        prepared.simulator.step(HORIZONS[1] - HORIZONS[0])
        cache.publish(KEY, prepared, HORIZONS[1])
        deep = cache.root / KEY[:2] / KEY / f"{HORIZONS[1]}.snap"
        deep.write_bytes(b"garbage")
        fresh = PlanCache(cache.root)
        restored = fresh.lookup(KEY, HORIZONS[1])
        assert restored is not None and restored.base_tick == HORIZONS[0]
        assert fresh.counters.as_dict() == {"hits": 1, "misses": 0, "writes": 0, "errors": 1}

    def test_mislabelled_entry_is_rejected(self, cache, prepared, snap_path):
        os.rename(snap_path, snap_path.with_name("12345.snap"))
        self._expect_fallback(cache, "restored at cycle")

    def test_non_snapshot_files_are_ignored(self, cache, prepared, snap_path):
        (snap_path.parent / "README").write_text("not a snapshot")
        (snap_path.parent / "noint.snap").write_text("bad stem")
        fresh = PlanCache(cache.root)
        assert fresh.lookup(KEY, HORIZONS[0]).base_tick == HORIZONS[0]
        assert fresh.counters.errors == 0

    def test_notes_deduplicate(self, cache, snap_path):
        blob = snap_path.read_bytes()
        fresh = PlanCache(cache.root)
        for _ in range(3):
            snap_path.write_bytes(b"garbage")
            assert fresh.lookup(KEY, HORIZONS[0]) is None
        assert fresh.counters.errors == 3
        assert len(fresh.notes) == 1
        snap_path.write_bytes(blob)  # restore for tmp_path hygiene


class TestStats:
    def test_stats_payload_shape(self, cache, prepared):
        cache.publish(KEY, prepared, HORIZONS[0])
        cache.lookup(KEY, HORIZONS[0])
        cache.lookup("0" * 64, HORIZONS[0])
        payload = cache.stats()
        assert payload["path"] == str(cache.root)
        assert payload["hits"] == 1 and payload["misses"] == 1
        assert payload["writes"] == 1 and payload["errors"] == 0
        assert payload["notes"] == []

    def test_cache_error_is_exported(self):
        assert issubclass(CacheError, Exception)
