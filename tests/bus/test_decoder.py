"""Tests for address decoding."""

import pytest

from repro.bus.decoder import AddressDecoder, AddressRegion, DecodeError


class FakeSlave:
    def __init__(self, name):
        self.name = name
        self.store = {}

    def bus_read(self, offset):
        return self.store.get(offset, 0)

    def bus_write(self, offset, value):
        self.store[offset] = value


class TestAddressRegion:
    def test_contains(self):
        region = AddressRegion(base=0x1000, size=0x100, slave=FakeSlave("a"))
        assert region.contains(0x1000)
        assert region.contains(0x10FC)
        assert not region.contains(0x1100)

    def test_overlap_detection(self):
        a = AddressRegion(base=0x1000, size=0x100, slave=FakeSlave("a"))
        b = AddressRegion(base=0x1080, size=0x100, slave=FakeSlave("b"))
        c = AddressRegion(base=0x1100, size=0x100, slave=FakeSlave("c"))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            AddressRegion(base=-4, size=0x100, slave=FakeSlave("a"))
        with pytest.raises(ValueError):
            AddressRegion(base=0x0, size=0, slave=FakeSlave("a"))
        with pytest.raises(ValueError):
            AddressRegion(base=0x2, size=0x100, slave=FakeSlave("a"))


class TestAddressDecoder:
    def test_decode_returns_slave_and_offset(self):
        decoder = AddressDecoder()
        slave = FakeSlave("gpio")
        decoder.add_region(0x1A10_1000, 0x1000, slave)
        decoded_slave, offset = decoder.decode(0x1A10_1004)
        assert decoded_slave is slave
        assert offset == 4

    def test_unmapped_address_raises(self):
        decoder = AddressDecoder()
        with pytest.raises(DecodeError):
            decoder.decode(0x0)

    def test_overlapping_region_rejected(self):
        decoder = AddressDecoder()
        decoder.add_region(0x1000, 0x1000, FakeSlave("a"))
        with pytest.raises(DecodeError):
            decoder.add_region(0x1800, 0x1000, FakeSlave("b"))

    def test_region_for_returns_none_when_missing(self):
        decoder = AddressDecoder()
        decoder.add_region(0x1000, 0x100, FakeSlave("a"))
        assert decoder.region_for(0x2000) is None

    def test_slave_base_lookup(self):
        decoder = AddressDecoder()
        decoder.add_region(0x4000, 0x100, FakeSlave("spi"))
        assert decoder.slave_base("spi") == 0x4000
        with pytest.raises(DecodeError):
            decoder.slave_base("uart")

    def test_regions_sorted_by_base(self):
        decoder = AddressDecoder()
        decoder.add_region(0x2000, 0x100, FakeSlave("b"))
        decoder.add_region(0x1000, 0x100, FakeSlave("a"))
        assert [region.base for region in decoder.regions] == [0x1000, 0x2000]
        assert len(decoder) == 2
