"""Tests for the round-robin arbiter."""

import pytest

from repro.bus.arbiter import RoundRobinArbiter


class TestRoundRobinArbiter:
    def test_single_requestor_always_granted(self):
        arbiter = RoundRobinArbiter(["a"])
        for _ in range(5):
            assert arbiter.grant(["a"]) == "a"
        assert arbiter.grant_count("a") == 5

    def test_no_request_no_grant(self):
        arbiter = RoundRobinArbiter(["a", "b"])
        assert arbiter.grant([]) is None

    def test_round_robin_rotation(self):
        arbiter = RoundRobinArbiter(["a", "b", "c"])
        grants = [arbiter.grant(["a", "b", "c"]) for _ in range(6)]
        assert grants == ["a", "b", "c", "a", "b", "c"]

    def test_fairness_no_starvation(self):
        """A continuously requesting master cannot starve the others (PULPissimo policy)."""
        arbiter = RoundRobinArbiter(["hog", "meek"])
        grants = [arbiter.grant(["hog", "meek"]) for _ in range(100)]
        assert grants.count("hog") == 50
        assert grants.count("meek") == 50

    def test_rotation_skips_idle_requestors(self):
        arbiter = RoundRobinArbiter(["a", "b", "c"])
        assert arbiter.grant(["b"]) == "b"
        assert arbiter.grant(["a", "c"]) == "c"  # rotation continues after b
        assert arbiter.grant(["a", "c"]) == "a"

    def test_unknown_requestor_registered_on_the_fly(self):
        arbiter = RoundRobinArbiter()
        assert arbiter.grant(["new"]) == "new"
        assert "new" in arbiter.requestors

    def test_add_requestor_idempotent(self):
        arbiter = RoundRobinArbiter(["a"])
        arbiter.add_requestor("a")
        assert arbiter.requestors == ("a",)

    def test_empty_name_rejected(self):
        arbiter = RoundRobinArbiter()
        with pytest.raises(ValueError):
            arbiter.add_requestor("")

    def test_reset_restores_initial_state(self):
        arbiter = RoundRobinArbiter(["a", "b"])
        arbiter.grant(["a", "b"])
        arbiter.reset()
        assert arbiter.grant_count("a") == 0
        assert arbiter.grant(["a", "b"]) == "a"

    def test_worst_case_wait_bounded_by_requestor_count(self):
        """With N active requestors, nobody waits more than N - 1 grants."""
        names = [f"link{i}" for i in range(8)]
        arbiter = RoundRobinArbiter(names)
        last_seen = {name: -1 for name in names}
        for index in range(64):
            granted = arbiter.grant(names)
            if last_seen[granted] >= 0:
                assert index - last_seen[granted] <= len(names)
            last_seen[granted] = index
