"""Tests for the APB peripheral bus model."""

import pytest

from repro.bus.apb import ApbBus, BusError
from repro.bus.transaction import read_request, write_request
from repro.sim.simulator import Simulator


class WordSlave:
    """Simple word store used as a bus slave."""

    def __init__(self, name="slave", wait_states=0):
        self.name = name
        self.wait_states = wait_states
        self.words = {}

    def bus_read(self, offset):
        return self.words.get(offset, 0)

    def bus_write(self, offset, value):
        self.words[offset] = value


def make_bus(wait_states=0):
    simulator = Simulator()
    bus = ApbBus("apb")
    slave = WordSlave(wait_states=wait_states)
    bus.attach_slave(0x1000, 0x100, slave)
    simulator.add_component(bus)
    return simulator, bus, slave


class TestApbTransfers:
    def test_write_then_read(self):
        simulator, bus, slave = make_bus()
        write = bus.submit(write_request("m0", 0x1004, 0xABCD))
        simulator.step(3)
        assert write.done
        assert slave.words[0x4] == 0xABCD
        read = bus.submit(read_request("m0", 0x1004))
        simulator.step(3)
        assert read.done
        assert read.rdata == 0xABCD

    def test_unloaded_transfer_takes_two_cycles(self):
        """Setup + access: a zero-wait-state APB transfer completes in 2 cycles."""
        simulator, bus, _ = make_bus()
        request = bus.submit(write_request("m0", 0x1000, 1))
        simulator.step(1)
        assert not request.done
        simulator.step(1)
        assert request.done

    def test_wait_states_extend_the_transfer(self):
        simulator, bus, _ = make_bus(wait_states=2)
        request = bus.submit(read_request("m0", 0x1000))
        simulator.step(3)
        assert not request.done
        simulator.step(1)
        assert request.done

    def test_back_to_back_transfers_same_master(self):
        simulator, bus, slave = make_bus()
        first = bus.submit(write_request("m0", 0x1000, 1))
        second = bus.submit(write_request("m0", 0x1004, 2))
        simulator.step(4)
        assert first.done and second.done
        assert slave.words == {0x0: 1, 0x4: 2}

    def test_round_robin_between_masters(self):
        simulator, bus, slave = make_bus()
        a = bus.submit(write_request("a", 0x1000, 0xA))
        b = bus.submit(write_request("b", 0x1004, 0xB))
        simulator.step(4)
        assert a.done and b.done
        assert bus.arbiter.grant_count("a") == 1
        assert bus.arbiter.grant_count("b") == 1

    def test_completed_request_cannot_be_resubmitted(self):
        simulator, bus, _ = make_bus()
        request = bus.submit(write_request("m0", 0x1000, 1))
        simulator.step(3)
        with pytest.raises(BusError):
            bus.submit(request)

    def test_busy_and_pending_flags(self):
        simulator, bus, _ = make_bus()
        assert not bus.busy and not bus.has_pending
        bus.submit(read_request("m0", 0x1000))
        assert bus.has_pending
        simulator.step(1)
        assert bus.busy

    def test_completed_transfer_counter(self):
        simulator, bus, _ = make_bus()
        for index in range(3):
            bus.submit(write_request("m0", 0x1000 + 4 * index, index))
        simulator.step(10)
        assert bus.completed_transfers == 3

    def test_activity_records_reads_and_writes(self):
        simulator, bus, _ = make_bus()
        bus.submit(write_request("m0", 0x1000, 1))
        bus.submit(read_request("m0", 0x1000))
        simulator.step(6)
        assert simulator.activity.get("apb", "writes") == 1
        assert simulator.activity.get("apb", "reads") == 1
        assert simulator.activity.get("apb", "grants") == 2

    def test_reset_clears_state(self):
        simulator, bus, _ = make_bus()
        bus.submit(write_request("m0", 0x1000, 1))
        bus.reset()
        assert not bus.has_pending
        assert bus.completed_transfers == 0


class TestContention:
    def test_eight_masters_all_complete(self):
        """Worst case of Section III-1: all links hit the bus simultaneously."""
        simulator, bus, slave = make_bus()
        requests = [bus.submit(write_request(f"link{i}", 0x1000 + 4 * i, i)) for i in range(8)]
        simulator.step(2 * 8 + 2)
        assert all(request.done for request in requests)
        assert len(slave.words) == 8

    def test_contention_latency_bounded(self):
        """Each extra contender adds at most one transfer time (2 cycles)."""
        simulator, bus, _ = make_bus()
        requests = [bus.submit(write_request(f"link{i}", 0x1000 + 4 * i, i)) for i in range(4)]
        simulator.step(8)
        completion = [request.response.completed_cycle for request in requests]
        assert completion == sorted(completion)
        assert completion[-1] - completion[0] == 2 * 3
