"""Tests for the SoC interconnect (memory side + peripheral bridge)."""

import pytest

from repro.bus.apb import ApbBus
from repro.bus.decoder import DecodeError
from repro.bus.interconnect import SystemInterconnect
from repro.bus.transaction import read_request, write_request
from repro.sim.simulator import Simulator
from repro.soc.memory import SramBank


class WordSlave:
    def __init__(self, name="periph"):
        self.name = name
        self.words = {}

    def bus_read(self, offset):
        return self.words.get(offset, 0)

    def bus_write(self, offset, value):
        self.words[offset] = value


def make_system():
    simulator = Simulator()
    apb = ApbBus("apb")
    periph = WordSlave()
    apb.attach_slave(0x1A10_0000, 0x1000, periph)
    interconnect = SystemInterconnect("soc_interconnect", peripheral_bus=apb)
    sram = SramBank("sram", size_bytes=4096)
    interconnect.attach_memory(0x1C00_0000, 4096, sram)
    simulator.add_component(interconnect)
    simulator.add_component(apb)
    simulator.add_component(sram)
    return simulator, interconnect, apb, sram, periph


class TestMemoryPath:
    def test_sram_write_and_read(self):
        simulator, interconnect, _, sram, _ = make_system()
        write = interconnect.submit(write_request("cpu", 0x1C00_0010, 0x55))
        simulator.step(2)
        assert write.done
        assert sram.peek(0x10) == 0x55
        read = interconnect.submit(read_request("cpu", 0x1C00_0010))
        simulator.step(2)
        assert read.rdata == 0x55

    def test_sram_access_is_single_cycle(self):
        simulator, interconnect, _, _, _ = make_system()
        request = interconnect.submit(write_request("cpu", 0x1C00_0000, 1))
        simulator.step(1)
        assert request.done

    def test_memory_activity_recorded(self):
        simulator, interconnect, _, _, _ = make_system()
        interconnect.submit(write_request("cpu", 0x1C00_0000, 1))
        interconnect.submit(read_request("cpu", 0x1C00_0000))
        simulator.step(4)
        assert simulator.activity.get("soc_interconnect", "memory_writes") == 1
        assert simulator.activity.get("soc_interconnect", "memory_reads") == 1


class TestBridgePath:
    def test_peripheral_access_goes_through_apb(self):
        simulator, interconnect, apb, _, periph = make_system()
        request = interconnect.submit(write_request("cpu", 0x1A10_0004, 0xAB))
        simulator.step(6)
        assert request.done
        assert periph.words[0x4] == 0xAB
        assert apb.completed_transfers == 1

    def test_bridge_adds_latency_over_direct_apb(self):
        """The CPU pays the bridge cycle that PELS (directly on the APB) does not."""
        simulator, interconnect, apb, _, _ = make_system()
        direct = apb.submit(read_request("pels_link0", 0x1A10_0000))
        bridged = interconnect.submit(read_request("cpu", 0x1A10_0004))
        simulator.step(8)
        assert direct.response.completed_cycle < bridged.response.completed_cycle

    def test_unmapped_address_raises(self):
        _, interconnect, _, _, _ = make_system()
        with pytest.raises(DecodeError):
            interconnect.submit(read_request("cpu", 0x5000_0000))

    def test_no_bridge_configured_raises(self):
        simulator = Simulator()
        interconnect = SystemInterconnect("ic", peripheral_bus=None)
        simulator.add_component(interconnect)
        with pytest.raises(DecodeError):
            interconnect.submit(read_request("cpu", 0x1A10_0000))

    def test_reset_drops_in_flight_transfers(self):
        simulator, interconnect, _, _, _ = make_system()
        request = interconnect.submit(write_request("cpu", 0x1A10_0004, 1))
        interconnect.reset()
        simulator.step(6)
        assert not request.done
