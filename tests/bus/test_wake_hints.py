"""Wake-hint tests for the bus fabrics (the ROADMAP gap closed in this PR).

The APB bus and the SoC interconnect used to report ``next_event() == 1``
whenever a transfer was in flight, forcing dense stepping through every wait
state.  They now expose the transfer-completion horizon and replay the busy
countdown in ``skip()``; these tests pin the horizons and the dense-vs-event
equivalence that the property suite checks at the SoC level.
"""

import pytest

import repro.bus.interconnect as interconnect_module
from repro.bus.apb import ApbBus
from repro.bus.interconnect import SystemInterconnect
from repro.bus.transaction import read_request, write_request
from repro.sim.simulator import Simulator
from repro.soc.memory import SramBank


class WaitStateSlave:
    """Word store that inserts wait states on every access."""

    def __init__(self, wait_states=0):
        self.wait_states = wait_states
        self.words = {}

    def bus_read(self, offset):
        return self.words.get(offset, 0)

    def bus_write(self, offset, value):
        self.words[offset] = value


def make_bus(wait_states=0, dense=False):
    simulator = Simulator(dense=dense)
    bus = ApbBus("apb")
    slave = WaitStateSlave(wait_states=wait_states)
    bus.attach_slave(0x1000, 0x100, slave)
    simulator.add_component(bus)
    return simulator, bus, slave


class TestApbWakeHints:
    def test_idle_bus_never_wakes(self):
        _, bus, _ = make_bus()
        assert bus.next_event() is None

    def test_pending_request_wakes_immediately(self):
        _, bus, _ = make_bus()
        bus.submit(write_request("m0", 0x1000, 1))
        assert bus.next_event() == 1

    def test_active_transfer_exposes_completion_horizon(self):
        simulator, bus, _ = make_bus(wait_states=5)
        bus.submit(read_request("m0", 0x1000))
        simulator.step(1)  # grant/setup tick
        # Access cycle + 5 wait states remain.
        assert bus.next_event() == 6

    def test_skip_replays_the_busy_countdown(self):
        simulator, bus, _ = make_bus(wait_states=5)
        bus.submit(read_request("m0", 0x1000))
        simulator.step(1)
        busy_before = simulator.activity.get("apb", "busy_cycles")
        bus.skip(4)
        assert simulator.activity.get("apb", "busy_cycles") == busy_before + 4
        assert bus.next_event() == 2

    def test_idle_skip_still_records_empty_arbitration_rounds(self):
        simulator, bus, _ = make_bus()
        bus.skip(10)
        assert simulator.activity.get("apb", "idle_cycles") == 10

    @pytest.mark.parametrize("wait_states", [0, 3, 7])
    def test_dense_and_event_runs_agree(self, wait_states):
        outcomes = {}
        for dense in (True, False):
            simulator, bus, slave = make_bus(wait_states=wait_states, dense=dense)
            first = bus.submit(write_request("m0", 0x1004, 0xAB))
            second = bus.submit(read_request("m1", 0x1004))
            simulator.step(30)
            outcomes[dense] = (
                first.response.completed_cycle,
                second.response.completed_cycle,
                second.rdata,
                slave.words,
                simulator.activity.as_dict(),
            )
        assert outcomes[True] == outcomes[False]


class TestInterconnectWakeHints:
    def make_interconnect(self, dense=False):
        simulator = Simulator(dense=dense)
        interconnect = SystemInterconnect("soc_interconnect")
        sram = SramBank("sram", size_bytes=0x1000)
        interconnect.attach_memory(0x1000_0000, 0x1000, sram)
        simulator.add_component(interconnect)
        simulator.add_component(sram)
        return simulator, interconnect, sram

    def test_idle_interconnect_never_wakes(self):
        _, interconnect, _ = self.make_interconnect()
        assert interconnect.next_event() is None

    def test_in_flight_transfer_exposes_completion_horizon(self, monkeypatch):
        monkeypatch.setattr(interconnect_module, "SRAM_ACCESS_CYCLES", 4)
        _, interconnect, _ = self.make_interconnect()
        interconnect.submit(write_request("cpu", 0x1000_0000, 42))
        assert interconnect.next_event() == 4

    def test_skip_ages_in_flight_transfers(self, monkeypatch):
        monkeypatch.setattr(interconnect_module, "SRAM_ACCESS_CYCLES", 4)
        simulator, interconnect, _ = self.make_interconnect()
        interconnect.submit(write_request("cpu", 0x1000_0000, 42))
        interconnect.skip(3)
        assert interconnect.next_event() == 1
        assert simulator.activity.get("soc_interconnect", "busy_cycles") == 3
        simulator.step(1)
        assert simulator.activity.get("soc_interconnect", "memory_writes") == 1

    @pytest.mark.parametrize("access_cycles", [1, 3])
    def test_dense_and_event_runs_agree(self, access_cycles, monkeypatch):
        monkeypatch.setattr(interconnect_module, "SRAM_ACCESS_CYCLES", access_cycles)
        outcomes = {}
        for dense in (True, False):
            simulator, interconnect, _ = self.make_interconnect(dense=dense)
            write = interconnect.submit(write_request("cpu", 0x1000_0004, 0x55))
            read = interconnect.submit(read_request("udma", 0x1000_0004))
            simulator.step(12)
            outcomes[dense] = (
                write.response.completed_cycle,
                read.response.completed_cycle,
                read.rdata,
                simulator.activity.as_dict(),
            )
        assert outcomes[True] == outcomes[False]
