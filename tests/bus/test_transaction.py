"""Tests for bus transaction primitives."""

import pytest

from repro.bus.transaction import BusRequest, TransferKind, read_request, write_request


class TestBusRequest:
    def test_read_helper(self):
        request = read_request("cpu", 0x1A10_1000)
        assert request.is_read and not request.is_write
        assert request.kind is TransferKind.READ

    def test_write_helper(self):
        request = write_request("cpu", 0x1A10_1004, 0xDEAD_BEEF)
        assert request.is_write
        assert request.wdata == 0xDEAD_BEEF

    def test_unaligned_address_rejected(self):
        with pytest.raises(ValueError):
            read_request("cpu", 0x1A10_1001)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            BusRequest(master="cpu", kind=TransferKind.READ, address=-4)

    def test_oversized_wdata_rejected(self):
        with pytest.raises(ValueError):
            write_request("cpu", 0x0, 1 << 32)

    def test_empty_master_rejected(self):
        with pytest.raises(ValueError):
            read_request("", 0x0)

    def test_complete_sets_response(self):
        request = read_request("cpu", 0x0, issued_cycle=3)
        request.complete(0x1234, cycle=5)
        assert request.done
        assert request.rdata == 0x1234
        assert request.latency == 2

    def test_double_completion_rejected(self):
        request = read_request("cpu", 0x0)
        request.complete(0, cycle=1)
        with pytest.raises(RuntimeError):
            request.complete(0, cycle=2)

    def test_rdata_before_completion_raises(self):
        request = read_request("cpu", 0x0)
        with pytest.raises(RuntimeError):
            _ = request.rdata
        with pytest.raises(RuntimeError):
            _ = request.latency

    def test_completion_masks_to_32_bits(self):
        request = read_request("cpu", 0x0)
        request.complete(0x1_FFFF_FFFF, cycle=1)
        assert request.rdata == 0xFFFF_FFFF
