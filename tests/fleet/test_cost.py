"""Cost model: per-point estimates, cost-weighted cuts, timing scavenging."""

import json

import pytest

from repro.fleet.cost import (
    DEFAULT_SECONDS_PER_CYCLE,
    cut_shards,
    cut_spans,
    estimate_costs,
    scavenge_point_walls,
)
from repro.sweep.artifacts import write_artifacts
from repro.sweep.campaign import CampaignSpec, ShardSpec, expand_campaign
from repro.sweep.execute import execute_campaign

SPEC = CampaignSpec(
    name="fleet-cost-test",
    description="small campaign for cost-model tests",
    scenario="duty-cycled-logging",
    grid={
        "sample_period_cycles": (2_000, 4_000),
        "horizon_cycles": (40_000, 60_000),
    },
)


class TestCutSpans:
    @pytest.mark.parametrize("n_points", [1, 2, 3, 7, 24, 100])
    @pytest.mark.parametrize("workers", [1, 2, 3, 5, 8])
    def test_partition_is_contiguous_and_complete(self, n_points, workers):
        spans = cut_spans([1.0] * n_points, workers)
        covered = [i for start, stop in spans for i in range(start, stop)]
        assert covered == list(range(n_points))  # in order, no gap, no overlap
        assert all(stop > start for start, stop in spans)  # never empty
        assert len(spans) <= workers

    def test_uniform_costs_cut_balanced(self):
        spans = cut_spans([1.0] * 12, 4)
        assert [stop - start for start, stop in spans] == [3, 3, 3, 3]

    def test_expensive_head_gets_a_small_span(self):
        # One point worth as much as all the rest together: it should be
        # cut off alone, and the cheap tail shared among the other workers.
        costs = [30.0] + [1.0] * 30
        spans = cut_spans(costs, 4)
        assert spans[0] == (0, 1)
        sizes = [stop - start for start, stop in spans[1:]]
        assert sum(sizes) == 30
        assert max(sizes) - min(sizes) <= 1

    def test_more_workers_than_points(self):
        spans = cut_spans([1.0, 1.0], 5)
        assert spans == [(0, 1), (1, 2)]

    def test_no_worker_starves_while_points_remain(self):
        # A huge first point must not swallow the whole range: every
        # remaining worker is guaranteed at least one point.
        spans = cut_spans([1000.0, 1.0, 1.0, 1.0], 4)
        assert len(spans) == 4
        assert all(stop - start == 1 for start, stop in spans)

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            cut_spans([1.0], 0)


class TestCutShards:
    def test_emits_explicit_span_shards_that_round_trip(self):
        shards = cut_shards([1.0] * 10, 3)
        assert all(isinstance(shard, ShardSpec) for shard in shards)
        for shard in shards:
            parsed = ShardSpec.parse(str(shard))
            assert parsed.span == shard.span
        assert [shard.count for shard in shards] == [len(shards)] * len(shards)

    def test_spans_cover_the_grid(self):
        shards = cut_shards([1.0] * 10, 3)
        covered = []
        for shard in shards:
            start, stop = shard.bounds(10)
            covered.extend(range(start, stop))
        assert covered == list(range(10))


class TestEstimateCosts:
    def test_without_observations_costs_scale_with_horizon(self):
        points = expand_campaign(SPEC)
        costs = estimate_costs(points, {})
        for point, cost in zip(points, costs):
            assert cost == pytest.approx(point.horizon_cycles * DEFAULT_SECONDS_PER_CYCLE)

    def test_observed_walls_are_used_verbatim(self):
        points = expand_campaign(SPEC)
        walls = {0: 2.5}
        costs = estimate_costs(points, walls)
        assert costs[0] == pytest.approx(2.5)

    def test_observations_calibrate_unobserved_points(self):
        points = expand_campaign(SPEC)
        # One observed point prices the rest by its seconds-per-cycle rate.
        rate = 1e-4
        walls = {0: points[0].horizon_cycles * rate}
        costs = estimate_costs(points, walls)
        for point, cost in zip(points[1:], costs[1:]):
            assert cost == pytest.approx(point.horizon_cycles * rate)

    def test_costs_are_strictly_positive(self):
        points = expand_campaign(SPEC)
        costs = estimate_costs(points, {index: 0.0 for index in range(len(points))})
        assert all(cost > 0 for cost in costs)


class TestScavenge:
    @pytest.fixture(scope="class")
    def artifacts_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("scavenge")
        result = execute_campaign(SPEC, jobs=1)
        write_artifacts(SPEC, result, out)
        return out

    def test_harvests_walls_from_past_artifacts(self, artifacts_dir):
        walls, notes = scavenge_point_walls(SPEC, artifacts_dir)
        assert notes == []
        assert set(walls) == set(range(SPEC.n_points))
        assert all(wall >= 0 for wall in walls.values())

    def test_missing_campaign_dir_is_empty_not_an_error(self, tmp_path):
        walls, notes = scavenge_point_walls(SPEC, tmp_path)
        assert walls == {} and notes == []

    def test_other_campaigns_artifacts_are_ignored(self, artifacts_dir):
        other = CampaignSpec(
            name=SPEC.name,  # same directory, different grid -> spec_hash differs
            description="different campaign in the same directory",
            scenario=SPEC.scenario,
            grid={"horizon_cycles": (40_000,), "sample_period_cycles": (2_000,)},
        )
        walls, notes = scavenge_point_walls(other, artifacts_dir)
        assert walls == {} and notes == []

    def test_damaged_manifest_is_noted_not_fatal(self, artifacts_dir, tmp_path):
        import shutil

        out = tmp_path / "damaged"
        shutil.copytree(artifacts_dir, out)
        manifest = out / SPEC.name / "manifest.json"
        payload = json.loads(manifest.read_text())
        payload["execution"]["point_wall_seconds"]["0"] = "not-a-number"
        manifest.write_text(json.dumps(payload))
        walls, notes = scavenge_point_walls(SPEC, out)
        assert walls == {}
        assert len(notes) == 1 and "not numeric" in notes[0]
