"""Fleet ledger: fleet.json payload, loading, and the status rendering."""

from pathlib import Path

import pytest

from repro.fleet.ledger import (
    FLEET_JSON,
    LEDGER_SCHEMA_VERSION,
    STATUS_PARTIAL,
    FleetLedger,
    load_ledger,
    render_ledger,
)
from repro.fleet.supervisor import Attempt, CRASH
from repro.fleet.transport import WorkerSpec
from repro.sweep.campaign import ShardSpec


class _Handle:
    def __init__(self):
        self.spec = WorkerSpec(name="w", argv=["x"], log_path=Path("/tmp/w.log"))

    @property
    def ident(self):
        return "pid:42"


def make_ledger() -> FleetLedger:
    return FleetLedger(
        campaign="demo",
        spec_hash="abc123",
        points_total=10,
        workers=2,
        transport="local",
        timeout=60.0,
        max_retries=3,
        backoff_base=0.5,
        backoff_cap=30.0,
    )


def make_attempt(**overrides) -> Attempt:
    attempt = Attempt(
        shard=ShardSpec(index=0, count=2, span=(0, 5)),
        number=1,
        artifact_dir=Path("/tmp/demo/shard-0"),
        handle=_Handle(),
    )
    attempt.returncode = -9
    attempt.exit_class = CRASH
    attempt.outcome = CRASH
    attempt.accepted = False
    attempt.wall_seconds = 1.25
    attempt.chaos = "kill"
    attempt.detail = "no artifacts produced"
    for key, value in overrides.items():
        setattr(attempt, key, value)
    return attempt


class TestLedgerPayload:
    def test_rounds_and_attempts_are_recorded(self):
        ledger = make_ledger()
        record = ledger.start_round(0, 0.0, list(range(10)))
        ledger.record_attempt(record, make_attempt(), points_delivered=0)
        ledger.finish(
            status=STATUS_PARTIAL,
            exit_code=4,
            wall_seconds=2.0,
            missing=[5, 6],
            artifacts={"heal_json": Path("/tmp/demo/heal.json")},
        )
        payload = ledger.payload()
        assert payload["schema_version"] == LEDGER_SCHEMA_VERSION
        assert payload["status"] == STATUS_PARTIAL and payload["exit_code"] == 4
        assert payload["missing"] == 2 and payload["missing_sample"] == [5, 6]
        (round_record,) = payload["rounds"]
        (entry,) = round_record["attempts"]
        assert entry["shard"] == "0/2@0:5" and entry["span"] == [0, 5]
        assert entry["outcome"] == CRASH and entry["chaos"] == "kill"
        assert entry["accepted"] is False and entry["returncode"] == -9
        assert entry["worker"] == "pid:42"

    def test_metrics_count_attempts_and_points(self):
        ledger = make_ledger()
        record = ledger.start_round(0, 0.0, list(range(10)))
        ledger.record_attempt(record, make_attempt(), points_delivered=0)
        ledger.record_attempt(
            record,
            make_attempt(outcome="completed", accepted=True, chaos=None, detail=""),
            points_delivered=5,
        )
        metrics = ledger.metrics.as_dict()
        counters = metrics["counter"]
        assert counters["fleet.rounds"] == 1
        assert counters["fleet.attempts{outcome=crash}"] == 1
        assert counters["fleet.attempts{outcome=completed}"] == 1
        assert counters["fleet.points{kind=delivered}"] == 5

    def test_write_and_load_round_trip(self, tmp_path):
        ledger = make_ledger()
        ledger.finish(status="complete", exit_code=0, wall_seconds=1.0, missing=[], artifacts={})
        path = ledger.write(tmp_path)
        assert path == tmp_path / FLEET_JSON
        payload = load_ledger(tmp_path)  # directory form
        assert payload == load_ledger(path)  # file form
        assert payload["campaign"] == "demo"


class TestLoadLedgerErrors:
    def test_missing_ledger_names_the_path(self, tmp_path):
        with pytest.raises(ValueError, match="no fleet ledger"):
            load_ledger(tmp_path)

    def test_invalid_json_names_the_path(self, tmp_path):
        (tmp_path / FLEET_JSON).write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_ledger(tmp_path)

    def test_non_object_payload_is_rejected(self, tmp_path):
        (tmp_path / FLEET_JSON).write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            load_ledger(tmp_path)


class TestRender:
    def test_render_mentions_every_attempt_and_note(self):
        ledger = make_ledger()
        record = ledger.start_round(1, 0.5, [3, 4])
        ledger.record_attempt(record, make_attempt(), points_delivered=0)
        ledger.note("scavenge skipped a damaged directory")
        ledger.finish(
            status=STATUS_PARTIAL, exit_code=4, wall_seconds=2.0, missing=[3], artifacts={}
        )
        text = render_ledger(ledger.payload())
        assert "fleet demo: partial (exit 4)" in text
        assert "round 1 (backoff 0.50s)" in text
        assert "shard 0/2@0:5 attempt 1: crash" in text
        assert "chaos=kill" in text
        assert "no artifacts produced" in text
        assert "note: scavenge skipped" in text
