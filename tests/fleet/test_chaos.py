"""Chaos/fault-injection suite: the fleet heals real failures.

Every test here spawns real ``sweep --shard`` subprocess workers on the
built-in ``smoke`` campaign (4 points — subprocesses cannot see campaigns
registered in this process) and injects real faults through the production
supervision path: an actual SIGKILL mid-shard, a worker replaced by a
sleeper (the timeout path), a results.json truncated after a clean exit.
The bar is always the same: the fleet heals, recomputes only what is
missing, and the merged artifacts are byte-identical to a serial
``--jobs 1`` run.
"""

import filecmp
import json
from pathlib import Path

import pytest

from repro.fleet import (
    EXIT_COMPLETE,
    EXIT_PARTIAL,
    FleetConfig,
    parse_chaos,
    run_fleet,
)
from repro.run import main
from repro.sweep.campaigns import campaign
from repro.sweep.merge import HEAL_JSON

SMOKE = campaign("smoke")

#: Fast-retry settings so heal rounds don't slow the suite down.
FAST = dict(backoff_base=0.05, backoff_cap=0.2, poll_interval=0.02)


def make_config(tmp_path: Path, **overrides) -> FleetConfig:
    options = dict(
        campaign="smoke", workers=2, out=tmp_path / "fleet", timeout=30.0, **FAST
    )
    options.update(overrides)
    return FleetConfig(**options)


@pytest.fixture(scope="module")
def serial_dir(tmp_path_factory) -> Path:
    """Reference artifacts from a plain serial run."""
    out = tmp_path_factory.mktemp("serial")
    assert main(["sweep", "smoke", "--jobs", "1", "--out", str(out)]) == 0
    return out / "smoke"


def assert_byte_identical(campaign_dir: Path, serial_dir: Path) -> None:
    for name in ("results.json", "results.csv"):
        assert filecmp.cmp(campaign_dir / name, serial_dir / name, shallow=False), (
            f"{name} differs from the serial reference"
        )


def round_attempts(result, round_index):
    payload = json.loads(result.ledger_path.read_text())
    return payload["rounds"][round_index]["attempts"]


class TestChaosHealing:
    def test_sigkill_mid_shard_heals_byte_identical(self, tmp_path, serial_dir):
        result = run_fleet(make_config(tmp_path, chaos=parse_chaos("kill:0")))
        assert result.status == "complete" and result.exit_code == EXIT_COMPLETE
        assert result.rounds == 2
        assert_byte_identical(result.campaign_dir, serial_dir)
        first = round_attempts(result, 0)
        assert first[0]["outcome"] == "crash" and first[0]["chaos"] == "kill"
        assert first[0]["returncode"] == -9 and not first[0]["accepted"]
        # Healing recomputed exactly the killed shard's points.
        survivors = sum(a["points_delivered"] for a in first if a["accepted"])
        healed = sum(a["points_delivered"] for a in round_attempts(result, 1))
        assert survivors + healed == SMOKE.n_points
        assert healed < SMOKE.n_points  # the surviving work was NOT redone

    def test_hang_times_out_and_heals(self, tmp_path, serial_dir):
        result = run_fleet(
            make_config(tmp_path, chaos=parse_chaos("hang:1"), timeout=3.0)
        )
        assert result.status == "complete" and result.exit_code == EXIT_COMPLETE
        first = round_attempts(result, 0)
        assert first[1]["outcome"] == "timeout" and first[1]["chaos"] == "hang"
        assert_byte_identical(result.campaign_dir, serial_dir)

    def test_truncated_results_classify_corrupt_and_heal(self, tmp_path, serial_dir):
        result = run_fleet(make_config(tmp_path, chaos=parse_chaos("truncate:0")))
        assert result.status == "complete" and result.exit_code == EXIT_COMPLETE
        first = round_attempts(result, 0)
        assert first[0]["outcome"] == "corrupt-artifacts"
        assert first[0]["returncode"] == 0  # exited cleanly; artifacts damned it
        assert "results.json" in first[0]["detail"]
        assert_byte_identical(result.campaign_dir, serial_dir)

    def test_every_retry_is_ledgered(self, tmp_path, serial_dir):
        # Two faults on the same shard span (ordinal 0 in round 0, then its
        # heal retry at ordinal 2): the ledger must show all three attempts.
        result = run_fleet(
            make_config(tmp_path, chaos=parse_chaos("kill:0,kill:2"), max_retries=3)
        )
        assert result.status == "complete"
        assert result.rounds == 3
        payload = json.loads(result.ledger_path.read_text())
        outcomes = [
            a["outcome"] for r in payload["rounds"] for a in r["attempts"]
        ]
        assert outcomes.count("crash") == 2
        counters = payload["metrics"]["counter"]
        assert counters["fleet.attempts{outcome=crash}"] == 2
        assert counters["fleet.rounds"] == 3
        # Backoff doubles round over round.
        backoffs = [r["backoff_seconds"] for r in payload["rounds"]]
        assert backoffs[0] == 0.0 and backoffs[1] > 0
        assert backoffs[2] == pytest.approx(min(backoffs[1] * 2, FAST["backoff_cap"]))
        assert_byte_identical(result.campaign_dir, serial_dir)


class TestGracefulDegradation:
    def test_budget_exhaustion_writes_partial_artifacts(self, tmp_path):
        # Worker 0 is killed and there are zero heal rounds: the fleet must
        # salvage worker 1's points, leave heal.json, and exit 4.
        result = run_fleet(
            make_config(tmp_path, chaos=parse_chaos("kill:0"), max_retries=0)
        )
        assert result.status == "partial" and result.exit_code == EXIT_PARTIAL
        assert result.missing  # the killed span
        partial_dir = result.campaign_dir / "partial"
        results = json.loads((partial_dir / "results.json").read_text())
        delivered = {record["index"] for record in results["points"]}
        assert delivered and delivered.isdisjoint(result.missing)
        assert len(delivered) + len(result.missing) == SMOKE.n_points
        manifest = json.loads((partial_dir / "manifest.json").read_text())
        assert sorted(manifest["partial"]["missing"]) == sorted(result.missing)
        # The heal plan is the hand-off for the next run.
        heal = json.loads((result.campaign_dir / HEAL_JSON).read_text())
        assert sorted(heal["missing"]) == sorted(result.missing)
        ledger = json.loads(result.ledger_path.read_text())
        assert ledger["status"] == "partial" and ledger["exit_code"] == EXIT_PARTIAL

    def test_total_loss_still_writes_ledger_and_heal(self, tmp_path):
        result = run_fleet(
            make_config(tmp_path, chaos=parse_chaos("kill:0,kill:1"), max_retries=0)
        )
        assert result.exit_code == EXIT_PARTIAL
        assert sorted(result.missing) == list(range(SMOKE.n_points))
        assert not (result.campaign_dir / "partial").exists()
        assert (result.campaign_dir / HEAL_JSON).exists()
        assert result.ledger_path.exists()


class TestFleetCli:
    def test_fleet_cli_complete_and_status(self, tmp_path, capsys, serial_dir):
        out = tmp_path / "cli"
        code = main(
            [
                "fleet",
                "smoke",
                "--workers",
                "2",
                "--out",
                str(out),
                "--backoff-base",
                "0.05",
                "--chaos",
                "kill:1",
            ]
        )
        assert code == EXIT_COMPLETE
        assert_byte_identical(out / "smoke", serial_dir)
        assert main(["fleet", "status", str(out / "smoke")]) == 0
        text = capsys.readouterr().out
        assert "fleet smoke: complete (exit 0)" in text
        assert "chaos=kill" in text

    def test_fleet_cli_partial_exit_code(self, tmp_path):
        code = main(
            [
                "fleet",
                "smoke",
                "--workers",
                "2",
                "--out",
                str(tmp_path / "cli"),
                "--max-retries",
                "0",
                "--backoff-base",
                "0.05",
                "--chaos",
                "kill:0",
            ]
        )
        assert code == EXIT_PARTIAL

    def test_usage_errors_exit_2(self, tmp_path, capsys):
        assert main(["fleet", "no-such-campaign", "--out", str(tmp_path)]) == 2
        assert main(["fleet", "smoke", "--chaos", "explode:0"]) == 2
        assert main(["fleet", "smoke", "--workers", "0"]) == 2
        assert main(["fleet", "smoke", "--transport", "carrier-pigeon"]) == 2
        assert main(["fleet", "status", str(tmp_path / "nowhere")]) == 2
        assert main(["fleet"]) == 2
        capsys.readouterr()
