"""Fleet--store integration: ingest-on-accept and cost calibration.

The fleet's posture toward the store is accelerant, never dependency:
``--store`` ingests every accepted shard and calibrates shard cuts from
stored timings, but a broken store degrades to ledger notes while the
campaign still completes byte-identically.
"""

import filecmp
import json
from pathlib import Path

import pytest

from repro.fleet import EXIT_COMPLETE, FleetConfig, run_fleet, store_point_walls
from repro.run import main
from repro.store import connect, store_info
from repro.sweep.campaigns import campaign

SMOKE = campaign("smoke")

FAST = dict(backoff_base=0.05, backoff_cap=0.2, poll_interval=0.02)


def make_config(tmp_path: Path, **overrides) -> FleetConfig:
    options = dict(
        campaign="smoke", workers=2, out=tmp_path / "fleet", timeout=30.0, **FAST
    )
    options.update(overrides)
    return FleetConfig(**options)


@pytest.fixture(scope="module")
def serial_dir(tmp_path_factory) -> Path:
    out = tmp_path_factory.mktemp("serial")
    assert main(["sweep", "smoke", "--jobs", "1", "--out", str(out)]) == 0
    return out / "smoke"


class TestIngestOnAccept:
    def test_accepted_shards_land_in_the_store(self, tmp_path, serial_dir):
        db_path = tmp_path / "store.sqlite"
        result = run_fleet(make_config(tmp_path, store=db_path))
        assert result.status == "complete" and result.exit_code == EXIT_COMPLETE
        for name in ("results.json", "results.csv"):
            assert filecmp.cmp(result.campaign_dir / name, serial_dir / name, shallow=False)

        conn = connect(db_path, create=False)
        try:
            info = store_info(conn)
            (entry,) = info["campaigns"]
            assert entry["name"] == "smoke"
            assert entry["points_stored"] == 4
            assert entry["complete"] is True
            # One ingest row per accepted shard.
            assert entry["ingests"] == 2
        finally:
            conn.close()

        ledger = json.loads(result.ledger_path.read_text())
        counters = ledger["metrics"]["counter"]
        assert counters.get("fleet.store_ingest{outcome=ok}") == 2
        assert counters.get("fleet.store_points{kind=inserted}") == 4

    def test_second_fleet_run_dedups_and_calibrates(self, tmp_path):
        db_path = tmp_path / "store.sqlite"
        first = run_fleet(make_config(tmp_path / "first", store=db_path))
        assert first.exit_code == EXIT_COMPLETE

        # The timings the next run will price its cuts from:
        walls, notes = store_point_walls(SMOKE, db_path)
        assert sorted(walls) == [0, 1, 2, 3]
        assert all(wall > 0 for wall in walls.values())
        assert notes == []

        second = run_fleet(make_config(tmp_path / "second", store=db_path))
        assert second.exit_code == EXIT_COMPLETE
        conn = connect(db_path, create=False)
        try:
            # Re-running the same campaign inserted nothing new.
            n = conn.execute("SELECT COUNT(*) AS n FROM points").fetchone()["n"]
            assert n == 4
        finally:
            conn.close()

    def test_unreadable_store_degrades_to_ledger_note(self, tmp_path, serial_dir):
        """A store failure must never fail the fleet: the campaign completes
        byte-identically and the failure is a ledger note + error counter."""
        db_path = tmp_path / "store.sqlite"
        db_path.write_text("this is not a sqlite database")
        result = run_fleet(make_config(tmp_path, store=db_path))
        assert result.status == "complete" and result.exit_code == EXIT_COMPLETE
        for name in ("results.json", "results.csv"):
            assert filecmp.cmp(result.campaign_dir / name, serial_dir / name, shallow=False)
        ledger = json.loads(result.ledger_path.read_text())
        notes = " ".join(ledger.get("notes", []))
        assert "store" in notes


class TestStorePointWalls:
    def test_missing_database_is_a_note_not_an_error(self, tmp_path):
        walls, notes = store_point_walls(SMOKE, tmp_path / "nope.sqlite")
        assert walls == {}
        assert notes and "nope.sqlite" in notes[0]

    def test_unknown_campaign_is_a_note(self, tmp_path):
        connect(tmp_path / "store.sqlite").close()
        walls, notes = store_point_walls(SMOKE, tmp_path / "store.sqlite")
        assert walls == {}
        assert notes and "smoke" in notes[0]
