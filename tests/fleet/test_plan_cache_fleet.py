"""Fleet-wide warm starts: shared plan-cache provisioning and aggregation.

The fleet's contract with the snapshot cache: every worker (and every
heal-round re-run) is pointed at ONE shared cache directory — explicit
``--plan-cache`` or the auto-provisioned ``<out>/<campaign>/plan-cache`` —
and workers run ``--profile`` so the ledger can fold each accepted shard's
cache + kernel counters into fleet-wide totals.  A warm fleet must produce
artifacts byte-identical to a cold one, and ``--no-plan-cache`` must put
everything back to always-cold.
"""

import filecmp
import json
from pathlib import Path

import pytest

from repro.fleet import EXIT_COMPLETE, FleetConfig, run_fleet
from repro.fleet.controller import _worker_argv
from repro.fleet.ledger import render_ledger
from repro.run import main
from repro.sweep.campaign import ShardSpec
from repro.sweep.campaigns import campaign

SMOKE = campaign("smoke")

FAST = dict(backoff_base=0.05, backoff_cap=0.2, poll_interval=0.02)


def make_config(tmp_path: Path, **overrides) -> FleetConfig:
    options = dict(
        campaign="smoke", workers=2, out=tmp_path / "fleet", timeout=30.0, **FAST
    )
    options.update(overrides)
    return FleetConfig(**options)


@pytest.fixture(scope="module")
def serial_dir(tmp_path_factory) -> Path:
    """Reference artifacts from a plain serial, cache-less run."""
    out = tmp_path_factory.mktemp("serial")
    assert main(["sweep", "smoke", "--jobs", "1", "--out", str(out)]) == 0
    return out / "smoke"


def assert_byte_identical(campaign_dir: Path, serial_dir: Path) -> None:
    for name in ("results.json", "results.csv"):
        assert filecmp.cmp(campaign_dir / name, serial_dir / name, shallow=False), (
            f"{name} differs from the serial reference"
        )


def ledger_payload(result) -> dict:
    return json.loads(result.ledger_path.read_text())


class TestWorkerArgv:
    SHARD = ShardSpec(index=0, count=2)

    def test_plan_cache_flag_implies_profile(self, tmp_path):
        config = make_config(tmp_path, plan_cache=tmp_path / "cache")
        argv = _worker_argv(config, self.SHARD)
        index = argv.index("--plan-cache")
        assert argv[index + 1] == str(tmp_path / "cache")
        # Kernel stats only reach the shard manifest under --profile.
        assert argv.count("--profile") == 1

    def test_trace_and_plan_cache_profile_only_once(self, tmp_path):
        config = make_config(tmp_path, plan_cache=tmp_path / "cache", trace=True)
        argv = _worker_argv(config, self.SHARD)
        assert argv.count("--profile") == 1
        assert "--trace-out" in argv

    def test_disabled_cache_drops_both_flags(self, tmp_path):
        config = make_config(
            tmp_path, plan_cache=tmp_path / "cache", plan_cache_enabled=False
        )
        argv = _worker_argv(config, self.SHARD)
        assert "--plan-cache" not in argv and "--profile" not in argv


class TestProvisioningAndAggregation:
    def test_cold_then_warm_fleet_shares_one_cache(self, tmp_path, serial_dir, capsys):
        cold = run_fleet(make_config(tmp_path, out=tmp_path / "cold"))
        assert cold.status == "complete" and cold.exit_code == EXIT_COMPLETE
        assert_byte_identical(cold.campaign_dir, serial_dir)
        # Auto-provisioned next to the campaign artifacts, and populated.
        cache_dir = cold.campaign_dir / "plan-cache"
        assert cache_dir.is_dir()
        snaps = sorted(cache_dir.rglob("*.snap"))
        assert snaps, "cold fleet workers published no snapshots"
        payload = ledger_payload(cold)
        assert payload["config"]["plan_cache"] == str(cache_dir)
        counters = payload["metrics"]["counter"]
        assert counters["cache.write"] == len(snaps)
        assert "kernel.plan_builds" in counters  # --profile reached the manifest

        # A second fleet pointed at the same cache serves every point warm,
        # still byte-identical.
        warm = run_fleet(
            make_config(tmp_path, out=tmp_path / "warm", plan_cache=cache_dir)
        )
        assert warm.status == "complete"
        assert_byte_identical(warm.campaign_dir, serial_dir)
        warm_counters = ledger_payload(warm)["metrics"]["counter"]
        assert warm_counters["cache.hit"] == SMOKE.n_points
        assert warm_counters["cache.miss"] == 0
        assert warm_counters.get("cache.error", 0) == 0

        # fleet status renders the aggregated totals.
        capsys.readouterr()
        assert main(["fleet", "status", str(warm.campaign_dir)]) == 0
        text = capsys.readouterr().out
        assert f"plan cache ({cache_dir})" in text
        assert f"{SMOKE.n_points} hits, 0 misses" in text

    def test_render_ledger_plan_cache_line(self, tmp_path):
        result = run_fleet(make_config(tmp_path))
        text = render_ledger(ledger_payload(result))
        assert "plan cache (" in text
        assert "writes" in text

    def test_no_plan_cache_reverts_to_cold_starts(self, tmp_path):
        result = run_fleet(make_config(tmp_path, plan_cache_enabled=False))
        assert result.status == "complete"
        assert not (result.campaign_dir / "plan-cache").exists()
        payload = ledger_payload(result)
        assert payload["config"]["plan_cache"] is None
        counters = payload["metrics"]["counter"]
        assert not any(key.startswith("cache.") for key in counters)
        assert "plan cache (" not in render_ledger(payload)
