"""Supervisor: bounded concurrency, deadlines, chaos kills, classification.

Driven entirely through fake in-memory worker handles — no subprocesses —
so every timing path is fast and deterministic.
"""

import time
from typing import Optional

import pytest

from repro.fleet.supervisor import (
    CRASH,
    EXITED,
    NONZERO_EXIT,
    TIMEOUT,
    Attempt,
    Supervisor,
)
from repro.fleet.transport import WorkerHandle, WorkerSpec
from repro.sweep.campaign import ShardSpec


class FakeHandle(WorkerHandle):
    """Scripted worker: exits with ``returncode`` after ``runtime`` seconds
    (never, if None) unless killed first (then dies with -9)."""

    def __init__(self, name: str, returncode: int = 0, runtime: float = 0.0):
        self.spec = WorkerSpec(name=name, argv=["fake"], log_path=None)
        self._returncode = returncode
        self._deadline = None if runtime is None else time.monotonic() + runtime
        self._killed_at: Optional[float] = None

    def poll(self) -> Optional[int]:
        if self._killed_at is not None:
            return -9
        if self._deadline is not None and time.monotonic() >= self._deadline:
            return self._returncode
        return None

    def kill(self) -> None:
        if self.poll() is None:
            self._killed_at = time.monotonic()

    @property
    def ident(self) -> str:
        return f"fake:{self.spec.name}"


def make_launch(
    name: str,
    returncode: int = 0,
    runtime: float = 0.0,
    timeout: Optional[float] = None,
    kill_after: Optional[float] = None,
    tracker: Optional[list] = None,
):
    def launch() -> Attempt:
        if tracker is not None:
            tracker.append(name)
        now = time.monotonic()
        attempt = Attempt(
            shard=ShardSpec(index=0, count=1),
            number=1,
            artifact_dir=f"/nonexistent/{name}",
            handle=FakeHandle(name, returncode=returncode, runtime=runtime),
            started=now,
            deadline=(now + timeout) if timeout is not None else None,
        )
        if kill_after is not None:
            attempt.kill_at = now + kill_after
        return attempt

    return launch


SUP = Supervisor(max_workers=4, poll_interval=0.01)


class TestClassification:
    def test_clean_exit(self):
        (attempt,) = SUP.run([make_launch("ok")])
        assert attempt.exit_class == EXITED
        assert attempt.returncode == 0
        assert attempt.wall_seconds >= 0

    def test_nonzero_exit(self):
        (attempt,) = SUP.run([make_launch("fail", returncode=3)])
        assert attempt.exit_class == NONZERO_EXIT
        assert attempt.returncode == 3

    def test_signal_death_is_a_crash(self):
        (attempt,) = SUP.run([make_launch("sig", returncode=-11)])
        assert attempt.exit_class == CRASH

    def test_deadline_kill_classifies_as_timeout_not_crash(self):
        # The worker never exits on its own; the supervisor must kill it at
        # the deadline, and the resulting signal death is a *timeout*.
        (attempt,) = SUP.run([make_launch("hung", runtime=None, timeout=0.05)])
        assert attempt.exit_class == TIMEOUT
        assert attempt.returncode == -9

    def test_chaos_kill_at_classifies_as_crash(self):
        # kill_at is fault injection: the death must look like a real crash.
        (attempt,) = SUP.run(
            [make_launch("chaos", runtime=None, timeout=5.0, kill_after=0.02)]
        )
        assert attempt.exit_class == CRASH

    def test_no_deadline_means_no_timeout(self):
        (attempt,) = SUP.run([make_launch("slowish", runtime=0.05)])
        assert attempt.exit_class == EXITED


class TestScheduling:
    def test_returns_attempts_in_launch_order(self):
        launches = [
            make_launch("a", runtime=0.05),
            make_launch("b", runtime=0.0),
            make_launch("c", runtime=0.02),
        ]
        attempts = SUP.run(launches)
        assert [a.handle.spec.name for a in attempts] == ["a", "b", "c"]

    def test_bounded_concurrency_queues_excess_launches(self):
        order = []
        supervisor = Supervisor(max_workers=2, poll_interval=0.01)
        launches = [
            make_launch(f"w{i}", runtime=0.03, tracker=order) for i in range(5)
        ]
        attempts = supervisor.run(launches)
        assert len(attempts) == 5
        assert all(a.exit_class == EXITED for a in attempts)
        # The queue drains strictly as slots free: only 2 launched up front.
        assert order == [f"w{i}" for i in range(5)]

    def test_on_exit_hook_fires_once_per_attempt(self):
        seen = []
        supervisor = Supervisor(
            max_workers=2, poll_interval=0.01, on_exit=lambda a: seen.append(a)
        )
        attempts = supervisor.run([make_launch(f"w{i}") for i in range(3)])
        assert sorted(id(a) for a in seen) == sorted(id(a) for a in attempts)

    def test_max_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="max_workers"):
            Supervisor(max_workers=0)
