"""Tests for the evaluation workloads (minimal linking + threshold application)."""

import pytest

from repro.workloads.minimal import run_minimal_ibex_linking, run_minimal_pels_linking
from repro.workloads.threshold import (
    ThresholdWorkloadConfig,
    run_ibex_threshold_workload,
    run_pels_threshold_workload,
)


class TestMinimalLinking:
    def test_pels_sequenced_latency_matches_paper(self):
        result = run_minimal_pels_linking(instant=False)
        assert result.sequenced_latency == 7

    def test_pels_instant_latency_matches_paper(self):
        result = run_minimal_pels_linking(instant=True)
        assert result.instant_latency == 2

    def test_ibex_interrupt_latency_matches_paper(self):
        result = run_minimal_ibex_linking()
        assert result.sequenced_latency == 16

    def test_pels_is_faster_than_ibex(self):
        pels = run_minimal_pels_linking(instant=False)
        ibex = run_minimal_ibex_linking()
        assert pels.sequenced_latency < ibex.sequenced_latency

    def test_instant_action_has_fixed_latency_and_no_bus_write(self):
        result = run_minimal_pels_linking(instant=True)
        assert result.write_landed_cycle is None
        assert result.instant_latency == 2

    def test_requires_soc_with_pels(self):
        from repro.soc.pulpissimo import SocConfig, build_soc

        soc = build_soc(SocConfig(with_pels=False))
        with pytest.raises(ValueError):
            run_minimal_pels_linking(soc=soc)


class TestThresholdWorkloadConfig:
    def test_expected_alerts_computation(self):
        config = ThresholdWorkloadConfig(n_events=2, words_per_transfer=4, threshold=50)
        # transfers end at samples[3] = 90 and samples[7] = 110, both above 50
        assert config.samples_above_threshold == 2

    def test_no_alerts_when_threshold_is_high(self):
        config = ThresholdWorkloadConfig(n_events=2, threshold=200)
        assert config.samples_above_threshold == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdWorkloadConfig(n_events=0)
        with pytest.raises(ValueError):
            ThresholdWorkloadConfig(words_per_transfer=0)
        with pytest.raises(ValueError):
            ThresholdWorkloadConfig(samples=())


class TestThresholdWorkload:
    def test_pels_services_all_events(self):
        config = ThresholdWorkloadConfig(n_events=3)
        result = run_pels_threshold_workload(config)
        assert result.events_serviced == 3
        assert result.mode == "pels"
        assert result.total_cycles > 0

    def test_ibex_services_all_events(self):
        config = ThresholdWorkloadConfig(n_events=3)
        result = run_ibex_threshold_workload(config)
        assert result.events_serviced == 3
        assert result.mode == "ibex"

    def test_both_modes_raise_the_same_alerts(self):
        """Functional equivalence: PELS and the interrupt baseline must agree."""
        config = ThresholdWorkloadConfig(n_events=4)
        pels = run_pels_threshold_workload(config)
        ibex = run_ibex_threshold_workload(config)
        assert pels.alerts_raised == ibex.alerts_raised == config.samples_above_threshold

    def test_no_alerts_below_threshold(self):
        config = ThresholdWorkloadConfig(n_events=2, threshold=250)
        result = run_pels_threshold_workload(config)
        assert result.alerts_raised == 0

    def test_instant_alert_variant(self):
        config = ThresholdWorkloadConfig(n_events=2, use_instant_alert=True)
        result = run_pels_threshold_workload(config)
        assert result.alerts_raised == config.samples_above_threshold

    def test_cpu_stays_asleep_in_pels_mode(self):
        config = ThresholdWorkloadConfig(n_events=2)
        result = run_pels_threshold_workload(config)
        assert result.soc.cpu.interrupts_serviced == 0
        assert result.soc.cpu.sleeping

    def test_cpu_wakes_once_per_event_in_ibex_mode(self):
        config = ThresholdWorkloadConfig(n_events=3)
        result = run_ibex_threshold_workload(config)
        assert result.soc.cpu.interrupts_serviced == 3

    def test_pels_event_latency_is_bounded(self):
        """Every Figure 3 sequence fits well inside the 500 ns / 27 MHz budget."""
        config = ThresholdWorkloadConfig(n_events=3)
        result = run_pels_threshold_workload(config)
        assert result.worst_latency <= 30
        assert result.mean_latency > 0

    def test_pels_linking_uses_fewer_cycles_than_ibex(self):
        config = ThresholdWorkloadConfig(n_events=3)
        pels = run_pels_threshold_workload(config)
        ibex = run_ibex_threshold_workload(config)
        assert pels.linking_cycles < ibex.linking_cycles

    def test_memory_activity_much_lower_with_pels(self):
        """The architectural driver of Figure 5: PELS avoids SRAM traffic entirely."""
        config = ThresholdWorkloadConfig(n_events=3)
        pels = run_pels_threshold_workload(config)
        ibex = run_ibex_threshold_workload(config)
        pels_fetches = pels.soc.activity.get("sram", "instruction_fetches")
        ibex_fetches = ibex.soc.activity.get("sram", "instruction_fetches")
        assert pels_fetches == 0
        assert ibex_fetches > 0

    def test_requires_pels_soc(self):
        from repro.soc.pulpissimo import SocConfig, build_soc

        soc = build_soc(SocConfig(with_pels=False))
        with pytest.raises(ValueError):
            run_pels_threshold_workload(soc=soc)
