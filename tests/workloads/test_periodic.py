"""Tests for the periodic multi-sensor monitoring workload."""

import pytest

from repro.soc.pulpissimo import SocConfig, build_soc
from repro.workloads.periodic import PeriodicMonitorConfig, run_periodic_monitor


class TestPeriodicMonitorConfig:
    def test_defaults_valid(self):
        config = PeriodicMonitorConfig()
        assert config.kick_watchdog

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicMonitorConfig(sample_period_cycles=5)
        with pytest.raises(ValueError):
            PeriodicMonitorConfig(n_samples=0)


class TestPeriodicMonitor:
    def test_loop_closes_without_cpu(self):
        result = run_periodic_monitor(PeriodicMonitorConfig(n_samples=6))
        assert result.loop_closed
        assert result.samples_taken >= 6
        assert result.duty_updates >= 6
        assert result.cpu_interrupts == 0

    def test_duty_follows_sensor_value(self):
        config = PeriodicMonitorConfig(n_samples=4, sensor_amplitude=96)
        result = run_periodic_monitor(config)
        assert result.final_duty == 96

    def test_duty_clamped_to_pwm_period(self):
        config = PeriodicMonitorConfig(n_samples=4, sensor_amplitude=200, pwm_period=128)
        result = run_periodic_monitor(config)
        assert result.final_duty <= 128

    def test_watchdog_kept_quiet_while_loop_runs(self):
        result = run_periodic_monitor(PeriodicMonitorConfig(n_samples=8))
        assert result.watchdog_kicks > 0
        assert result.watchdog_barks == 0

    def test_watchdog_barks_when_supervision_disabled(self):
        """Removing the kick link makes the supervision fire — the failure case it exists for."""
        config = PeriodicMonitorConfig(n_samples=8, kick_watchdog=False, watchdog_timeout_cycles=150)
        result = run_periodic_monitor(config)
        assert result.watchdog_barks > 0

    def test_requires_soc_with_pels(self):
        soc = build_soc(SocConfig(with_pels=False))
        with pytest.raises(ValueError):
            run_periodic_monitor(soc=soc)

    def test_all_three_links_service_events(self):
        result = run_periodic_monitor(PeriodicMonitorConfig(n_samples=5))
        serviced = [link.events_serviced for link in result.soc.pels.links[:3]]
        assert all(count > 0 for count in serviced)
