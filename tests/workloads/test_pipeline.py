"""Tests for the multi-link pipeline workload and the seeded fault configs."""

import pytest

from repro.workloads.longrun import seeded_watchdog_recovery_config
from repro.workloads.pipeline import MultiLinkPipelineConfig, run_multi_link_pipeline
from repro.workloads.registry import run_scenario


class TestMultiLinkPipeline:
    def test_pipeline_chains_all_three_links_autonomously(self):
        result = run_multi_link_pipeline(
            MultiLinkPipelineConfig(timer_period_cycles=150, horizon_cycles=5_000)
        )
        assert result.timer_overflows > 0
        assert result.adc_conversions > 0
        assert result.uart_bytes > 0
        # Each pipeline event blinks the GPIO pad blink_count + 1 times
        # (the loop body runs once before the loop counter is consulted).
        assert result.gpio_toggles >= result.uart_bytes
        assert result.cpu_interrupts == 0  # the CPU never wakes

    def test_clock_ratio_slows_the_service_chain(self):
        fast = run_multi_link_pipeline(
            MultiLinkPipelineConfig(timer_period_cycles=600, clock_ratio=1, horizon_cycles=30_000)
        )
        slow = run_multi_link_pipeline(
            MultiLinkPipelineConfig(timer_period_cycles=600, clock_ratio=8, horizon_cycles=30_000)
        )
        # The sampling pace is unchanged, but every conversion/byte takes 8x
        # as many base-clock cycles, so fewer pipeline events complete.
        assert fast.timer_overflows == slow.timer_overflows
        assert slow.uart_bytes <= fast.uart_bytes

    def test_dense_and_event_kernels_agree(self):
        event = run_scenario("multi-link-pipeline", 8_000, params={"clock_ratio": 2})
        dense = run_scenario("multi-link-pipeline", 8_000, dense=True, params={"clock_ratio": 2})
        assert event == dense

    def test_config_validation(self):
        with pytest.raises(ValueError, match="period"):
            MultiLinkPipelineConfig(timer_period_cycles=10)
        with pytest.raises(ValueError, match="clock_ratio"):
            MultiLinkPipelineConfig(clock_ratio=0)
        with pytest.raises(ValueError, match="horizon"):
            MultiLinkPipelineConfig(timer_period_cycles=600, horizon_cycles=800)


class TestSeededWatchdogRecovery:
    def test_same_seed_same_config(self):
        assert seeded_watchdog_recovery_config(7) == seeded_watchdog_recovery_config(7)

    def test_different_seeds_explore_different_faults(self):
        configs = {seeded_watchdog_recovery_config(seed) for seed in range(16)}
        assert len(configs) > 1

    def test_stall_always_fits_the_horizon(self):
        for seed in range(16):
            config = seeded_watchdog_recovery_config(seed, horizon_cycles=60_000)
            assert (config.stall_after_samples + 4) * config.sample_period_cycles <= 60_000

    def test_every_seed_is_valid_down_to_tiny_horizons(self):
        # A pool worker must never crash a campaign on config validation: any
        # horizon >= 500 cycles must derive a valid point from every seed.
        for horizon in (500, 1_000, 10_000, 11_000, 60_000):
            for seed in range(16):
                seeded_watchdog_recovery_config(seed, horizon_cycles=horizon)

    def test_seed_param_flows_through_the_registry(self):
        stats = run_scenario("watchdog-recovery", 200_000, params={"seed": 5})
        config = seeded_watchdog_recovery_config(5, horizon_cycles=200_000)
        assert stats["sample_period_cycles"] == config.sample_period_cycles
        assert stats["stall_after_samples"] == config.stall_after_samples
        assert stats["recovered"] is True

    def test_seed_and_explicit_params_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            run_scenario("watchdog-recovery", 200_000, params={"seed": 1, "stall_after_samples": 3})
