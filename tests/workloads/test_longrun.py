"""Tests for the long-horizon workloads, the scenario registry, and the runner."""

import pytest

from repro.run import main as run_main
from repro.workloads.longrun import (
    BurstStreamConfig,
    DutyCycledLoggingConfig,
    WatchdogRecoveryConfig,
    run_burst_stream,
    run_duty_cycled_logging,
    run_watchdog_recovery,
)
from repro.workloads.registry import (
    register_scenario,
    run_scenario,
    scenario,
    scenario_names,
    scenarios,
)


class TestDutyCycledLogging:
    def test_loop_runs_autonomously(self):
        config = DutyCycledLoggingConfig(
            sample_period_cycles=1_000, horizon_cycles=50_000, words_per_readout=4
        )
        result = run_duty_cycled_logging(config)
        expected_samples = config.horizon_cycles // config.sample_period_cycles
        assert result.samples_taken in (expected_samples - 1, expected_samples)
        assert result.readouts_completed == result.samples_taken
        assert result.words_logged == config.words_per_readout * result.readouts_completed
        assert result.duty_updates == result.samples_taken
        assert result.watchdog_kicks == result.readouts_completed
        assert result.watchdog_barks == 0
        assert result.cpu_interrupts == 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DutyCycledLoggingConfig(sample_period_cycles=10)
        with pytest.raises(ValueError):
            DutyCycledLoggingConfig(horizon_cycles=100)


class TestBurstStream:
    def test_bursts_stream_to_memory_without_loss(self):
        config = BurstStreamConfig(
            burst_period_cycles=5_000, horizon_cycles=60_000, words_per_burst=16
        )
        result = run_burst_stream(config)
        expected_bursts = config.horizon_cycles // config.burst_period_cycles
        assert result.bursts_completed in (expected_bursts - 1, expected_bursts)
        assert result.words_streamed == config.words_per_burst * result.bursts_completed
        assert result.rx_overflows == 0
        assert result.watchdog_kicks == result.bursts_completed
        assert result.watchdog_barks == 0
        assert result.cpu_interrupts == 0

    def test_burst_must_fit_in_period(self):
        with pytest.raises(ValueError):
            BurstStreamConfig(burst_period_cycles=100, words_per_burst=64, spi_cycles_per_word=4)


class TestWatchdogRecovery:
    def test_pels_restarts_the_stalled_loop(self):
        config = WatchdogRecoveryConfig(
            sample_period_cycles=1_000, stall_after_samples=4, horizon_cycles=60_000
        )
        result = run_watchdog_recovery(config)
        assert result.samples_before_stall == config.stall_after_samples
        assert result.watchdog_barks == 1
        assert result.watchdog_bites == 0
        assert result.recovered
        assert result.samples_total > result.samples_before_stall
        assert result.cpu_interrupts == 0

    def test_without_recovery_link_the_watchdog_bites(self):
        # Differential control: the same stall with the grace period too
        # short for the restarted loop to kick in time ends in a bite.
        config = WatchdogRecoveryConfig(
            sample_period_cycles=1_000, stall_after_samples=4, horizon_cycles=60_000
        )
        result = run_watchdog_recovery(config)
        soc = result.soc
        assert soc is not None
        # Sanity: after the horizon the loop is still healthy and kicking.
        assert soc.timer.enabled
        assert soc.wdt.enabled


class TestRegistry:
    def test_expected_scenarios_are_registered(self):
        names = scenario_names()
        for expected in (
            "always-on-monitor",
            "burst-spi-dma",
            "duty-cycled-logging",
            "threshold-pels",
            "watchdog-recovery",
        ):
            assert expected in names

    def test_specs_carry_descriptions_and_horizons(self):
        for spec in scenarios():
            assert spec.description
            assert spec.default_horizon_cycles >= 1

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("always-on-monitor", "dup", 100)(lambda horizon, dense: {})

    def test_run_scenario_returns_stats_dict(self):
        stats = run_scenario("watchdog-recovery", horizon_cycles=30_000)
        assert stats["recovered"] is True
        assert stats["horizon_cycles"] == 30_000

    def test_dense_and_event_agree(self):
        dense = run_scenario("always-on-monitor", horizon_cycles=20_000, dense=True)
        event = run_scenario("always-on-monitor", horizon_cycles=20_000, dense=False)
        assert dense == event


class TestRunnerCli:
    def test_list(self, capsys):
        assert run_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "duty-cycled-logging" in out
        assert "watchdog-recovery" in out

    def test_missing_scenario_is_usage_error(self):
        assert run_main([]) == 2

    def test_unknown_scenario_is_an_error(self, capsys):
        assert run_main(["no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_single_run_prints_stats(self, capsys):
        assert run_main(["watchdog-recovery", "--horizon-cycles", "30000"]) == 0
        out = capsys.readouterr().out
        assert "30000 cycles simulated" in out
        assert "recovered" in out
        assert "wall-clock" in out

    def test_horizon_ms_conversion(self, capsys):
        # 0.5 ms at 40 MHz = 20000 cycles.
        code = run_main(
            ["watchdog-recovery", "--horizon-ms", "0.5", "--frequency-mhz", "40", "--dense"]
        )
        assert code == 0
        assert "20000 cycles simulated" in capsys.readouterr().out

    def test_compare_mode_reports_speedup_and_agreement(self, capsys):
        assert run_main(["always-on-monitor", "--horizon-cycles", "20000", "--compare"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "WARNING" not in out
