"""Smoke tests for the top-level public API surface.

A downstream user should be able to drive the whole library from the
``repro`` namespace alone; these tests pin the names re-exported there and
exercise the documented quickstart flow end to end.
"""

import repro


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__ == "0.1.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_core_types_reexported(self):
        assert repro.Opcode.SET.is_read_modify_write
        assert repro.JumpCondition.GT.evaluate(51, 50)
        config = repro.PelsConfig(n_links=2, scm_lines=4)
        assert config.link_config(1).scm_lines == 4

    def test_readme_quickstart_flow(self):
        soc = repro.build_soc(repro.SocConfig())
        region = soc.address_map.peripheral_base("udma")
        gpio_out = soc.address_map.peripheral_base("gpio") + soc.gpio.regs.offset_of("OUT") - region
        assembler = repro.Assembler()
        assembler.define_register("GPIO_OUT", gpio_out)
        program = assembler.assemble("action 0 0x1\nset GPIO_OUT 0x2\nend")
        soc.pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.gpio, port="set_pad0")
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        soc.pels.program_link(0, program, trigger_mask=timer_bit, base_address=region)
        soc.timer.regs.reg("COMPARE").hw_write(50)
        soc.timer.start()
        soc.run(500)
        assert soc.gpio.output_value == 0x3
        assert soc.cpu.interrupts_serviced == 0

    def test_analysis_entry_points(self):
        assert "PELS" in repro.format_table1()
        sweep = repro.figure6a_sweep(links=(1,), lines=(4,))
        assert len(sweep) == 1
        breakdown = repro.figure6b_breakdown()
        assert "logic_fractions" in breakdown

    def test_workload_configs_constructible(self):
        config = repro.ThresholdWorkloadConfig(n_events=2)
        assert config.samples_above_threshold >= 0
        model = repro.PowerModel()
        assert model.estimate({}, 10, 55e6).total_uw > 0
        area = repro.PelsAreaModel().estimate(repro.PelsConfig(n_links=1, scm_lines=4))
        assert area.total_kge > 0
