"""Tests for the firmware-style PELS driver (configuration over the bus only)."""

import pytest

from repro.core.assembler import Assembler
from repro.core.trigger import TriggerCondition
from repro.soc.pulpissimo import SocConfig, build_soc
from repro.software.driver import PelsDriver


def make_driver():
    soc = build_soc(SocConfig())
    return soc, PelsDriver(soc)


class TestPelsDriver:
    def test_probe_reads_identification(self):
        soc, driver = make_driver()
        info = driver.probe()
        assert info == {"n_links": 4, "scm_lines": 6, "enabled": True}
        assert driver.transfers_issued == 3

    def test_requires_pels(self):
        soc = build_soc(SocConfig(with_pels=False))
        with pytest.raises(ValueError):
            PelsDriver(soc)

    def test_global_enable_roundtrip(self):
        soc, driver = make_driver()
        driver.set_global_enable(False)
        assert not soc.pels.enabled
        driver.set_global_enable(True)
        assert soc.pels.enabled

    def test_upload_program_lands_in_scm(self):
        soc, driver = make_driver()
        assembler = Assembler()
        program = assembler.assemble("set 0x401 0x1\nend")
        driver.upload_program(0, program)
        stored = soc.pels.link(0).scm.dump()
        assert stored[0] == program[0]
        assert all(command.opcode.name == "END" for command in stored[1:])

    def test_upload_program_too_large_rejected(self):
        soc, driver = make_driver()
        program = [  # 7 commands > 6 SCM lines
            *([Assembler().assemble("action 0 1\nend")[0]] * 7)
        ]
        with pytest.raises(ValueError):
            driver.upload_program(0, program)

    def test_configure_trigger_and_enable(self):
        soc, driver = make_driver()
        driver.configure_trigger(1, mask=0b110, condition=TriggerCondition.ALL_SELECTED_ACTIVE, base_address=0x1A10_1000)
        driver.enable_link(1)
        link = soc.pels.link(1)
        assert link.trigger.mask == 0b110
        assert link.trigger.condition is TriggerCondition.ALL_SELECTED_ACTIVE
        assert link.execution.base_address == 0x1A10_1000
        assert link.trigger.enabled

    def test_link_index_bounds(self):
        _, driver = make_driver()
        with pytest.raises(IndexError):
            driver.enable_link(9)

    def test_end_to_end_linking_configured_only_through_the_driver(self):
        """Firmware-only bring-up: the timer event ends up setting the GPIO pad."""
        soc, driver = make_driver()
        assembler = Assembler()
        gpio_out_word = (
            soc.address_map.peripheral_base("gpio")
            + soc.gpio.regs.offset_of("OUT")
            - soc.address_map.peripheral_base("udma")
        ) // 4
        program = assembler.assemble(f"set {gpio_out_word} 0x1\nend")
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        driver.setup_link(
            0,
            program,
            trigger_mask=timer_bit,
            base_address=soc.address_map.peripheral_base("udma"),
        )
        soc.timer.regs.reg("COMPARE").hw_write(5)
        soc.timer.regs.reg("CTRL").hw_write(0x3)
        soc.run(60)
        assert soc.gpio.pad(0)
        status = driver.link_status(0)
        assert status["enabled"] and not status["busy"]

    def test_status_and_capture_readback(self):
        soc, driver = make_driver()
        status = driver.link_status(2)
        assert status == {"fifo_level": 0, "enabled": False, "condition_and": False, "busy": False}
        soc.pels.link(2).execution.capture_register = 0x77
        assert driver.read_capture(2) == 0x77

    def test_every_access_costs_simulated_cycles(self):
        """Driver accesses traverse the bridge + APB, so simulated time advances."""
        soc, driver = make_driver()
        before = soc.simulator.current_cycle
        driver.probe()
        assert soc.simulator.current_cycle > before
