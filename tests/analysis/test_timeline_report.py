"""Tests for the timeline rendering and the one-shot experiment report."""

import pytest

from repro.analysis.report import generate_report, write_report
from repro.analysis.timeline import LinkTimeline, bus_transfer_timeline, merge_timelines
from repro.core.assembler import assemble
from repro.soc.pulpissimo import SocConfig, build_soc


def run_linked_soc(n_overflows=3):
    soc = build_soc(SocConfig())
    base = soc.address_map.peripheral_base("udma")
    gpio_toggle = (soc.address_map.peripheral_base("gpio") + soc.gpio.regs.offset_of("TOGGLE") - base) // 4
    soc.pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.gpio, port="set_pad0")
    program = assemble(f"action 0 0x1\nwrite {gpio_toggle} 0x2\nend")
    timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    link = soc.pels.program_link(0, program, trigger_mask=timer_bit, base_address=base)
    soc.timer.regs.reg("COMPARE").hw_write(20)
    soc.timer.start()
    soc.run(20 * n_overflows + 20)
    return soc, link


class TestLinkTimeline:
    def test_entries_cover_each_event(self):
        soc, link = run_linked_soc(n_overflows=2)
        timeline = LinkTimeline(link)
        entries = timeline.entries()
        assert len(entries) == 4 * len(link.records)  # trigger, action, write-back, end
        assert entries == sorted(entries, key=lambda entry: entry.cycle)

    def test_render_contains_latencies(self):
        soc, link = run_linked_soc(n_overflows=1)
        text = LinkTimeline(link).render()
        assert "trigger" in text
        assert "instant action" in text
        assert "sequenced write-back" in text
        assert "latency 2 cycles" in text

    def test_empty_timeline(self):
        soc = build_soc(SocConfig())
        text = LinkTimeline(soc.pels.link(1)).render()
        assert "no linking events" in text

    def test_latency_histogram(self):
        soc, link = run_linked_soc(n_overflows=3)
        histogram = LinkTimeline(link).latency_histogram()
        assert sum(histogram.values()) == len(link.records)
        assert all(latency > 0 for latency in histogram)

    def test_bus_transfer_timeline(self):
        soc, link = run_linked_soc(n_overflows=1)
        text = bus_transfer_timeline(soc.simulator.traces)
        assert "apb transfers" in text
        assert "pels_link0" in text

    def test_bus_transfer_timeline_without_traffic(self):
        soc = build_soc(SocConfig())
        assert "no transfers" in bus_transfer_timeline(soc.simulator.traces)

    def test_merge_timelines(self):
        soc, link = run_linked_soc(n_overflows=1)
        merged = merge_timelines([LinkTimeline(link), LinkTimeline(soc.pels.link(1))])
        assert "pels_link0" in merged
        empty = merge_timelines([LinkTimeline(soc.pels.link(2))])
        assert "no linking events" in empty


class TestExperimentReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report(n_events=3, idle_cycles=500)

    def test_headline_values_match_paper(self, report):
        headline = report.headline()
        assert headline["sequenced_cycles"] == 7
        assert headline["instant_cycles"] == 2
        assert headline["ibex_cycles"] == 16
        assert headline["linking_iso_latency_ratio"] == pytest.approx(2.5, rel=0.2)
        assert headline["pels_minimal_kge"] == pytest.approx(7.0, abs=0.3)
        assert headline["pels_soc_logic_fraction"] == pytest.approx(0.095, abs=0.01)

    def test_markdown_contains_all_sections(self, report):
        markdown = report.markdown
        for section in (
            "Headline comparison",
            "Latency comparison",
            "Figure 5",
            "Figure 6a",
            "Figure 6b",
            "Table I",
        ):
            assert section in markdown
        assert "| ok |" in markdown

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        report = write_report(str(path), n_events=2, idle_cycles=300)
        assert path.exists()
        assert "PELS reproduction" in path.read_text()
        assert report.markdown
