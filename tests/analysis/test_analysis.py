"""Tests for the Table I feature model, table rendering, and latency analysis."""

import pytest

from repro.analysis.latency import (
    PAPER_IBEX_CYCLES,
    PAPER_INSTANT_CYCLES,
    PAPER_SEQUENCED_CYCLES,
    LatencyComparison,
    measure_latency_comparison,
)
from repro.analysis.sota import (
    PELS_ENTRY,
    SOTA_SYSTEMS,
    all_systems,
    open_source_systems,
    systems_with_sequenced_actions,
)
from repro.analysis.tables import format_table1, table1_rows


class TestSotaFeatureModel:
    def test_table_has_eight_rows(self):
        """Table I lists seven prior systems plus PELS."""
        assert len(all_systems()) == 8
        assert len(SOTA_SYSTEMS) == 7

    def test_pels_is_the_only_open_source_system(self):
        assert open_source_systems() == [PELS_ENTRY]

    def test_pels_is_the_only_system_with_both_action_types(self):
        both = [system for system in all_systems() if system.supports_both_action_types]
        assert both == [PELS_ENTRY]

    def test_only_microcode_systems_offer_sequenced_actions(self):
        sequenced = systems_with_sequenced_actions()
        assert {system.name for system in sequenced} == {"XGATE", "PELS"}
        assert all(system.event_processing == "microcode" for system in sequenced)

    def test_channel_routing_dominates_industry_solutions(self):
        channel = [s for s in SOTA_SYSTEMS if s.routing_topology == "channel"]
        assert len(channel) == 5

    def test_specific_vendor_entries(self):
        by_name = {system.name: system for system in all_systems()}
        assert by_name["PIM"].routing_topology == "matrix"
        assert by_name["XGATE"].routing_topology is None
        assert not by_name["XGATE"].instant_actions
        assert by_name["PPI"].vendor == "Nordic"
        assert by_name["AESRN"].category == "academia"


class TestTable1Rendering:
    def test_rows_cover_all_systems(self):
        rows = table1_rows()
        assert len(rows) == 8
        assert rows[-1]["system"] == "This work (PELS)"

    def test_row_flags_rendered_as_yes_no(self):
        rows = table1_rows()
        pels_row = rows[-1]
        assert pels_row["instant_actions"] == "yes"
        assert pels_row["sequenced_actions"] == "yes"
        assert pels_row["open_source"] == "yes"
        xgate_row = next(row for row in rows if "XGATE" in row["system"])
        assert xgate_row["instant_actions"] == "no"

    def test_formatted_table_contains_categories_and_columns(self):
        text = format_table1()
        assert "[industry]" in text
        assert "[academia]" in text
        assert "Open source" in text
        assert "Silicon Labs PRS" in text


class TestLatencyComparison:
    @pytest.fixture(scope="class")
    def comparison(self):
        return measure_latency_comparison()

    def test_paper_reference_constants(self):
        assert (PAPER_SEQUENCED_CYCLES, PAPER_INSTANT_CYCLES, PAPER_IBEX_CYCLES) == (7, 2, 16)

    def test_measured_latencies_match_paper(self, comparison):
        assert comparison.pels_sequenced_cycles == PAPER_SEQUENCED_CYCLES
        assert comparison.pels_instant_cycles == PAPER_INSTANT_CYCLES
        assert comparison.ibex_interrupt_cycles == PAPER_IBEX_CYCLES

    def test_speedups(self, comparison):
        assert comparison.speedup_vs_ibex() == pytest.approx(16 / 7)
        assert comparison.speedup_vs_ibex(instant=True) == pytest.approx(8.0)

    def test_as_dict_and_format(self, comparison):
        data = comparison.as_dict()
        assert data["pels_sequenced"] == 7
        text = comparison.format()
        assert "Ibex interrupt" in text
        assert "16" in text

    def test_speedup_requires_measurements(self):
        empty = LatencyComparison(None, None, None)
        with pytest.raises(ValueError):
            empty.speedup_vs_ibex()
