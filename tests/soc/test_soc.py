"""Tests for the SRAM model, the address map, and the assembled SoC."""

import pytest

from repro.core.config import PelsConfig
from repro.soc.address_map import DEFAULT_ADDRESS_MAP, AddressMap
from repro.soc.memory import SramBank
from repro.soc.pulpissimo import PulpissimoSoc, SocConfig, build_soc


class TestSramBank:
    def test_read_write_roundtrip(self):
        sram = SramBank(size_bytes=1024)
        sram.bus_write(0x10, 0xCAFE)
        assert sram.bus_read(0x10) == 0xCAFE
        assert sram.reads == 1 and sram.writes == 1

    def test_uninitialised_reads_zero(self):
        sram = SramBank(size_bytes=1024)
        assert sram.bus_read(0x20) == 0

    def test_bounds_and_alignment_checks(self):
        sram = SramBank(size_bytes=64)
        with pytest.raises(IndexError):
            sram.bus_read(64)
        with pytest.raises(ValueError):
            sram.bus_read(2)

    def test_bulk_load_and_peek(self):
        sram = SramBank(size_bytes=64)
        sram.load_words(0x0, [1, 2, 3])
        assert sram.peek(0x8) == 3
        assert sram.reads == 0  # peek does not count

    def test_instruction_fetch_accounting(self):
        sram = SramBank(size_bytes=64)
        sram.record_fetch()
        sram.record_fetch()
        assert sram.instruction_fetches == 2
        assert sram.total_accesses == 2

    def test_default_size_matches_paper(self):
        assert SramBank().size_bytes == 192 * 1024

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            SramBank(size_bytes=0)
        with pytest.raises(ValueError):
            SramBank(size_bytes=6)

    def test_reset(self):
        sram = SramBank(size_bytes=64)
        sram.bus_write(0x0, 1)
        sram.reset()
        assert sram.bus_read(0x0) == 0
        assert sram.writes == 0


class TestAddressMap:
    def test_default_peripheral_bases_are_disjoint_windows(self):
        address_map = DEFAULT_ADDRESS_MAP
        bases = sorted(address_map.peripheral_bases.values())
        for first, second in zip(bases, bases[1:]):
            assert second - first >= address_map.peripheral_window

    def test_register_address(self):
        address_map = DEFAULT_ADDRESS_MAP
        assert address_map.register_address("gpio", 0x4) == 0x1A10_1004

    def test_register_address_bounds(self):
        with pytest.raises(ValueError):
            DEFAULT_ADDRESS_MAP.register_address("gpio", 0x2000)

    def test_unknown_peripheral(self):
        with pytest.raises(KeyError):
            DEFAULT_ADDRESS_MAP.peripheral_base("missing")

    def test_with_peripheral_returns_extended_copy(self):
        extended = DEFAULT_ADDRESS_MAP.with_peripheral("accel", 0x1A10_D000)
        assert extended.peripheral_base("accel") == 0x1A10_D000
        with pytest.raises(KeyError):
            DEFAULT_ADDRESS_MAP.peripheral_base("accel")

    def test_sram_region_matches_paper_configuration(self):
        assert DEFAULT_ADDRESS_MAP.sram_size == 192 * 1024


class TestBuildSoc:
    def test_builds_with_pels_by_default(self):
        soc = build_soc()
        assert isinstance(soc, PulpissimoSoc)
        assert soc.pels is not None
        assert soc.pels.config.is_paper_soc_default

    def test_builds_without_pels(self):
        soc = build_soc(SocConfig(with_pels=False))
        assert soc.pels is None

    def test_custom_pels_configuration(self):
        soc = build_soc(SocConfig(pels_config=PelsConfig(n_links=1, scm_lines=4)))
        assert len(soc.pels.links) == 1

    def test_peripherals_reachable_over_the_bus(self):
        from repro.bus.transaction import write_request

        soc = build_soc()
        address = soc.register_address("gpio", "OUT")
        soc.peripheral_bus.submit(write_request("test", address, 0x3))
        soc.run(4)
        assert soc.gpio.output_value == 0x3

    def test_pels_configuration_window_reachable(self):
        from repro.bus.transaction import read_request

        soc = build_soc()
        address = soc.address_map.peripheral_base("pels") + 0x004  # NUM_LINKS
        request = soc.peripheral_bus.submit(read_request("test", address))
        soc.run(4)
        assert request.rdata == 4

    def test_event_fabric_populated(self):
        soc = build_soc()
        names = {line.name for line in soc.fabric.lines}
        assert "spi.eot" in names
        assert "timer.overflow" in names
        assert "adc.eoc" in names

    def test_run_until_and_register_address_helpers(self):
        soc = build_soc()
        soc.timer.regs.reg("COMPARE").hw_write(3)
        # The condition below polls a counter rather than consuming the
        # overflow event line, so declare the interest explicitly — the
        # consumer-aware fabric otherwise lets the unobserved timer free-run
        # through whole overflow periods (see docs/simulator.md).
        soc.fabric.observe(soc.timer.event_line_name("overflow"))
        soc.timer.start()
        elapsed = soc.run_until(lambda: soc.timer.overflow_count > 0, max_cycles=100)
        assert elapsed <= 4
        assert soc.register_address("spi", "RXDATA") == 0x1A10_2008

    def test_unobserved_timer_counter_is_only_seen_at_span_end(self):
        # The flip side of the consumer-aware fabric: with nothing consuming
        # ``timer.overflow``, run_until conditions on raw counters are only
        # re-evaluated at span boundaries — state stays cycle-exact, timing
        # of *detection* does not.  This pins the documented semantics.
        soc = build_soc()
        soc.timer.regs.reg("COMPARE").hw_write(3)
        soc.timer.start()
        elapsed = soc.run_until(lambda: soc.timer.overflow_count > 0, max_cycles=100)
        assert elapsed == 100
        assert soc.timer.overflow_count > 0  # replay was still exact

    def test_idle_soc_keeps_event_pulses_single_cycle(self):
        soc = build_soc(SocConfig(with_pels=False))
        soc.timer.regs.reg("COMPARE").hw_write(2)
        soc.timer.start()
        soc.run(3)
        assert soc.fabric.active_mask() == 0  # pulses cleared every cycle

    def test_reset_restores_clean_state(self):
        soc = build_soc()
        soc.timer.start()
        soc.run(50)
        soc.reset()
        assert soc.simulator.current_cycle == 0
        assert soc.timer.overflow_count == 0

    def test_activity_property_exposes_counters(self):
        soc = build_soc()
        soc.run(10)
        assert soc.activity.get("pels", "idle_cycles") == 10
        assert soc.frequency_hz == 55e6
