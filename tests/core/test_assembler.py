"""Tests for the PELS microcode assembler."""

import pytest

from repro.core.assembler import Assembler, AssemblyError, assemble
from repro.core.isa import JumpCondition, Opcode


FIGURE3_SOURCE = """
; Figure 3 of the paper: threshold-triggered operation after sensor readout
CMD0: clear   AFLAG  MASK
CMD1: capture ADATA  0x0FF
CMD2: jump-if CMD4 GT THRES
CMD3: action  GROUP  MASK
CMD4: end
"""


def figure3_assembler():
    assembler = Assembler()
    assembler.define_register("AFLAG", 0x14)
    assembler.define_register("ADATA", 0x08)
    assembler.define_symbol("MASK", 0x1)
    assembler.define_symbol("THRES", 50)
    assembler.define_symbol("GROUP", 0)
    return assembler


class TestAssembler:
    def test_figure3_program_assembles(self):
        program = figure3_assembler().assemble(FIGURE3_SOURCE)
        assert len(program) == 5
        assert [command.opcode for command in program] == [
            Opcode.CLEAR,
            Opcode.CAPTURE,
            Opcode.JUMP_IF,
            Opcode.ACTION,
            Opcode.END,
        ]

    def test_figure3_jump_targets_resolve_to_labels(self):
        program = figure3_assembler().assemble(FIGURE3_SOURCE)
        jump = program[2]
        assert jump.jump_target == 4
        assert jump.jump_condition is JumpCondition.GT
        assert jump.data == 50

    def test_register_symbols_are_word_offsets(self):
        program = figure3_assembler().assemble(FIGURE3_SOURCE)
        assert program[0].byte_offset == 0x14
        assert program[1].byte_offset == 0x08

    def test_labels_recorded(self):
        program = figure3_assembler().assemble(FIGURE3_SOURCE)
        assert program.labels["CMD0"] == 0
        assert program.labels["CMD4"] == 4

    def test_numeric_literals(self):
        program = assemble("write 0x10 0b101\nend")
        assert program[0].word_offset == 0x10
        assert program[0].data == 5

    def test_comments_and_blank_lines_ignored(self):
        program = assemble("# comment\n\n  ; another\nend")
        assert len(program) == 1

    def test_action_toggle_modifier(self):
        program = assemble("action 2 0xF toggle\nend")
        assert program[0].action_is_toggle

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("frobnicate 1 2")

    def test_unknown_symbol_rejected(self):
        with pytest.raises(AssemblyError) as err:
            assemble("write UNKNOWN 1")
        assert "UNKNOWN" in str(err.value)

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("write 1")
        with pytest.raises(AssemblyError):
            assemble("end 1")
        with pytest.raises(AssemblyError):
            assemble("jump-if 0 GT")

    def test_bad_jump_condition_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("jump-if 0 FOO 1\nend")

    def test_bad_action_modifier_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("action 0 1 pulse")

    def test_label_without_command_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("LONELY:")

    def test_empty_program_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("; only a comment")

    def test_error_reports_line_number(self):
        with pytest.raises(AssemblyError) as err:
            assemble("end\nbogus 1 2")
        assert err.value.line_number == 2

    def test_unaligned_register_rejected(self):
        assembler = Assembler()
        with pytest.raises(AssemblyError):
            assembler.define_register("X", 0x3)

    def test_invalid_symbol_names_rejected(self):
        assembler = Assembler()
        with pytest.raises(AssemblyError):
            assembler.define_symbol("bad name", 1)
        with pytest.raises(AssemblyError):
            assembler.define_symbol("NEG", -1)

    def test_symbols_constructor_and_copy(self):
        assembler = Assembler({"FOO": 3})
        assert assembler.symbols() == {"FOO": 3}

    def test_wait_and_loop(self):
        program = assemble("BODY: toggle 4 0x1\nloop BODY 3\nwait 100\nend")
        assert program[1].opcode is Opcode.LOOP
        assert program[1].jump_target == 0
        assert program[2].data == 100

    def test_listing_contains_labels_and_mnemonics(self):
        program = figure3_assembler().assemble(FIGURE3_SOURCE)
        listing = program.listing()
        assert "CMD0" in listing
        assert "capture" in listing

    def test_encoded_matches_length(self):
        program = figure3_assembler().assemble(FIGURE3_SOURCE)
        assert len(program.encoded()) == 5

    def test_case_insensitive_symbols_and_mnemonics(self):
        assembler = Assembler({"REG": 2})
        program = assembler.assemble("SET reg 0x1\nEND")
        assert program[0].opcode is Opcode.SET
        assert program[0].word_offset == 2
