"""Tests for the SCM instruction memory and the trigger FIFO."""

import pytest

from repro.core.fifo import TriggerFifo
from repro.core.isa import Command, Opcode, encode_command
from repro.core.scm import ScmMemory, scm_bits


class TestScmMemory:
    def test_store_and_fetch(self):
        scm = ScmMemory(4)
        scm.store(0, Command.write(1, 0xAB))
        fetched = scm.fetch(0)
        assert fetched.opcode is Opcode.WRITE
        assert fetched.data == 0xAB

    def test_access_counters(self):
        scm = ScmMemory(4)
        scm.store(0, Command.end())
        scm.fetch(0)
        scm.fetch(0)
        assert scm.write_count == 1
        assert scm.read_count == 2

    def test_load_program_pads_with_end(self):
        scm = ScmMemory(4)
        scm.load_program([Command.write(1, 2)])
        contents = scm.dump()
        assert contents[0].opcode is Opcode.WRITE
        assert all(command.opcode is Opcode.END for command in contents[1:])

    def test_program_too_large_rejected(self):
        """A link's flexibility is bounded by its SCM size (the Figure 6a trade-off)."""
        scm = ScmMemory(4)
        program = [Command.write(0, 0)] * 5
        with pytest.raises(ValueError):
            scm.load_program(program)

    def test_out_of_range_access_rejected(self):
        scm = ScmMemory(4)
        with pytest.raises(IndexError):
            scm.read_line(4)
        with pytest.raises(IndexError):
            scm.write_line(-1, 0)

    def test_oversized_encoded_value_rejected(self):
        scm = ScmMemory(2)
        with pytest.raises(ValueError):
            scm.write_line(0, 1 << 48)

    def test_clear(self):
        scm = ScmMemory(2)
        scm.store(0, Command.write(1, 2))
        scm.clear()
        assert scm.read_count == 0
        assert scm.dump()[0].opcode is Opcode.END

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ScmMemory(0)

    def test_paper_scm_sizes(self):
        """The paper sweeps 4, 6, and 8 command lines per link."""
        for lines in (4, 6, 8):
            scm = ScmMemory(lines)
            assert len(scm) == lines

    def test_scm_bits_helper(self):
        assert scm_bits(4) == 4 * 48 + 32
        assert scm_bits(4, optional_capture_register=False) == 192
        with pytest.raises(ValueError):
            scm_bits(0)

    def test_dump_does_not_count_reads(self):
        scm = ScmMemory(2)
        scm.dump()
        assert scm.read_count == 0


class TestTriggerFifo:
    def test_push_pop_order(self):
        fifo = TriggerFifo(4)
        fifo.push(1, 0b01)
        fifo.push(5, 0b10)
        first = fifo.pop()
        second = fifo.pop()
        assert first.cycle == 1 and first.events_snapshot == 0b01
        assert second.cycle == 5
        assert fifo.pop() is None

    def test_overflow_drops_and_counts(self):
        fifo = TriggerFifo(2)
        assert fifo.push(0, 1)
        assert fifo.push(1, 1)
        assert not fifo.push(2, 1)
        assert fifo.dropped == 1
        assert fifo.level == 2

    def test_peek_does_not_remove(self):
        fifo = TriggerFifo(2)
        fifo.push(3, 0xF)
        assert fifo.peek().cycle == 3
        assert fifo.level == 1

    def test_flags(self):
        fifo = TriggerFifo(1)
        assert fifo.empty and not fifo.full
        fifo.push(0, 1)
        assert fifo.full and not fifo.empty

    def test_high_watermark(self):
        fifo = TriggerFifo(4)
        fifo.push(0, 1)
        fifo.push(1, 1)
        fifo.pop()
        fifo.push(2, 1)
        assert fifo.high_watermark == 2

    def test_statistics_and_clear(self):
        fifo = TriggerFifo(4)
        fifo.push(0, 1)
        fifo.pop()
        fifo.clear()
        assert fifo.pushed == 0 and fifo.popped == 0 and len(fifo) == 0

    def test_invalid_depth_rejected(self):
        with pytest.raises(ValueError):
            TriggerFifo(0)
