"""Tests for PELS configuration parameters."""

import pytest

from repro.core.config import MINIMAL_CONFIG, PAPER_SOC_CONFIG, LinkConfig, PelsConfig


class TestLinkConfig:
    def test_defaults(self):
        config = LinkConfig()
        assert config.scm_lines == 4
        assert config.fifo_depth == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkConfig(scm_lines=0)
        with pytest.raises(ValueError):
            LinkConfig(fifo_depth=0)
        with pytest.raises(ValueError):
            LinkConfig(base_address=-4)
        with pytest.raises(ValueError):
            LinkConfig(base_address=0x3)


class TestPelsConfig:
    def test_paper_configurations(self):
        assert MINIMAL_CONFIG.is_paper_minimal
        assert not MINIMAL_CONFIG.is_paper_soc_default
        assert PAPER_SOC_CONFIG.is_paper_soc_default
        assert PAPER_SOC_CONFIG.n_links == 4
        assert PAPER_SOC_CONFIG.scm_lines == 6

    def test_link_config_derivation(self):
        config = PelsConfig(n_links=2, scm_lines=8, fifo_depth=2)
        link = config.link_config(1)
        assert link.scm_lines == 8
        assert link.fifo_depth == 2

    def test_per_link_base_addresses(self):
        config = PelsConfig(n_links=2, link_base_addresses=(0x1000, 0x2000))
        assert config.link_config(0).base_address == 0x1000
        assert config.link_config(1).base_address == 0x2000

    def test_base_address_count_must_match_links(self):
        with pytest.raises(ValueError):
            PelsConfig(n_links=2, link_base_addresses=(0x1000,))

    def test_link_index_bounds(self):
        config = PelsConfig(n_links=2)
        with pytest.raises(ValueError):
            config.link_config(2)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_links": 0},
            {"n_links": 17},
            {"scm_lines": 0},
            {"event_capacity": 0},
            {"event_capacity": 65},
            {"action_groups": 0},
            {"action_group_width": 0},
            {"fifo_depth": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PelsConfig(**kwargs)

    def test_paper_sweep_configurations_are_valid(self):
        """Every point of the Figure 6a sweep must be constructible."""
        for n_links in (1, 2, 3, 4, 6, 8):
            for scm_lines in (4, 6, 8):
                config = PelsConfig(n_links=n_links, scm_lines=scm_lines)
                assert config.link_config(0).scm_lines == scm_lines
