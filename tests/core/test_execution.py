"""Unit tests for the execution-unit FSM, driven with a manually-controlled bus."""

import pytest

from repro.bus.transaction import TransferKind
from repro.core.execution import ExecutionState, ExecutionUnit
from repro.core.fifo import TriggerEntry
from repro.core.isa import Command, JumpCondition
from repro.core.scm import ScmMemory


class ManualBus:
    """Records submitted requests; the test completes them explicitly."""

    def __init__(self):
        self.requests = []

    def submit(self, request):
        self.requests.append(request)
        return request

    def complete_last(self, rdata=0, cycle=0):
        self.requests[-1].complete(rdata, cycle)


def make_unit(program, base_address=0x1000, with_bus=True, action_sink=None):
    scm = ScmMemory(max(len(program), 4))
    scm.load_program(program)
    bus = ManualBus() if with_bus else None
    unit = ExecutionUnit(
        name="link0",
        scm=scm,
        bus_submit=bus.submit if bus else None,
        action_sink=action_sink,
        base_address=base_address,
    )
    return unit, bus


def start(unit, cycle=0):
    unit.start(TriggerEntry(cycle=cycle, events_snapshot=0b1))


class TestControlFlow:
    def test_idle_until_started(self):
        unit, _ = make_unit([Command.end()])
        assert unit.idle
        unit.tick(0)
        assert unit.idle

    def test_start_requires_idle(self):
        unit, _ = make_unit([Command.wait(10), Command.end()])
        start(unit)
        unit.tick(1)
        with pytest.raises(RuntimeError):
            start(unit)

    def test_end_returns_to_idle_and_counts_sequence(self):
        unit, _ = make_unit([Command.end()])
        start(unit, cycle=0)
        unit.tick(1)
        assert unit.idle
        assert unit.sequences_completed == 1
        assert unit.last_completion_cycle == 1

    def test_falls_off_program_end_gracefully(self):
        unit, _ = make_unit([Command.action(0, 1)] * 4)
        start(unit)
        for cycle in range(1, 8):
            unit.tick(cycle)
        assert unit.idle
        assert unit.instant_actions == 4

    def test_wait_stalls_for_programmed_cycles(self):
        unit, _ = make_unit([Command.wait(3), Command.end()])
        start(unit, cycle=0)
        unit.tick(1)  # fetch wait
        assert unit.state is ExecutionState.WAITING
        unit.tick(2)
        unit.tick(3)
        unit.tick(4)
        assert unit.state is ExecutionState.FETCH
        unit.tick(5)  # fetch end
        assert unit.idle

    def test_zero_wait_is_a_nop(self):
        unit, _ = make_unit([Command.wait(0), Command.end()])
        start(unit)
        unit.tick(1)
        unit.tick(2)
        assert unit.idle

    def test_loop_repeats_body(self):
        actions = []
        unit, _ = make_unit(
            [Command.action(0, 1), Command.loop(0, 2), Command.end()],
            action_sink=lambda group, mask, toggle, cycle: actions.append(cycle),
        )
        start(unit)
        for cycle in range(1, 12):
            unit.tick(cycle)
        assert unit.idle
        assert len(actions) == 3  # initial pass + 2 loop iterations

    def test_jump_if_taken_and_not_taken(self):
        # Program: jump to END if capture > 50, otherwise fall through to an action.
        program = [
            Command.jump_if(2, JumpCondition.GT, 50),
            Command.action(0, 1),
            Command.end(),
        ]
        fired = []
        unit, _ = make_unit(program, action_sink=lambda *args: fired.append(args))
        unit.capture_register = 80
        start(unit)
        for cycle in range(1, 5):
            unit.tick(cycle)
        assert unit.idle and not fired

        unit2, _ = make_unit(program, action_sink=lambda *args: fired.append(args))
        unit2.capture_register = 10
        start(unit2)
        for cycle in range(1, 6):
            unit2.tick(cycle)
        assert unit2.idle and len(fired) == 1


class TestInstantActions:
    def test_action_executes_in_fetch_cycle(self):
        """Instant actions fire one cycle after the trigger (2-cycle total latency)."""
        seen = []
        unit, _ = make_unit(
            [Command.action(3, 0b101, toggle=True), Command.end()],
            action_sink=lambda group, mask, toggle, cycle: seen.append((group, mask, toggle, cycle)),
        )
        start(unit, cycle=10)
        unit.tick(11)
        assert seen == [(3, 0b101, True, 11)]
        assert unit.first_action_cycle == 11

    def test_instant_action_needs_no_bus(self):
        unit, _ = make_unit([Command.action(0, 1), Command.end()], with_bus=False)
        start(unit)
        unit.tick(1)
        unit.tick(2)
        assert unit.idle


class TestSequencedActions:
    def test_write_command_issues_single_bus_write(self):
        unit, bus = make_unit([Command.write(0x4, 0xAB), Command.end()], base_address=0x1000)
        start(unit, cycle=0)
        unit.tick(1)  # fetch
        unit.tick(2)  # issue write
        assert len(bus.requests) == 1
        request = bus.requests[0]
        assert request.kind is TransferKind.WRITE
        assert request.address == 0x1000 + 0x10
        assert request.wdata == 0xAB

    def test_write_waits_for_completion(self):
        unit, bus = make_unit([Command.write(1, 1), Command.end()])
        start(unit)
        unit.tick(1)
        unit.tick(2)
        unit.tick(3)
        assert unit.state is ExecutionState.WRITE_WAIT
        bus.complete_last(cycle=3)
        unit.tick(4)
        assert unit.state is ExecutionState.FETCH
        assert unit.last_bus_write_cycle == 3

    def test_set_is_read_modify_write(self):
        unit, bus = make_unit([Command.set(0, 0x0F), Command.end()])
        start(unit)
        unit.tick(1)  # fetch
        unit.tick(2)  # issue read
        assert bus.requests[0].kind is TransferKind.READ
        bus.complete_last(rdata=0xF0, cycle=3)
        unit.tick(4)  # observe + modify
        unit.tick(5)  # issue write
        assert bus.requests[1].kind is TransferKind.WRITE
        assert bus.requests[1].wdata == 0xFF

    def test_clear_and_toggle_datapath(self):
        unit, bus = make_unit([Command.clear(0, 0x0F), Command.toggle(0, 0xFF), Command.end()])
        start(unit)
        unit.tick(1)
        unit.tick(2)
        bus.complete_last(rdata=0xFF, cycle=2)
        unit.tick(3)
        unit.tick(4)
        assert bus.requests[1].wdata == 0xF0
        bus.complete_last(cycle=4)
        unit.tick(5)   # back to fetch
        unit.tick(6)   # fetch toggle
        unit.tick(7)   # issue read
        bus.complete_last(rdata=0x0F, cycle=7)
        unit.tick(8)
        unit.tick(9)
        assert bus.requests[3].wdata == 0xF0

    def test_capture_stores_masked_value(self):
        unit, bus = make_unit([Command.capture(2, 0x0FF), Command.end()])
        start(unit)
        unit.tick(1)
        unit.tick(2)
        bus.complete_last(rdata=0x1234, cycle=2)
        unit.tick(3)
        assert unit.capture_register == 0x34

    def test_stall_cycles_counted_while_waiting(self):
        unit, bus = make_unit([Command.write(0, 1), Command.end()])
        start(unit)
        unit.tick(1)
        unit.tick(2)
        unit.tick(3)
        unit.tick(4)
        assert unit.stall_cycles >= 2

    def test_sequenced_action_without_bus_raises(self):
        unit, _ = make_unit([Command.write(0, 1), Command.end()], with_bus=False)
        start(unit)
        unit.tick(1)
        with pytest.raises(RuntimeError):
            unit.tick(2)

    def test_base_address_reprogramming(self):
        unit, bus = make_unit([Command.write(1, 1), Command.end()], base_address=0)
        unit.set_base_address(0x2000)
        start(unit)
        unit.tick(1)
        unit.tick(2)
        assert bus.requests[0].address == 0x2004
        with pytest.raises(ValueError):
            unit.set_base_address(3)


class TestStatistics:
    def test_command_counts(self):
        unit, bus = make_unit([Command.write(0, 1), Command.action(0, 1), Command.end()])
        start(unit)
        unit.tick(1)
        unit.tick(2)
        bus.complete_last(cycle=2)
        unit.tick(3)
        unit.tick(4)  # fetch + execute action
        unit.tick(5)  # fetch end
        from repro.core.isa import Opcode

        assert unit.commands_executed[Opcode.WRITE] == 1
        assert unit.commands_executed[Opcode.ACTION] == 1
        assert unit.commands_executed[Opcode.END] == 1
        assert unit.bus_writes == 1

    def test_reset_clears_state_and_statistics(self):
        unit, bus = make_unit([Command.write(0, 1), Command.end()])
        start(unit)
        unit.tick(1)
        unit.reset()
        assert unit.idle
        assert unit.busy_cycles == 0
        assert unit.pc == 0
