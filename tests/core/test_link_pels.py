"""Tests for the Link composition and the PELS top level."""

import pytest

from repro.bus.apb import ApbBus
from repro.core.assembler import assemble
from repro.core.config import PelsConfig
from repro.core.isa import Command
from repro.core.pels import (
    LINK_REG_BASE_ADDR,
    LINK_REG_CAPTURE,
    LINK_REG_CONDITION,
    LINK_REG_ENABLE,
    LINK_REG_MASK,
    LINK_REG_STATUS,
    LINK_SCM_WINDOW,
    LINK_WINDOW_BASE,
    LINK_WINDOW_STRIDE,
    REG_GLOBAL_CTRL,
    REG_NUM_LINKS,
    REG_SCM_LINES,
    Pels,
)
from repro.core.trigger import TriggerCondition
from repro.peripherals.events import EventFabric
from repro.peripherals.gpio import Gpio
from repro.sim.simulator import Simulator


def build_pels(n_links=2, scm_lines=6, with_gpio=True):
    """Standalone PELS + GPIO + APB test bench."""
    simulator = Simulator()
    fabric = EventFabric()
    fabric.add_line("ext.event0", producer="test")
    fabric.add_line("ext.event1", producer="test")
    bus = ApbBus("apb")
    gpio = None
    if with_gpio:
        gpio = Gpio("gpio")
        gpio.connect_events(fabric)
        bus.attach_slave(0x1000, 0x1000, gpio)
        simulator.add_component(gpio)
    pels = Pels(PelsConfig(n_links=n_links, scm_lines=scm_lines), fabric, peripheral_bus=bus)
    simulator.add_component(pels)
    simulator.add_component(bus)
    return simulator, fabric, bus, gpio, pels


class TestLinkBasics:
    def test_program_too_large_for_scm_rejected(self):
        _, _, _, _, pels = build_pels(scm_lines=4)
        with pytest.raises(ValueError):
            pels.link(0).load_program([Command.end()] * 5)

    def test_link_lookup_bounds(self):
        _, _, _, _, pels = build_pels(n_links=2)
        assert pels.link(1).index == 1
        with pytest.raises(IndexError):
            pels.link(2)

    def test_status_word_reports_busy(self):
        simulator, fabric, _, _, pels = build_pels()
        pels.program_link(0, assemble("wait 10\nend"), trigger_mask=0b1)
        fabric.pulse("ext.event0")
        simulator.step(3)
        assert pels.link(0).busy
        assert pels.link(0).status_word() & (1 << 10)
        assert pels.busy


class TestSequencedLinking:
    def test_set_command_modifies_gpio_register(self):
        simulator, fabric, _, gpio, pels = build_pels()
        program = assemble("set 0x401 0x1\nend")  # word offset 0x401 = GPIO OUT at 0x1004
        pels.program_link(0, program, trigger_mask=0b1, base_address=0x0)
        fabric.pulse("ext.event0")
        simulator.step(12)
        assert gpio.pad(0)
        record = pels.link(0).last_record
        assert record is not None
        assert record.sequenced_latency == 7  # the paper's sequenced-action latency

    def test_write_command(self):
        simulator, fabric, _, gpio, pels = build_pels()
        program = assemble("write 0x401 0xFF\nend")
        pels.program_link(0, program, trigger_mask=0b1)
        fabric.pulse("ext.event0")
        simulator.step(10)
        assert gpio.output_value == 0xFF

    def test_capture_and_jump_threshold(self):
        simulator, fabric, _, gpio, pels = build_pels()
        gpio.drive_input(80)  # sample to capture from the IN register (offset 0x1008)
        program = assemble(
            """
            capture 0x402 0xFF
            jump-if DONE LE 50
            set 0x401 0x1
            DONE: end
            """
        )
        pels.program_link(0, program, trigger_mask=0b1)
        fabric.pulse("ext.event0")
        simulator.step(20)
        assert gpio.pad(0)
        assert pels.link(0).execution.capture_register == 80

    def test_threshold_not_exceeded_skips_action(self):
        simulator, fabric, _, gpio, pels = build_pels()
        gpio.drive_input(10)
        program = assemble(
            """
            capture 0x402 0xFF
            jump-if DONE LE 50
            set 0x401 0x1
            DONE: end
            """
        )
        pels.program_link(0, program, trigger_mask=0b1)
        fabric.pulse("ext.event0")
        simulator.step(20)
        assert not gpio.pad(0)


class TestInstantActions:
    def test_action_routed_to_peripheral_input(self):
        simulator, fabric, _, gpio, pels = build_pels()
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=gpio, port="set_pad0")
        pels.program_link(0, assemble("action 0 0x1\nend"), trigger_mask=0b1)
        fabric.pulse("ext.event0")
        simulator.step(5)
        assert gpio.pad(0)
        record = pels.link(0).last_record
        assert record.instant_latency == 2  # the paper's instant-action latency

    def test_unrouted_action_is_counted_not_fatal(self):
        simulator, fabric, _, _, pels = build_pels()
        pels.program_link(0, assemble("action 0 0x2\nend"), trigger_mask=0b1)
        fabric.pulse("ext.event0")
        simulator.step(5)
        assert pels.unrouted_actions == 1

    def test_action_callback_route(self):
        simulator, fabric, _, _, pels = build_pels()
        hits = []
        pels.route_action_to_callback(0, 1, "probe", lambda: hits.append(1))
        pels.program_link(0, assemble("action 0 0x2\nend"), trigger_mask=0b1)
        fabric.pulse("ext.event0")
        simulator.step(5)
        assert hits == [1]

    def test_invalid_route_coordinates_rejected(self):
        _, _, _, gpio, pels = build_pels()
        with pytest.raises(ValueError):
            pels.route_action_to_peripheral(group=99, bit=0, peripheral=gpio, port="set_pad0")
        with pytest.raises(ValueError):
            pels.route_action_to_peripheral(group=0, bit=99, peripheral=gpio, port="set_pad0")

    def test_inter_link_triggering_via_loopback(self):
        """Marker 9 of Figure 2: one link's instant action triggers another link."""
        simulator, fabric, _, gpio, pels = build_pels(n_links=2)
        loopback = pels.add_loopback_line("link0_to_link1")
        pels.route_action_to_fabric(group=1, bit=0, line_name=loopback)
        pels.program_link(0, assemble("action 1 0x1\nend"), trigger_mask=0b1)
        link1_mask = 1 << fabric.index_of(loopback)
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=gpio, port="set_pad0")
        pels.program_link(1, assemble("action 0 0x1\nend"), trigger_mask=link1_mask)
        fabric.pulse("ext.event0")
        simulator.step(10)
        assert gpio.pad(0)
        assert pels.link(1).events_serviced == 1


class TestTriggerConditions:
    def test_and_condition_needs_both_events(self):
        simulator, fabric, _, gpio, pels = build_pels()
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=gpio, port="set_pad0")
        pels.program_link(
            0,
            assemble("action 0 0x1\nend"),
            trigger_mask=0b11,
            condition=TriggerCondition.ALL_SELECTED_ACTIVE,
        )
        fabric.pulse("ext.event0")
        simulator.step(4)
        assert not gpio.pad(0)
        fabric.pulse("ext.event0")
        fabric.pulse("ext.event1")
        simulator.step(4)
        assert gpio.pad(0)

    def test_disabled_pels_ignores_events(self):
        simulator, fabric, _, gpio, pels = build_pels()
        pels.program_link(0, assemble("set 0x401 0x1\nend"), trigger_mask=0b1)
        pels.enabled = False
        fabric.pulse("ext.event0")
        simulator.step(10)
        assert not gpio.pad(0)

    def test_parallel_links_service_the_same_event(self):
        simulator, fabric, _, gpio, pels = build_pels(n_links=2)
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=gpio, port="set_pad0")
        pels.program_link(0, assemble("action 0 0x1\nend"), trigger_mask=0b1)
        pels.program_link(1, assemble("set 0x401 0x80\nend"), trigger_mask=0b1)
        fabric.pulse("ext.event0")
        simulator.step(12)
        assert gpio.pad(0)
        assert gpio.output_value & 0x80
        assert pels.total_events_serviced() == 2


class TestConfigurationBusInterface:
    def test_global_registers(self):
        _, _, _, _, pels = build_pels(n_links=2, scm_lines=6)
        assert pels.bus_read(REG_NUM_LINKS) == 2
        assert pels.bus_read(REG_SCM_LINES) == 6
        assert pels.bus_read(REG_GLOBAL_CTRL) == 1
        pels.bus_write(REG_GLOBAL_CTRL, 0)
        assert not pels.enabled

    def test_link_registers_via_bus(self):
        _, _, _, _, pels = build_pels()
        base = LINK_WINDOW_BASE
        pels.bus_write(base + LINK_REG_MASK, 0b101)
        pels.bus_write(base + LINK_REG_CONDITION, 1)
        pels.bus_write(base + LINK_REG_BASE_ADDR, 0x2000)
        pels.bus_write(base + LINK_REG_ENABLE, 1)
        link = pels.link(0)
        assert link.trigger.mask == 0b101
        assert link.trigger.condition is TriggerCondition.ALL_SELECTED_ACTIVE
        assert link.execution.base_address == 0x2000
        assert link.trigger.enabled
        assert pels.bus_read(base + LINK_REG_MASK) == 0b101
        assert pels.bus_read(base + LINK_REG_STATUS) == link.status_word()
        assert pels.bus_read(base + LINK_REG_CAPTURE) == 0

    def test_microcode_upload_via_bus(self):
        """The CPU can write a link's SCM through the configuration window."""
        from repro.core.isa import encode_command

        _, _, _, _, pels = build_pels()
        command = Command.set(0x401, 0x1)
        encoded = encode_command(command)
        base = LINK_WINDOW_BASE + LINK_SCM_WINDOW
        pels.bus_write(base + 0, encoded & 0xFFFF_FFFF)
        pels.bus_write(base + 4, (encoded >> 32) & 0xFFFF)
        stored = pels.link(0).scm.fetch(0)
        assert stored == command
        assert pels.bus_read(base + 0) == encoded & 0xFFFF_FFFF
        assert pels.bus_read(base + 4) == (encoded >> 32) & 0xFFFF

    def test_second_link_window(self):
        _, _, _, _, pels = build_pels(n_links=2)
        offset = LINK_WINDOW_BASE + LINK_WINDOW_STRIDE + LINK_REG_MASK
        pels.bus_write(offset, 0xF0)
        assert pels.link(1).trigger.mask == 0xF0
        assert pels.link(0).trigger.mask == 0

    def test_out_of_range_window_is_ignored(self):
        _, _, _, _, pels = build_pels(n_links=1)
        pels.bus_write(LINK_WINDOW_BASE + 5 * LINK_WINDOW_STRIDE, 0xFF)  # no link 5
        assert pels.bus_read(LINK_WINDOW_BASE + 5 * LINK_WINDOW_STRIDE) == 0

    def test_window_size_covers_all_links(self):
        _, _, _, _, pels = build_pels(n_links=4)
        assert pels.window_size == LINK_WINDOW_BASE + 4 * LINK_WINDOW_STRIDE


class TestReset:
    def test_reset_clears_runtime_state(self):
        simulator, fabric, _, gpio, pels = build_pels()
        pels.program_link(0, assemble("set 0x401 0x1\nend"), trigger_mask=0b1)
        fabric.pulse("ext.event0")
        simulator.step(10)
        pels.reset()
        assert pels.total_events_serviced() == 0
        assert not pels.busy
