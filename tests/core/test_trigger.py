"""Tests for the trigger unit (mask, AND/OR condition, FIFO front end)."""

import pytest

from repro.core.trigger import TriggerCondition, TriggerUnit


class TestTriggerUnit:
    def test_disabled_unit_never_fires(self):
        trigger = TriggerUnit()
        trigger.configure(mask=0b1, enabled=False)
        assert not trigger.evaluate(0b1, cycle=0)
        assert trigger.pending == 0

    def test_zero_mask_never_fires(self):
        trigger = TriggerUnit()
        trigger.configure(mask=0)
        assert not trigger.evaluate(0xFFFF_FFFF, cycle=0)

    def test_or_condition_any_selected_active(self):
        trigger = TriggerUnit()
        trigger.configure(mask=0b110, condition=TriggerCondition.ANY_SELECTED_ACTIVE)
        assert trigger.evaluate(0b010, cycle=1)
        assert trigger.evaluate(0b100, cycle=2)
        assert not trigger.evaluate(0b001, cycle=3)
        assert trigger.triggers == 2

    def test_and_condition_all_selected_active(self):
        trigger = TriggerUnit()
        trigger.configure(mask=0b110, condition=TriggerCondition.ALL_SELECTED_ACTIVE)
        assert not trigger.evaluate(0b010, cycle=1)
        assert trigger.evaluate(0b110, cycle=2)
        assert trigger.evaluate(0b111, cycle=3)

    def test_triggers_buffered_in_fifo(self):
        trigger = TriggerUnit(fifo_depth=2)
        trigger.configure(mask=0b1)
        trigger.evaluate(0b1, cycle=1)
        trigger.evaluate(0b1, cycle=2)
        trigger.evaluate(0b1, cycle=3)  # dropped
        assert trigger.pending == 2
        assert trigger.fifo.dropped == 1

    def test_last_trigger_cycle(self):
        trigger = TriggerUnit()
        trigger.configure(mask=0b1)
        trigger.evaluate(0b1, cycle=7)
        assert trigger.last_trigger_cycle == 7

    def test_masked_snapshot_stored(self):
        trigger = TriggerUnit()
        trigger.configure(mask=0b011)
        trigger.evaluate(0b111, cycle=0)
        assert trigger.fifo.peek().events_snapshot == 0b011

    def test_negative_mask_rejected(self):
        trigger = TriggerUnit()
        with pytest.raises(ValueError):
            trigger.configure(mask=-1)

    def test_status_word(self):
        trigger = TriggerUnit()
        trigger.configure(mask=0b1, condition=TriggerCondition.ALL_SELECTED_ACTIVE)
        trigger.evaluate(0b1, cycle=0)
        status = trigger.status_word()
        assert status & 0xFF == 1          # FIFO level
        assert status & (1 << 8)           # enabled
        assert status & (1 << 9)           # AND condition

    def test_condition_mnemonics(self):
        assert TriggerCondition.ANY_SELECTED_ACTIVE.mnemonic == "OR"
        assert TriggerCondition.ALL_SELECTED_ACTIVE.mnemonic == "AND"

    def test_evaluation_counter(self):
        trigger = TriggerUnit()
        trigger.configure(mask=0b1)
        for cycle in range(5):
            trigger.evaluate(0, cycle)
        assert trigger.evaluations == 5

    def test_reset(self):
        trigger = TriggerUnit()
        trigger.configure(mask=0b1)
        trigger.evaluate(0b1, cycle=0)
        trigger.reset()
        assert trigger.mask == 0
        assert not trigger.enabled
        assert trigger.pending == 0
        assert trigger.triggers == 0
