"""Tests for the PELS microcode encoding."""

import pytest

from repro.core.isa import (
    COMMAND_BITS,
    Command,
    CommandEncodingError,
    JumpCondition,
    Opcode,
    decode_command,
    encode_command,
)


class TestCommandConstructors:
    def test_write(self):
        command = Command.write(0x101, 0xDEAD)
        assert command.opcode is Opcode.WRITE
        assert command.word_offset == 0x101
        assert command.byte_offset == 0x404
        assert command.data == 0xDEAD

    def test_rmw_commands(self):
        assert Command.set(1, 0xF).opcode is Opcode.SET
        assert Command.clear(1, 0xF).opcode is Opcode.CLEAR
        assert Command.toggle(1, 0xF).opcode is Opcode.TOGGLE
        for opcode in (Opcode.SET, Opcode.CLEAR, Opcode.TOGGLE):
            assert opcode.is_read_modify_write
            assert opcode.is_sequenced

    def test_capture(self):
        command = Command.capture(0x20, 0x0FF)
        assert command.opcode is Opcode.CAPTURE
        assert command.data == 0x0FF
        assert Opcode.CAPTURE.is_sequenced

    def test_jump_if_packs_target_and_condition(self):
        command = Command.jump_if(4, JumpCondition.GT, 50)
        assert command.jump_target == 4
        assert command.jump_condition is JumpCondition.GT
        assert command.data == 50

    def test_jump_target_range_checked(self):
        with pytest.raises(CommandEncodingError):
            Command.jump_if(64, JumpCondition.EQ, 0)

    def test_loop(self):
        command = Command.loop(2, 10)
        assert command.jump_target == 2
        assert command.data == 10
        with pytest.raises(CommandEncodingError):
            Command.loop(100, 1)

    def test_wait(self):
        assert Command.wait(500).data == 500

    def test_action_group_and_toggle_flag(self):
        pulse = Command.action(3, 0xFF)
        toggled = Command.action(3, 0xFF, toggle=True)
        assert pulse.action_group == 3
        assert not pulse.action_is_toggle
        assert toggled.action_is_toggle
        assert Opcode.ACTION.is_instant
        with pytest.raises(CommandEncodingError):
            Command.action(16, 0x1)

    def test_end(self):
        command = Command.end()
        assert command.opcode is Opcode.END
        assert not Opcode.END.is_sequenced

    def test_field_and_data_range_checks(self):
        with pytest.raises(CommandEncodingError):
            Command(Opcode.WRITE, field=1 << 12, data=0)
        with pytest.raises(CommandEncodingError):
            Command(Opcode.WRITE, field=0, data=1 << 32)

    def test_str_representations(self):
        assert "jump-if" in str(Command.jump_if(4, JumpCondition.GT, 50))
        assert "action" in str(Command.action(0, 1))
        assert "end" in str(Command.end())
        assert "wait" in str(Command.wait(3))
        assert "loop" in str(Command.loop(0, 2))
        assert "set" in str(Command.set(1, 1))


class TestEncoding:
    def test_command_width_is_48_bits(self):
        """The paper's point: a single-cycle RMW needs more than 32 bits."""
        assert COMMAND_BITS == 48
        assert COMMAND_BITS > 32

    def test_roundtrip_all_opcodes(self):
        commands = [
            Command.write(0x7FF, 0xFFFF_FFFF),
            Command.set(0, 0),
            Command.clear(5, 0x0F),
            Command.toggle(9, 0xF0),
            Command.capture(0x3FF, 0x0FF),
            Command.jump_if(63, JumpCondition.LE, 12345),
            Command.loop(1, 8),
            Command.wait(1000),
            Command.action(15, 0xAAAA_AAAA, toggle=True),
            Command.end(),
        ]
        for command in commands:
            assert decode_command(encode_command(command)) == command

    def test_encoding_fits_in_48_bits(self):
        encoded = encode_command(Command.action(15, 0xFFFF_FFFF, toggle=True))
        assert 0 <= encoded < (1 << COMMAND_BITS)

    def test_decode_rejects_oversized_values(self):
        with pytest.raises(CommandEncodingError):
            decode_command(1 << COMMAND_BITS)

    def test_decode_rejects_unknown_opcode(self):
        encoded = 0xF << 44  # opcode 0xF is unused
        with pytest.raises(CommandEncodingError):
            decode_command(encoded)

    def test_zero_decodes_to_end(self):
        """Erased SCM lines behave as ``end``, stopping a runaway program."""
        assert decode_command(0).opcode is Opcode.END


class TestJumpCondition:
    @pytest.mark.parametrize(
        "condition, captured, operand, expected",
        [
            (JumpCondition.EQ, 5, 5, True),
            (JumpCondition.EQ, 5, 6, False),
            (JumpCondition.NE, 5, 6, True),
            (JumpCondition.GT, 51, 50, True),
            (JumpCondition.GT, 50, 50, False),
            (JumpCondition.GE, 50, 50, True),
            (JumpCondition.LT, 49, 50, True),
            (JumpCondition.LE, 50, 50, True),
            (JumpCondition.LE, 51, 50, False),
            (JumpCondition.ALWAYS, 0, 99, True),
        ],
    )
    def test_evaluate(self, condition, captured, operand, expected):
        assert condition.evaluate(captured, operand) is expected
