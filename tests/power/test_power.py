"""Tests for the power model, technology profile, scenarios, and reporting."""

import pytest

from repro.power.components import EnergyCoefficients, TECH_65NM_LP, TechnologyProfile
from repro.power.model import COMPONENTS, PowerBreakdown, PowerModel, diff_activity
from repro.power.report import format_breakdown, format_figure5, summarize_totals
from repro.power.scenarios import (
    ISO_FREQUENCY_HZ,
    ISO_LATENCY_IBEX_HZ,
    ISO_LATENCY_PELS_HZ,
    latency_cycles_budget,
    measure_idle_power,
    measure_linking_power,
    run_figure5,
)


class TestTechnologyProfile:
    def test_default_profile_is_65nm_tt(self):
        assert TECH_65NM_LP.name == "tsmc65lp"
        assert TECH_65NM_LP.corner == "TT"
        assert TECH_65NM_LP.voltage_v == pytest.approx(1.2)

    def test_voltage_scaling_is_quadratic_for_dynamic_energy(self):
        scaled = TECH_65NM_LP.scaled(0.6)
        ratio = scaled.energies.sram_read_pj / TECH_65NM_LP.energies.sram_read_pj
        assert ratio == pytest.approx(0.25)
        # Leakage figures are untouched.
        assert scaled.energies.leakage_ram_uw == TECH_65NM_LP.energies.leakage_ram_uw

    def test_voltage_scaling_rejects_non_positive(self):
        with pytest.raises(ValueError):
            TECH_65NM_LP.scaled(0)

    def test_leakage_total(self):
        energies = EnergyCoefficients()
        with_pels = energies.leakage_total_uw(include_pels=True)
        without = energies.leakage_total_uw(include_pels=False)
        assert with_pels - without == pytest.approx(energies.leakage_pels_uw)


class TestPowerModel:
    def test_empty_activity_gives_background_plus_leakage(self):
        model = PowerModel()
        breakdown = model.estimate({}, window_cycles=1000, frequency_hz=55e6, pels_present=False)
        assert breakdown.component("Processor") == 0
        assert breakdown.component("Leakage") > 0
        assert breakdown.component("Others") > 0
        assert breakdown.total_uw > 0

    def test_processor_power_scales_with_active_cycles(self):
        model = PowerModel()
        low = model.estimate({("ibex", "active_cycles"): 10}, 1000, 55e6)
        high = model.estimate({("ibex", "active_cycles"): 100}, 1000, 55e6)
        assert high.component("Processor") > low.component("Processor")

    def test_frequency_scales_dynamic_power(self):
        model = PowerModel()
        activity = {("ibex", "active_cycles"): 100}
        fast = model.estimate(activity, 1000, 55e6)
        slow = model.estimate(activity, 1000, 27.5e6)
        assert fast.component("Processor") == pytest.approx(2 * slow.component("Processor"))
        # Leakage does not scale with frequency.
        assert fast.component("Leakage") == pytest.approx(slow.component("Leakage"))

    def test_pels_component_zero_when_absent(self):
        model = PowerModel()
        activity = {("pels", "link_busy_cycles"): 50}
        present = model.estimate(activity, 100, 55e6, pels_present=True)
        absent = model.estimate(activity, 100, 55e6, pels_present=False)
        assert present.component("PELS") > 0
        assert absent.component("PELS") == 0

    def test_invalid_window_rejected(self):
        model = PowerModel()
        with pytest.raises(ValueError):
            model.estimate({}, 0, 55e6)
        with pytest.raises(ValueError):
            model.estimate({}, 10, 0)

    def test_breakdown_helpers(self):
        breakdown = PowerBreakdown(
            scenario="x", frequency_hz=55e6, window_cycles=100, components_uw={"Processor": 10.0, "RAM": 30.0}
        )
        other = PowerBreakdown(
            scenario="y", frequency_hz=55e6, window_cycles=100, components_uw={"Processor": 20.0, "RAM": 60.0}
        )
        assert breakdown.total_uw == pytest.approx(40.0)
        assert breakdown.ratio_to(other) == pytest.approx(2.0)
        assert breakdown.component_ratio_to(other, "RAM") == pytest.approx(2.0)
        assert breakdown.as_dict()["Total"] == pytest.approx(40.0)
        assert breakdown.window_seconds == pytest.approx(100 / 55e6)

    def test_ratio_guards_against_zero(self):
        zero = PowerBreakdown(scenario="z", frequency_hz=1e6, window_cycles=1, components_uw={})
        other = PowerBreakdown(scenario="o", frequency_hz=1e6, window_cycles=1, components_uw={"RAM": 1.0})
        with pytest.raises(ZeroDivisionError):
            zero.ratio_to(other)

    def test_diff_activity(self):
        before = {("a", "x"): 5, ("b", "y"): 2}
        after = {("a", "x"): 8, ("b", "y"): 2, ("c", "z"): 1}
        delta = diff_activity(before, after)
        assert delta == {("a", "x"): 3, ("c", "z"): 1}


class TestScenarios:
    @pytest.fixture(scope="class")
    def figure5(self):
        return run_figure5(n_events=3, idle_cycles=600)

    def test_operating_points_match_paper(self):
        assert ISO_LATENCY_PELS_HZ == pytest.approx(27e6)
        assert ISO_LATENCY_IBEX_HZ == pytest.approx(55e6)
        assert ISO_FREQUENCY_HZ == pytest.approx(55e6)

    def test_latency_budget_helper(self):
        assert latency_cycles_budget(27e6) == 13
        assert latency_cycles_budget(55e6) == 27

    def test_idle_measurement_structure(self):
        result = measure_idle_power("pels", 27e6, idle_cycles=200)
        assert result.phase == "idle"
        assert result.window_cycles == 200
        assert result.total_uw > 0

    def test_linking_measurement_structure(self):
        result = measure_linking_power("ibex", 55e6, n_events=2)
        assert result.phase == "linking"
        assert result.events_measured == 2
        assert result.window_cycles > 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            measure_idle_power("arm", 55e6, idle_cycles=10)
        with pytest.raises(ValueError):
            measure_linking_power("arm", 55e6, n_events=1)

    def test_figure5_has_all_eight_bars(self, figure5):
        assert len(figure5.results) == 8

    def test_linking_iso_latency_ratio_close_to_paper(self, figure5):
        """Headline result: ~2.5x less power when PELS handles the linking event."""
        assert figure5.ratio("linking_iso_latency") == pytest.approx(2.5, rel=0.2)

    def test_idle_iso_latency_ratio_close_to_paper(self, figure5):
        assert figure5.ratio("idle_iso_latency") == pytest.approx(1.5, rel=0.2)

    def test_linking_iso_frequency_ratio_close_to_paper(self, figure5):
        assert figure5.ratio("linking_iso_freq") == pytest.approx(1.6, rel=0.2)

    def test_memory_system_power_strongly_reduced(self, figure5):
        """Paper: 3.7x / 4.3x less power drawn around the memory system."""
        assert figure5.ram_ratio("linking_iso_freq") >= 3.5
        assert figure5.ram_ratio("linking_iso_latency") >= 3.5

    def test_pels_component_small_compared_to_processor_it_replaces(self, figure5):
        linking_pels = figure5.get("linking_iso_freq_pels")
        linking_ibex = figure5.get("linking_iso_freq_ibex")
        assert linking_pels.breakdown.component("PELS") < 0.5 * linking_ibex.breakdown.component("Processor")

    def test_report_formatting(self, figure5):
        text = format_figure5(figure5)
        assert "Linking (iso-latency)" in text
        assert "paper: 2.5x" in text
        single = format_breakdown(figure5.get("idle_iso_freq_ibex").breakdown)
        assert "Total" in single
        summary = summarize_totals([figure5.get("idle_iso_freq_ibex").breakdown])
        assert "uW" in summary

    def test_component_names_cover_figure5_legend(self):
        assert set(COMPONENTS) == {"Others", "PELS", "Processor", "RAM", "Interconnect", "Leakage"}
