"""Property-based tests for the microcode encoding (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.isa import (
    COMMAND_BITS,
    DATA_MASK,
    FIELD_MASK,
    Command,
    JumpCondition,
    Opcode,
    decode_command,
    encode_command,
)

opcodes = st.sampled_from(list(Opcode))
fields = st.integers(min_value=0, max_value=FIELD_MASK)
data_words = st.integers(min_value=0, max_value=DATA_MASK)
commands = st.builds(Command, opcode=opcodes, field=fields, data=data_words)


class TestEncodingProperties:
    @given(commands)
    def test_roundtrip_is_lossless(self, command):
        assert decode_command(encode_command(command)) == command

    @given(commands)
    def test_encoding_fits_in_48_bits(self, command):
        encoded = encode_command(command)
        assert 0 <= encoded < (1 << COMMAND_BITS)

    @given(commands, commands)
    def test_encoding_is_injective(self, first, second):
        if first != second:
            assert encode_command(first) != encode_command(second)

    @given(fields, data_words)
    def test_byte_offset_is_word_aligned(self, field, data):
        command = Command(Opcode.WRITE, field=field, data=data)
        assert command.byte_offset % 4 == 0
        assert command.byte_offset == 4 * command.word_offset

    @given(
        st.integers(min_value=0, max_value=63),
        st.sampled_from(list(JumpCondition)),
        data_words,
    )
    def test_jump_if_fields_roundtrip(self, target, condition, operand):
        command = Command.jump_if(target, condition, operand)
        decoded = decode_command(encode_command(command))
        assert decoded.jump_target == target
        assert decoded.jump_condition is condition
        assert decoded.data == operand

    @given(st.integers(min_value=0, max_value=15), data_words, st.booleans())
    def test_action_fields_roundtrip(self, group, mask, toggle):
        command = Command.action(group, mask, toggle=toggle)
        decoded = decode_command(encode_command(command))
        assert decoded.action_group == group
        assert decoded.action_is_toggle is toggle
        assert decoded.data == mask


class TestJumpConditionProperties:
    @given(data_words, data_words)
    def test_gt_le_are_complementary(self, captured, operand):
        assert JumpCondition.GT.evaluate(captured, operand) != JumpCondition.LE.evaluate(captured, operand)

    @given(data_words, data_words)
    def test_eq_ne_are_complementary(self, captured, operand):
        assert JumpCondition.EQ.evaluate(captured, operand) != JumpCondition.NE.evaluate(captured, operand)

    @given(data_words, data_words)
    def test_always_is_always_true(self, captured, operand):
        assert JumpCondition.ALWAYS.evaluate(captured, operand)
