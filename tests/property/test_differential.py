"""Differential property tests: event-driven scheduling must equal dense.

The event-driven kernel's whole claim is cycle-exact equivalence with the
legacy cycle-driven kernel: identical traces, identical activity counters,
identical final register state — for *any* configuration and any step
chunking.  These tests generate random peripheral/link configurations, run
the same stimulus under both kernels, and compare everything observable.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.assembler import Assembler
from repro.peripherals.pwm import Pwm
from repro.peripherals.sensor import SensorWaveform
from repro.peripherals.timer import Timer
from repro.peripherals.uart import Uart
from repro.peripherals.watchdog import Watchdog
from repro.sim.simulator import Simulator
from repro.soc.pulpissimo import SocConfig, build_soc

PERIPHERAL_NAMES = ("spi", "adc", "gpio", "uart", "i2c", "pwm", "wdt", "timer")


def _register_state(soc):
    return {
        name: {register.name: register.value for register in getattr(soc, name).regs.registers()}
        for name in PERIPHERAL_NAMES
    }


def _counters(soc):
    counters = {
        "timer_overflows": soc.timer.overflow_count,
        "adc_conversions": soc.adc.conversions,
        "spi_transfers": soc.spi.transfers_completed,
        "spi_words": soc.spi.words_received,
        "pwm_periods": soc.pwm.periods_elapsed,
        "pwm_duty_updates": soc.pwm.duty_updates,
        "pwm_high_cycles": soc.pwm.output_high_cycles,
        "wdt_kicks": soc.wdt.kicks,
        "wdt_barks": soc.wdt.barks,
        "wdt_bites": soc.wdt.bites,
        "dma_words": soc.udma.total_words_moved,
        "cpu_sleep_cycles": soc.cpu.sleep_cycles,
        "cpu_interrupts": soc.cpu.interrupts_serviced,
        "fabric_pulses": soc.fabric.total_pulses,
    }
    if soc.pels is not None:
        counters["pels_events"] = soc.pels.total_events_serviced()
        counters["pels_actions"] = soc.pels.instant_actions_delivered
        counters["link_latencies"] = tuple(
            tuple(record.total_latency for record in link.records) for link in soc.pels.links
        )
    return counters


soc_scenario = st.fixed_dictionaries(
    {
        "timer_compare": st.integers(min_value=20, max_value=150),
        "timer_prescaler": st.integers(min_value=0, max_value=3),
        "adc_conversion_cycles": st.integers(min_value=1, max_value=12),
        "pwm_period": st.integers(min_value=8, max_value=96),
        "pwm_enabled": st.booleans(),
        "wdt_timeout": st.integers(min_value=40, max_value=300),
        "wdt_grace": st.integers(min_value=10, max_value=80),
        "wdt_enabled": st.booleans(),
        "link_adc": st.booleans(),
        "link_pwm": st.booleans(),
        "link_kick": st.booleans(),
        "spi_words": st.integers(min_value=1, max_value=4),
        "spi_clk_div": st.integers(min_value=1, max_value=6),
        "with_dma": st.booleans(),
        "uart_bytes": st.integers(min_value=0, max_value=2),
        "amplitude": st.integers(min_value=1, max_value=255),
        "horizon": st.integers(min_value=150, max_value=1200),
        "chunks": st.lists(st.integers(min_value=1, max_value=400), min_size=1, max_size=5),
    }
)


def _run_soc_scenario(params, dense):
    soc = build_soc(
        SocConfig(
            sensor_waveform=SensorWaveform(kind="ramp", amplitude=params["amplitude"], step=3),
            spi_cycles_per_word=params["spi_clk_div"],
            adc_conversion_cycles=params["adc_conversion_cycles"],
            dense=dense,
        )
    )
    pels = soc.pels
    assert pels is not None
    assembler = Assembler()
    timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    adc_bit = 1 << soc.fabric.index_of(soc.adc.event_line_name("eoc"))

    if params["link_adc"]:
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.adc, port="soc")
        pels.route_action_to_peripheral(group=0, bit=1, peripheral=soc.spi, port="start")
        pels.program_link(0, assembler.assemble("action 0 0x3\nend"), trigger_mask=timer_bit)
    if params["link_pwm"]:
        adc_base = soc.address_map.peripheral_base("adc")
        adc_data = (soc.register_address("adc", "DATA") - adc_base) // 4
        pwm_shadow = (soc.register_address("pwm", "DUTY_SHADOW") - adc_base) // 4
        pels.route_action_to_peripheral(group=1, bit=0, peripheral=soc.pwm, port="update")
        pels.program_link(
            1,
            assembler.assemble(f"capture {adc_data} 0xFF\nwrite {pwm_shadow} 0x40\naction 1 0x1\nend"),
            trigger_mask=adc_bit,
            base_address=adc_base,
        )
    if params["link_kick"]:
        pels.route_action_to_peripheral(group=2, bit=0, peripheral=soc.wdt, port="kick")
        pels.program_link(2, assembler.assemble("action 2 0x1\nend"), trigger_mask=adc_bit | timer_bit)

    if params["with_dma"]:
        soc.udma.add_channel(
            source=soc.spi,
            destination_address=soc.address_map.sram_base + 0x200,
            length_words=params["spi_words"],
        )
    soc.spi.regs.reg("LEN").hw_write(params["spi_words"])

    soc.pwm.regs.reg("PERIOD").hw_write(params["pwm_period"])
    if params["pwm_enabled"]:
        soc.pwm.start()
    soc.wdt.regs.reg("TIMEOUT").hw_write(params["wdt_timeout"])
    soc.wdt.regs.reg("GRACE").hw_write(params["wdt_grace"])
    if params["wdt_enabled"]:
        soc.wdt.start()
    soc.timer.regs.reg("PRESCALER").hw_write(params["timer_prescaler"])
    soc.timer.regs.reg("COMPARE").hw_write(params["timer_compare"])
    soc.timer.start()
    for index in range(params["uart_bytes"]):
        soc.uart.regs.reg("TXDATA").write(0x41 + index)

    remaining = params["horizon"]
    snapshots = []
    for chunk in params["chunks"]:
        chunk = min(chunk, remaining)
        soc.simulator.step(chunk)
        remaining -= chunk
        # Mid-run observability: a skipped span must leave the same activity
        # totals behind as dense stepping at every step() boundary, not just
        # at the end of the run.
        snapshots.append(soc.activity.as_dict())
    soc.simulator.step(remaining)
    return soc, snapshots


class TestSocDifferential:
    @settings(max_examples=25, deadline=None)
    @given(params=soc_scenario)
    def test_event_driven_equals_dense(self, params):
        dense_soc, dense_snapshots = _run_soc_scenario(params, dense=True)
        event_soc, event_snapshots = _run_soc_scenario(params, dense=False)

        assert dense_snapshots == event_snapshots
        assert dense_soc.simulator.current_cycle == event_soc.simulator.current_cycle
        assert _counters(dense_soc) == _counters(event_soc)
        assert _register_state(dense_soc) == _register_state(event_soc)
        assert dense_soc.activity.as_dict() == event_soc.activity.as_dict()
        assert (
            dense_soc.simulator.traces.merged_timeline()
            == event_soc.simulator.traces.merged_timeline()
        )


component_scenario = st.fixed_dictionaries(
    {
        "timer_compare": st.integers(min_value=1, max_value=60),
        "timer_prescaler": st.integers(min_value=0, max_value=5),
        "pwm_period": st.integers(min_value=1, max_value=40),
        "pwm_duty": st.integers(min_value=0, max_value=40),
        "wdt_timeout": st.integers(min_value=1, max_value=80),
        "wdt_grace": st.integers(min_value=1, max_value=30),
        "uart_bytes": st.integers(min_value=0, max_value=3),
        "uart_baud": st.integers(min_value=1, max_value=12),
        "slow_divisor": st.sampled_from([1, 2, 4]),
        "horizon": st.integers(min_value=1, max_value=400),
        "chunks": st.lists(st.integers(min_value=1, max_value=150), min_size=1, max_size=4),
    }
)


def _run_component_scenario(params, dense):
    """Bare multi-domain simulator with free-running peripherals (no SoC)."""
    simulator = Simulator(default_frequency_hz=40e6, dense=dense)
    slow = simulator.add_clock_domain("slow", 40e6 / params["slow_divisor"])

    timer = Timer(compare=params["timer_compare"])
    timer.regs.reg("PRESCALER").hw_write(params["timer_prescaler"])
    simulator.add_component(timer)
    timer.start()

    pwm = Pwm(period=params["pwm_period"], duty=min(params["pwm_duty"], params["pwm_period"]))
    simulator.add_component(pwm, domain=slow)
    pwm.start()

    wdt = Watchdog(timeout=params["wdt_timeout"], grace=params["wdt_grace"])
    simulator.add_component(wdt, domain=slow)
    wdt.start()

    uart = Uart(cycles_per_byte=params["uart_baud"])
    simulator.add_component(uart)
    for index in range(params["uart_bytes"]):
        uart.regs.reg("TXDATA").write(index)

    remaining = params["horizon"]
    for chunk in params["chunks"]:
        chunk = min(chunk, remaining)
        simulator.step(chunk)
        remaining -= chunk
    simulator.step(remaining)
    return simulator, (timer, pwm, wdt, uart)


class TestComponentDifferential:
    @settings(max_examples=40, deadline=None)
    @given(params=component_scenario)
    def test_multi_domain_peripherals_equal_dense(self, params):
        dense_sim, dense_parts = _run_component_scenario(params, dense=True)
        event_sim, event_parts = _run_component_scenario(params, dense=False)

        assert dense_sim.current_cycle == event_sim.current_cycle
        for domain in ("default", "slow"):
            assert dense_sim.clock_domain(domain).cycles == event_sim.clock_domain(domain).cycles
        assert dense_sim.activity.as_dict() == event_sim.activity.as_dict()
        for dense_part, event_part in zip(dense_parts, event_parts):
            dense_regs = {r.name: r.value for r in dense_part.regs.registers()}
            event_regs = {r.name: r.value for r in event_part.regs.registers()}
            assert dense_regs == event_regs
        dense_timer, dense_pwm, dense_wdt, dense_uart = dense_parts
        event_timer, event_pwm, event_wdt, event_uart = event_parts
        assert dense_timer.overflow_count == event_timer.overflow_count
        assert dense_pwm.output_high_cycles == event_pwm.output_high_cycles
        assert (dense_wdt.barks, dense_wdt.bites) == (event_wdt.barks, event_wdt.bites)
        assert dense_uart.transmitted == event_uart.transmitted
