"""Differential property tests for the batch backends (hypothesis).

The numpy backend's whole claim is that vectorising span selection across a
batch changes *nothing* observable: for any mix of topologies, horizons,
and dense/skipping instances, the python reference backend and the numpy
backend must produce identical component state, identical activity
counters, identical kernel statistics (the span/skip accounting is pinned
byte for byte), and the *same interleaved stop-callback observation order*.
Both must also agree with the dense cycle-by-cycle reference on everything
semantically observable (pulse counts, countdowns, recorded activity) at
every stop.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import BatchSimulator, Simulator
from repro.sim.component import Component

pytest.importorskip("numpy")


class Blinker(Component):
    """Cacheable periodic pulse counter that records its pulses."""

    wake_cacheable = True

    def __init__(self, period, name="blinker"):
        super().__init__(name)
        self.period = period
        self.countdown = period
        self.pulses = 0
        self.idle_cycles = 0

    def tick(self, cycle):
        self.countdown -= 1
        if self.countdown == 0:
            self.pulses += 1
            self.record("pulse")
            self.countdown = self.period

    def next_event(self):
        return self.countdown

    def skip(self, cycles):
        self.countdown -= cycles
        self.idle_cycles += cycles


def _build(periods):
    simulator = Simulator()
    blinkers = [
        simulator.add_component(Blinker(period, name=f"b{i}")) for i, period in enumerate(periods)
    ]
    return simulator, blinkers


def _snapshot(blinkers):
    """The semantically observable state (valid across dense and skipping)."""
    return tuple((b.pulses, b.countdown) for b in blinkers)


def _run_batch(specs, backend):
    """Run every (periods, stops, dense) spec through one BatchSimulator.

    Returns the interleaved observation log ``(instance, stop, snapshot)``
    in firing order plus the per-instance final state, kernel stats, and
    activity counters.
    """
    batch = BatchSimulator(backend=backend)
    order = []
    sims = []
    for index, (periods, stops, dense) in enumerate(specs):
        simulator, blinkers = _build(periods)
        simulator.dense = dense
        sims.append((simulator, blinkers))

        def observe(elapsed, index=index, blinkers=blinkers):
            order.append((index, elapsed, _snapshot(blinkers)))

        batch.add(simulator, [(cycles, observe) for cycles in stops])
    batch.run()
    finals = [
        (
            _snapshot(blinkers),
            tuple(b.idle_cycles for b in blinkers),
            # plan_builds/plan_shared reflect the process-global intern
            # cache's history (whichever run goes first builds the plan),
            # not backend behaviour — everything else must match exactly.
            {k: v for k, v in simulator.kernel_stats.items() if not k.startswith("plan_")},
            dict(simulator.activity.as_dict()),
        )
        for simulator, blinkers in sims
    ]
    return order, finals


def _run_dense_reference(spec):
    """One instance stepped cycle by cycle (dense) through its stops."""
    periods, stops, _ = spec
    simulator, blinkers = _build(periods)
    simulator.dense = True
    observations = []
    elapsed = 0
    for cycles in sorted(stops):
        simulator.step(cycles - elapsed)
        elapsed = cycles
        observations.append((cycles, _snapshot(blinkers)))
    return observations, dict(simulator.activity.as_dict())


instance_specs = st.tuples(
    st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=3),
    st.lists(st.integers(min_value=1, max_value=1_200), min_size=1, max_size=4, unique=True),
    st.booleans(),
)
batch_specs = st.lists(instance_specs, min_size=1, max_size=4)


class TestBackendDifferential:
    @settings(max_examples=40, deadline=None)
    @given(batch_specs)
    def test_python_and_numpy_backends_are_indistinguishable(self, specs):
        python_order, python_finals = _run_batch(specs, backend="python")
        numpy_order, numpy_finals = _run_batch(specs, backend="numpy")
        # Same stops observed in the same interleaved order with the same
        # state visible — and identical final state, idle accounting,
        # kernel statistics (span/skip/next_event pins), and activity.
        assert numpy_order == python_order
        assert numpy_finals == python_finals

    @settings(max_examples=40, deadline=None)
    @given(batch_specs)
    def test_backends_match_the_dense_reference(self, specs):
        for backend in ("python", "numpy"):
            order, finals = _run_batch(specs, backend=backend)
            for index, spec in enumerate(specs):
                dense_observations, dense_activity = _run_dense_reference(spec)
                observations = [
                    (stop, snapshot) for instance, stop, snapshot in order if instance == index
                ]
                assert observations == dense_observations
                final_snapshot, _, _, activity = finals[index]
                assert final_snapshot == dense_observations[-1][1]
                assert activity == dense_activity
