"""Property-based tests for core data structures: FIFO, arbiter, register files, events."""

from hypothesis import given
from hypothesis import strategies as st

from repro.bus.arbiter import RoundRobinArbiter
from repro.core.fifo import TriggerFifo
from repro.peripherals.events import EventFabric
from repro.peripherals.regfile import Register

WORD = st.integers(min_value=0, max_value=0xFFFF_FFFF)


class TestTriggerFifoProperties:
    @given(st.integers(min_value=1, max_value=16), st.lists(WORD, max_size=64))
    def test_occupancy_never_exceeds_depth(self, depth, snapshots):
        fifo = TriggerFifo(depth)
        for cycle, snapshot in enumerate(snapshots):
            fifo.push(cycle, snapshot)
            assert fifo.level <= depth
        assert fifo.pushed + fifo.dropped == len(snapshots)

    @given(st.lists(WORD, min_size=1, max_size=16))
    def test_pop_order_matches_push_order(self, snapshots):
        fifo = TriggerFifo(len(snapshots))
        for cycle, snapshot in enumerate(snapshots):
            fifo.push(cycle, snapshot)
        popped = [fifo.pop().events_snapshot for _ in range(len(snapshots))]
        assert popped == snapshots

    @given(st.lists(st.booleans(), max_size=64))
    def test_level_equals_pushes_minus_pops(self, operations):
        fifo = TriggerFifo(depth=8)
        pushes = pops = 0
        for is_push in operations:
            if is_push:
                if fifo.push(pushes, 0):
                    pushes += 1
            elif fifo.pop() is not None:
                pops += 1
        assert fifo.level == pushes - pops


class TestArbiterProperties:
    @given(
        st.integers(min_value=1, max_value=8),
        st.lists(st.sets(st.integers(min_value=0, max_value=7), min_size=1), min_size=1, max_size=60),
    )
    def test_grants_only_go_to_requestors(self, n_requestors, rounds):
        names = [f"m{i}" for i in range(n_requestors)]
        arbiter = RoundRobinArbiter(names)
        for active_indices in rounds:
            active = [names[i % n_requestors] for i in active_indices]
            granted = arbiter.grant(active)
            assert granted in active

    @given(st.integers(min_value=2, max_value=8), st.integers(min_value=2, max_value=10))
    def test_fairness_over_full_rounds(self, n_requestors, n_rounds):
        """When everyone always requests, grant counts differ by at most one."""
        names = [f"m{i}" for i in range(n_requestors)]
        arbiter = RoundRobinArbiter(names)
        for _ in range(n_requestors * n_rounds):
            arbiter.grant(names)
        counts = [arbiter.grant_count(name) for name in names]
        assert max(counts) - min(counts) <= 1


class TestRegisterProperties:
    @given(WORD, WORD, WORD)
    def test_write_only_touches_writable_bits(self, reset, mask, value):
        register = Register("R", 0x0, reset=reset, writable_mask=mask)
        register.write(value)
        assert register.value & ~mask == reset & ~mask
        assert register.value & mask == value & mask

    @given(WORD, WORD)
    def test_w1c_never_sets_bits(self, reset, value):
        register = Register("STATUS", 0x0, reset=reset, write_one_to_clear=True)
        register.write(value)
        assert register.value & ~reset == 0

    @given(WORD, st.lists(WORD, max_size=8))
    def test_set_then_clear_roundtrip(self, initial, masks):
        register = Register("R", 0x0, reset=initial)
        for mask in masks:
            register.set_bits(mask)
            assert register.value & mask == mask
            register.clear_bits(mask)
            assert register.value & mask == 0


class TestEventFabricProperties:
    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=64))
    def test_active_mask_matches_pulsed_lines(self, pulses):
        fabric = EventFabric(capacity=16)
        for index in range(16):
            fabric.add_line(f"line{index}")
        expected = 0
        for index in pulses:
            fabric.pulse(index)
            expected |= 1 << index
        assert fabric.active_mask() == expected
        fabric.end_cycle()
        assert fabric.active_mask() == 0

    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=32))
    def test_pulse_counts_are_conserved(self, pulses):
        fabric = EventFabric(capacity=8)
        for index in range(8):
            fabric.add_line(f"line{index}")
        for index in pulses:
            fabric.pulse(index)
            fabric.end_cycle()
        assert fabric.total_pulses == len(pulses)
        assert sum(line.pulse_count for line in fabric.lines) == len(pulses)
