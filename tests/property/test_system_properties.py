"""Property-based tests on system-level invariants: assembler, execution, area and power models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.area.model import PelsAreaModel
from repro.bus.apb import ApbBus
from repro.core.assembler import Assembler
from repro.core.config import PelsConfig
from repro.core.isa import Command, Opcode, decode_command
from repro.core.pels import Pels
from repro.core.scm import ScmMemory
from repro.peripherals.events import EventFabric
from repro.peripherals.gpio import Gpio
from repro.power.model import PowerModel
from repro.sim.simulator import Simulator

WORD = st.integers(min_value=0, max_value=0xFFFF_FFFF)


class TestAssemblerProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["write", "set", "clear", "toggle", "capture"]),
                st.integers(min_value=0, max_value=0xFFF),
                WORD,
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_assembling_sequenced_commands_preserves_operands(self, statements):
        source = "\n".join(f"{mnemonic} {offset} {value}" for mnemonic, offset, value in statements)
        program = Assembler().assemble(source + "\nend")
        assert len(program) == len(statements) + 1
        for command, (mnemonic, offset, value) in zip(program, statements):
            assert command.opcode.name.lower() == mnemonic
            assert command.word_offset == offset
            assert command.data == value

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=0xFFF), WORD)
    def test_scm_roundtrip_of_assembled_program(self, lines, offset, value):
        program = Assembler().assemble(f"set {offset} {value}\nend")
        scm = ScmMemory(max(lines, len(program)))
        scm.load_program(list(program))
        assert scm.fetch(0) == program[0]


class TestExecutionProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=0xFF), st.integers(min_value=0, max_value=0xFF), st.sampled_from(["set", "clear", "toggle"]))
    def test_rmw_commands_compute_correct_result(self, initial, mask, mnemonic):
        """Whatever the initial register value, the RMW datapath matches the bitwise semantics."""
        simulator = Simulator()
        fabric = EventFabric()
        fabric.add_line("ext.event")
        bus = ApbBus("apb")
        gpio = Gpio("gpio")
        gpio.connect_events(fabric)
        bus.attach_slave(0x0, 0x1000, gpio)
        pels = Pels(PelsConfig(n_links=1, scm_lines=4), fabric, peripheral_bus=bus)
        simulator.add_component(gpio)
        simulator.add_component(pels)
        simulator.add_component(bus)

        gpio.regs.reg("OUT").hw_write(initial)
        out_word = gpio.regs.offset_of("OUT") // 4
        program = Assembler().assemble(f"{mnemonic} {out_word} {mask}\nend")
        pels.program_link(0, program, trigger_mask=0b1)
        fabric.pulse("ext.event")
        simulator.step(15)

        expected = {
            "set": initial | mask,
            "clear": initial & ~mask & 0xFFFF_FFFF,
            "toggle": initial ^ mask,
        }[mnemonic]
        assert gpio.output_value == expected
        assert pels.link(0).last_record.sequenced_latency == 7


class TestAreaModelProperties:
    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=16))
    def test_area_is_positive_and_monotonic_in_links(self, n_links, scm_lines):
        model = PelsAreaModel()
        smaller = model.estimate(PelsConfig(n_links=n_links, scm_lines=scm_lines))
        assert smaller.total_kge > 0
        if n_links < 16:
            larger = model.estimate(PelsConfig(n_links=n_links + 1, scm_lines=scm_lines))
            assert larger.total_kge > smaller.total_kge

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=1, max_value=15))
    def test_area_is_monotonic_in_scm_lines(self, n_links, scm_lines):
        model = PelsAreaModel()
        smaller = model.estimate(PelsConfig(n_links=n_links, scm_lines=scm_lines))
        larger = model.estimate(PelsConfig(n_links=n_links, scm_lines=scm_lines + 1))
        assert larger.total_kge > smaller.total_kge
        assert larger.component("Memory") > smaller.component("Memory")
        assert larger.component("Trigger") == smaller.component("Trigger")


class TestPowerModelProperties:
    @given(
        st.dictionaries(
            st.tuples(st.sampled_from(["ibex", "sram", "apb", "pels", "gpio"]),
                      st.sampled_from(["active_cycles", "reads", "writes", "grants", "link_busy_cycles", "bus_reads"])),
            st.integers(min_value=0, max_value=10_000),
            max_size=10,
        ),
        st.integers(min_value=1, max_value=100_000),
    )
    def test_power_is_non_negative_and_monotonic_in_activity(self, activity, window):
        model = PowerModel()
        breakdown = model.estimate(activity, window_cycles=window, frequency_hz=55e6)
        assert all(value >= 0 for value in breakdown.components_uw.values())
        doubled = {key: 2 * value for key, value in activity.items()}
        assert model.estimate(doubled, window, 55e6).total_uw >= breakdown.total_uw - 1e-9

    @given(st.integers(min_value=1, max_value=10_000))
    def test_leakage_independent_of_window(self, window):
        model = PowerModel()
        breakdown = model.estimate({}, window_cycles=window, frequency_hz=55e6)
        assert breakdown.component("Leakage") == model.estimate({}, 1, 55e6).component("Leakage")


class TestScmProperties:
    @given(st.lists(st.integers(min_value=0, max_value=(1 << 48) - 1), min_size=1, max_size=8))
    def test_scm_stores_arbitrary_valid_encodings(self, lines):
        scm = ScmMemory(len(lines))
        stored = 0
        for index, encoded in enumerate(lines):
            opcode = (encoded >> 44) & 0xF
            if opcode > int(max(Opcode)):
                continue
            scm.write_line(index, encoded)
            assert scm.read_line(index) == encoded
            stored += 1
        assert scm.write_count == stored
