"""Differential property test for the cached wake-horizon scheduler.

The deadline cache claims cycle-exactness under *arbitrary interleavings* of
stepping and wake-moving mutations: every register write, software helper,
and event input must invalidate exactly enough for the cached kernel to stay
equal to dense stepping.  These tests drive randomized mutation/step
sequences through three kernels — dense, event-driven with the legacy
re-poll-everything scheduler (``cached_wakes=False``), and event-driven with
the deadline cache — and require identical observable state from all three.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.peripherals.pwm import Pwm
from repro.peripherals.timer import Timer
from repro.peripherals.uart import Uart
from repro.peripherals.watchdog import Watchdog
from repro.sim.simulator import Simulator
from repro.soc.pulpissimo import SocConfig, build_soc

# One mutation op: (target, op, value).  Values are scaled into a sane range
# per op when applied.
mutation = st.tuples(
    st.sampled_from(
        [
            "timer_compare",
            "timer_prescaler",
            "timer_start",
            "timer_stop",
            "wdt_kick",
            "wdt_start",
            "wdt_timeout",
            "pwm_period",
            "pwm_shadow",
            "pwm_start",
            "pwm_stop",
            "uart_tx",
            "step",
        ]
    ),
    st.integers(min_value=1, max_value=300),
)

sequence = st.lists(mutation, min_size=1, max_size=30)


def _apply(soc_like, op, value):
    timer, wdt, pwm, uart, simulator = soc_like
    if op == "timer_compare":
        timer.regs.reg("COMPARE").write(value)
    elif op == "timer_prescaler":
        timer.regs.reg("PRESCALER").write(value % 4)
    elif op == "timer_start":
        timer.start()
    elif op == "timer_stop":
        timer.stop()
    elif op == "wdt_kick":
        wdt.kick()
    elif op == "wdt_start":
        wdt.start()
    elif op == "wdt_timeout":
        wdt.regs.reg("TIMEOUT").write(value + 10)
    elif op == "pwm_period":
        pwm.regs.reg("PERIOD").write(value)
    elif op == "pwm_shadow":
        pwm.regs.reg("DUTY_SHADOW").write(value % 64)
    elif op == "pwm_start":
        pwm.start()
    elif op == "pwm_stop":
        pwm.stop()
    elif op == "uart_tx":
        uart.regs.reg("TXDATA").write(value & 0xFF)
    elif op == "step":
        simulator.step(value)


def _run_bare(ops, dense, cached_wakes):
    simulator = Simulator(dense=dense, cached_wakes=cached_wakes)
    timer = Timer(compare=97)
    wdt = Watchdog(timeout=450, grace=40)
    pwm = Pwm(period=33, duty=11)
    uart = Uart(cycles_per_byte=7)
    for component in (timer, wdt, pwm, uart):
        simulator.add_component(component)
    parts = (timer, wdt, pwm, uart, simulator)
    for op, value in ops:
        _apply(parts, op, value)
    simulator.step(500)
    return parts


def _state(parts):
    timer, wdt, pwm, uart, simulator = parts
    return {
        "cycle": simulator.current_cycle,
        "regs": {
            block.name: {register.name: register.value for register in block.regs.registers()}
            for block in (timer, wdt, pwm, uart)
        },
        "timer_overflows": timer.overflow_count,
        "wdt": (wdt.kicks, wdt.barks, wdt.bites),
        "pwm": (pwm.periods_elapsed, pwm.duty_updates, pwm.output_high_cycles),
        "uart_tx": list(uart.transmitted),
        "activity": simulator.activity.as_dict(),
    }


class TestBareKernelInvalidation:
    @settings(max_examples=60, deadline=None)
    @given(ops=sequence)
    def test_cached_kernel_equals_dense_and_legacy(self, ops):
        dense = _state(_run_bare(ops, dense=True, cached_wakes=True))
        legacy = _state(_run_bare(ops, dense=False, cached_wakes=False))
        cached = _state(_run_bare(ops, dense=False, cached_wakes=True))
        assert cached == dense
        assert legacy == dense


soc_sequence = st.lists(mutation, min_size=1, max_size=15)


class TestSocKernelInvalidation:
    @settings(max_examples=15, deadline=None)
    @given(ops=soc_sequence)
    def test_cached_kernel_equals_dense_inside_the_soc(self, ops):
        """Same property through the full SoC: invalidations must also flow
        from bus writes, PELS action routing, and the consumer-aware fabric
        (the PWM/timer lines are unobserved here, so multi-period skip
        replays are exercised too)."""
        states = []
        for dense in (True, False):
            soc = build_soc(SocConfig(dense=dense))
            parts = (soc.timer, soc.wdt, soc.pwm, soc.uart, soc.simulator)
            for op, value in ops:
                _apply(parts, op, value)
            soc.run(700)
            states.append(_state(parts))
        dense_state, event_state = states
        assert event_state == dense_state
