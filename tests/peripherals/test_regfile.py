"""Tests for the register-file abstraction."""

import pytest

from repro.peripherals.regfile import Register, RegisterError, RegisterFile


class TestRegister:
    def test_reset_value(self):
        register = Register("CTRL", 0x0, reset=0x5)
        assert register.read() == 0x5

    def test_write_respects_writable_mask(self):
        register = Register("CTRL", 0x0, writable_mask=0x0F)
        register.write(0xFF)
        assert register.value == 0x0F

    def test_write_one_to_clear(self):
        register = Register("STATUS", 0x0, reset=0xF, write_one_to_clear=True)
        register.write(0x3)
        assert register.value == 0xC

    def test_on_write_callback_receives_raw_value(self):
        seen = []
        register = Register("CMD", 0x0, writable_mask=0x1, on_write=seen.append)
        register.write(0xFF)
        assert seen == [0xFF]

    def test_on_read_callback(self):
        calls = []
        register = Register("DATA", 0x0, on_read=lambda: calls.append(1))
        register.read()
        assert calls == [1]

    def test_hw_helpers_bypass_mask(self):
        register = Register("STATUS", 0x0, writable_mask=0x0)
        register.set_bits(0x5)
        assert register.value == 0x5
        register.clear_bits(0x1)
        assert register.value == 0x4
        register.hw_write(0x123)
        assert register.value == 0x123

    def test_invalid_offset_rejected(self):
        with pytest.raises(RegisterError):
            Register("X", 0x3)
        with pytest.raises(RegisterError):
            Register("X", -4)

    def test_invalid_reset_rejected(self):
        with pytest.raises(RegisterError):
            Register("X", 0x0, reset=1 << 32)

    def test_reset_value_restores(self):
        register = Register("CTRL", 0x0, reset=0x7)
        register.write(0x0)
        register.reset_value()
        assert register.value == 0x7


class TestRegisterFile:
    def make_file(self):
        regs = RegisterFile("periph")
        regs.define("CTRL", 0x0)
        regs.define("DATA", 0x4, reset=0xAA)
        return regs

    def test_lookup_by_name_and_offset(self):
        regs = self.make_file()
        assert regs.reg("DATA").offset == 0x4
        assert regs.at_offset(0x0).name == "CTRL"
        assert regs.offset_of("DATA") == 0x4

    def test_duplicate_offset_rejected(self):
        regs = self.make_file()
        with pytest.raises(RegisterError):
            regs.define("OTHER", 0x0)

    def test_duplicate_name_rejected(self):
        regs = self.make_file()
        with pytest.raises(RegisterError):
            regs.define("CTRL", 0x8)

    def test_unknown_lookups_raise(self):
        regs = self.make_file()
        with pytest.raises(RegisterError):
            regs.reg("MISSING")
        with pytest.raises(RegisterError):
            regs.at_offset(0x40)

    def test_bus_read_unmapped_returns_zero(self):
        regs = self.make_file()
        assert regs.read(0x100) == 0

    def test_bus_write_unmapped_is_ignored(self):
        regs = self.make_file()
        regs.write(0x100, 0xFF)  # must not raise

    def test_bus_read_write_roundtrip(self):
        regs = self.make_file()
        regs.write(0x0, 0x3)
        assert regs.read(0x0) == 0x3

    def test_reset_restores_all(self):
        regs = self.make_file()
        regs.write(0x4, 0x0)
        regs.reset()
        assert regs.read(0x4) == 0xAA

    def test_registers_sorted_by_offset(self):
        regs = self.make_file()
        assert [register.name for register in regs.registers()] == ["CTRL", "DATA"]

    def test_size_and_len(self):
        regs = self.make_file()
        assert regs.size_bytes == 0x8
        assert len(regs) == 2
        assert "CTRL" in regs
        assert "MISSING" not in regs
