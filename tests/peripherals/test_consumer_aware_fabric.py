"""Consumer-aware event fabric: unobserved lines unlock unbounded spans,
attaching an observer mid-run re-bounds them on the exact cycle."""

import pytest

from repro.peripherals.events import EventFabric
from repro.peripherals.pwm import Pwm
from repro.peripherals.timer import Timer
from repro.soc.pulpissimo import SocConfig, build_soc

PWM_PERIOD = 128


def _soc_with_running_pwm(dense=False, with_pels=True):
    soc = build_soc(SocConfig(dense=dense, with_pels=with_pels))
    soc.pwm.regs.reg("PERIOD").write(PWM_PERIOD)
    soc.pwm.start()
    return soc


class TestUnobservedProducers:
    def test_unobserved_pwm_reports_unbounded_horizon(self):
        soc = _soc_with_running_pwm()
        assert soc.pwm.next_event() is None

    def test_observed_pwm_reports_bounded_horizon(self):
        soc = _soc_with_running_pwm()
        soc.fabric.observe(soc.pwm.event_line_name("period"))
        assert soc.pwm.next_event() == PWM_PERIOD

    def test_unobserved_pwm_yields_multi_period_spans(self):
        soc = _soc_with_running_pwm()
        soc.run(100 * PWM_PERIOD)
        stats = soc.simulator.kernel_stats
        # The legacy kernel needed one dense tick per period (~100); the
        # consumer-aware kernel crosses the whole horizon in a few spans.
        assert stats["dense_ticks"] <= 3
        assert soc.pwm.periods_elapsed == 100

    def test_unobserved_spans_stay_cycle_exact_vs_dense(self):
        dense_soc = _soc_with_running_pwm(dense=True)
        event_soc = _soc_with_running_pwm(dense=False)
        for soc in (dense_soc, event_soc):
            soc.run(1_000)
        assert dense_soc.pwm.periods_elapsed == event_soc.pwm.periods_elapsed
        assert dense_soc.pwm.output_high_cycles == event_soc.pwm.output_high_cycles
        assert (
            dense_soc.pwm.regs.reg("COUNT").value == event_soc.pwm.regs.reg("COUNT").value
        )
        assert (
            dense_soc.fabric.line("pwm.period").pulse_count
            == event_soc.fabric.line("pwm.period").pulse_count
        )
        assert dense_soc.activity.as_dict() == event_soc.activity.as_dict()

    def test_period_lowered_below_count_stays_cycle_exact(self):
        # Regression: DUTY latched high, then PERIOD written below the
        # running COUNT — the free-running skip must still count the
        # immediate wrap tick as output-high (COUNT < DUTY), like dense does.
        results = []
        for dense in (True, False):
            soc = build_soc(SocConfig(dense=dense))
            pwm = soc.pwm
            pwm.regs.reg("PERIOD").write(100)
            pwm.regs.reg("DUTY_SHADOW").write(50)
            pwm.regs.reg("CTRL").write(0x3)  # enable | update-on-period
            soc.run(130)  # latch DUTY=50 at the first wrap, run to COUNT=30
            pwm.regs.reg("PERIOD").write(10)  # below the running COUNT
            soc.run(400)
            results.append(
                (
                    pwm.output_high_cycles,
                    pwm.periods_elapsed,
                    pwm.regs.reg("COUNT").value,
                    pwm.regs.reg("DUTY").value,
                )
            )
        assert results[0] == results[1]

    def test_unobserved_timer_free_runs(self):
        soc = build_soc(SocConfig())
        soc.timer.regs.reg("COMPARE").hw_write(50)
        soc.timer.start()
        soc.run(5_000)
        assert soc.timer.next_event() is None
        assert soc.timer.overflow_count == 100
        assert soc.simulator.kernel_stats["dense_ticks"] <= 3

    def test_one_shot_timer_keeps_bounded_horizon(self):
        # The one-shot overflow disables the timer — a non-uniform transition
        # that must stay a real wake even with nobody consuming the line.
        soc = build_soc(SocConfig())
        soc.timer.regs.reg("COMPARE").hw_write(50)
        soc.timer.regs.reg("CTRL").write(0x3)  # enable | one-shot
        assert soc.timer.next_event() == 50
        soc.run(200)
        assert soc.timer.overflow_count == 1
        assert not soc.timer.enabled


class TestMidRunObserverAttach:
    def test_pels_trigger_rebounds_pwm_on_the_exact_cycle(self):
        """Attach a PELS link trigger on pwm.period mid-run; the first
        triggered service must land on the same cycle as under dense."""
        from repro.core.assembler import Assembler

        cycles_to_first_service = []
        for dense in (True, False):
            soc = _soc_with_running_pwm(dense=dense)
            pels = soc.pels
            assert pels is not None
            soc.run(3 * PWM_PERIOD + 17)  # mid-period, mid-run
            pwm_bit = 1 << soc.fabric.index_of(soc.pwm.event_line_name("period"))
            pels.program_link(0, Assembler().assemble("end"), trigger_mask=pwm_bit)
            elapsed = soc.run_until(
                lambda: pels.link(0).events_serviced > 0, max_cycles=10 * PWM_PERIOD
            )
            cycles_to_first_service.append((elapsed, soc.simulator.current_cycle))
        assert cycles_to_first_service[0] == cycles_to_first_service[1]

    def test_irq_route_rebounds_pwm_on_the_exact_cycle(self):
        results = []
        for dense in (True, False):
            soc = _soc_with_running_pwm(dense=dense, with_pels=False)
            soc.run(2 * PWM_PERIOD + 40)
            soc.irq_controller.enable_line(soc.pwm.event_line_name("period"), 5)
            elapsed = soc.run_until(
                lambda: soc.irq_controller.has_pending, max_cycles=10 * PWM_PERIOD
            )
            results.append((elapsed, soc.pwm.periods_elapsed))
        assert results[0] == results[1]

    def test_disabling_the_route_unbounds_again(self):
        soc = _soc_with_running_pwm(with_pels=False)
        line = soc.pwm.event_line_name("period")
        soc.irq_controller.enable_line(line, 5)
        assert soc.pwm.next_event() is not None
        soc.irq_controller.disable_line(line)
        assert soc.pwm.next_event() is None


class TestFabricObserverBookkeeping:
    def test_subscribe_observes_everything_by_default(self):
        fabric = EventFabric()
        fabric.add_line("a.x")
        fabric.subscribe(lambda line: None)
        assert fabric.is_observed("a.x")

    def test_selective_subscription_observes_nothing(self):
        fabric = EventFabric()
        fabric.add_line("a.x")
        fabric.subscribe(lambda line: None, observe_all=False)
        assert not fabric.is_observed("a.x")

    def test_observe_before_line_registration(self):
        fabric = EventFabric()
        fabric.observe("late.line")
        fabric.add_line("late.line")
        assert fabric.is_observed("late.line")

    def test_unobserve_below_zero_raises(self):
        fabric = EventFabric()
        fabric.add_line("a.x")
        with pytest.raises(ValueError):
            fabric.unobserve("a.x")

    def test_accounting_observed_pulses_is_rejected(self):
        fabric = EventFabric()
        fabric.add_line("a.x")
        fabric.observe("a.x")
        with pytest.raises(RuntimeError):
            fabric.account_unobserved_pulses("a.x", 3)

    def test_observer_changes_notify_the_producer(self):
        class Recorder:
            def __init__(self):
                self.calls = 0

            def wake_changed(self):
                self.calls += 1

        fabric = EventFabric()
        fabric.add_line("a.x")
        producer = Recorder()
        fabric.register_producer("a.x", producer)
        fabric.observe("a.x")
        fabric.observe("a.x")  # second observer: no transition, no call
        fabric.unobserve("a.x")
        fabric.unobserve("a.x")
        assert producer.calls == 2  # 0->1 and 1->0 transitions only
        fabric.subscribe(lambda line: None)  # global observer: all producers
        assert producer.calls == 3


class TestBareComponentsStayConservative:
    def test_pwm_without_fabric_is_bounded(self):
        # A peripheral outside any fabric cannot prove nobody watches it
        # (unit tests poll its registers), so it keeps per-period wakes.
        pwm = Pwm(period=32)
        pwm.start()
        assert pwm.next_event() == 32

    def test_timer_without_fabric_is_bounded(self):
        timer = Timer(compare=10)
        timer.start()
        assert timer.next_event() == 10
