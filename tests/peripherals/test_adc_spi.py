"""Tests for the ADC and SPI controller models."""

import pytest

from repro.peripherals.adc import Adc
from repro.peripherals.events import EventFabric
from repro.peripherals.sensor import SensorWaveform, SyntheticSensor
from repro.peripherals.spi import SpiController
from repro.sim.simulator import Simulator


def attach(peripheral):
    simulator = Simulator()
    fabric = EventFabric()
    peripheral.connect_events(fabric)
    simulator.add_component(peripheral)
    return simulator, fabric


class TestAdc:
    def test_conversion_after_programmed_latency(self):
        sensor = SyntheticSensor(waveform=SensorWaveform(kind="constant", amplitude=77))
        adc = Adc(sensor=sensor, conversion_cycles=4)
        simulator, fabric = attach(adc)
        adc.bus_write(adc.regs.offset_of("CTRL"), 0x1)
        simulator.step(3)
        assert adc.busy
        simulator.step(1)
        assert not adc.busy
        assert adc.last_sample == 77
        assert fabric.line("adc.eoc").pulse_count == 1

    def test_event_input_starts_conversion(self):
        adc = Adc(conversion_cycles=2)
        simulator, _ = attach(adc)
        adc.on_event_input("soc")
        simulator.step(2)
        assert adc.conversions == 1

    def test_start_while_busy_is_ignored(self):
        adc = Adc(conversion_cycles=8)
        simulator, _ = attach(adc)
        adc.bus_write(adc.regs.offset_of("CTRL"), 0x1)
        simulator.step(1)
        adc.bus_write(adc.regs.offset_of("CTRL"), 0x1)
        simulator.step(12)
        assert adc.conversions == 1

    def test_continuous_mode_restarts(self):
        adc = Adc(conversion_cycles=2)
        simulator, _ = attach(adc)
        adc.bus_write(adc.regs.offset_of("CTRL"), 0x3)  # start + continuous
        simulator.step(8)
        assert adc.conversions >= 3

    def test_eoc_flag_is_w1c(self):
        adc = Adc(conversion_cycles=1)
        simulator, _ = attach(adc)
        adc.on_event_input("soc")
        simulator.step(1)
        status_offset = adc.regs.offset_of("STATUS")
        assert adc.bus_read(status_offset) & 0x1
        adc.bus_write(status_offset, 0x1)
        assert not adc.bus_read(status_offset) & 0x1

    def test_invalid_conversion_cycles_rejected(self):
        with pytest.raises(ValueError):
            Adc(conversion_cycles=0)


class TestSpiController:
    def make_spi(self, samples=(11, 22, 33, 44), cycles_per_word=2, length=4):
        sensor = SyntheticSensor(waveform=SensorWaveform(kind="sequence", values=samples))
        spi = SpiController(sensor=sensor, cycles_per_word=cycles_per_word)
        simulator, fabric = attach(spi)
        spi.regs.reg("LEN").hw_write(length)
        return simulator, fabric, spi

    def test_transfer_produces_eot_event(self):
        simulator, fabric, spi = self.make_spi()
        spi.bus_write(spi.regs.offset_of("CTRL"), 0x1)
        simulator.step(4 * 2)
        assert spi.transfers_completed == 1
        assert fabric.line("spi.eot").pulse_count == 1

    def test_words_land_in_rx_fifo_in_order(self):
        simulator, _, spi = self.make_spi()
        spi.bus_write(spi.regs.offset_of("CTRL"), 0x1)
        simulator.step(8)
        assert spi.rx_level == 4
        assert [spi.pop_rx() for _ in range(4)] == [11, 22, 33, 44]

    def test_rxdata_mirrors_latest_word(self):
        simulator, _, spi = self.make_spi()
        spi.bus_write(spi.regs.offset_of("CTRL"), 0x1)
        simulator.step(8)
        assert spi.regs.reg("RXDATA").value == 44

    def test_rxdata_read_pops_fifo(self):
        simulator, _, spi = self.make_spi(length=2)
        spi.bus_write(spi.regs.offset_of("CTRL"), 0x1)
        simulator.step(4)
        first = spi.bus_read(spi.regs.offset_of("RXDATA"))
        assert first == 11
        assert spi.rx_level == 1

    def test_event_input_starts_transfer(self):
        simulator, _, spi = self.make_spi(length=1)
        spi.on_event_input("start")
        simulator.step(2)
        assert spi.transfers_completed == 1

    def test_start_while_busy_ignored(self):
        simulator, _, spi = self.make_spi()
        spi.bus_write(spi.regs.offset_of("CTRL"), 0x1)
        simulator.step(1)
        spi.bus_write(spi.regs.offset_of("CTRL"), 0x1)
        simulator.step(20)
        assert spi.transfers_completed == 1

    def test_fifo_overflow_drops_oldest(self):
        simulator, _, spi = self.make_spi(
            samples=tuple(range(1, 21)), cycles_per_word=1, length=12
        )
        spi.rx_fifo_depth = 4
        spi.bus_write(spi.regs.offset_of("CTRL"), 0x1)
        simulator.step(12)
        assert spi.rx_overflows > 0
        assert spi.rx_level == 4

    def test_pop_empty_fifo_raises(self):
        _, _, spi = self.make_spi()
        with pytest.raises(RuntimeError):
            spi.pop_rx()

    def test_rx_ready_event_per_word(self):
        simulator, fabric, spi = self.make_spi(length=3)
        spi.bus_write(spi.regs.offset_of("CTRL"), 0x1)
        simulator.step(6)
        assert fabric.line("spi.rx_ready").pulse_count == 3

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            SpiController(cycles_per_word=0)
        with pytest.raises(ValueError):
            SpiController(rx_fifo_depth=0)

    def test_reset(self):
        simulator, _, spi = self.make_spi()
        spi.bus_write(spi.regs.offset_of("CTRL"), 0x1)
        simulator.step(8)
        spi.reset()
        assert spi.rx_level == 0
        assert spi.transfers_completed == 0
