"""Tests for the UART and I2C peripheral models."""

import pytest

from repro.peripherals.events import EventFabric
from repro.peripherals.i2c import I2cController
from repro.peripherals.uart import Uart
from repro.sim.simulator import Simulator


def attach(peripheral):
    simulator = Simulator()
    fabric = EventFabric()
    peripheral.connect_events(fabric)
    simulator.add_component(peripheral)
    return simulator, fabric


class TestUart:
    def test_transmit_byte(self):
        uart = Uart(cycles_per_byte=3)
        simulator, fabric = attach(uart)
        uart.bus_write(uart.regs.offset_of("TXDATA"), 0x41)
        simulator.step(3)
        assert uart.transmitted == [0x41]
        assert fabric.line("uart.tx_done").pulse_count == 1

    def test_tx_queue_preserves_order(self):
        uart = Uart(cycles_per_byte=2)
        simulator, _ = attach(uart)
        for byte in (1, 2, 3):
            uart.bus_write(uart.regs.offset_of("TXDATA"), byte)
        simulator.step(6)
        assert uart.transmitted == [1, 2, 3]
        assert not uart.tx_busy

    def test_tx_busy_flag(self):
        uart = Uart(cycles_per_byte=4)
        simulator, _ = attach(uart)
        uart.bus_write(uart.regs.offset_of("TXDATA"), 0x55)
        assert uart.tx_busy
        simulator.step(4)
        assert not uart.tx_busy

    def test_rx_injection_and_read(self):
        uart = Uart()
        simulator, fabric = attach(uart)
        uart.inject_rx(0x7F)
        assert uart.bus_read(uart.regs.offset_of("RXDATA")) == 0x7F
        assert fabric.line("uart.rx_ready").pulse_count == 1

    def test_only_low_byte_transmitted(self):
        uart = Uart(cycles_per_byte=1)
        simulator, _ = attach(uart)
        uart.bus_write(uart.regs.offset_of("TXDATA"), 0x1FF)
        simulator.step(1)
        assert uart.transmitted == [0xFF]

    def test_invalid_baud_rejected(self):
        with pytest.raises(ValueError):
            Uart(cycles_per_byte=0)

    def test_reset(self):
        uart = Uart(cycles_per_byte=1)
        simulator, _ = attach(uart)
        uart.bus_write(uart.regs.offset_of("TXDATA"), 0x1)
        simulator.step(1)
        uart.reset()
        assert uart.transmitted == []
        assert not uart.tx_busy


class TestI2c:
    def test_write_transaction_updates_target(self):
        i2c = I2cController(cycles_per_byte=2)
        simulator, fabric = attach(i2c)
        i2c.bus_write(i2c.regs.offset_of("TARGET_ADDR"), 0x50)
        i2c.bus_write(i2c.regs.offset_of("DATA"), 0x99)
        i2c.bus_write(i2c.regs.offset_of("CTRL"), 0x1)
        simulator.step(6)
        assert i2c.target_memory[0x50] == 0x99
        assert fabric.line("i2c.done").pulse_count == 1

    def test_read_transaction_returns_preloaded_value(self):
        i2c = I2cController(cycles_per_byte=1)
        simulator, _ = attach(i2c)
        i2c.preload_target(0x10, 0x42)
        i2c.bus_write(i2c.regs.offset_of("TARGET_ADDR"), 0x10)
        i2c.bus_write(i2c.regs.offset_of("CTRL"), 0x3)  # start + read
        simulator.step(3)
        assert i2c.bus_read(i2c.regs.offset_of("DATA")) == 0x42

    def test_transaction_duration_scales_with_clock(self):
        i2c = I2cController(cycles_per_byte=3)
        simulator, _ = attach(i2c)
        i2c.bus_write(i2c.regs.offset_of("CTRL"), 0x1)
        simulator.step(8)
        assert i2c.busy
        simulator.step(1)
        assert not i2c.busy

    def test_start_while_busy_ignored(self):
        i2c = I2cController(cycles_per_byte=2)
        simulator, _ = attach(i2c)
        i2c.bus_write(i2c.regs.offset_of("CTRL"), 0x1)
        simulator.step(1)
        i2c.bus_write(i2c.regs.offset_of("CTRL"), 0x1)
        simulator.step(20)
        assert i2c.transactions == 1

    def test_event_input_starts_transaction(self):
        i2c = I2cController(cycles_per_byte=1)
        simulator, _ = attach(i2c)
        i2c.on_event_input("start")
        simulator.step(3)
        assert i2c.transactions == 1

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            I2cController(cycles_per_byte=0)

    def test_reset(self):
        i2c = I2cController(cycles_per_byte=1)
        simulator, _ = attach(i2c)
        i2c.preload_target(0x1, 0x2)
        i2c.reset()
        assert i2c.target_memory == {}
