"""Tests for the GPIO and timer peripherals."""

import pytest

from repro.peripherals.events import EventFabric
from repro.peripherals.gpio import Gpio
from repro.peripherals.timer import Timer
from repro.sim.simulator import Simulator


def attach(peripheral):
    simulator = Simulator()
    fabric = EventFabric()
    peripheral.connect_events(fabric)
    simulator.add_component(peripheral)
    return simulator, fabric


class TestGpio:
    def test_set_clear_toggle_registers(self):
        gpio = Gpio()
        attach(gpio)
        gpio.bus_write(gpio.regs.offset_of("SET"), 0b110)
        assert gpio.output_value == 0b110
        gpio.bus_write(gpio.regs.offset_of("CLEAR"), 0b010)
        assert gpio.output_value == 0b100
        gpio.bus_write(gpio.regs.offset_of("TOGGLE"), 0b101)
        assert gpio.output_value == 0b001
        assert gpio.toggle_count == 1

    def test_pad_query(self):
        gpio = Gpio()
        attach(gpio)
        gpio.bus_write(gpio.regs.offset_of("OUT"), 0x2)
        assert gpio.pad(1)
        assert not gpio.pad(0)
        with pytest.raises(ValueError):
            gpio.pad(99)

    def test_event_inputs_drive_pad0(self):
        gpio = Gpio()
        attach(gpio)
        gpio.on_event_input("set_pad0")
        assert gpio.pad(0)
        gpio.on_event_input("toggle_pad0")
        assert not gpio.pad(0)
        gpio.on_event_input("clear_pad0")
        assert not gpio.pad(0)

    def test_rise_event_emitted_for_watched_pads(self):
        gpio = Gpio()
        _, fabric = attach(gpio)
        gpio.bus_write(gpio.regs.offset_of("RISE_EVT"), 0x1)
        gpio.bus_write(gpio.regs.offset_of("SET"), 0x1)
        assert fabric.line("gpio.rise").pulse_count == 1

    def test_no_rise_event_for_unwatched_pads(self):
        gpio = Gpio()
        _, fabric = attach(gpio)
        gpio.bus_write(gpio.regs.offset_of("SET"), 0x2)
        assert fabric.line("gpio.rise").pulse_count == 0

    def test_input_register_read_only_from_bus(self):
        gpio = Gpio()
        attach(gpio)
        gpio.drive_input(0x55)
        gpio.bus_write(gpio.regs.offset_of("IN"), 0xFF)
        assert gpio.bus_read(gpio.regs.offset_of("IN")) == 0x55

    def test_reset_clears_counters(self):
        gpio = Gpio()
        attach(gpio)
        gpio.bus_write(gpio.regs.offset_of("TOGGLE"), 0x1)
        gpio.reset()
        assert gpio.toggle_count == 0
        assert gpio.output_value == 0


class TestTimer:
    def test_counts_and_overflows(self):
        timer = Timer(compare=5)
        simulator, fabric = attach(timer)
        timer.start()
        simulator.step(5)
        assert timer.overflow_count == 1
        assert fabric.line("timer.overflow").pulse_count == 1

    def test_does_not_count_when_disabled(self):
        timer = Timer(compare=3)
        simulator, _ = attach(timer)
        simulator.step(10)
        assert timer.overflow_count == 0

    def test_periodic_overflow(self):
        timer = Timer(compare=4)
        simulator, _ = attach(timer)
        timer.start()
        simulator.step(12)
        assert timer.overflow_count == 3

    def test_one_shot_mode_stops_after_first_overflow(self):
        timer = Timer(compare=3)
        simulator, _ = attach(timer)
        timer.regs.reg("CTRL").hw_write(0x3)  # enable + one-shot
        simulator.step(20)
        assert timer.overflow_count == 1
        assert not timer.enabled

    def test_prescaler_slows_counting(self):
        timer = Timer(compare=2)
        simulator, _ = attach(timer)
        timer.regs.reg("PRESCALER").hw_write(1)  # count every 2nd cycle
        timer.start()
        simulator.step(8)
        assert timer.overflow_count == 2

    def test_status_flag_and_w1c(self):
        timer = Timer(compare=2)
        simulator, _ = attach(timer)
        timer.start()
        simulator.step(2)
        assert timer.bus_read(timer.regs.offset_of("STATUS")) & 0x1
        timer.bus_write(timer.regs.offset_of("STATUS"), 0x1)
        assert not timer.bus_read(timer.regs.offset_of("STATUS")) & 0x1

    def test_event_inputs_start_and_stop(self):
        timer = Timer(compare=100)
        simulator, _ = attach(timer)
        timer.on_event_input("start")
        assert timer.enabled
        timer.on_event_input("stop")
        assert not timer.enabled

    def test_reset(self):
        timer = Timer(compare=2)
        simulator, _ = attach(timer)
        timer.start()
        simulator.step(4)
        timer.reset()
        assert timer.overflow_count == 0
        assert not timer.enabled
