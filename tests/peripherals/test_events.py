"""Tests for event lines and the event fabric."""

import pytest

from repro.peripherals.events import EventFabric, EventLine, mask_for


class TestEventFabric:
    def test_add_and_lookup(self):
        fabric = EventFabric()
        line = fabric.add_line("timer.overflow", producer="timer")
        assert fabric.line("timer.overflow") is line
        assert fabric.line(0) is line
        assert fabric.index_of("timer.overflow") == 0

    def test_duplicate_name_rejected(self):
        fabric = EventFabric()
        fabric.add_line("x")
        with pytest.raises(ValueError):
            fabric.add_line("x")

    def test_capacity_limit(self):
        fabric = EventFabric(capacity=2)
        fabric.add_line("a")
        fabric.add_line("b")
        with pytest.raises(ValueError):
            fabric.add_line("c")

    def test_unknown_lookup_raises(self):
        fabric = EventFabric()
        with pytest.raises(KeyError):
            fabric.line("missing")
        with pytest.raises(KeyError):
            fabric.line(3)

    def test_pulse_sets_level_and_mask(self):
        fabric = EventFabric()
        fabric.add_line("a")
        fabric.add_line("b")
        fabric.pulse("b")
        assert fabric.is_active("b")
        assert not fabric.is_active("a")
        assert fabric.active_mask() == 0b10

    def test_end_cycle_clears_pulses(self):
        fabric = EventFabric()
        fabric.add_line("a")
        fabric.pulse("a")
        fabric.end_cycle()
        assert not fabric.is_active("a")
        assert fabric.active_mask() == 0

    def test_pulse_counting(self):
        fabric = EventFabric()
        line = fabric.add_line("a")
        for _ in range(3):
            fabric.pulse("a")
            fabric.end_cycle()
        assert line.pulse_count == 3
        assert fabric.total_pulses == 3

    def test_subscribers_called_synchronously(self):
        fabric = EventFabric()
        fabric.add_line("a")
        seen = []
        fabric.subscribe(lambda line: seen.append(line.name))
        fabric.pulse("a")
        assert seen == ["a"]

    def test_active_lines(self):
        fabric = EventFabric()
        fabric.add_line("a")
        fabric.add_line("b")
        fabric.pulse("a")
        assert [line.name for line in fabric.active_lines()] == ["a"]

    def test_reset_clears_statistics(self):
        fabric = EventFabric()
        fabric.add_line("a")
        fabric.pulse("a")
        fabric.reset()
        assert fabric.total_pulses == 0
        assert not fabric.is_active("a")
        assert len(fabric) == 1  # lines survive reset

    def test_mask_for_helper(self):
        fabric = EventFabric()
        fabric.add_line("a")
        fabric.add_line("b")
        fabric.add_line("c")
        assert mask_for(fabric, ["a", "c"]) == 0b101

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventFabric(capacity=0)


class TestEventLine:
    def test_validation(self):
        with pytest.raises(ValueError):
            EventLine(index=-1, name="x")
        with pytest.raises(ValueError):
            EventLine(index=0, name="")
