"""Tests for the synthetic sensor (the paper's thermistor/varistor substitute)."""

import pytest

from repro.peripherals.sensor import SensorWaveform, SyntheticSensor


class TestSensorWaveform:
    def test_constant(self):
        waveform = SensorWaveform(kind="constant", amplitude=42)
        assert [waveform.sample(i) for i in range(3)] == [42, 42, 42]

    def test_ramp_wraps(self):
        waveform = SensorWaveform(kind="ramp", amplitude=4, offset=10, step=1)
        assert [waveform.sample(i) for i in range(6)] == [10, 11, 12, 13, 10, 11]

    def test_sine_oscillates_around_offset(self):
        waveform = SensorWaveform(kind="sine", amplitude=100, offset=200, period=4)
        samples = [waveform.sample(i) for i in range(4)]
        assert samples[0] == 200
        assert samples[1] == 300
        assert samples[3] == 100

    def test_step(self):
        waveform = SensorWaveform(kind="step", amplitude=50, offset=10, period=3)
        assert waveform.sample(2) == 10
        assert waveform.sample(3) == 60

    def test_sequence_cycles(self):
        waveform = SensorWaveform(kind="sequence", values=(1, 2, 3))
        assert [waveform.sample(i) for i in range(5)] == [1, 2, 3, 1, 2]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SensorWaveform(kind="noise")

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            SensorWaveform(kind="sequence", values=())

    def test_negative_index_rejected(self):
        waveform = SensorWaveform()
        with pytest.raises(ValueError):
            waveform.sample(-1)

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            SensorWaveform(kind="sine", period=0)


class TestSyntheticSensor:
    def test_waveform_sampling(self):
        sensor = SyntheticSensor(waveform=SensorWaveform(kind="sequence", values=(5, 6)))
        assert sensor.next_sample() == 5
        assert sensor.next_sample() == 6
        assert sensor.samples_produced == 2

    def test_override_queue_takes_priority(self):
        sensor = SyntheticSensor(waveform=SensorWaveform(kind="constant", amplitude=1))
        sensor.push_samples([100, 200])
        assert sensor.next_sample() == 100
        assert sensor.next_sample() == 200
        assert sensor.next_sample() == 1

    def test_peek_does_not_consume(self):
        sensor = SyntheticSensor()
        sensor.push_sample(7)
        assert sensor.peek_next() == 7
        assert sensor.next_sample() == 7

    def test_push_rejects_out_of_range(self):
        sensor = SyntheticSensor()
        with pytest.raises(ValueError):
            sensor.push_sample(-1)
        with pytest.raises(ValueError):
            sensor.push_sample(1 << 32)

    def test_reset(self):
        sensor = SyntheticSensor(waveform=SensorWaveform(kind="sequence", values=(1, 2, 3)))
        sensor.next_sample()
        sensor.push_sample(9)
        sensor.reset()
        assert sensor.next_sample() == 1
        assert sensor.samples_produced == 1
