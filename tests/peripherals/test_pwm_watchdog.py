"""Tests for the PWM timer and the watchdog peripheral."""

import pytest

from repro.peripherals.events import EventFabric
from repro.peripherals.pwm import Pwm
from repro.peripherals.watchdog import Watchdog
from repro.sim.simulator import Simulator


def attach(peripheral):
    simulator = Simulator()
    fabric = EventFabric()
    peripheral.connect_events(fabric)
    simulator.add_component(peripheral)
    return simulator, fabric


class TestPwm:
    def test_period_event_and_counter_wrap(self):
        pwm = Pwm(period=10, duty=5)
        simulator, fabric = attach(pwm)
        pwm.start()
        simulator.step(20)
        assert pwm.periods_elapsed == 2
        assert fabric.line("pwm.period").pulse_count == 2

    def test_output_follows_duty(self):
        pwm = Pwm(period=10, duty=3)
        simulator, _ = attach(pwm)
        pwm.start()
        simulator.step(30)
        assert pwm.output_high_cycles == 9  # 3 cycles high per 10-cycle period
        assert pwm.duty_fraction == pytest.approx(0.3)

    def test_zero_duty_never_drives_output(self):
        pwm = Pwm(period=8, duty=0)
        simulator, _ = attach(pwm)
        pwm.start()
        simulator.step(16)
        assert pwm.output_high_cycles == 0
        assert not pwm.output

    def test_shadow_duty_latched_on_update_event(self):
        pwm = Pwm(period=10, duty=2)
        simulator, _ = attach(pwm)
        pwm.start()
        pwm.bus_write(pwm.regs.offset_of("DUTY_SHADOW"), 7)
        assert pwm.regs.reg("DUTY").value == 2  # not taken over yet
        pwm.on_event_input("update")
        assert pwm.regs.reg("DUTY").value == 7
        assert pwm.duty_updates == 1

    def test_shadow_duty_latched_at_period_boundary(self):
        pwm = Pwm(period=5, duty=1)
        simulator, _ = attach(pwm)
        pwm.regs.reg("CTRL").hw_write(0x3)  # enable + update-on-period
        pwm.bus_write(pwm.regs.offset_of("DUTY_SHADOW"), 4)
        simulator.step(5)
        assert pwm.regs.reg("DUTY").value == 4

    def test_duty_clamped_to_period(self):
        pwm = Pwm(period=10)
        attach(pwm)
        pwm.bus_write(pwm.regs.offset_of("DUTY_SHADOW"), 99)
        pwm.on_event_input("update")
        assert pwm.regs.reg("DUTY").value == 10

    def test_start_stop_event_inputs(self):
        pwm = Pwm(period=10)
        simulator, _ = attach(pwm)
        pwm.on_event_input("start")
        assert pwm.enabled
        pwm.on_event_input("stop")
        assert not pwm.enabled

    def test_disabled_pwm_does_not_count(self):
        pwm = Pwm(period=4)
        simulator, _ = attach(pwm)
        simulator.step(10)
        assert pwm.periods_elapsed == 0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            Pwm(period=0)
        with pytest.raises(ValueError):
            Pwm(period=4, duty=5)

    def test_reset(self):
        pwm = Pwm(period=4, duty=2)
        simulator, _ = attach(pwm)
        pwm.start()
        simulator.step(10)
        pwm.reset()
        assert pwm.periods_elapsed == 0
        assert pwm.regs.reg("COUNT").value == 0


class TestWatchdog:
    def test_bark_then_bite_without_kicks(self):
        wdt = Watchdog(timeout=10, grace=5)
        simulator, fabric = attach(wdt)
        wdt.start()
        simulator.step(10)
        assert wdt.barked and not wdt.bitten
        assert fabric.line("wdt.bark").pulse_count == 1
        simulator.step(5)
        assert wdt.bitten
        assert fabric.line("wdt.bite").pulse_count == 1
        assert not wdt.enabled  # a bite disables the counter

    def test_kick_prevents_bark(self):
        wdt = Watchdog(timeout=10, grace=5)
        simulator, _ = attach(wdt)
        wdt.start()
        for _ in range(4):
            simulator.step(8)
            wdt.kick()
        assert wdt.barks == 0
        assert wdt.kicks == 4

    def test_kick_via_event_input(self):
        """The input PELS would drive autonomously (e.g. on every SPI end of transfer)."""
        wdt = Watchdog(timeout=6, grace=3)
        simulator, _ = attach(wdt)
        wdt.start()
        simulator.step(5)
        wdt.on_event_input("kick")
        simulator.step(5)
        assert wdt.barks == 0

    def test_kick_register_write(self):
        wdt = Watchdog(timeout=6, grace=3)
        simulator, _ = attach(wdt)
        wdt.start()
        simulator.step(5)
        wdt.bus_write(wdt.regs.offset_of("KICK"), 1)
        assert wdt.regs.reg("COUNT").value == 6

    def test_kick_during_grace_recovers(self):
        wdt = Watchdog(timeout=5, grace=10)
        simulator, _ = attach(wdt)
        wdt.start()
        simulator.step(6)
        assert wdt.barked
        wdt.kick()
        simulator.step(4)
        assert not wdt.bitten

    def test_status_flags_are_w1c(self):
        wdt = Watchdog(timeout=3, grace=2)
        simulator, _ = attach(wdt)
        wdt.start()
        simulator.step(3)
        assert wdt.barked
        wdt.bus_write(wdt.regs.offset_of("STATUS"), 0x1)
        assert not wdt.barked

    def test_disabled_watchdog_never_fires(self):
        wdt = Watchdog(timeout=3, grace=2)
        simulator, _ = attach(wdt)
        simulator.step(20)
        assert wdt.barks == 0 and wdt.bites == 0

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            Watchdog(timeout=0)
        with pytest.raises(ValueError):
            Watchdog(grace=0)

    def test_reset(self):
        wdt = Watchdog(timeout=3, grace=2)
        simulator, _ = attach(wdt)
        wdt.start()
        simulator.step(10)
        wdt.reset()
        assert wdt.barks == 0 and wdt.bites == 0 and wdt.kicks == 0


class TestSocIntegration:
    def test_pwm_and_watchdog_present_in_the_soc(self):
        from repro.soc.pulpissimo import build_soc

        soc = build_soc()
        assert soc.register_address("pwm", "DUTY_SHADOW") == 0x1A10_600C
        assert soc.register_address("wdt", "KICK") == 0x1A10_700C
        names = {line.name for line in soc.fabric.lines}
        assert "pwm.period" in names and "wdt.bark" in names

    def test_pels_links_adc_result_to_pwm_duty(self):
        """End-to-end actuator scenario: ADC sample becomes the PWM duty cycle."""
        from repro.core.assembler import Assembler
        from repro.peripherals.sensor import SensorWaveform
        from repro.soc.pulpissimo import SocConfig, build_soc

        soc = build_soc(SocConfig(sensor_waveform=SensorWaveform(kind="constant", amplitude=60)))
        pels = soc.pels
        # The link's base address is the ADC window so that both the ADC and
        # the PWM (three windows higher) stay within the 12-bit word offset.
        base = soc.address_map.peripheral_base("adc")
        assembler = Assembler()
        adc_data = (soc.register_address("adc", "DATA") - base) // 4
        pwm_shadow = (soc.register_address("pwm", "DUTY_SHADOW") - base) // 4
        # capture the ADC sample, then write it (masked to 8 bits) into the PWM
        # shadow register and latch it through the update event input.
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.pwm, port="update")
        program = assembler.assemble(
            f"""
            capture {adc_data} 0xFF
            set {pwm_shadow} 0x3C
            action 0 0x1
            end
            """
        )
        adc_bit = 1 << soc.fabric.index_of(soc.adc.event_line_name("eoc"))
        pels.program_link(0, program, trigger_mask=adc_bit, base_address=base)
        soc.pwm.regs.reg("PERIOD").hw_write(100)
        soc.pwm.start()
        soc.adc.bus_write(soc.adc.regs.offset_of("CTRL"), 0x1)
        soc.run(60)
        assert soc.pwm.regs.reg("DUTY").value == 0x3C
        assert soc.pels.link(0).execution.capture_register == 60
