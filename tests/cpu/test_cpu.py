"""Tests for the Ibex-class core model, the interrupt controller, and the ISR programs."""

import pytest

from repro.bus.apb import ApbBus
from repro.bus.interconnect import SystemInterconnect
from repro.cpu.ibex import CpuState, IbexCore
from repro.cpu.instructions import (
    Alu,
    AluOp,
    Branch,
    BranchCondition,
    Li,
    Load,
    Nop,
    Store,
)
from repro.cpu.irq import InterruptController
from repro.cpu.programs import build_linking_isr, build_threshold_isr
from repro.peripherals.events import EventFabric
from repro.peripherals.gpio import Gpio
from repro.sim.simulator import Simulator
from repro.soc.memory import SramBank


def make_cpu_system():
    simulator = Simulator()
    fabric = EventFabric()
    fabric.add_line("ext.irq_event", producer="test")
    gpio = Gpio("gpio")
    gpio.connect_events(fabric)
    apb = ApbBus("apb")
    apb.attach_slave(0x1A10_1000, 0x1000, gpio)
    sram = SramBank("sram", size_bytes=4096)
    interconnect = SystemInterconnect("soc_interconnect", peripheral_bus=apb)
    interconnect.attach_memory(0x1C00_0000, 4096, sram)
    irq = InterruptController("irq_ctrl", fabric=fabric)
    cpu = IbexCore("ibex", interconnect=interconnect, irq_controller=irq, instruction_memory=sram)
    for component in (gpio, irq, cpu, interconnect, apb, sram):
        simulator.add_component(component)
    return simulator, fabric, cpu, irq, gpio, sram


class TestInstructions:
    def test_alu_operations(self):
        assert AluOp.ADD.apply(0xFFFF_FFFF, 1) == 0
        assert AluOp.SUB.apply(0, 1) == 0xFFFF_FFFF
        assert AluOp.AND.apply(0xF0, 0x3C) == 0x30
        assert AluOp.OR.apply(0xF0, 0x0F) == 0xFF
        assert AluOp.XOR.apply(0xFF, 0x0F) == 0xF0
        assert AluOp.MOV.apply(0x12, 0x34) == 0x34

    def test_branch_conditions(self):
        assert BranchCondition.GT.evaluate(51, 50)
        assert not BranchCondition.GT.evaluate(50, 50)
        assert BranchCondition.LE.evaluate(50, 50)
        assert BranchCondition.EQ.evaluate(1, 1)
        assert BranchCondition.NE.evaluate(1, 2)
        assert BranchCondition.GE.evaluate(2, 2)
        assert BranchCondition.LT.evaluate(1, 2)

    def test_describe_strings(self):
        assert "li" in Li("t0", 5).describe()
        assert "lw" in Load("t0", 0x1000).describe()
        assert "sw" in Store("t0", 0x1000).describe()
        assert "nop" in Nop().describe()
        assert "or" in Alu("t0", "t0", AluOp.OR, 1).describe()
        assert Branch("t0", BranchCondition.GT, 5).describe().startswith("bgt")


class TestInterruptController:
    def test_event_latches_pending_interrupt(self):
        fabric = EventFabric()
        fabric.add_line("spi.eot")
        irq = InterruptController(fabric=fabric)
        irq.enable_line("spi.eot", 3)
        fabric.pulse("spi.eot")
        assert irq.has_pending
        assert irq.highest_pending() == 3
        assert irq.pending_mask() == 0b1000

    def test_unenabled_lines_ignored(self):
        fabric = EventFabric()
        fabric.add_line("spi.eot")
        irq = InterruptController(fabric=fabric)
        fabric.pulse("spi.eot")
        assert not irq.has_pending

    def test_claim_clears_pending(self):
        fabric = EventFabric()
        fabric.add_line("spi.eot")
        irq = InterruptController(fabric=fabric)
        irq.enable_line("spi.eot", 1)
        fabric.pulse("spi.eot")
        irq.claim(1)
        assert not irq.has_pending
        with pytest.raises(RuntimeError):
            irq.claim(1)

    def test_priority_is_lowest_number(self):
        fabric = EventFabric()
        fabric.add_line("a")
        fabric.add_line("b")
        irq = InterruptController(fabric=fabric)
        irq.enable_line("a", 5)
        irq.enable_line("b", 2)
        fabric.pulse("a")
        fabric.pulse("b")
        assert irq.highest_pending() == 2

    def test_disable_line(self):
        fabric = EventFabric()
        fabric.add_line("a")
        irq = InterruptController(fabric=fabric)
        irq.enable_line("a", 1)
        irq.disable_line("a")
        fabric.pulse("a")
        assert not irq.has_pending

    def test_invalid_irq_number_rejected(self):
        irq = InterruptController()
        with pytest.raises(ValueError):
            irq.enable_line("x", -1)


class TestIbexCore:
    def test_sleeps_until_interrupt(self):
        simulator, fabric, cpu, irq, _, _ = make_cpu_system()
        cpu.register_isr(1, [Nop()])
        irq.enable_line("ext.irq_event", 1)
        simulator.step(10)
        assert cpu.sleeping
        assert cpu.sleep_cycles == 10

    def test_interrupt_wakes_and_runs_handler(self):
        simulator, fabric, cpu, irq, _, _ = make_cpu_system()
        cpu.register_isr(1, [Li("t0", 5), Alu("t0", "t0", AluOp.ADD, 2)])
        irq.enable_line("ext.irq_event", 1)
        fabric.pulse("ext.irq_event")
        simulator.step(20)
        assert cpu.sleeping
        assert cpu.interrupts_serviced == 1
        assert cpu.registers["t0"] == 7
        assert cpu.instructions_retired == 2

    def test_unregistered_irq_is_ignored(self):
        simulator, fabric, cpu, irq, _, _ = make_cpu_system()
        irq.enable_line("ext.irq_event", 7)
        fabric.pulse("ext.irq_event")
        simulator.step(10)
        assert cpu.interrupts_serviced == 0

    def test_load_store_roundtrip_through_interconnect(self):
        simulator, fabric, cpu, irq, gpio, _ = make_cpu_system()
        gpio.regs.reg("OUT").hw_write(0x0F)
        handler = [
            Load("t0", 0x1A10_1004),
            Alu("t0", "t0", AluOp.OR, 0xF0),
            Store("t0", 0x1A10_1004),
        ]
        cpu.register_isr(1, handler)
        irq.enable_line("ext.irq_event", 1)
        fabric.pulse("ext.irq_event")
        simulator.step(40)
        assert gpio.output_value == 0xFF
        assert cpu.loads == 1 and cpu.stores == 1

    def test_branch_skips_instructions(self):
        simulator, fabric, cpu, irq, _, _ = make_cpu_system()
        handler = [
            Li("t0", 100),
            Branch("t0", BranchCondition.GT, 50, skip_count=1),
            Li("t1", 0xBAD),
            Li("t2", 0x600D),
        ]
        cpu.register_isr(1, handler)
        irq.enable_line("ext.irq_event", 1)
        fabric.pulse("ext.irq_event")
        simulator.step(30)
        assert "t1" not in cpu.registers
        assert cpu.registers["t2"] == 0x600D

    def test_ifetch_activity_attributed_to_sram(self):
        simulator, fabric, cpu, irq, _, sram = make_cpu_system()
        cpu.register_isr(1, [Nop(), Nop()])
        irq.enable_line("ext.irq_event", 1)
        fabric.pulse("ext.irq_event")
        simulator.step(20)
        assert sram.instruction_fetches > 0
        assert simulator.activity.get("sram", "instruction_fetches") == sram.instruction_fetches

    def test_clock_gating_changes_sleep_accounting(self):
        simulator, fabric, cpu, irq, _, _ = make_cpu_system()
        cpu.clock_gated = True
        simulator.step(5)
        assert simulator.activity.get("ibex", "gated_cycles") == 5
        assert simulator.activity.get("ibex", "sleep_cycles") == 0

    def test_multi_cycle_nop(self):
        simulator, fabric, cpu, irq, _, _ = make_cpu_system()
        cpu.register_isr(1, [Nop(cycles=5)])
        irq.enable_line("ext.irq_event", 1)
        fabric.pulse("ext.irq_event")
        simulator.step(30)
        assert cpu.sleeping
        assert cpu.instructions_retired == 1

    def test_load_store_without_interconnect_raises(self):
        cpu = IbexCore("solo")
        simulator = Simulator()
        simulator.add_component(cpu)
        cpu._current_isr = [Load("t0", 0x1000)]
        cpu.state = CpuState.EXECUTING
        with pytest.raises(RuntimeError):
            simulator.step(1)

    def test_reset(self):
        simulator, fabric, cpu, irq, _, _ = make_cpu_system()
        cpu.register_isr(1, [Nop()])
        irq.enable_line("ext.irq_event", 1)
        fabric.pulse("ext.irq_event")
        simulator.step(15)
        cpu.reset()
        assert cpu.sleeping
        assert cpu.instructions_retired == 0


class TestIsrPrograms:
    def test_linking_isr_structure(self):
        isr = build_linking_isr(0x1A10_1004, 0x1, source_flag_address=0x1A10_B010)
        kinds = [type(instruction).__name__ for instruction in isr]
        assert kinds == ["Li", "Store", "Load", "Alu", "Store"]

    def test_linking_isr_without_flag_clear(self):
        isr = build_linking_isr(0x1A10_1004, 0x1)
        assert len(isr) == 3

    def test_threshold_isr_structure(self):
        isr = build_threshold_isr(
            flag_register_address=0x1A10_2014,
            flag_mask=0x1,
            data_register_address=0x1A10_2008,
            data_mask=0xFF,
            threshold=50,
            gpio_set_register_address=0x1A10_1004,
            gpio_mask=0x1,
        )
        assert len(isr) == 9
        assert isinstance(isr[5], Branch)
        assert isr[5].skip_count == 3
