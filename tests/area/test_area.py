"""Tests for the area models (Figure 6a sweep and Figure 6b SoC breakdown)."""

import pytest

from repro.area.model import BASELINE_CORE_AREAS_KGE, AreaCoefficients, PelsAreaModel
from repro.area.soc import PulpissimoAreaModel, figure6b_breakdown
from repro.area.sweep import (
    PAPER_LINE_SWEEP,
    PAPER_LINK_SWEEP,
    figure6a_sweep,
    minimal_configuration_summary,
    sweep_as_table,
)
from repro.core.config import PelsConfig


class TestPelsAreaModel:
    def test_minimal_configuration_is_about_7_kge(self):
        """Section IV-C: 1 link with 4 commands costs about 7 kGE."""
        model = PelsAreaModel()
        minimal = model.estimate_config(1, 4)
        assert minimal.total_kge == pytest.approx(7.0, abs=0.3)

    def test_minimal_is_4x_smaller_than_ibex(self):
        model = PelsAreaModel()
        ratio = model.ratio_to_core(PelsConfig(n_links=1, scm_lines=4), "ibex")
        assert ratio == pytest.approx(4.0, rel=0.15)

    def test_minimal_is_2x_smaller_than_picorv32(self):
        model = PelsAreaModel()
        ratio = model.ratio_to_core(PelsConfig(n_links=1, scm_lines=4), "picorv32")
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_baseline_core_areas_match_paper(self):
        assert BASELINE_CORE_AREAS_KGE["ibex"] == pytest.approx(27.0)
        assert BASELINE_CORE_AREAS_KGE["picorv32"] == pytest.approx(14.5)

    def test_unknown_core_rejected(self):
        with pytest.raises(KeyError):
            PelsAreaModel().ratio_to_core(PelsConfig(), "cortex-m0")

    def test_area_grows_with_links(self):
        model = PelsAreaModel()
        areas = [model.estimate_config(n, 6).total_kge for n in PAPER_LINK_SWEEP]
        assert areas == sorted(areas)
        assert areas[-1] > areas[0]

    def test_area_grows_with_scm_lines(self):
        model = PelsAreaModel()
        areas = [model.estimate_config(4, lines).total_kge for lines in PAPER_LINE_SWEEP]
        assert areas == sorted(areas)

    def test_memory_component_scales_only_with_lines_per_link(self):
        model = PelsAreaModel()
        small = model.estimate_config(2, 4)
        large = model.estimate_config(2, 8)
        assert large.component("Memory") > small.component("Memory")
        assert large.component("Trigger") == small.component("Trigger")

    def test_breakdown_components_match_figure_legend(self):
        breakdown = PelsAreaModel().estimate_config(1, 4)
        assert set(breakdown.components_kge) == set(PelsAreaModel.COMPONENT_NAMES)
        assert breakdown.as_dict()["Total"] == pytest.approx(breakdown.total_kge)

    def test_largest_configuration_stays_in_figure_range(self):
        """Figure 6a's y-axis tops out around 54 kGE for 8 links x 8 lines."""
        total = PelsAreaModel().estimate_config(8, 8).total_kge
        assert 45.0 <= total <= 56.0

    def test_custom_coefficients(self):
        model = PelsAreaModel(AreaCoefficients(trigger_per_link=1.0))
        assert model.estimate_config(1, 4).component("Trigger") == pytest.approx(1.0)


class TestFigure6aSweep:
    def test_sweep_covers_all_paper_points(self):
        points = figure6a_sweep()
        assert len(points) == len(PAPER_LINK_SWEEP) * len(PAPER_LINE_SWEEP)
        configurations = {(point.n_links, point.scm_lines) for point in points}
        assert (1, 4) in configurations and (8, 8) in configurations

    def test_every_swept_configuration_is_smaller_than_ibex_or_close(self):
        """Even an 8-link PELS with 4 lines stays cheaper than two Ibex cores."""
        for point in figure6a_sweep():
            assert point.total_kge < 2 * BASELINE_CORE_AREAS_KGE["ibex"]

    def test_minimal_summary(self):
        summary = minimal_configuration_summary()
        assert summary["pels_minimal_kge"] == pytest.approx(7.0, abs=0.3)
        assert summary["ibex_ratio"] > 3.5

    def test_table_rendering(self):
        table = sweep_as_table(figure6a_sweep())
        assert "links" in table
        assert "ibex" in table
        assert "picorv32" in table


class TestFigure6b:
    def test_pels_fraction_of_logic_area(self):
        """Figure 6b: a 4-link / 6-line PELS costs about 9.5 % of PULPissimo's logic."""
        model = PulpissimoAreaModel()
        fraction = model.pels_fraction(PelsConfig(n_links=4, scm_lines=6))
        assert fraction == pytest.approx(0.095, abs=0.01)

    def test_pels_fraction_with_sram_about_one_percent(self):
        model = PulpissimoAreaModel()
        fraction = model.pels_fraction(PelsConfig(n_links=4, scm_lines=6), include_sram=True)
        assert fraction == pytest.approx(0.01, abs=0.004)

    def test_fractions_sum_to_one(self):
        model = PulpissimoAreaModel()
        for include_sram in (False, True):
            fractions = model.fractions(PelsConfig(n_links=4, scm_lines=6), include_sram=include_sram)
            assert sum(fractions.values()) == pytest.approx(1.0)

    def test_figure6b_helper_structure(self):
        data = figure6b_breakdown()
        assert set(data) == {"logic_fractions", "with_sram_fractions", "absolute_kge"}
        assert "SRAM" in data["absolute_kge"]
        assert "PELS" in data["logic_fractions"]

    def test_sram_dominates_total_area(self):
        data = figure6b_breakdown()
        assert data["with_sram_fractions"]["SRAM"] > 0.8

    def test_smaller_pels_configuration_takes_smaller_fraction(self):
        model = PulpissimoAreaModel()
        small = model.pels_fraction(PelsConfig(n_links=1, scm_lines=4))
        default = model.pels_fraction(PelsConfig(n_links=4, scm_lines=6))
        assert small < default
