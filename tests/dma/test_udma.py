"""Tests for the µDMA engine."""

import pytest

from repro.bus.interconnect import SystemInterconnect
from repro.dma.udma import DmaChannel, MicroDma
from repro.peripherals.events import EventFabric
from repro.peripherals.sensor import SensorWaveform, SyntheticSensor
from repro.peripherals.spi import SpiController
from repro.sim.simulator import Simulator
from repro.soc.memory import SramBank


def make_dma_system(samples=(1, 2, 3, 4, 5, 6, 7, 8), length=4):
    simulator = Simulator()
    fabric = EventFabric()
    sensor = SyntheticSensor(waveform=SensorWaveform(kind="sequence", values=samples))
    spi = SpiController("spi", sensor=sensor, cycles_per_word=2)
    spi.connect_events(fabric)
    spi.regs.reg("LEN").hw_write(length)
    sram = SramBank("sram", size_bytes=4096)
    interconnect = SystemInterconnect("soc_interconnect")
    interconnect.attach_memory(0x1C00_0000, 4096, sram)
    udma = MicroDma("udma", interconnect=interconnect, fabric=fabric)
    channel = udma.add_channel(source=spi, destination_address=0x1C00_0100, length_words=length)
    for component in (spi, udma, interconnect, sram):
        simulator.add_component(component)
    return simulator, fabric, spi, udma, channel, sram


class TestMicroDma:
    def test_moves_words_to_memory_in_order(self):
        simulator, _, spi, udma, _, sram = make_dma_system()
        spi.on_event_input("start")
        simulator.step(20)
        assert udma.total_words_moved == 4
        assert [sram.peek(0x100 + 4 * index) for index in range(4)] == [1, 2, 3, 4]

    def test_transfer_complete_event_pulsed(self):
        simulator, fabric, spi, udma, channel, _ = make_dma_system()
        spi.on_event_input("start")
        simulator.step(20)
        line_name = udma.channel_event_line(channel)
        assert fabric.line(line_name).pulse_count == 1
        assert channel.transfers_completed == 1

    def test_consecutive_transfers_wrap_buffer(self):
        simulator, _, spi, udma, channel, sram = make_dma_system()
        spi.on_event_input("start")
        simulator.step(20)
        spi.on_event_input("start")
        simulator.step(20)
        assert channel.transfers_completed == 2
        assert [sram.peek(0x100 + 4 * index) for index in range(4)] == [5, 6, 7, 8]

    def test_does_not_wake_processing_domain(self):
        """The whole point of the µDMA: sensor readout without CPU activity."""
        simulator, _, spi, _, _, _ = make_dma_system()
        spi.on_event_input("start")
        simulator.step(20)
        assert simulator.activity.get("ibex", "active_cycles") == 0

    def test_channel_validation(self):
        _, _, spi, udma, _, _ = make_dma_system()
        with pytest.raises(ValueError):
            DmaChannel(channel_id=-1, source=spi, destination_address=0x0, length_words=1)
        with pytest.raises(ValueError):
            DmaChannel(channel_id=0, source=spi, destination_address=0x2, length_words=1)
        with pytest.raises(ValueError):
            DmaChannel(channel_id=0, source=spi, destination_address=0x0, length_words=0)

    def test_event_line_requires_fabric(self):
        spi = SpiController("spi2")
        udma = MicroDma("udma2", fabric=None)
        channel = udma.add_channel(source=spi, destination_address=0x0, length_words=1)
        with pytest.raises(RuntimeError):
            udma.channel_event_line(channel)

    def test_disabled_channel_does_not_move_data(self):
        simulator, _, spi, udma, channel, _ = make_dma_system()
        channel.enabled = False
        spi.on_event_input("start")
        simulator.step(20)
        assert udma.total_words_moved == 0
        assert spi.rx_level == 4

    def test_activity_recorded(self):
        simulator, _, spi, udma, _, _ = make_dma_system()
        spi.on_event_input("start")
        simulator.step(20)
        assert simulator.activity.get("udma", "words_moved") == 4
        assert simulator.activity.get("udma", "transfers_completed") == 1

    def test_reset(self):
        simulator, _, spi, udma, channel, _ = make_dma_system()
        spi.on_event_input("start")
        simulator.step(20)
        udma.reset()
        assert udma.total_words_moved == 0
        assert channel.words_moved == 0
