"""Execution + artifact tests: sharding determinism and the differential check
against single-scenario runs."""

import json

import pytest

from repro.sweep.artifacts import (
    MANIFEST_JSON,
    RESULTS_CSV,
    RESULTS_JSON,
    manifest_payload,
    results_payload,
    write_artifacts,
)
from repro.sweep.campaign import CampaignSpec, expand_campaign
from repro.sweep.campaigns import campaign
from repro.sweep.execute import execute_campaign, run_point
from repro.workloads.registry import run_scenario

SMALL_SPEC = CampaignSpec(
    name="exec-test",
    description="small execution-test campaign",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (40_000, 60_000),
        "sample_period_cycles": (2_000, 4_000),
    },
)


class TestRunPoint:
    def test_stats_match_single_scenario_run(self):
        """Differential: the sweep worker must not perturb the scenario."""
        for point in expand_campaign(SMALL_SPEC):
            result = run_point(point)
            direct = run_scenario(
                point.scenario,
                horizon_cycles=point.horizon_cycles,
                dense=point.dense,
                params=point.params,
            )
            assert result.stats == direct

    def test_seeded_point_matches_single_scenario_run(self):
        spec = CampaignSpec(
            name="exec-test-wdt",
            description="seeded watchdog points",
            scenario="watchdog-recovery",
            grid={"horizon_cycles": (200_000,)},
        )
        (point,) = expand_campaign(spec)
        result = run_point(point)
        direct = run_scenario("watchdog-recovery", 200_000, params={"seed": point.seed})
        assert result.stats == direct

    def test_power_area_and_activity_are_populated(self):
        point = expand_campaign(SMALL_SPEC)[0]
        result = run_point(point)
        assert result.power_uw["Total"] > 0
        assert set(result.power_uw) >= {"Processor", "RAM", "Interconnect", "PELS", "Others", "Leakage"}
        assert result.area_kge["Total"] > 0
        assert result.activity["ibex.sleep_cycles"] == point.horizon_cycles

    def test_pels_less_point_has_no_area(self):
        spec = CampaignSpec(
            name="exec-test-ibex",
            description="ibex idle point",
            scenario="figure5-idle",
            grid={"horizon_cycles": (50_000,), "mode": ("ibex",), "frequency_mhz": (55.0,)},
        )
        (point,) = expand_campaign(spec)
        result = run_point(point)
        assert result.area_kge == {}
        assert result.power_uw["PELS"] == 0.0


class TestShardingDeterminism:
    def test_serial_and_sharded_results_are_identical(self):
        serial = execute_campaign(SMALL_SPEC, jobs=1)
        sharded = execute_campaign(SMALL_SPEC, jobs=2)
        assert results_payload(serial) == results_payload(sharded)

    def test_chunk_size_never_changes_results(self):
        serial = execute_campaign(SMALL_SPEC, jobs=1)
        for chunk in (1, 2, 3, 100):
            chunked = execute_campaign(SMALL_SPEC, jobs=2, chunk=chunk)
            assert results_payload(chunked) == results_payload(serial)
            assert chunked.chunk == chunk

    def test_auto_chunk_batches_small_campaigns(self):
        from repro.sweep.execute import auto_chunk

        assert auto_chunk(4, 1) == 4  # serial: one batch, no pool
        assert auto_chunk(32, 2) == 4  # ~4 chunks per worker
        assert auto_chunk(3, 8) == 1  # never zero

    def test_progress_reports_every_point(self):
        seen = []
        execute_campaign(SMALL_SPEC, jobs=1, progress=lambda done, total, result: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError, match="jobs"):
            execute_campaign(SMALL_SPEC, jobs=0)

    def test_chunk_must_be_positive(self):
        with pytest.raises(ValueError, match="chunk"):
            execute_campaign(SMALL_SPEC, jobs=2, chunk=0)


class TestAcceptanceCampaign:
    def test_24_point_campaign_sharded_matches_serial_bytes(self, tmp_path):
        """Acceptance: a >=24-point campaign sharded across >=2 processes writes
        JSON+CSV+manifest, and its aggregated artifacts are byte-identical to
        the serial run."""
        spec = campaign("watchdog-fault-injection")
        assert spec.n_points >= 24

        serial = execute_campaign(spec, jobs=1)
        sharded = execute_campaign(spec, jobs=2)
        serial_paths = write_artifacts(spec, serial, tmp_path / "serial")
        sharded_paths = write_artifacts(spec, sharded, tmp_path / "sharded")

        for key in ("results_json", "results_csv"):
            assert serial_paths[key].read_bytes() == sharded_paths[key].read_bytes()
        for paths in (serial_paths, sharded_paths):
            assert paths["manifest_json"].exists()

        # The fault-injection sweep's headline result: every seeded stall is
        # recovered autonomously, the bite never fires.
        for point in sharded.points:
            assert point.stats["recovered"] is True
            assert point.stats["watchdog_bites"] == 0


class TestArtifacts:
    @pytest.fixture(scope="class")
    def written(self, tmp_path_factory):
        out_dir = tmp_path_factory.mktemp("sweeps")
        result = execute_campaign(SMALL_SPEC, jobs=1)
        paths = write_artifacts(SMALL_SPEC, result, out_dir)
        return result, paths, out_dir

    def test_files_land_under_campaign_directory(self, written):
        _, paths, out_dir = written
        assert paths["results_json"] == out_dir / SMALL_SPEC.name / RESULTS_JSON
        assert paths["results_csv"] == out_dir / SMALL_SPEC.name / RESULTS_CSV
        assert paths["manifest_json"] == out_dir / SMALL_SPEC.name / MANIFEST_JSON
        for path in paths.values():
            assert path.exists()

    def test_results_json_round_trips(self, written):
        result, paths, _ = written
        payload = json.loads(paths["results_json"].read_text())
        assert payload == results_payload(result)
        assert payload["n_points"] == 4
        assert [point["index"] for point in payload["points"]] == [0, 1, 2, 3]
        first = payload["points"][0]
        assert first["params"] == {"sample_period_cycles": 2_000}
        assert first["stats"]["horizon_cycles"] == 40_000
        assert first["power_uw"]["Total"] > 0
        assert first["activity"]["ibex.sleep_cycles"] == 40_000

    def test_csv_has_one_row_per_point_with_namespaced_columns(self, written):
        _, paths, _ = written
        lines = paths["results_csv"].read_text().strip().splitlines()
        assert len(lines) == 1 + 4
        header = lines[0].split(",")
        assert header[:4] == ["index", "scenario", "horizon_cycles", "seed"]
        assert "param.sample_period_cycles" in header
        assert "stat.words_logged" in header
        assert "power_uw.Total" in header
        assert "area_kge.Total" in header

    def test_manifest_records_reproducibility_and_timing(self, written):
        result, paths, _ = written
        manifest = json.loads(paths["manifest_json"].read_text())
        assert manifest == manifest_payload(SMALL_SPEC, result)
        assert manifest["campaign"]["scenario"] == "duty-cycled-logging"
        assert manifest["campaign"]["grid"]["sample_period_cycles"] == [2_000, 4_000]
        assert manifest["campaign"]["base_seed"] == SMALL_SPEC.base_seed
        assert manifest["execution"]["jobs"] == 1
        assert len(manifest["execution"]["point_wall_seconds"]) == 4

    def test_timing_is_kept_out_of_comparable_payloads(self, written):
        result, paths, _ = written
        assert "wall" not in paths["results_json"].read_text()
        assert "wall" not in paths["results_csv"].read_text()
