"""Batched sweep execution (--batch): grouping, byte-identity, composition.

The acceptance oracle of the batched executor is byte-identity: for every
registry campaign, ``--batch`` artifacts must equal the per-instance
``--jobs 1`` artifacts bit for bit — on every available backend (the pure
python reference loop and, when importable, the vectorised numpy loop).
Groups that cannot batch (no batch-prepare hook, or heterogeneous derived
drives) must fall back with the reason recorded in the manifest, and
batching must compose with ``--jobs``/``--chunk``/``--shard``/``--resume``.
"""

import json

import pytest

from repro.run import main
from repro.sim.backend import available_backends
from repro.sweep import (
    CampaignSpec,
    ShardSpec,
    batch_groups,
    campaign,
    campaign_names,
    execute_campaign,
    expand_campaign,
    load_reusable_results,
    register_campaign,
    results_payload,
    write_artifacts,
)
from repro.sweep.artifacts import manifest_payload
from repro.workloads.registry import scenario

SMALL_SPEC = CampaignSpec(
    name="batch-test",
    description="small batchable campaign for the --batch tests",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (20_000, 40_000),
        "sample_period_cycles": (1_000, 2_000),
    },
)

BACKENDS = available_backends()


def _payload_bytes(result):
    return json.dumps(results_payload(result), indent=2, sort_keys=True)


def _non_batchable_campaign():
    """A campaign over a scenario without a batch-prepare hook (registered
    lazily so it does not leak into the registry-campaign parametrisation)."""
    name = "monitor-non-batchable-test"
    try:
        return campaign(name)
    except KeyError:
        assert scenario("always-on-monitor").batch_prepare is None
        return register_campaign(
            CampaignSpec(
                name=name,
                description="always-on-monitor has no batch hook: fallback test",
                scenario="always-on-monitor",
                grid={"horizon_cycles": (10_000, 20_000)},
            )
        )


class TestBatchGroups:
    def test_points_group_by_params_across_horizons(self):
        points = expand_campaign(SMALL_SPEC)
        groups = batch_groups(points)
        assert len(groups) == 2  # one group per sample_period value
        for group in groups:
            assert len(group) == 2
            assert len({point.params["sample_period_cycles"] for point in group}) == 1
            horizons = [point.horizon_cycles for point in group]
            assert horizons == sorted(horizons) == [20_000, 40_000]

    def test_distinct_params_stay_separate(self):
        points = expand_campaign(campaign("pipeline-clock-ratio"))
        groups = batch_groups(points)
        assert len(groups) == 8  # 4 ratios x 2 periods; 7 horizons merge
        assert all(len(group) == 7 for group in groups)
        assert sum(len(group) for group in groups) == len(points)


@pytest.fixture(scope="module")
def serial_campaign():
    """Per-instance reference results, computed once per registry campaign."""
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = execute_campaign(campaign(name), jobs=1, batch=False)
        return cache[name]

    return get


class TestByteIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", sorted(campaign_names()))
    def test_every_registry_campaign_is_batch_identical(
        self, name, backend, tmp_path, serial_campaign
    ):
        """The acceptance criterion: batched == per-instance, bit for bit,
        for results.json *and* results.csv of every registry campaign, on
        every available backend."""
        spec = campaign(name)
        serial = serial_campaign(name)
        batched = execute_campaign(spec, jobs=1, batch=True, backend=backend)
        assert _payload_bytes(serial) == _payload_bytes(batched)
        serial_paths = write_artifacts(spec, serial, tmp_path / "serial")
        batched_paths = write_artifacts(spec, batched, tmp_path / "batched")
        for key in ("results_json", "results_csv"):
            assert serial_paths[key].read_bytes() == batched_paths[key].read_bytes()

    def test_batchable_scenarios_report_batched_points(self):
        batched = execute_campaign(SMALL_SPEC, jobs=1, batch=True)
        assert batched.batched_points == batched.n_points == 4
        assert batched.backend in BACKENDS
        assert batched.batch_fallbacks == []

    def test_explicit_backend_is_recorded(self):
        batched = execute_campaign(SMALL_SPEC, jobs=1, batch=True, backend="python")
        assert batched.backend == "python"
        assert batched.batched_points == 4

    def test_watchdog_recovery_batches(self):
        """The two-segment drive (fault injection) is replayed as a drive
        stop: watchdog-recovery no longer falls back to per-instance runs."""
        spec = CampaignSpec(
            name="batch-watchdog",
            description="seeded watchdog recovery batches across horizons",
            scenario="watchdog-recovery",
            grid={"horizon_cycles": (200_000, 400_000), "seed": (0, 1)},
        )
        assert scenario(spec.scenario).batch_prepare is not None
        serial = execute_campaign(spec, jobs=1, batch=False)
        batched = execute_campaign(spec, jobs=1, batch=True)
        assert batched.batched_points == 4
        assert batched.batch_fallbacks == []
        assert _payload_bytes(serial) == _payload_bytes(batched)

    def test_heterogeneous_drives_fall_back_with_reason(self):
        """A seeded group whose horizons derive *different* fault-injection
        drives cannot share one instance: it falls back, and the manifest
        records why (the clamp in seeded_watchdog_recovery_config binds at
        horizon 5000, so the 5 k and 200 k points disagree on the drive)."""
        spec = CampaignSpec(
            name="batch-watchdog-hetero",
            description="horizon-dependent drives force a per-group fallback",
            scenario="watchdog-recovery",
            grid={"horizon_cycles": (5_000, 200_000), "seed": (0,)},
        )
        serial = execute_campaign(spec, jobs=1, batch=False)
        batched = execute_campaign(spec, jobs=1, batch=True)
        assert batched.batched_points == 0
        assert batched.backend is None
        [record] = batched.batch_fallbacks
        assert "different fault-injection drives" in record["reason"]
        assert record["points"] == [0, 1]
        assert _payload_bytes(serial) == _payload_bytes(batched)
        manifest = manifest_payload(spec, batched)
        assert manifest["execution"]["batch_fallbacks"] == [record]

    def test_non_batchable_scenario_falls_back_with_reason(self):
        spec = _non_batchable_campaign()
        serial = execute_campaign(spec, jobs=1, batch=False)
        batched = execute_campaign(spec, jobs=1, batch=True)
        assert batched.batched_points == 0
        [record] = batched.batch_fallbacks
        assert "does not support batched execution" in record["reason"]
        assert record["points"] == [0, 1]
        assert _payload_bytes(serial) == _payload_bytes(batched)
        # batch=False means nobody asked for batching: no fallback records.
        assert serial.batch_fallbacks == []


class TestComposition:
    def test_batch_composes_with_jobs_and_chunk(self):
        serial = execute_campaign(SMALL_SPEC, jobs=1, batch=False)
        pooled = execute_campaign(SMALL_SPEC, jobs=2, chunk=1, batch=True)
        assert _payload_bytes(serial) == _payload_bytes(pooled)
        # chunk=1 cannot split a 2-point group: sharing survives chunking.
        assert pooled.batched_points == 4

    def test_batch_composes_with_shard(self):
        serial = execute_campaign(SMALL_SPEC, jobs=1, batch=False)
        shards = [
            execute_campaign(SMALL_SPEC, shard=ShardSpec(index=index, count=2), batch=True)
            for index in range(2)
        ]
        merged = [point for shard in shards for point in shard.points]
        merged.sort(key=lambda point: point.index)
        assert [p.index for p in merged] == [p.index for p in serial.points]
        serial_records = [json.dumps(r.stats, sort_keys=True) for r in serial.points]
        shard_records = [json.dumps(r.stats, sort_keys=True) for r in merged]
        assert serial_records == shard_records

    def test_batch_composes_with_resume(self, tmp_path):
        first = execute_campaign(SMALL_SPEC, jobs=1, batch=True)
        write_artifacts(SMALL_SPEC, first, tmp_path)
        reuse = load_reusable_results(SMALL_SPEC, tmp_path)
        assert len(reuse) == 4
        resumed = execute_campaign(SMALL_SPEC, jobs=1, reuse=reuse, batch=True)
        assert resumed.n_reused == 4
        assert resumed.batched_points == 0  # nothing left to execute
        assert resumed.backend is None
        assert _payload_bytes(first) == _payload_bytes(resumed)

    def test_manifest_records_batch_execution(self, tmp_path):
        result = execute_campaign(SMALL_SPEC, jobs=1, batch=True)
        execution = manifest_payload(SMALL_SPEC, result)["execution"]
        assert execution["batched_points"] == 4
        assert execution["batch_fallbacks"] == []
        assert execution["backend"] in BACKENDS
        serial = execute_campaign(SMALL_SPEC, jobs=1, batch=False)
        serial_execution = manifest_payload(SMALL_SPEC, serial)["execution"]
        assert serial_execution["batched_points"] == 0
        assert serial_execution["backend"] is None


class TestCli:
    def test_batch_flag_round_trip(self, tmp_path, capsys):
        on_dir, off_dir = tmp_path / "on", tmp_path / "off"
        assert main(["sweep", "smoke", "--batch", "on", "--out", str(on_dir)]) == 0
        assert main(["sweep", "smoke", "--batch", "off", "--out", str(off_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 batched" in out
        for name in ("results.json", "results.csv"):
            assert (on_dir / "smoke" / name).read_bytes() == (off_dir / "smoke" / name).read_bytes()
        on_manifest = json.loads((on_dir / "smoke" / "manifest.json").read_text())
        off_manifest = json.loads((off_dir / "smoke" / "manifest.json").read_text())
        assert on_manifest["execution"]["batched_points"] == 4
        assert on_manifest["execution"]["backend"] in BACKENDS
        assert off_manifest["execution"]["batched_points"] == 0
        assert off_manifest["execution"]["backend"] is None

    def test_backend_flag_round_trip(self, tmp_path, capsys):
        out_dir = tmp_path / "py"
        assert main(["sweep", "smoke", "--backend", "python", "--out", str(out_dir)]) == 0
        assert "4 batched (python)" in capsys.readouterr().out
        manifest = json.loads((out_dir / "smoke" / "manifest.json").read_text())
        assert manifest["execution"]["backend"] == "python"

    def test_batch_on_warns_for_non_batchable_scenario(self, tmp_path, capsys):
        spec = _non_batchable_campaign()
        assert main(["sweep", spec.name, "--batch", "on", "--out", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "does not support batched execution" in err
        assert "fell back to per-instance execution" in err
