"""Batched sweep execution (--batch): grouping, byte-identity, composition.

The acceptance oracle of the batched executor is byte-identity: for every
registry campaign, ``--batch`` artifacts must equal the per-instance
``--jobs 1`` artifacts bit for bit.  Scenarios without a batch-prepare hook
(watchdog-recovery's two-segment drive) must fall back silently, and
batching must compose with ``--jobs``/``--chunk``/``--shard``/``--resume``.
"""

import json

import pytest

from repro.run import main
from repro.sweep import (
    CampaignSpec,
    ShardSpec,
    batch_groups,
    campaign,
    campaign_names,
    execute_campaign,
    expand_campaign,
    load_reusable_results,
    results_payload,
    write_artifacts,
)
from repro.sweep.artifacts import manifest_payload
from repro.workloads.registry import scenario

SMALL_SPEC = CampaignSpec(
    name="batch-test",
    description="small batchable campaign for the --batch tests",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (20_000, 40_000),
        "sample_period_cycles": (1_000, 2_000),
    },
)


def _payload_bytes(result):
    return json.dumps(results_payload(result), indent=2, sort_keys=True)


class TestBatchGroups:
    def test_points_group_by_params_across_horizons(self):
        points = expand_campaign(SMALL_SPEC)
        groups = batch_groups(points)
        assert len(groups) == 2  # one group per sample_period value
        for group in groups:
            assert len(group) == 2
            assert len({point.params["sample_period_cycles"] for point in group}) == 1
            horizons = [point.horizon_cycles for point in group]
            assert horizons == sorted(horizons) == [20_000, 40_000]

    def test_distinct_params_stay_separate(self):
        points = expand_campaign(campaign("pipeline-clock-ratio"))
        groups = batch_groups(points)
        assert len(groups) == 12  # 4 ratios x 3 periods; 3 horizons merge
        assert all(len(group) == 3 for group in groups)
        assert sum(len(group) for group in groups) == len(points)


class TestByteIdentity:
    @pytest.mark.parametrize("name", sorted(campaign_names()))
    def test_every_registry_campaign_is_batch_identical(self, name, tmp_path):
        """The acceptance criterion: batched == per-instance, bit for bit,
        for results.json *and* results.csv of every registry campaign."""
        spec = campaign(name)
        serial = execute_campaign(spec, jobs=1, batch=False)
        batched = execute_campaign(spec, jobs=1, batch=True)
        assert _payload_bytes(serial) == _payload_bytes(batched)
        serial_paths = write_artifacts(spec, serial, tmp_path / "serial")
        batched_paths = write_artifacts(spec, batched, tmp_path / "batched")
        for key in ("results_json", "results_csv"):
            assert serial_paths[key].read_bytes() == batched_paths[key].read_bytes()

    def test_batchable_scenarios_report_batched_points(self):
        batched = execute_campaign(SMALL_SPEC, jobs=1, batch=True)
        assert batched.batched_points == batched.n_points == 4

    def test_non_batchable_scenario_falls_back(self):
        spec = CampaignSpec(
            name="batch-fallback",
            description="watchdog-recovery has a two-segment drive: no batch hook",
            scenario="watchdog-recovery",
            grid={"horizon_cycles": (200_000,), "seed": (0, 1)},
        )
        assert scenario(spec.scenario).batch_prepare is None
        serial = execute_campaign(spec, jobs=1, batch=False)
        batched = execute_campaign(spec, jobs=1, batch=True)
        assert batched.batched_points == 0
        assert _payload_bytes(serial) == _payload_bytes(batched)


class TestComposition:
    def test_batch_composes_with_jobs_and_chunk(self):
        serial = execute_campaign(SMALL_SPEC, jobs=1, batch=False)
        pooled = execute_campaign(SMALL_SPEC, jobs=2, chunk=1, batch=True)
        assert _payload_bytes(serial) == _payload_bytes(pooled)
        # chunk=1 cannot split a 2-point group: sharing survives chunking.
        assert pooled.batched_points == 4

    def test_batch_composes_with_shard(self):
        serial = execute_campaign(SMALL_SPEC, jobs=1, batch=False)
        shards = [
            execute_campaign(SMALL_SPEC, shard=ShardSpec(index=index, count=2), batch=True)
            for index in range(2)
        ]
        merged = [point for shard in shards for point in shard.points]
        merged.sort(key=lambda point: point.index)
        assert [p.index for p in merged] == [p.index for p in serial.points]
        serial_records = [json.dumps(r.stats, sort_keys=True) for r in serial.points]
        shard_records = [json.dumps(r.stats, sort_keys=True) for r in merged]
        assert serial_records == shard_records

    def test_batch_composes_with_resume(self, tmp_path):
        first = execute_campaign(SMALL_SPEC, jobs=1, batch=True)
        write_artifacts(SMALL_SPEC, first, tmp_path)
        reuse = load_reusable_results(SMALL_SPEC, tmp_path)
        assert len(reuse) == 4
        resumed = execute_campaign(SMALL_SPEC, jobs=1, reuse=reuse, batch=True)
        assert resumed.n_reused == 4
        assert resumed.batched_points == 0  # nothing left to execute
        assert _payload_bytes(first) == _payload_bytes(resumed)

    def test_manifest_records_batched_points(self, tmp_path):
        result = execute_campaign(SMALL_SPEC, jobs=1, batch=True)
        manifest = manifest_payload(SMALL_SPEC, result)
        assert manifest["execution"]["batched_points"] == 4
        serial = execute_campaign(SMALL_SPEC, jobs=1, batch=False)
        assert manifest_payload(SMALL_SPEC, serial)["execution"]["batched_points"] == 0


class TestCli:
    def test_batch_flag_round_trip(self, tmp_path, capsys):
        on_dir, off_dir = tmp_path / "on", tmp_path / "off"
        assert main(["sweep", "smoke", "--batch", "on", "--out", str(on_dir)]) == 0
        assert main(["sweep", "smoke", "--batch", "off", "--out", str(off_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 batched" in out
        for name in ("results.json", "results.csv"):
            assert (on_dir / "smoke" / name).read_bytes() == (off_dir / "smoke" / name).read_bytes()
        on_manifest = json.loads((on_dir / "smoke" / "manifest.json").read_text())
        off_manifest = json.loads((off_dir / "smoke" / "manifest.json").read_text())
        assert on_manifest["execution"]["batched_points"] == 4
        assert off_manifest["execution"]["batched_points"] == 0

    def test_batch_on_warns_for_non_batchable_scenario(self, tmp_path, capsys):
        # A 2-point slice keeps the CLI check cheap.
        assert (
            main(
                [
                    "sweep",
                    "watchdog-fault-injection",
                    "--batch",
                    "on",
                    "--shard",
                    "0/12",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        assert "does not support batched execution" in capsys.readouterr().err
