"""Incremental re-execution (--resume): reuse, validation, byte-identity."""

import json
from dataclasses import replace

import pytest

from repro.sweep.artifacts import write_artifacts
from repro.sweep.campaign import CampaignSpec
from repro.sweep.execute import execute_campaign
from repro.sweep.resume import ResumeError, load_reusable_results, spec_hash

SPEC = CampaignSpec(
    name="resume-test",
    description="small resume-test campaign",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (40_000, 60_000),
        "sample_period_cycles": (2_000, 4_000),
    },
)


def _fresh_artifacts(out_dir):
    result = execute_campaign(SPEC, jobs=1)
    paths = write_artifacts(SPEC, result, out_dir)
    return result, paths


class TestSpecHash:
    def test_hash_is_stable(self):
        assert spec_hash(SPEC) == spec_hash(SPEC)

    def test_hash_tracks_every_identity_field(self):
        baseline = spec_hash(SPEC)
        assert spec_hash(replace(SPEC, base_seed=1)) != baseline
        assert spec_hash(replace(SPEC, dense=True)) != baseline
        assert spec_hash(replace(SPEC, grid={"horizon_cycles": (40_000,)})) != baseline
        assert (
            spec_hash(replace(SPEC, scenario="burst-spi-dma", grid={"horizon_cycles": (40_000,)}))
            != spec_hash(replace(SPEC, grid={"horizon_cycles": (40_000,)}))
        )

    def test_hash_ignores_description(self):
        # The description is documentation, not identity: editing it must not
        # invalidate a finished campaign.
        assert spec_hash(replace(SPEC, description="reworded")) == spec_hash(SPEC)

    def test_axis_order_is_identity(self):
        # Row-major expansion means axis order fixes the point numbering.
        reordered = replace(
            SPEC,
            grid={
                "sample_period_cycles": (2_000, 4_000),
                "horizon_cycles": (40_000, 60_000),
            },
        )
        assert spec_hash(reordered) != spec_hash(SPEC)


class TestLoadReusableResults:
    def test_round_trip_recovers_every_point(self, tmp_path):
        result, _ = _fresh_artifacts(tmp_path)
        reusable = load_reusable_results(SPEC, tmp_path)
        assert sorted(reusable) == [0, 1, 2, 3]
        for point in result.points:
            recovered = reusable[point.index]
            assert recovered.stats == point.stats
            assert recovered.activity == point.activity
            assert recovered.power_uw == point.power_uw
            assert recovered.seed == point.seed
            assert recovered.reused is True
            assert recovered.wall_seconds == point.wall_seconds

    def test_missing_artifacts_mean_no_reuse(self, tmp_path):
        assert load_reusable_results(SPEC, tmp_path) == {}

    def test_manifest_mismatch_invalidates_cache(self, tmp_path):
        _fresh_artifacts(tmp_path)
        changed = replace(SPEC, base_seed=SPEC.base_seed + 1)
        assert load_reusable_results(changed, tmp_path) == {}

    def test_corrupt_results_raise_named_diagnostic(self, tmp_path):
        # Damaged-but-present artifacts are an error, not a silent full
        # recompute: the diagnostic must name the file so a truncation/disk
        # problem surfaces instead of being papered over.
        _, paths = _fresh_artifacts(tmp_path)
        payload = json.loads(paths["results_json"].read_text())
        del payload["points"][0]["seed"]
        paths["results_json"].write_text(json.dumps(payload))
        with pytest.raises(ResumeError, match=r"results\.json"):
            load_reusable_results(SPEC, tmp_path)

    def test_truncated_results_raise_named_diagnostic(self, tmp_path):
        _, paths = _fresh_artifacts(tmp_path)
        text = paths["results_json"].read_text()
        paths["results_json"].write_text(text[: len(text) // 2])
        with pytest.raises(ResumeError, match=r"results\.json.*(truncated|corrupt)"):
            load_reusable_results(SPEC, tmp_path)

    def test_record_disagreeing_with_expansion_raises(self, tmp_path):
        # The spec hash only covers the CampaignSpec; expansion also depends
        # on registry state (default horizons, seed injection).  A stored
        # record whose seed/horizon/params no longer match today's expanded
        # SweepPoint condemns the whole artifact set, loudly.
        _, paths = _fresh_artifacts(tmp_path)
        payload = json.loads(paths["results_json"].read_text())
        payload["points"][2]["seed"] += 1
        paths["results_json"].write_text(json.dumps(payload))
        with pytest.raises(ResumeError, match="disagrees with the current expansion"):
            load_reusable_results(SPEC, tmp_path)


class TestResumedExecution:
    def test_resumed_run_is_byte_identical_to_fresh(self, tmp_path):
        """The --resume acceptance property: reusing every stored point must
        reproduce results.json and results.csv byte for byte."""
        _, fresh_paths = _fresh_artifacts(tmp_path / "fresh")
        reuse = load_reusable_results(SPEC, tmp_path / "fresh")
        resumed = execute_campaign(SPEC, jobs=1, reuse=reuse)
        assert resumed.n_reused == 4
        resumed_paths = write_artifacts(SPEC, resumed, tmp_path / "resumed")
        for key in ("results_json", "results_csv"):
            assert resumed_paths[key].read_bytes() == fresh_paths[key].read_bytes()

    def test_partial_resume_runs_only_missing_points(self, tmp_path):
        """An interrupted run (subset of points in results.json) completes the
        rest and still lands on the fresh artifacts byte for byte."""
        fresh, fresh_paths = _fresh_artifacts(tmp_path / "fresh")
        # Simulate an interrupted campaign: keep only half the points.
        partial = execute_campaign(SPEC, jobs=1)
        partial.points = [point for point in partial.points if point.index in (0, 2)]
        write_artifacts(SPEC, partial, tmp_path / "partial")
        reuse = load_reusable_results(SPEC, tmp_path / "partial")
        assert sorted(reuse) == [0, 2]

        resumed = execute_campaign(SPEC, jobs=1, reuse=reuse)
        assert resumed.n_reused == 2
        assert resumed.n_points == 4
        assert [point.index for point in resumed.points] == [0, 1, 2, 3]
        resumed_paths = write_artifacts(SPEC, resumed, tmp_path / "resumed")
        for key in ("results_json", "results_csv"):
            assert resumed_paths[key].read_bytes() == fresh_paths[key].read_bytes()

    def test_manifest_records_reuse(self, tmp_path):
        from repro.sweep.artifacts import manifest_payload

        _fresh_artifacts(tmp_path)
        reuse = load_reusable_results(SPEC, tmp_path)
        resumed = execute_campaign(SPEC, jobs=1, reuse=reuse)
        manifest = manifest_payload(SPEC, resumed)
        assert manifest["spec_hash"] == spec_hash(SPEC)
        assert manifest["execution"]["reused_points"] == 4
