"""Sweep execution against a plan cache (--plan-cache): warm byte-identity.

The acceptance oracle of the cache-fed executor: for every registry
campaign, a warm run against a populated cache must produce artifacts
byte-identical to a cold run and to a run with no cache at all, on every
available backend — while actually using the cache (hit counters in
``execution.cache``).  Around that: partial caches (missing and corrupt
entries) must degrade to simulation and heal the cache, the manifest must
record warm-run provenance, and the CLI flag must round-trip.
"""

import json

import pytest

from repro.run import main
from repro.sim.backend import available_backends
from repro.sweep import (
    CampaignSpec,
    campaign,
    campaign_names,
    execute_campaign,
    results_payload,
    write_artifacts,
)
from repro.sweep.artifacts import manifest_payload

BACKENDS = available_backends()

#: Registry campaigns small enough for per-test execution; fleet-scale's
#: 1008 points are covered by one single (default-backend) identity pass.
FAST_CAMPAIGNS = sorted(set(campaign_names()) - {"fleet-scale"})

SMALL_SPEC = CampaignSpec(
    name="plan-cache-test",
    description="small batchable campaign for the --plan-cache tests",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (20_000, 40_000),
        "sample_period_cycles": (1_000, 2_000),
    },
)


def _payload_bytes(result):
    return json.dumps(results_payload(result), indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def reference_and_cache(tmp_path_factory):
    """Per-campaign: the no-cache reference payload plus a populated cache
    directory (computed once, shared by the per-backend warm tests)."""
    root = tmp_path_factory.mktemp("plan-caches")
    state = {}

    def get(name):
        if name not in state:
            reference = _payload_bytes(execute_campaign(campaign(name), jobs=1))
            cache_dir = root / name
            cold = execute_campaign(campaign(name), jobs=1, plan_cache=str(cache_dir))
            assert _payload_bytes(cold) == reference
            assert cold.cache["writes"] > 0 and cold.cache["hits"] == 0
            state[name] = (reference, cache_dir)
        return state[name]

    return get


class TestWarmByteIdentity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("name", FAST_CAMPAIGNS)
    def test_registry_campaigns_warm_identical(self, name, backend, reference_and_cache):
        """The acceptance criterion: warm == cold == uncached, bit for bit,
        for every registry campaign on every available backend."""
        reference, cache_dir = reference_and_cache(name)
        warm = execute_campaign(
            campaign(name), jobs=1, plan_cache=str(cache_dir), backend=backend
        )
        assert _payload_bytes(warm) == reference
        assert warm.cache["hits"] == warm.n_points
        assert warm.cache["misses"] == 0 and warm.cache["errors"] == 0

    def test_fleet_scale_warm_identical(self, reference_and_cache):
        reference, cache_dir = reference_and_cache("fleet-scale")
        warm = execute_campaign(campaign("fleet-scale"), jobs=2, plan_cache=str(cache_dir))
        assert _payload_bytes(warm) == reference
        assert warm.cache["hits"] == warm.n_points == 1008

    def test_artifact_files_are_byte_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = execute_campaign(SMALL_SPEC, jobs=1, plan_cache=cache_dir)
        warm = execute_campaign(SMALL_SPEC, jobs=1, plan_cache=cache_dir)
        cold_paths = write_artifacts(SMALL_SPEC, cold, tmp_path / "cold")
        warm_paths = write_artifacts(SMALL_SPEC, warm, tmp_path / "warm")
        for key in ("results_json", "results_csv"):
            assert cold_paths[key].read_bytes() == warm_paths[key].read_bytes()


class TestPartialCache:
    def _populate(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = execute_campaign(SMALL_SPEC, jobs=1, plan_cache=str(cache_dir))
        return _payload_bytes(cold), cache_dir

    def test_missing_entries_are_simulated_and_healed(self, tmp_path):
        reference, cache_dir = self._populate(tmp_path)
        snaps = sorted(cache_dir.rglob("*.snap"))
        assert len(snaps) == 4
        snaps[0].unlink()
        snaps[-1].unlink()
        partial = execute_campaign(SMALL_SPEC, jobs=1, plan_cache=str(cache_dir))
        assert _payload_bytes(partial) == reference
        assert partial.cache["writes"] == 2  # the gaps were republished
        assert len(sorted(cache_dir.rglob("*.snap"))) == 4
        healed = execute_campaign(SMALL_SPEC, jobs=1, plan_cache=str(cache_dir))
        assert _payload_bytes(healed) == reference
        assert healed.cache["hits"] == 4 and healed.cache["writes"] == 0

    def test_corrupt_entries_fall_back_with_a_note(self, tmp_path):
        reference, cache_dir = self._populate(tmp_path)
        snaps = sorted(cache_dir.rglob("*.snap"))
        snaps[0].write_bytes(b"garbage")
        snaps[1].write_bytes(snaps[1].read_bytes()[:40])
        warm = execute_campaign(SMALL_SPEC, jobs=1, plan_cache=str(cache_dir))
        assert _payload_bytes(warm) == reference
        assert warm.cache["errors"] == 2
        assert any("bad magic" in note for note in warm.cache["notes"])
        assert any("truncated" in note for note in warm.cache["notes"])

    def test_non_batchable_campaign_ignores_the_cache(self, tmp_path):
        spec = CampaignSpec(
            name="plan-cache-monitor-test",
            description="always-on-monitor has no batch hook: cache must idle",
            scenario="always-on-monitor",
            grid={"horizon_cycles": (10_000, 20_000)},
        )
        reference = _payload_bytes(execute_campaign(spec, jobs=1))
        cache_dir = str(tmp_path / "cache")
        for _ in range(2):
            result = execute_campaign(spec, jobs=1, plan_cache=cache_dir)
            assert _payload_bytes(result) == reference
            assert result.cache["errors"] == 0 and result.cache["writes"] == 0


class TestManifestProvenance:
    def test_execution_cache_block(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = execute_campaign(SMALL_SPEC, jobs=1, plan_cache=cache_dir)
        warm = execute_campaign(SMALL_SPEC, jobs=1, plan_cache=cache_dir)
        cold_block = manifest_payload(SMALL_SPEC, cold)["execution"]["cache"]
        warm_block = manifest_payload(SMALL_SPEC, warm)["execution"]["cache"]
        assert cold_block["path"] == warm_block["path"] == cache_dir
        assert cold_block["hits"] == 0 and cold_block["writes"] == 4
        assert warm_block["hits"] == 4 and warm_block["misses"] == 0
        assert warm_block["notes"] == []

    def test_no_cache_no_block(self):
        result = execute_campaign(SMALL_SPEC, jobs=1)
        assert result.cache is None
        assert "cache" not in manifest_payload(SMALL_SPEC, result)["execution"]

    def test_cache_counters_reach_telemetry(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        execute_campaign(SMALL_SPEC, jobs=1, plan_cache=cache_dir)
        warm = execute_campaign(SMALL_SPEC, jobs=1, plan_cache=cache_dir, profile=True)
        counters = warm.telemetry["metrics"]["counter"]
        assert counters["cache.hit"] == 4
        assert counters["cache.miss"] == 0
        # A served group's kernel counters come from its deepest restore,
        # which carries the cold run's history (plan_builds >= 1).
        assert counters.get("kernel.plan_builds", 0) >= 1

    def test_composes_with_jobs_and_chunk(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        reference = _payload_bytes(execute_campaign(SMALL_SPEC, jobs=1))
        cold = execute_campaign(SMALL_SPEC, jobs=2, chunk=2, plan_cache=cache_dir)
        warm = execute_campaign(SMALL_SPEC, jobs=2, chunk=2, plan_cache=cache_dir)
        assert _payload_bytes(cold) == _payload_bytes(warm) == reference
        assert warm.cache["hits"] == 4  # summed across pool chunks


class TestCli:
    def test_plan_cache_flag_round_trip(self, tmp_path, capsys):
        cache_dir = tmp_path / "plan-cache"
        cold_dir, warm_dir = tmp_path / "cold", tmp_path / "warm"
        args = ["sweep", "smoke", "--plan-cache", str(cache_dir)]
        assert main(args + ["--out", str(cold_dir)]) == 0
        assert main(args + ["--out", str(warm_dir)]) == 0
        out = capsys.readouterr().out
        # Cold line counts the probe misses; warm line counts one hit per point.
        assert "cache 0 hits/" in out
        assert "cache 4 hits/0 miss" in out
        for name in ("results.json", "results.csv"):
            cold_bytes = (cold_dir / "smoke" / name).read_bytes()
            assert cold_bytes == (warm_dir / "smoke" / name).read_bytes()
        warm_manifest = json.loads((warm_dir / "smoke" / "manifest.json").read_text())
        assert warm_manifest["execution"]["cache"]["hits"] == 4

    def test_stats_renders_cache_counters(self, tmp_path, capsys):
        cache_dir = tmp_path / "plan-cache"
        out_dir = tmp_path / "out"
        args = ["sweep", "smoke", "--plan-cache", str(cache_dir), "--out", str(out_dir)]
        assert main(args) == 0
        assert main(args + ["--profile"]) == 0
        capsys.readouterr()
        assert main(["stats", str(out_dir / "smoke")]) == 0
        out = capsys.readouterr().out
        assert f"plan cache {cache_dir}" in out
        assert "4 hits" in out
