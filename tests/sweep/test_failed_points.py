"""Per-point failure containment: a raising point must not poison the run.

One failing point is recorded as a structured ``failed_points`` entry (in
the chunk outcome, the campaign result, and the manifest's execution
block), every other point completes normally, the sweep CLI exits 1, and
the merge layer heals the failure exactly like a missing point.
"""

import json

import pytest

from repro.run import main
from repro.sweep.artifacts import write_artifacts
from repro.sweep.campaign import CampaignSpec, ShardSpec
from repro.sweep.campaigns import campaign as campaign_lookup
from repro.sweep.campaigns import register_campaign
from repro.sweep.execute import execute_campaign
from repro.sweep.merge import IncompleteCoverageError, merge_shards, plan_heal
from repro.workloads.registry import register_scenario, scenario

SCENARIO = "failing-point-test"
CAMPAIGN = "failing-point-test-campaign"
FAILING_INDEX = 2  # the detonate=2 point


def _ensure_registered() -> CampaignSpec:
    try:
        return campaign_lookup(CAMPAIGN)
    except KeyError:
        pass

    @register_scenario(
        SCENARIO,
        "delegates to always-on-monitor; raises for detonate=2",
        10_000,
        params=("detonate",),
    )
    def _run(horizon_cycles, dense, detonate=0):
        if int(detonate) == 2:
            raise RuntimeError(f"injected point failure (detonate={detonate})")
        return scenario("always-on-monitor").run(horizon_cycles, dense)

    return register_campaign(
        CampaignSpec(
            name=CAMPAIGN,
            description="4 points, one of which raises",
            scenario=SCENARIO,
            grid={"horizon_cycles": (10_000,), "detonate": (0, 1, 2, 3)},
        )
    )


@pytest.fixture(scope="module")
def spec() -> CampaignSpec:
    return _ensure_registered()


class TestFailureCapture:
    def test_serial_run_survives_and_records_the_failure(self, spec):
        result = execute_campaign(spec, jobs=1)
        assert result.n_failed == 1
        assert result.n_computed == spec.n_points - 1
        assert {r.index for r in result.points} == {0, 1, 3}
        (record,) = result.failed_points
        assert record["index"] == FAILING_INDEX
        assert record["label"] == f"{SCENARIO}#{FAILING_INDEX}"
        assert record["params"] == {"detonate": 2}
        assert record["error"].startswith("RuntimeError: injected point failure")
        assert "RuntimeError" in record["traceback"]

    def test_pool_run_is_not_poisoned(self, spec):
        # One failing chunk task must not take down the pool or lose the
        # sibling chunks; the outcome matches the serial run exactly.
        result = execute_campaign(spec, jobs=2, chunk=1)
        assert result.n_failed == 1
        assert {r.index for r in result.points} == {0, 1, 3}
        assert result.failed_points[0]["index"] == FAILING_INDEX

    def test_manifest_records_failed_points(self, spec, tmp_path):
        result = execute_campaign(spec, jobs=1)
        paths = write_artifacts(spec, result, tmp_path)
        manifest = json.loads(paths["manifest_json"].read_text())
        (record,) = manifest["execution"]["failed_points"]
        assert record["index"] == FAILING_INDEX
        assert "traceback" in record
        results = json.loads(paths["results_json"].read_text())
        assert [r["index"] for r in results["points"]] == [0, 1, 3]

    def test_sweep_cli_exits_1_and_names_the_point(self, spec, tmp_path, capsys):
        code = main(["sweep", CAMPAIGN, "--out", str(tmp_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert f"failed point {SCENARIO}#{FAILING_INDEX}" in err
        assert "1 point(s) failed" in err


class TestFailureHealsAsMissingPoint:
    def test_merge_reports_the_failed_point_as_the_gap(self, spec, tmp_path):
        for shard_text in ("0/2", "1/2"):
            shard = ShardSpec.parse(shard_text)
            result = execute_campaign(spec, jobs=1, shard=shard)
            write_artifacts(spec, result, tmp_path, subdir=f"shard-{shard.index}-of-2")
        directories = [tmp_path / spec.name / f"shard-{i}-of-2" for i in range(2)]
        with pytest.raises(IncompleteCoverageError) as excinfo:
            merge_shards(directories)
        gap = excinfo.value
        assert gap.missing == [FAILING_INDEX]
        plan = plan_heal(gap, tmp_path)
        assert plan["missing"] == [FAILING_INDEX]
        (command,) = plan["commands"]
        assert command["points"] == [FAILING_INDEX]

    def test_partial_merge_salvages_the_survivors(self, spec, tmp_path):
        for shard_text in ("0/2", "1/2"):
            shard = ShardSpec.parse(shard_text)
            result = execute_campaign(spec, jobs=1, shard=shard)
            write_artifacts(spec, result, tmp_path, subdir=f"shard-{shard.index}-of-2")
        directories = [tmp_path / spec.name / f"shard-{i}-of-2" for i in range(2)]
        merged = merge_shards(directories, allow_missing=True)
        assert merged.missing == [FAILING_INDEX]
        assert {r.index for r in merged.result.points} == {0, 1, 3}
