"""Sweep telemetry: byte-identity, profiling, tracing, stats, shard merge.

The observability contract (``docs/observability.md``):

* **Neutrality** — ``--trace-out``/``--profile`` must not change a single
  byte of ``results.json`` or ``results.csv``; telemetry lives only in the
  manifest's ``execution.telemetry`` block, the trace file, and stderr.
* **Trace validity** — every trace the CLI writes (per-run and merged)
  conforms to the ``repro-trace/1`` schema and loads in Perfetto.
* **Worker drainage** — a chunk executed without an inherited tracer (the
  forked-pool case) installs its own and ships events back through
  :class:`~repro.sweep.execute.ChunkOutcome`, never leaking a global.
"""

import json
import os

import pytest

from repro.obs import tracing
from repro.obs.metrics import KERNEL_STAT_KEYS
from repro.obs.profile import SWEEP_PHASES
from repro.obs.traceio import validate_trace_file
from repro.run import _resolve_trace_path, main
from repro.sim.backend import available_backends
from repro.sweep import batch_groups, campaign, expand_campaign
from repro.sweep.execute import run_point_groups, run_points

BACKENDS = available_backends()

RESULT_ARTIFACTS = ("results.json", "results.csv")


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    assert tracing.TRACER is None
    yield
    tracing.uninstall()


def _run_sweep(out_dir, *extra):
    assert main(["sweep", "smoke", "--out", str(out_dir), *extra]) == 0
    return out_dir / "smoke"


def _manifest(campaign_dir):
    return json.loads((campaign_dir / "manifest.json").read_text(encoding="utf-8"))


class TestTelemetryNeutrality:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_result_artifacts_are_byte_identical(self, tmp_path, backend):
        plain = _run_sweep(tmp_path / "plain", "--backend", backend)
        traced = _run_sweep(
            tmp_path / "traced", "--backend", backend, "--trace-out", "trace.json", "--profile"
        )
        for artifact in RESULT_ARTIFACTS:
            assert (traced / artifact).read_bytes() == (plain / artifact).read_bytes()

    def test_plain_manifest_has_no_telemetry_block(self, tmp_path):
        plain = _run_sweep(tmp_path / "plain")
        assert "telemetry" not in _manifest(plain)["execution"]


class TestTraceAndProfileArtifacts:
    def test_trace_file_validates_and_is_pointed_at_by_the_manifest(self, tmp_path):
        traced = _run_sweep(tmp_path / "out", "--trace-out", "trace.json", "--profile")
        telemetry = _manifest(traced)["execution"]["telemetry"]
        assert telemetry["enabled"] == {"trace": True, "profile": True}
        trace_block = telemetry["trace"]
        document = validate_trace_file(traced / trace_block["file"])
        spans = [event for event in document["traceEvents"] if event["ph"] != "M"]
        assert trace_block["events"] == len(spans)
        names = {event["name"] for event in spans}
        # smoke batches its points, so the trace shows enrolment + batch.run
        # lanes; kernel spans come from inside the batch instances.
        assert {"sweep.campaign", "sweep.enroll", "batch.run", "kernel.plan"} <= names

    def test_profile_covers_the_sweep_phases_and_metrics_the_kernel(self, tmp_path):
        traced = _run_sweep(tmp_path / "out", "--profile")
        telemetry = _manifest(traced)["execution"]["telemetry"]
        profile = telemetry["profile"]
        assert set(profile) <= set(SWEEP_PHASES)
        assert profile["simulate"] > 0
        assert profile["write"] > 0
        counters = telemetry["metrics"]["counter"]
        for key in KERNEL_STAT_KEYS:
            assert f"kernel.{key}" in counters
        assert counters["sweep.points{kind=computed}"] == 4

    def test_summary_line_reports_throughput_and_profile(self, tmp_path, capsys):
        _run_sweep(tmp_path / "out", "--trace-out", "trace.json", "--profile")
        out = capsys.readouterr().out
        assert "points/s" in out
        assert str(tmp_path / "out" / "smoke" / "trace.json") in out
        assert "phase" in out and "simulate" in out

    def test_trace_out_with_a_directory_part_is_taken_literally(self, tmp_path):
        target = tmp_path / "elsewhere" / "t.json"
        target.parent.mkdir()
        traced = _run_sweep(tmp_path / "out", "--trace-out", str(target))
        validate_trace_file(target)
        trace_block = _manifest(traced)["execution"]["telemetry"]["trace"]
        assert trace_block["file"] == str(target.resolve())

    def test_resolve_trace_path(self, tmp_path):
        assert _resolve_trace_path("t.json", tmp_path) == tmp_path / "t.json"
        nested = os.path.join("sub", "t.json")
        resolved = _resolve_trace_path(nested, tmp_path)
        assert resolved.parts[-2:] == ("sub", "t.json")
        assert resolved.parts[: len(tmp_path.parts)] != tmp_path.parts


class TestStatsCommand:
    def test_stats_renders_profile_metrics_and_trace(self, tmp_path, capsys):
        traced = _run_sweep(tmp_path / "out", "--trace-out", "trace.json", "--profile")
        capsys.readouterr()
        assert main(["stats", str(traced)]) == 0
        out = capsys.readouterr().out
        assert "campaign smoke: 4 points" in out
        assert "points/s" in out
        assert "simulate" in out
        assert "kernel.plan_builds" in out
        assert "sweep.point_wall_seconds" in out
        assert "spans" in out and "kernel" in out

    def test_stats_without_telemetry_explains_and_exits_1(self, tmp_path, capsys):
        plain = _run_sweep(tmp_path / "out")
        capsys.readouterr()
        assert main(["stats", str(plain)]) == 1
        assert "no telemetry recorded" in capsys.readouterr().out

    def test_stats_on_a_non_campaign_dir_exits_2(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path)]) == 2
        assert "manifest.json" in capsys.readouterr().err

    def test_stats_on_a_corrupt_trace_exits_2(self, tmp_path, capsys):
        traced = _run_sweep(tmp_path / "out", "--trace-out", "trace.json")
        (traced / "trace.json").write_text("{not json")
        capsys.readouterr()
        assert main(["stats", str(traced)]) == 2
        assert "invalid" in capsys.readouterr().err


class TestShardedTraceMerge:
    def _shard_dirs(self, tmp_path):
        dirs = []
        for index in range(2):
            _run_sweep(
                tmp_path,
                "--shard",
                f"{index}/2",
                "--trace-out",
                "trace.json",
                "--profile",
            )
            dirs.append(tmp_path / "smoke" / f"shard-{index}-of-2")
        return dirs

    def test_merge_stitches_shard_traces_into_lanes(self, tmp_path, capsys):
        dirs = self._shard_dirs(tmp_path)
        assert main(["sweep", "merge", *map(str, dirs), "--out", str(tmp_path / "merged")]) == 0
        merged_dir = tmp_path / "merged" / "smoke"
        document = validate_trace_file(merged_dir / "trace.json")
        lanes = [
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M" and event["name"] == "process_name"
        ]
        assert sorted(lanes) == ["shard-0-of-2/sweep", "shard-1-of-2/sweep"]
        telemetry = _manifest(merged_dir)["execution"]["telemetry"]
        assert telemetry["trace"]["file"] == "trace.json"
        # Merged profile folds both shards' phase timers.
        assert telemetry["profile"]["simulate"] > 0
        assert telemetry["metrics"]["counter"]["sweep.points{kind=computed}"] == 4
        assert str(merged_dir / "trace.json") in capsys.readouterr().out

    def test_stats_reads_the_merged_directory(self, tmp_path, capsys):
        dirs = self._shard_dirs(tmp_path)
        assert main(["sweep", "merge", *map(str, dirs), "--out", str(tmp_path / "merged")]) == 0
        capsys.readouterr()
        assert main(["stats", str(tmp_path / "merged" / "smoke")]) == 0
        out = capsys.readouterr().out
        assert "campaign smoke: 4 points" in out
        assert "spans" in out


class TestWorkerOwnedTracer:
    """The forked-pool contract, exercised directly: ``run_points`` /
    ``run_point_groups`` called with ``trace=True`` and no usable inherited
    tracer must install their own and drain it into the outcome."""

    def _points(self):
        return expand_campaign(campaign("smoke"))[:2]

    def test_run_points_drains_an_owned_tracer_into_the_outcome(self):
        outcome = run_points(self._points(), trace=True, profile=True)
        assert tracing.TRACER is None  # the owned tracer never leaks
        assert len(outcome.results) == 2
        names = {event["name"] for event in outcome.trace_events}
        assert "sweep.point" in names and "kernel.plan" in names
        assert outcome.phase_seconds["simulate"] > 0
        assert set(outcome.kernel_stats) == set(KERNEL_STAT_KEYS)

    def test_run_points_defers_to_an_inherited_tracer(self):
        tracer = tracing.install()
        outcome = run_points(self._points(), trace=True, profile=False)
        assert outcome.trace_events == []  # parent drains its own tracer
        assert {event["name"] for event in tracer.events} >= {"sweep.point"}
        assert tracing.TRACER is tracer

    def test_run_point_groups_drains_an_owned_tracer(self):
        groups = batch_groups(self._points())
        outcome = run_point_groups(groups, trace=True, profile=True)
        assert tracing.TRACER is None
        assert len(outcome.results) == 2
        names = {event["name"] for event in outcome.trace_events}
        assert "sweep.enroll" in names and "batch.run" in names
        assert outcome.phase_seconds["prepare"] > 0
        assert outcome.phase_seconds["simulate"] > 0
        assert outcome.rounds > 0

    def test_profile_only_chunks_carry_no_trace_events(self):
        outcome = run_points(self._points(), trace=False, profile=True)
        assert outcome.trace_events == []
        assert outcome.phase_seconds["simulate"] > 0

    def test_disabled_chunks_report_nothing(self):
        outcome = run_points(self._points())
        assert outcome.trace_events == []
        assert outcome.phase_seconds == {}
        assert outcome.kernel_stats == {}
