"""Unit tests for campaign grid expansion, seeding, and the campaign registry."""

import itertools

import pytest

from repro.sweep.campaign import (
    CampaignSpec,
    derive_point_seed,
    expand_campaign,
    grid_from_lists,
)
from repro.sweep.campaigns import campaign, campaign_names, campaigns, register_campaign
from repro.workloads.registry import scenario


def make_spec(**overrides):
    defaults = dict(
        name="test-campaign",
        description="unit-test campaign",
        scenario="duty-cycled-logging",
        grid={
            "horizon_cycles": (40_000, 60_000),
            "sample_period_cycles": (2_000, 4_000, 8_000),
        },
    )
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestCampaignSpec:
    def test_n_points_is_the_grid_product(self):
        assert make_spec().n_points == 6

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            make_spec(grid={})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            make_spec(grid={"horizon_cycles": ()})

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="name"):
            make_spec(name="")

    def test_grid_from_lists_freezes_values(self):
        grid = grid_from_lists(horizon_cycles=[1, 2], seed=range(3))
        assert grid == {"horizon_cycles": (1, 2), "seed": (0, 1, 2)}


class TestExpansion:
    def test_row_major_order_over_grid_axes(self):
        points = expand_campaign(make_spec())
        combos = [
            (point.horizon_cycles, point.params["sample_period_cycles"]) for point in points
        ]
        assert combos == list(itertools.product((40_000, 60_000), (2_000, 4_000, 8_000)))
        assert [point.index for point in points] == list(range(6))

    def test_missing_horizon_axis_uses_scenario_default(self):
        spec = make_spec(grid={"sample_period_cycles": (2_000,)})
        (point,) = expand_campaign(spec)
        assert point.horizon_cycles == scenario("duty-cycled-logging").default_horizon_cycles

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            expand_campaign(make_spec(scenario="no-such-scenario"))

    def test_unknown_param_axis_raises(self):
        spec = make_spec(grid={"horizon_cycles": (40_000,), "bogus_knob": (1,)})
        with pytest.raises(ValueError, match="bogus_knob"):
            expand_campaign(spec)

    def test_non_integer_horizon_rejected(self):
        spec = make_spec(grid={"horizon_cycles": (0.5,)})
        with pytest.raises(ValueError, match="positive ints"):
            expand_campaign(spec)

    def test_dense_flag_propagates_to_every_point(self):
        points = expand_campaign(make_spec(dense=True))
        assert all(point.dense for point in points)


class TestSeeding:
    def test_seeds_are_deterministic(self):
        first = [point.seed for point in expand_campaign(make_spec())]
        second = [point.seed for point in expand_campaign(make_spec())]
        assert first == second

    def test_seeds_differ_per_point_and_per_campaign(self):
        seeds = [point.seed for point in expand_campaign(make_spec())]
        assert len(set(seeds)) == len(seeds)
        other = [point.seed for point in expand_campaign(make_spec(name="other-campaign"))]
        assert set(seeds).isdisjoint(other)

    def test_base_seed_reshuffles_seeds(self):
        seeds = [point.seed for point in expand_campaign(make_spec())]
        reseeded = [point.seed for point in expand_campaign(make_spec(base_seed=1))]
        assert seeds != reseeded

    def test_derive_point_seed_is_stable(self):
        # Pinned: artifacts from earlier releases must stay reproducible.
        assert derive_point_seed("smoke", 0xC0FFEE, 0) == 242339607

    def test_seed_param_injected_for_seed_aware_scenarios(self):
        spec = make_spec(
            scenario="watchdog-recovery", grid={"horizon_cycles": (200_000, 400_000)}
        )
        for point in expand_campaign(spec):
            assert point.params["seed"] == point.seed

    def test_explicit_seed_axis_wins_over_injection(self):
        spec = make_spec(
            scenario="watchdog-recovery",
            grid={"horizon_cycles": (200_000,), "seed": (7, 8)},
        )
        assert [point.params["seed"] for point in expand_campaign(spec)] == [7, 8]

    def test_no_injection_when_explicit_params_are_swept(self):
        # watchdog-recovery rejects seed + explicit params together; a grid
        # over explicit params must therefore expand seed-free and run.
        spec = make_spec(
            scenario="watchdog-recovery",
            grid={"horizon_cycles": (200_000,), "sample_period_cycles": (2_000, 2_400)},
        )
        points = expand_campaign(spec)
        assert all("seed" not in point.params for point in points)
        from repro.sweep.execute import run_point

        assert run_point(points[0]).stats["recovered"] is True


class TestBuiltinCampaigns:
    def test_three_paper_campaigns_are_registered(self):
        names = campaign_names()
        for name in ("pipeline-clock-ratio", "watchdog-fault-injection", "fig5-long-horizon-power"):
            assert name in names

    def test_every_builtin_campaign_expands(self):
        for spec in campaigns():
            points = expand_campaign(spec)
            assert len(points) == spec.n_points

    def test_paper_campaigns_have_at_least_24_points(self):
        for name in ("pipeline-clock-ratio", "watchdog-fault-injection", "fig5-long-horizon-power"):
            assert campaign(name).n_points >= 24

    def test_unknown_campaign_raises_with_known_names(self):
        with pytest.raises(KeyError, match="registered:"):
            campaign("no-such-campaign")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_campaign(campaign("smoke"))
