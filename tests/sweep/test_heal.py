"""Shard-level heal (`sweep merge --heal`): exact re-run commands for gaps.

When a fleet member dies, ``sweep merge`` refuses to stitch the incomplete
shard set — and with ``--heal`` it must emit the *exact* ``--shard`` re-run
commands (plus a machine-readable ``heal.json``) that close the gap, such
that running them and re-merging yields byte-identical single-host
artifacts.
"""

import json

import pytest

from repro.run import main
from repro.sweep import (
    CampaignSpec,
    IncompleteCoverageError,
    ShardSpec,
    execute_campaign,
    merge_shards,
    plan_heal,
    write_artifacts,
)

SPEC = CampaignSpec(
    name="heal-test",
    description="small campaign for the heal tests",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (20_000, 40_000),
        "sample_period_cycles": (1_000, 2_000),
    },
)


def _write_fleet(tmp_path, count):
    """Execute SPEC as ``count`` shards, one artifact dir per shard."""
    directories = []
    for index in range(count):
        shard = ShardSpec(index=index, count=count)
        result = execute_campaign(SPEC, shard=shard)
        paths = write_artifacts(SPEC, result, tmp_path, subdir=f"shard-{index}-of-{count}")
        directories.append(paths["results_json"].parent)
    return directories


class TestIncompleteCoverage:
    def test_missing_shard_raises_structured_error(self, tmp_path):
        directories = _write_fleet(tmp_path, 4)
        with pytest.raises(IncompleteCoverageError) as excinfo:
            merge_shards(directories[:1] + directories[2:])
        error = excinfo.value
        assert error.missing == [1]
        assert error.points_total == 4
        assert error.spec.name == SPEC.name
        assert "--heal" in str(error)

    def test_plan_heal_reruns_the_dead_shard(self, tmp_path):
        directories = _write_fleet(tmp_path, 4)
        with pytest.raises(IncompleteCoverageError) as excinfo:
            merge_shards([directories[0], directories[1], directories[3]])
        plan = plan_heal(excinfo.value, tmp_path)
        assert plan["missing"] == [2]
        assert [command["shard"] for command in plan["commands"]] == ["2/4"]
        command = plan["commands"][0]
        assert command["points"] == [2]
        assert command["argv"][:5] == ["python", "-m", "repro.run", "sweep", SPEC.name]
        assert "--shard 2/4" in command["command"]
        assert str(tmp_path) in command["command"]
        # merge_after lists the survivors plus the shard the command creates.
        assert [str(directory) for directory in directories if "2-of-4" not in str(directory)] == [
            entry for entry in plan["merge_after"] if "2-of-4" not in entry
        ]
        assert any("shard-2-of-4" in entry for entry in plan["merge_after"])

    def test_plan_heal_covers_partial_gaps_with_single_point_shards(self, tmp_path):
        directories = _write_fleet(tmp_path, 2)
        # Amputate one record from shard 0 (covers [0, 2)): the gap is now
        # inside a shard range, so no 0/2 re-run can close it without
        # overlapping the surviving record — heal must fall back to
        # single-point shards.
        results_path = directories[0] / "results.json"
        payload = json.loads(results_path.read_text())
        payload["points"] = [record for record in payload["points"] if record["index"] != 1]
        results_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        with pytest.raises(IncompleteCoverageError) as excinfo:
            merge_shards(directories)
        plan = plan_heal(excinfo.value, tmp_path)
        assert plan["missing"] == [1]
        assert [command["shard"] for command in plan["commands"]] == ["1/4"]
        assert plan["commands"][0]["points"] == [1]


class TestHealCli:
    def test_heal_emits_commands_and_json(self, tmp_path, capsys):
        out = tmp_path / "fleet"
        for index in range(3):
            assert (
                main(["sweep", "smoke", "--shard", f"{index}/3", "--out", str(out)]) == 0
            )
        capsys.readouterr()
        survivors = [str(out / "smoke" / f"shard-{index}-of-3") for index in (0, 2)]

        # Without --heal: plain failure, exit 2, gaps named.
        assert main(["sweep", "merge", *survivors, "--out", str(out)]) == 2
        captured = capsys.readouterr()
        assert "incomplete coverage" in captured.err
        assert not (out / "smoke" / "heal.json").exists()

        # With --heal: exit 3, commands on stdout, heal.json written.
        assert main(["sweep", "merge", *survivors, "--out", str(out), "--heal"]) == 3
        captured = capsys.readouterr()
        assert f"sweep smoke --shard 1/3 --out {out}" in captured.out
        heal = json.loads((out / "smoke" / "heal.json").read_text())
        assert heal["campaign"] == "smoke"
        assert heal["missing"] == [1]
        assert [command["shard"] for command in heal["commands"]] == ["1/3"]
        assert len(heal["merge_after"]) == 3

    def test_healed_fleet_merges_byte_identical(self, tmp_path, capsys):
        out = tmp_path / "fleet"
        for index in (0, 2):
            assert (
                main(["sweep", "smoke", "--shard", f"{index}/3", "--out", str(out)]) == 0
            )
        survivors = [str(out / "smoke" / f"shard-{index}-of-3") for index in (0, 2)]
        assert main(["sweep", "merge", *survivors, "--out", str(out), "--heal"]) == 3
        heal = json.loads((out / "smoke" / "heal.json").read_text())

        # Run exactly the emitted commands (drop the leading python -m repro.run).
        for command in heal["commands"]:
            assert main(command["argv"][3:]) == 0
        assert (
            main(["sweep", "merge", *heal["merge_after"], "--out", str(tmp_path / "merged")]) == 0
        )
        serial = tmp_path / "serial"
        assert main(["sweep", "smoke", "--jobs", "1", "--out", str(serial)]) == 0
        for name in ("results.json", "results.csv"):
            assert (tmp_path / "merged" / "smoke" / name).read_bytes() == (
                serial / "smoke" / name
            ).read_bytes()

    def test_successful_merge_removes_stale_heal_plan(self, tmp_path, capsys):
        out = tmp_path / "fleet"
        for index in (0, 2):
            assert (
                main(["sweep", "smoke", "--shard", f"{index}/3", "--out", str(out)]) == 0
            )
        survivors = [str(out / "smoke" / f"shard-{index}-of-3") for index in (0, 2)]
        assert main(["sweep", "merge", *survivors, "--out", str(out), "--heal"]) == 3
        assert (out / "smoke" / "heal.json").exists()
        # Fill the gap and merge into the same out dir: the now-satisfied
        # heal plan must not survive next to complete artifacts.
        assert main(["sweep", "smoke", "--shard", "1/3", "--out", str(out)]) == 0
        healed = survivors[:1] + [str(out / "smoke" / "shard-1-of-3")] + survivors[1:]
        assert main(["sweep", "merge", *healed, "--out", str(out)]) == 0
        assert not (out / "smoke" / "heal.json").exists()
