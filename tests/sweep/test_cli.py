"""CLI tests for ``python -m repro.run sweep``."""

import json

from repro.run import main


class TestSweepCli:
    def test_list_campaigns(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("pipeline-clock-ratio", "watchdog-fault-injection", "fig5-long-horizon-power", "smoke"):
            assert name in out

    def test_missing_campaign_prints_usage(self, capsys):
        assert main(["sweep"]) == 2
        assert "usage" in capsys.readouterr().out

    def test_unknown_campaign_is_an_error(self, capsys):
        assert main(["sweep", "no-such-campaign"]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_invalid_jobs_is_an_error(self, capsys):
        assert main(["sweep", "smoke", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_dry_run_prints_matrix_without_artifacts(self, capsys, tmp_path):
        out_dir = tmp_path / "sweeps"
        assert main(["sweep", "smoke", "--dry-run", "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "4 points" in out
        assert "point   0" in out
        assert not out_dir.exists()

    def test_smoke_campaign_writes_artifacts_with_progress(self, capsys, tmp_path):
        out_dir = tmp_path / "sweeps"
        assert main(["sweep", "smoke", "--jobs", "2", "--out", str(out_dir)]) == 0
        captured = capsys.readouterr()
        campaign_dir = out_dir / "smoke"
        assert (campaign_dir / "results.json").exists()
        assert (campaign_dir / "results.csv").exists()
        assert (campaign_dir / "manifest.json").exists()
        assert "[4/4]" in captured.err  # progress reporting on stderr
        assert "4 points" in captured.out
        manifest = json.loads((campaign_dir / "manifest.json").read_text())
        assert manifest["execution"]["jobs"] == 2

    def test_jobs_1_and_jobs_4_artifacts_are_identical(self, tmp_path):
        """The CLI-level statement of the determinism acceptance criterion."""
        serial_dir, sharded_dir = tmp_path / "serial", tmp_path / "sharded"
        assert main(["sweep", "smoke", "--jobs", "1", "--out", str(serial_dir)]) == 0
        assert main(["sweep", "smoke", "--jobs", "4", "--out", str(sharded_dir)]) == 0
        for artifact in ("results.json", "results.csv"):
            serial_bytes = (serial_dir / "smoke" / artifact).read_bytes()
            sharded_bytes = (sharded_dir / "smoke" / artifact).read_bytes()
            assert serial_bytes == sharded_bytes

    def test_single_scenario_cli_still_works(self, capsys):
        assert main(["--list"]) == 0
        assert "multi-link-pipeline" in capsys.readouterr().out
        assert main(["multi-link-pipeline", "--horizon-cycles", "2000"]) == 0
        out = capsys.readouterr().out
        assert "timer_overflows" in out
