"""Resume-aware artifact merging: byte-identity with a single-host run,
manifest validation, and the merged-artifacts-as-resume-source property."""

import json

import pytest

from repro.run import main
from repro.sweep.artifacts import write_artifacts
from repro.sweep.campaign import CampaignSpec, ShardSpec
from repro.sweep.execute import execute_campaign
from repro.sweep.merge import (
    MergeError,
    load_shard_dir,
    merge_shards,
    write_merged_artifacts,
)
from repro.sweep.resume import load_reusable_results, spec_hash

SPEC = CampaignSpec(
    name="merge-test",
    description="small merge-test campaign",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (40_000, 60_000),
        "sample_period_cycles": (2_000, 4_000),
    },
)


def _serial_artifacts(tmp_path):
    result = execute_campaign(SPEC, jobs=1)
    return write_artifacts(SPEC, result, tmp_path / "serial")


def _shard_dirs(tmp_path, count, spec=SPEC):
    dirs = []
    for index in range(count):
        result = execute_campaign(spec, shard=ShardSpec(index=index, count=count))
        write_artifacts(spec, result, tmp_path / f"shard{index}")
        dirs.append(tmp_path / f"shard{index}" / spec.name)
    return dirs


class TestMergeByteIdentity:
    @pytest.mark.parametrize("count", [1, 2, 3, 4])
    def test_merged_artifacts_match_serial_bytes(self, tmp_path, count):
        """The acceptance criterion: any shard count merges back to the
        byte-exact single-host --jobs 1 artifacts."""
        serial_paths = _serial_artifacts(tmp_path)
        merged = merge_shards(_shard_dirs(tmp_path, count))
        merged_paths = write_merged_artifacts(merged, tmp_path / "merged")
        for key in ("results_json", "results_csv"):
            assert merged_paths[key].read_bytes() == serial_paths[key].read_bytes()

    def test_more_shards_than_points_still_merges(self, tmp_path):
        serial_paths = _serial_artifacts(tmp_path)
        merged = merge_shards(_shard_dirs(tmp_path, 6))  # 4 points, 2 empty shards
        merged_paths = write_merged_artifacts(merged, tmp_path / "merged")
        for key in ("results_json", "results_csv"):
            assert merged_paths[key].read_bytes() == serial_paths[key].read_bytes()

    def test_shard_order_does_not_matter(self, tmp_path):
        serial_paths = _serial_artifacts(tmp_path)
        dirs = _shard_dirs(tmp_path, 3)
        merged = merge_shards([dirs[2], dirs[0], dirs[1]])
        merged_paths = write_merged_artifacts(merged, tmp_path / "merged")
        assert merged_paths["results_json"].read_bytes() == serial_paths["results_json"].read_bytes()

    def test_merging_an_unsharded_run_is_the_identity(self, tmp_path):
        serial_paths = _serial_artifacts(tmp_path)
        merged = merge_shards([tmp_path / "serial" / SPEC.name])
        merged_paths = write_merged_artifacts(merged, tmp_path / "merged")
        for key in ("results_json", "results_csv"):
            assert merged_paths[key].read_bytes() == serial_paths[key].read_bytes()


class TestAxisOrderRoundTrip:
    """Axis order is campaign identity (it numbers the points), but the
    manifest is serialised with sorted keys — the explicit axis_order field
    must restore it.  Regression: a campaign whose axes are not already in
    alphabetical order used to fail the merge's spec-hash round-trip."""

    REORDERED = CampaignSpec(
        name="merge-reorder-test",
        description="axes deliberately not in alphabetical order",
        scenario="duty-cycled-logging",
        grid={
            "sample_period_cycles": (2_000, 4_000),  # 's' before 'h': non-alphabetical
            "horizon_cycles": (40_000, 60_000),
        },
    )

    def test_spec_round_trips_through_the_manifest(self, tmp_path):
        from repro.sweep.resume import spec_from_manifest

        result = execute_campaign(self.REORDERED, jobs=1)
        paths = write_artifacts(self.REORDERED, result, tmp_path)
        manifest = json.loads(paths["manifest_json"].read_text())
        rebuilt = spec_from_manifest(manifest)
        assert list(rebuilt.grid) == ["sample_period_cycles", "horizon_cycles"]
        assert spec_hash(rebuilt) == spec_hash(self.REORDERED) == manifest["spec_hash"]

    def test_non_alphabetical_campaign_merges_byte_identically(self, tmp_path):
        serial = execute_campaign(self.REORDERED, jobs=1)
        serial_paths = write_artifacts(self.REORDERED, serial, tmp_path / "serial")
        merged = merge_shards(_shard_dirs(tmp_path, 2, spec=self.REORDERED))
        merged_paths = write_merged_artifacts(merged, tmp_path / "merged")
        for key in ("results_json", "results_csv"):
            assert merged_paths[key].read_bytes() == serial_paths[key].read_bytes()

    def test_inconsistent_axis_order_is_refused(self, tmp_path):
        (dir0,) = _shard_dirs(tmp_path, 1, spec=self.REORDERED)
        manifest = json.loads((dir0 / "manifest.json").read_text())
        manifest["campaign"]["axis_order"] = ["horizon_cycles"]  # drops an axis
        (dir0 / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(MergeError, match="axis_order"):
            merge_shards([dir0])


class TestMergedManifest:
    def test_manifest_is_a_resume_source_with_every_point_reused(self, tmp_path):
        """The resume-aware half of the tentpole: a merged results.json is a
        valid --resume source and reuses every point."""
        merged = merge_shards(_shard_dirs(tmp_path, 3))
        write_merged_artifacts(merged, tmp_path / "merged")
        reuse = load_reusable_results(SPEC, tmp_path / "merged")
        assert sorted(reuse) == [0, 1, 2, 3]
        resumed = execute_campaign(SPEC, jobs=1, reuse=reuse)
        assert resumed.n_reused == 4
        assert resumed.n_computed == 0

    def test_recutting_to_a_different_shard_count_reuses_everything(self, tmp_path):
        merged = merge_shards(_shard_dirs(tmp_path, 3))
        write_merged_artifacts(merged, tmp_path / "merged")
        reuse = load_reusable_results(SPEC, tmp_path / "merged")
        for index in range(2):  # re-cut the fleet from 3 shards to 2
            shard = ShardSpec(index=index, count=2)
            resumed = execute_campaign(SPEC, shard=shard, reuse=reuse)
            assert resumed.n_reused == resumed.n_points
            assert resumed.n_computed == 0

    def test_manifest_records_sources_and_spec_hash(self, tmp_path):
        dirs = _shard_dirs(tmp_path, 2)
        merged = merge_shards(dirs)
        paths = write_merged_artifacts(merged, tmp_path / "merged")
        manifest = json.loads(paths["manifest_json"].read_text())
        assert manifest["spec_hash"] == spec_hash(SPEC)
        assert manifest["n_points"] == 4
        sources = manifest["execution"]["merged_from"]
        assert [source["shard"]["index"] for source in sources] == [0, 1]
        assert manifest["execution"]["point_wall_seconds"].keys() == {"0", "1", "2", "3"}

    def test_wall_timings_are_carried_over_from_the_shards(self, tmp_path):
        dirs = _shard_dirs(tmp_path, 2)
        shard_walls = {}
        for directory in dirs:
            manifest = json.loads((directory / "manifest.json").read_text())
            shard_walls.update(manifest["execution"]["point_wall_seconds"])
        merged = merge_shards(dirs)
        paths = write_merged_artifacts(merged, tmp_path / "merged")
        manifest = json.loads(paths["manifest_json"].read_text())
        assert manifest["execution"]["point_wall_seconds"] == shard_walls


class TestMergeValidation:
    def test_mismatched_spec_hash_is_refused(self, tmp_path):
        dirs = _shard_dirs(tmp_path, 2)
        other = CampaignSpec(
            name=SPEC.name,  # same name, different identity
            description=SPEC.description,
            scenario=SPEC.scenario,
            grid=dict(SPEC.grid),
            base_seed=SPEC.base_seed + 1,
        )
        result = execute_campaign(other, shard=ShardSpec(index=1, count=2))
        write_artifacts(other, result, tmp_path / "alien")
        with pytest.raises(MergeError, match="spec_hash"):
            merge_shards([dirs[0], tmp_path / "alien" / other.name])

    def test_overlapping_shards_are_refused(self, tmp_path):
        dirs = _shard_dirs(tmp_path, 2)
        overlapping = _shard_dirs(tmp_path / "three", 3)
        with pytest.raises(MergeError, match="overlapping"):
            merge_shards([dirs[0], overlapping[1]])  # [0,2) vs [1,2)

    def test_same_directory_twice_is_refused(self, tmp_path):
        dirs = _shard_dirs(tmp_path, 2)
        with pytest.raises(MergeError, match="overlapping|duplicate"):
            merge_shards([dirs[0], dirs[0], dirs[1]])

    def test_incomplete_coverage_names_missing_indices(self, tmp_path):
        dirs = _shard_dirs(tmp_path, 3)
        with pytest.raises(MergeError, match=r"incomplete coverage.*missing"):
            merge_shards([dirs[0], dirs[2]])
        try:
            merge_shards([dirs[0], dirs[2]])
        except MergeError as exc:
            message = str(exc)
        # shard 1/3 of 4 points owns exactly index 1
        assert "(1)" in message
        assert "shard 0/3" in message and "shard 2/3" in message

    def test_missing_artifacts_are_refused_with_a_hint(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(MergeError, match="results.json"):
            merge_shards([empty])
        with pytest.raises(MergeError, match="not a directory"):
            merge_shards([tmp_path / "nope"])

    def test_nothing_to_merge_is_an_error(self):
        with pytest.raises(MergeError, match="at least one"):
            merge_shards([])

    def test_corrupt_json_is_refused(self, tmp_path):
        (dir0,) = _shard_dirs(tmp_path, 1)
        (dir0 / "results.json").write_text("{not json")
        with pytest.raises(MergeError, match="invalid JSON"):
            merge_shards([dir0])

    def test_malformed_record_is_refused(self, tmp_path):
        (dir0,) = _shard_dirs(tmp_path, 1)
        payload = json.loads((dir0 / "results.json").read_text())
        del payload["points"][1]["seed"]
        (dir0 / "results.json").write_text(json.dumps(payload))
        with pytest.raises(MergeError, match="malformed"):
            merge_shards([dir0])

    def test_edited_manifest_hash_mismatch_is_refused(self, tmp_path):
        (dir0,) = _shard_dirs(tmp_path, 1)
        manifest = json.loads((dir0 / "manifest.json").read_text())
        manifest["campaign"]["base_seed"] += 1  # hash no longer matches block
        (dir0 / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(MergeError, match="edited or corrupted"):
            merge_shards([dir0])

    def test_load_shard_dir_round_trips(self, tmp_path):
        (dir0,) = _shard_dirs(tmp_path, 1)
        artifacts = load_shard_dir(dir0)
        assert artifacts.campaign_name == SPEC.name
        assert artifacts.spec_hash == spec_hash(SPEC)
        assert artifacts.points_total() == 4


class TestMergeCli:
    def test_cli_merges_and_prints_sources(self, capsys, tmp_path):
        shard_dirs = []
        for index in range(2):
            assert main(["sweep", "smoke", "--shard", f"{index}/2", "--out", str(tmp_path)]) == 0
            shard_dirs.append(str(tmp_path / "smoke" / f"shard-{index}-of-2"))
        assert (
            main(["sweep", "merge", *shard_dirs, "--out", str(tmp_path / "merged")]) == 0
        )
        out = capsys.readouterr().out
        assert "merged campaign smoke: 4 points" in out
        assert (tmp_path / "merged" / "smoke" / "results.json").exists()
        # the merged dir is a valid --resume source through the CLI, too
        assert (
            main(["sweep", "smoke", "--resume", "--out", str(tmp_path / "merged")]) == 0
        )
        manifest = json.loads((tmp_path / "merged" / "smoke" / "manifest.json").read_text())
        assert manifest["execution"]["reused_points"] == 4
        assert manifest["execution"]["computed_points"] == 0

    def test_in_place_recut_does_not_clobber_merged_artifacts(self, capsys, tmp_path):
        """Regression: re-cutting a fleet directly against the merged
        directory must reuse every point AND leave the campaign-level
        merged artifacts byte-identical — a shard run used to overwrite
        <out>/<campaign>/ with its own slice."""
        for index in range(3):
            assert main(["sweep", "smoke", "--shard", f"{index}/3", "--out", str(tmp_path)]) == 0
        shard_dirs = [str(tmp_path / "smoke" / f"shard-{index}-of-3") for index in range(3)]
        assert main(["sweep", "merge", *shard_dirs, "--out", str(tmp_path / "merged")]) == 0
        merged_results = tmp_path / "merged" / "smoke" / "results.json"
        before = merged_results.read_bytes()
        for index in range(2):  # re-cut 3 -> 2 shards, in place
            assert (
                main(
                    [
                        "sweep",
                        "smoke",
                        "--shard",
                        f"{index}/2",
                        "--resume",
                        "--out",
                        str(tmp_path / "merged"),
                    ]
                )
                == 0
            )
            manifest = json.loads(
                (tmp_path / "merged" / "smoke" / f"shard-{index}-of-2" / "manifest.json").read_text()
            )
            assert manifest["execution"]["computed_points"] == 0
            assert manifest["execution"]["reused_points"] == 2
        assert merged_results.read_bytes() == before

    def test_cli_merge_error_is_exit_2(self, capsys, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["sweep", "merge", str(empty)]) == 2
        assert "results.json" in capsys.readouterr().err
