"""Multi-host sharding (--shard I/N): partitioning, artifacts, composition
with --jobs/--chunk/--resume."""

import json

import pytest

from repro.run import main
from repro.sweep.artifacts import results_payload, write_artifacts
from repro.sweep.campaign import CampaignSpec, ShardSpec, expand_campaign
from repro.sweep.execute import execute_campaign
from repro.sweep.resume import load_reusable_results, spec_hash

SPEC = CampaignSpec(
    name="shard-test",
    description="small sharding-test campaign",
    scenario="duty-cycled-logging",
    grid={
        "horizon_cycles": (40_000, 60_000),
        "sample_period_cycles": (2_000, 4_000),
    },
)


class TestShardSpec:
    def test_parse_round_trips(self):
        shard = ShardSpec.parse("1/4")
        assert (shard.index, shard.count) == (1, 4)
        assert str(shard) == "1/4"

    @pytest.mark.parametrize("text", ["3", "1/", "/3", "a/b", "1/4/2", ""])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError, match="I/N"):
            ShardSpec.parse(text)

    def test_index_must_be_in_range(self):
        with pytest.raises(ValueError, match="zero-based"):
            ShardSpec(index=3, count=3)
        with pytest.raises(ValueError, match="shard index"):
            ShardSpec(index=-1, count=3)
        with pytest.raises(ValueError, match="shard count"):
            ShardSpec(index=0, count=0)

    @pytest.mark.parametrize("n_points", [0, 1, 3, 4, 7, 24, 100])
    @pytest.mark.parametrize("count", [1, 2, 3, 5, 8])
    def test_partition_is_disjoint_and_complete(self, n_points, count):
        covered = []
        for index in range(count):
            start, stop = ShardSpec(index=index, count=count).bounds(n_points)
            assert 0 <= start <= stop <= n_points
            covered.extend(range(start, stop))
        assert covered == list(range(n_points))  # in order, no gap, no overlap

    def test_partition_is_balanced(self):
        sizes = [len(range(*ShardSpec(index=i, count=3).bounds(7))) for i in range(3)]
        assert sorted(sizes) == [2, 2, 3]

    def test_select_returns_the_contiguous_slice(self):
        points = expand_campaign(SPEC)
        selected = ShardSpec(index=1, count=2).select(points)
        assert [point.index for point in selected] == [2, 3]

    def test_more_shards_than_points_leaves_empty_shards(self):
        points = expand_campaign(SPEC)  # 4 points
        sizes = [len(ShardSpec(index=i, count=6).select(points)) for i in range(6)]
        assert sum(sizes) == 4
        assert 0 in sizes


class TestShardedExecution:
    def test_shards_union_to_the_serial_run(self):
        serial = execute_campaign(SPEC, jobs=1)
        merged_points = []
        for index in range(3):
            part = execute_campaign(SPEC, shard=ShardSpec(index=index, count=3))
            merged_points.extend(part.points)
        assert [point.index for point in merged_points] == [0, 1, 2, 3]
        serial_records = results_payload(serial)["points"]
        shard_records = [
            record
            for index in range(3)
            for record in results_payload(
                execute_campaign(SPEC, shard=ShardSpec(index=index, count=3))
            )["points"]
        ]
        assert shard_records == serial_records

    def test_shard_composes_with_jobs_and_chunk(self):
        shard = ShardSpec(index=0, count=2)
        reference = execute_campaign(SPEC, shard=shard)
        pooled = execute_campaign(SPEC, jobs=2, chunk=1, shard=shard)
        assert results_payload(pooled) == results_payload(reference)

    def test_progress_total_is_shard_local(self):
        seen = []
        execute_campaign(
            SPEC,
            shard=ShardSpec(index=0, count=2),
            progress=lambda done, total, result: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_shard_result_records_the_slice(self):
        result = execute_campaign(SPEC, shard=ShardSpec(index=1, count=2))
        assert result.shard == ShardSpec(index=1, count=2)
        assert result.points_total == 4
        assert result.n_points == 2

    def test_unsharded_result_has_no_shard(self):
        result = execute_campaign(SPEC, jobs=1)
        assert result.shard is None
        assert result.points_total == 4


class TestShardedArtifacts:
    def test_artifacts_carry_shard_block_and_spec_hash(self, tmp_path):
        result = execute_campaign(SPEC, shard=ShardSpec(index=1, count=3))
        paths = write_artifacts(SPEC, result, tmp_path)
        results = json.loads(paths["results_json"].read_text())
        manifest = json.loads(paths["manifest_json"].read_text())
        expected_shard = {"index": 1, "count": 3, "start": 1, "stop": 2, "points_total": 4}
        assert results["shard"] == expected_shard
        assert results["n_points"] == 1
        assert [record["index"] for record in results["points"]] == [1]
        assert manifest["shard"] == expected_shard
        assert manifest["spec_hash"] == spec_hash(SPEC)
        assert manifest["execution"]["computed_points"] == 1
        assert manifest["execution"]["reused_points"] == 0

    def test_unsharded_artifacts_have_no_shard_block(self, tmp_path):
        result = execute_campaign(SPEC, jobs=1)
        paths = write_artifacts(SPEC, result, tmp_path)
        assert "shard" not in json.loads(paths["results_json"].read_text())
        assert "shard" not in json.loads(paths["manifest_json"].read_text())


class TestShardedResume:
    def test_shard_reuses_points_from_a_full_run(self, tmp_path):
        full = execute_campaign(SPEC, jobs=1)
        write_artifacts(SPEC, full, tmp_path)
        reuse = load_reusable_results(SPEC, tmp_path)
        resumed = execute_campaign(SPEC, shard=ShardSpec(index=0, count=2), reuse=reuse)
        assert resumed.n_points == 2
        assert resumed.n_reused == 2
        assert resumed.n_computed == 0

    def test_reuse_outside_the_shard_is_ignored(self, tmp_path):
        full = execute_campaign(SPEC, jobs=1)
        write_artifacts(SPEC, full, tmp_path)
        reuse = load_reusable_results(SPEC, tmp_path)
        # Hand the executor only the records the *other* shard owns.
        other_only = {index: reuse[index] for index in (2, 3)}
        result = execute_campaign(SPEC, shard=ShardSpec(index=0, count=2), reuse=other_only)
        assert result.n_reused == 0
        assert [point.index for point in result.points] == [0, 1]

    def test_shard_artifacts_resume_the_same_shard(self, tmp_path):
        shard = ShardSpec(index=1, count=2)
        first = execute_campaign(SPEC, shard=shard)
        paths = write_artifacts(SPEC, first, tmp_path)
        reuse = load_reusable_results(SPEC, tmp_path)
        assert sorted(reuse) == [2, 3]
        resumed = execute_campaign(SPEC, shard=shard, reuse=reuse)
        assert resumed.n_reused == 2
        repaths = write_artifacts(SPEC, resumed, tmp_path / "again")
        assert repaths["results_json"].read_bytes() == paths["results_json"].read_bytes()
        assert repaths["results_csv"].read_bytes() == paths["results_csv"].read_bytes()


class TestShardCli:
    def test_shard_runs_and_stamps_artifacts(self, capsys, tmp_path):
        assert main(["sweep", "smoke", "--shard", "0/2", "--out", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "shard 0/2: points [0, 2) of 4" in captured.err
        # Shard slices nest under the campaign dir so they never clobber
        # campaign-level (full or merged) artifacts.
        shard_dir = tmp_path / "smoke" / "shard-0-of-2"
        manifest = json.loads((shard_dir / "manifest.json").read_text())
        assert manifest["shard"]["index"] == 0
        assert manifest["shard"]["count"] == 2
        assert not (tmp_path / "smoke" / "manifest.json").exists()

    def test_shard_rerun_resumes_its_own_slice(self, capsys, tmp_path):
        assert main(["sweep", "smoke", "--shard", "0/2", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(["sweep", "smoke", "--shard", "0/2", "--resume", "--out", str(tmp_path)]) == 0
        assert "reusing 2/2" in capsys.readouterr().err
        manifest = json.loads(
            (tmp_path / "smoke" / "shard-0-of-2" / "manifest.json").read_text()
        )
        assert manifest["execution"]["reused_points"] == 2
        assert manifest["execution"]["computed_points"] == 0

    def test_malformed_shard_is_a_cli_error(self, capsys):
        assert main(["sweep", "smoke", "--shard", "2"]) == 2
        assert "I/N" in capsys.readouterr().err

    def test_out_of_range_shard_is_a_cli_error(self, capsys):
        assert main(["sweep", "smoke", "--shard", "2/2"]) == 2
        assert "zero-based" in capsys.readouterr().err

    def test_dry_run_lists_only_the_shard(self, capsys, tmp_path):
        assert main(["sweep", "smoke", "--shard", "1/2", "--dry-run", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shard 1/2 = 2 of 4 points" in out
        assert "point   2" in out
        assert "point   0" not in out
        assert not (tmp_path / "smoke").exists()


class TestEmptyShards:
    """Regression: --shard I/N with N > grid points must yield valid, empty,
    mergeable artifacts (a fleet cut wider than the campaign is legal)."""

    def test_empty_shard_executes_to_zero_points(self):
        result = execute_campaign(SPEC, shard=ShardSpec(index=0, count=6))
        assert result.n_points == 0
        assert result.points_total == 4
        assert result.n_reused == result.n_computed == 0

    def test_empty_shard_writes_valid_artifacts(self, tmp_path):
        result = execute_campaign(SPEC, shard=ShardSpec(index=0, count=6))
        paths = write_artifacts(SPEC, result, tmp_path, subdir="shard-0-of-6")
        results = json.loads(paths["results_json"].read_text())
        assert results["n_points"] == 0
        assert results["points"] == []
        assert results["shard"] == {
            "index": 0,
            "count": 6,
            "start": 0,
            "stop": 0,
            "points_total": 4,
        }
        manifest = json.loads(paths["manifest_json"].read_text())
        assert manifest["n_points"] == 0
        assert manifest["spec_hash"] == spec_hash(SPEC)
        # Header-only CSV: still parseable, still schema-stable.
        assert paths["results_csv"].read_text().startswith("index,scenario,horizon_cycles,seed")

    def test_overwide_fleet_merges_byte_identical(self, tmp_path):
        """6-way cut of a 4-point grid: two shards are empty; the merge must
        accept them (even listed first) and reproduce the serial bytes."""
        from repro.sweep.merge import merge_shards, write_merged_artifacts

        directories = []
        for index in range(6):
            shard = ShardSpec(index=index, count=6)
            result = execute_campaign(SPEC, shard=shard)
            paths = write_artifacts(SPEC, result, tmp_path, subdir=f"shard-{index}-of-6")
            directories.append(paths["results_json"].parent)
        empties = [
            directory
            for index, directory in enumerate(directories)
            if ShardSpec(index=index, count=6).bounds(4)[0]
            == ShardSpec(index=index, count=6).bounds(4)[1]
        ]
        assert len(empties) == 2  # the premise: the cut really over-shards
        reordered = empties + [d for d in directories if d not in empties]
        merged = merge_shards(reordered)
        merged_paths = write_merged_artifacts(merged, tmp_path / "merged")
        serial = execute_campaign(SPEC, jobs=1)
        serial_paths = write_artifacts(SPEC, serial, tmp_path / "serial")
        for key in ("results_json", "results_csv"):
            assert merged_paths[key].read_bytes() == serial_paths[key].read_bytes()

    def test_empty_shard_cli_round_trip(self, capsys, tmp_path):
        assert main(["sweep", "smoke", "--shard", "0/6", "--out", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "shard 0/6: points [0, 0) of 4" in captured.err
        assert "0 points" in captured.out
        shard_dir = tmp_path / "smoke" / "shard-0-of-6"
        for name in ("results.json", "results.csv", "manifest.json"):
            assert (shard_dir / name).exists()
        # An empty shard resumes (vacuously) without touching anything.
        assert main(["sweep", "smoke", "--shard", "0/6", "--resume", "--out", str(tmp_path)]) == 0
