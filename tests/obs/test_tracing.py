"""Tracer lifecycle and the Chrome trace-event document layer."""

import json

import pytest

from repro.obs import tracing
from repro.obs.tracing import DEFAULT_MAX_EVENTS, SpanTracer
from repro.obs.traceio import (
    TRACE_SCHEMA,
    merge_trace_documents,
    summarize_trace,
    trace_document,
    validate_trace,
    validate_trace_file,
    write_trace,
)


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    assert tracing.TRACER is None
    yield
    tracing.uninstall()


class TestTracerLifecycle:
    def test_disabled_by_default(self):
        assert tracing.active_tracer() is None

    def test_install_uninstall_round_trip(self):
        tracer = tracing.install()
        assert tracing.active_tracer() is tracer
        assert tracing.uninstall() is tracer
        assert tracing.active_tracer() is None

    def test_capture_restores_the_previous_tracer(self):
        outer = tracing.install()
        with tracing.capture() as inner:
            assert tracing.TRACER is inner
            assert inner is not outer
        assert tracing.TRACER is outer

    def test_event_records_complete_span_in_microseconds(self):
        tracer = SpanTracer()
        tracer.event("work", "test", 2_000, 3_000, {"n": 1})
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["ts"] == pytest.approx(2.0)
        assert event["dur"] == pytest.approx(3.0)
        assert event["args"] == {"n": 1}
        assert event["pid"] == tracer.pid

    def test_span_context_manager_times_its_body_and_takes_args(self):
        tracer = SpanTracer()
        with tracer.span("phase", "test", label="a") as args:
            args["result"] = 42
        (event,) = tracer.events
        assert event["name"] == "phase"
        assert event["args"] == {"label": "a", "result": 42}
        assert event["dur"] >= 0

    def test_counter_records_a_sample(self):
        tracer = SpanTracer()
        tracer.counter("live", "test", {"instances": 3})
        (event,) = tracer.events
        assert event["ph"] == "C"
        assert event["args"] == {"instances": 3}

    def test_buffer_cap_counts_drops_instead_of_growing(self):
        tracer = SpanTracer()
        tracer.events = [{}] * DEFAULT_MAX_EVENTS
        tracer.event("over", "test", 0, 1)
        tracer.counter("over", "test", {"n": 1})
        assert len(tracer.events) == DEFAULT_MAX_EVENTS
        assert tracer.dropped == 2

    def test_drain_returns_and_clears(self):
        tracer = SpanTracer()
        tracer.event("a", "test", 0, 1)
        drained = tracer.drain()
        assert len(drained) == 1
        assert tracer.events == []


class TestTraceDocument:
    def _events(self):
        tracer = SpanTracer()
        tracer.event("a", "test", 5_000, 1_000)
        tracer.event("b", "test", 7_000, 2_000)
        return tracer.drain()

    def test_document_validates_and_rebases_to_zero(self):
        document = trace_document(self._events())
        validate_trace(document)
        assert document["schema"] == TRACE_SCHEMA
        spans = [event for event in document["traceEvents"] if event["ph"] == "X"]
        assert spans[0]["ts"] == 0.0
        assert spans[1]["ts"] == pytest.approx(2.0)

    def test_document_carries_lane_metadata_and_labels(self):
        events = self._events()
        pid = events[0]["pid"]
        document = trace_document(events, labels={pid: "worker-0"})
        lanes = [event for event in document["traceEvents"] if event["ph"] == "M"]
        assert lanes == [
            {"ph": "M", "name": "process_name", "pid": pid, "tid": 0, "args": {"name": "worker-0"}}
        ]

    def test_validate_rejects_bad_documents(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_trace([])
        with pytest.raises(ValueError, match="schema"):
            validate_trace({"schema": "other/9"})
        document = trace_document(self._events())
        document["traceEvents"].append({"ph": "Q", "name": "x", "pid": 1, "tid": 0})
        with pytest.raises(ValueError, match=r"traceEvents\[\d+\]"):
            validate_trace(document)

    def test_validate_rejects_negative_durations(self):
        document = trace_document(self._events())
        document["traceEvents"][-1]["dur"] = -1.0
        with pytest.raises(ValueError, match="dur"):
            validate_trace(document)

    def test_write_and_validate_file_round_trip(self, tmp_path):
        path = write_trace(tmp_path / "trace.json", trace_document(self._events()))
        document = validate_trace_file(path)
        assert json.loads(path.read_text())["schema"] == TRACE_SCHEMA
        assert summarize_trace(document)["spans"] == 2

    def test_validate_file_diagnoses_missing_and_invalid(self, tmp_path):
        with pytest.raises(ValueError, match="unreadable"):
            validate_trace_file(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            validate_trace_file(bad)

    def test_dropped_events_are_declared_in_metadata(self):
        document = trace_document(self._events(), dropped=7)
        assert document["metadata"]["dropped_events"] == 7


class TestMergeAndSummary:
    def _document(self, label):
        tracer = SpanTracer()
        tracer.event("kernel.span", "kernel", 1_000, 2_000)
        tracer.counter("batch.live", "batch", {"instances": 2})
        return trace_document(tracer.drain(), labels={tracer.pid: label})

    def test_merge_remaps_pids_into_disjoint_shard_lanes(self):
        merged = merge_trace_documents(
            [self._document("host-a"), self._document("host-b")], ["shard-0", "shard-1"]
        )
        validate_trace(merged)
        lanes = {
            event["pid"]: event["args"]["name"]
            for event in merged["traceEvents"]
            if event["ph"] == "M"
        }
        assert lanes == {1000: "shard-0/host-a", 2000: "shard-1/host-b"}
        assert merged["metadata"]["merged_from"] == ["shard-0", "shard-1"]

    def test_merge_accumulates_dropped_counts(self):
        first = self._document("a")
        first["metadata"]["dropped_events"] = 3
        merged = merge_trace_documents([first, self._document("b")], ["s0", "s1"])
        assert merged["metadata"]["dropped_events"] == 3

    def test_merge_requires_one_label_per_document(self):
        with pytest.raises(ValueError, match="label"):
            merge_trace_documents([self._document("a")], [])

    def test_summarize_counts_per_category(self):
        summary = summarize_trace(self._document("a"))
        assert summary["spans"] == 1
        assert summary["categories"]["kernel"]["events"] == 1
        assert summary["categories"]["kernel"]["span_ms"] == pytest.approx(0.002)
        assert summary["categories"]["batch"]["events"] == 1


class TestKernelEmitsSpans:
    def test_simulator_run_produces_a_valid_trace(self):
        from repro.power.scenarios import build_idle_measurement_soc

        with tracing.capture() as tracer:
            soc = build_idle_measurement_soc("pels", frequency_hz=27e6)
            soc.pwm.regs.reg("PERIOD").write(128)
            soc.pwm.start()
            soc.run(50_000)
        document = trace_document(tracer.drain(), dropped=tracer.dropped)
        validate_trace(document)
        names = {event["name"] for event in document["traceEvents"] if event["ph"] != "M"}
        assert "kernel.plan" in names
        assert "kernel.span" in names

    def test_tracing_does_not_perturb_kernel_stats(self):
        from repro.power.scenarios import build_idle_measurement_soc

        def run():
            soc = build_idle_measurement_soc("pels", frequency_hz=27e6)
            soc.pwm.regs.reg("PERIOD").write(128)
            soc.pwm.start()
            soc.run(50_000)
            return soc.simulator.kernel_stats.snapshot()

        plain = run()
        with tracing.capture():
            traced = run()
        assert plain == traced
