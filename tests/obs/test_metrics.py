"""The metrics registry and the canonical kernel CounterSet."""

import pytest

from repro.obs.metrics import KERNEL_STAT_KEYS, CounterSet, MetricsRegistry


class TestCounterSet:
    def test_starts_zeroed_over_the_declared_keys(self):
        counters = CounterSet(("a", "b"))
        assert counters == {"a": 0, "b": 0}

    def test_defaults_to_the_canonical_kernel_keys(self):
        assert tuple(CounterSet()) == KERNEL_STAT_KEYS

    def test_increment_idiom_works(self):
        counters = CounterSet(("hits",))
        counters["hits"] += 1
        counters["hits"] += 2
        assert counters["hits"] == 3

    def test_undeclared_key_raises_at_the_increment_site(self):
        counters = CounterSet(("hits",))
        with pytest.raises(KeyError, match="misses"):
            counters["misses"] = 1

    def test_compares_equal_to_plain_dicts(self):
        counters = CounterSet(("a",))
        counters["a"] = 7
        assert counters == {"a": 7}

    def test_snapshot_is_a_detached_copy(self):
        counters = CounterSet(("a",))
        snap = counters.snapshot()
        counters["a"] = 5
        assert snap == {"a": 0}
        assert type(snap) is dict

    def test_diff_reports_what_a_region_added(self):
        counters = CounterSet(("a", "b"))
        counters["a"] = 2
        snap = counters.snapshot()
        counters["a"] = 5
        counters["b"] = 1
        assert counters.diff(snap) == {"a": 3, "b": 1}

    def test_reset_zeroes_in_place_with_the_same_keys(self):
        counters = CounterSet(("a",))
        counters["a"] = 9
        counters.reset()
        assert counters == {"a": 0}
        counters["a"] += 1  # key set survived the reset

    def test_add_accumulates_shared_keys_only(self):
        counters = CounterSet(("a", "b"))
        counters.add({"a": 3, "unknown": 99})
        counters.add({"a": 2, "b": 1})
        assert counters == {"a": 5, "b": 1}


class TestMetricsRegistry:
    def test_counter_is_create_or_return(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        assert registry.as_dict()["counter"] == {"hits": 3}

    def test_labels_render_sorted_into_the_name(self):
        registry = MetricsRegistry()
        registry.counter("points", {"kind": "computed", "a": 1}).inc(4)
        assert registry.as_dict()["counter"] == {"points{a=1,kind=computed}": 4}

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3.0)
        registry.gauge("depth").set(1.5)
        assert registry.as_dict()["gauge"] == {"depth": 1.5}

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.histogram("wall").observe(value)
        summary = registry.as_dict()["histogram"]["wall"]
        assert summary["count"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)

    def test_absorb_kernel_stats_prefixes_kernel(self):
        registry = MetricsRegistry()
        stats = CounterSet(KERNEL_STAT_KEYS)
        stats["dense_ticks"] = 4
        registry.absorb_kernel_stats(stats)
        counters = registry.as_dict()["counter"]
        assert counters["kernel.dense_ticks"] == 4
        assert set(counters) == {f"kernel.{key}" for key in KERNEL_STAT_KEYS}

    def test_merge_dict_folds_a_worker_payload(self):
        worker = MetricsRegistry()
        worker.counter("hits").inc(2)
        worker.gauge("depth").set(7.0)
        worker.histogram("wall").observe(1.0)
        worker.histogram("wall").observe(5.0)
        parent = MetricsRegistry()
        parent.counter("hits").inc(1)
        parent.histogram("wall").observe(3.0)
        parent.merge_dict(worker.as_dict())
        merged = parent.as_dict()
        assert merged["counter"]["hits"] == 3
        assert merged["gauge"]["depth"] == 7.0
        hist = merged["histogram"]["wall"]
        assert hist["count"] == 3
        assert hist["min"] == 1.0
        assert hist["max"] == 5.0

    def test_merge_dict_skips_empty_histograms(self):
        parent = MetricsRegistry()
        parent.merge_dict({"histogram": {"wall": {"count": 0}}})
        assert parent.as_dict()["histogram"]["wall"]["count"] == 0

    def test_as_dict_is_deterministically_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha").inc()
        assert list(registry.as_dict()["counter"]) == ["alpha", "zeta"]
