"""Every relative markdown link in the maintained docs must resolve.

CI runs ``tools/check_doc_links.py`` directly; this test pins the same
contract in the tier-1 suite so a broken cross-link fails locally too.
"""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "tools" / "check_doc_links.py"

sys.path.insert(0, str(CHECKER.parent))

from check_doc_links import broken_links, doc_files  # noqa: E402


class TestDocLinks:
    def test_all_doc_links_resolve(self):
        files = doc_files(REPO_ROOT)
        assert files, "no markdown files found — repository layout changed?"
        assert broken_links(files) == []

    def test_every_subsystem_guide_is_indexed(self):
        # docs/index.md is the entry point: every guide must be reachable
        # from it, and every guide must point back.
        index = (REPO_ROOT / "docs" / "index.md").read_text(encoding="utf-8")
        for guide in sorted((REPO_ROOT / "docs").glob("*.md")):
            if guide.name == "index.md":
                continue
            assert f"({guide.name})" in index, f"docs/index.md does not link {guide.name}"
            assert "(index.md)" in guide.read_text(encoding="utf-8"), (
                f"{guide.name} does not link back to docs/index.md"
            )

    def test_checker_detects_a_broken_link(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "page.md").write_text("see [gone](missing.md)\n")
        result = subprocess.run(
            [sys.executable, str(CHECKER), str(tmp_path)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "missing.md" in result.stderr

    def test_checker_passes_the_real_tree(self):
        result = subprocess.run(
            [sys.executable, str(CHECKER)],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
