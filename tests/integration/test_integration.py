"""End-to-end integration tests across the whole SoC.

These tests exercise complete linking scenarios — timer to ADC, SPI/µDMA to
GPIO, multi-link pipelines — through the public API, the way a user of the
library would.
"""

import pytest

from repro.core.assembler import Assembler
from repro.core.trigger import TriggerCondition
from repro.peripherals.sensor import SensorWaveform
from repro.soc.pulpissimo import SocConfig, build_soc


def peripheral_word_offset(soc, peripheral_name, register_name):
    """Word offset of a register relative to the peripheral region base."""
    base = soc.address_map.peripheral_base("udma")
    absolute = soc.register_address(peripheral_name, register_name)
    return (absolute - base) // 4


class TestTimerToAdcLinking:
    """The paper's first motivating example: a periodic timer overflow triggers an ADC conversion."""

    def test_timer_overflow_starts_adc_conversions_without_cpu(self):
        soc = build_soc()
        pels = soc.pels
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.adc, port="soc")
        assembler = Assembler()
        program = assembler.assemble("action 0 0x1\nend")
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        pels.program_link(0, program, trigger_mask=timer_bit)

        soc.timer.regs.reg("COMPARE").hw_write(20)
        soc.timer.start()
        soc.run(200)

        assert soc.timer.overflow_count >= 8
        assert soc.adc.conversions >= 5
        assert soc.cpu.interrupts_serviced == 0

    def test_adc_eoc_chains_into_uart_notification(self):
        """Two links chained through real peripheral events (no loopback needed)."""
        soc = build_soc()
        pels = soc.pels
        assembler = Assembler()
        # Link 1 uses the UART window itself as its base address, demonstrating
        # the per-link base-address mechanism that keeps offsets within 12 bits.
        assembler.define_register("UART_TX", soc.uart.regs.offset_of("TXDATA"))
        # Link 0: timer overflow -> start ADC (instant action).
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.adc, port="soc")
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        pels.program_link(0, assembler.assemble("action 0 0x1\nend"), trigger_mask=timer_bit)
        # Link 1: ADC end-of-conversion -> write an alert byte to the UART (sequenced action).
        adc_bit = 1 << soc.fabric.index_of(soc.adc.event_line_name("eoc"))
        pels.program_link(
            1,
            assembler.assemble("write UART_TX 0x41\nend"),
            trigger_mask=adc_bit,
            base_address=soc.address_map.peripheral_base("uart"),
        )
        soc.timer.regs.reg("COMPARE").hw_write(30)
        soc.timer.start()
        soc.run(400)
        assert soc.adc.conversions >= 5
        assert soc.uart.transmitted
        assert all(byte == 0x41 for byte in soc.uart.transmitted)


class TestFigure3Program:
    """The full Figure 3 dual-mode program against the real SPI + GPIO peripherals."""

    def build(self, threshold=50, sample=90, instant=False):
        soc = build_soc(SocConfig(sensor_waveform=SensorWaveform(kind="constant", amplitude=sample)))
        pels = soc.pels
        base = soc.address_map.peripheral_base("udma")
        assembler = Assembler()
        assembler.define_symbol("AFLAG", peripheral_word_offset(soc, "spi", "AFLAG"))
        assembler.define_symbol("ADATA", peripheral_word_offset(soc, "spi", "RXDATA"))
        assembler.define_symbol("AGPIO", peripheral_word_offset(soc, "gpio", "OUT"))
        assembler.define_symbol("THRES", threshold)
        alert = "action 0 0x1" if instant else "set AGPIO 0x1"
        program = assembler.assemble(
            f"""
            CMD0: clear   AFLAG 0x1
            CMD1: capture ADATA 0x0FF
            CMD2: jump-if CMD4 LE THRES
            CMD3: {alert}
            CMD4: end
            """
        )
        if instant:
            pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.gpio, port="set_pad0")
        spi_bit = 1 << soc.fabric.index_of(soc.spi.event_line_name("eot"))
        pels.program_link(0, program, trigger_mask=spi_bit, base_address=base)
        return soc

    def run_one_transfer(self, soc):
        soc.spi.regs.reg("LEN").hw_write(1)
        soc.spi.regs.write(soc.spi.regs.offset_of("CTRL"), 0x1)
        soc.run(60)

    def test_alert_raised_above_threshold_sequenced(self):
        soc = self.build(sample=90)
        self.run_one_transfer(soc)
        assert soc.gpio.pad(0)
        assert soc.pels.link(0).events_serviced == 1

    def test_no_alert_below_threshold(self):
        soc = self.build(sample=10)
        self.run_one_transfer(soc)
        assert not soc.gpio.pad(0)

    def test_alert_raised_instant_mode(self):
        soc = self.build(sample=90, instant=True)
        self.run_one_transfer(soc)
        assert soc.gpio.pad(0)

    def test_aflag_cleared_by_first_command(self):
        soc = self.build(sample=90)
        soc.spi.regs.reg("AFLAG").hw_write(0xFF)
        self.run_one_transfer(soc)
        assert soc.spi.regs.reg("AFLAG").value == 0xFE  # bit 0 cleared by the RMW


class TestWatchdogStyleLink:
    """The loop/wait commands subsume watchdog-like functions without an external timer."""

    def test_wait_loop_periodically_toggles_gpio(self):
        soc = build_soc()
        pels = soc.pels
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.gpio, port="toggle_pad0")
        assembler = Assembler()
        program = assembler.assemble(
            """
            BODY: action 0 0x1
            wait 20
            loop BODY 3
            end
            """
        )
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        pels.program_link(0, program, trigger_mask=timer_bit)
        soc.timer.regs.reg("COMPARE").hw_write(5)
        soc.timer.regs.reg("CTRL").hw_write(0x3)  # one shot
        soc.run(150)
        assert soc.gpio.toggle_count == 4  # initial pass + 3 loop iterations


class TestWorstCaseContention:
    def test_all_links_triggered_simultaneously_all_complete(self):
        """Section III-1: the worst case is every link accessing peripherals at once."""
        from repro.core.config import PelsConfig

        soc = build_soc(SocConfig(pels_config=PelsConfig(n_links=8, scm_lines=4)))
        pels = soc.pels
        assembler = Assembler()
        base = soc.address_map.peripheral_base("udma")
        # Each link targets the write-1-to-set register so concurrent links do
        # not race on a shared read-modify-write of the OUT latch.
        gpio_set = peripheral_word_offset(soc, "gpio", "SET")
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        for index in range(8):
            program = assembler.assemble(f"write {gpio_set} {1 << index}\nend")
            pels.program_link(index, program, trigger_mask=timer_bit, base_address=base)
        soc.timer.regs.reg("COMPARE").hw_write(3)
        soc.timer.regs.reg("CTRL").hw_write(0x3)
        soc.run(200)
        assert soc.gpio.output_value == 0xFF
        assert pels.total_events_serviced() == 8
        # Round-robin arbitration bounds the spread of completion times.
        records = [pels.link(i).last_record for i in range(8)]
        latencies = sorted(record.sequenced_latency for record in records)
        assert latencies[0] == 4  # a plain write needs no read phase
        assert latencies[-1] <= 4 + 8 * 4


class TestBusConfiguredPels:
    def test_cpu_can_program_a_link_over_the_peripheral_bus(self):
        """Firmware-style configuration: microcode and trigger setup written via APB."""
        from repro.bus.transaction import write_request
        from repro.core.isa import Command, encode_command
        from repro.core.pels import LINK_REG_ENABLE, LINK_REG_MASK, LINK_SCM_WINDOW, LINK_WINDOW_BASE

        soc = build_soc()
        pels_base = soc.address_map.peripheral_base("pels")
        gpio_out = peripheral_word_offset(soc, "gpio", "OUT")
        commands = [Command.set(gpio_out, 0x1), Command.end()]
        for line, command in enumerate(commands):
            encoded = encode_command(command)
            word_base = pels_base + LINK_WINDOW_BASE + LINK_SCM_WINDOW + 8 * line
            soc.peripheral_bus.submit(write_request("ibex", word_base, encoded & 0xFFFF_FFFF))
            soc.peripheral_bus.submit(write_request("ibex", word_base + 4, (encoded >> 32) & 0xFFFF))
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        soc.peripheral_bus.submit(write_request("ibex", pels_base + LINK_WINDOW_BASE + LINK_REG_MASK, timer_bit))
        soc.peripheral_bus.submit(write_request("ibex", pels_base + LINK_WINDOW_BASE + LINK_REG_ENABLE, 1))
        soc.run(20)  # let the configuration writes drain

        soc.pels.link(0).set_base_address(soc.address_map.peripheral_base("udma"))
        soc.timer.regs.reg("COMPARE").hw_write(3)
        soc.timer.regs.reg("CTRL").hw_write(0x3)
        soc.run(60)
        assert soc.gpio.pad(0)
