"""Fault-injection tests: bus error responses, mis-programmed links, trigger floods.

A mis-programmed PELS link (wrong base address or offset) must not wedge the
peripheral bus or the link itself — the APB answers with an error response
(PSLVERR) and the link abandons the sequence, staying ready for the next
event.  These tests inject such faults and check the system degrades
gracefully.
"""

import pytest

from repro.bus.apb import ApbBus
from repro.bus.transaction import read_request
from repro.core.assembler import assemble
from repro.core.config import PelsConfig
from repro.sim.simulator import Simulator
from repro.soc.pulpissimo import SocConfig, build_soc


class TestApbErrorResponse:
    def test_unmapped_address_completes_with_error(self):
        simulator = Simulator()
        bus = ApbBus("apb")
        simulator.add_component(bus)
        request = bus.submit(read_request("m0", 0xDEAD_0000))
        simulator.step(2)
        assert request.done
        assert request.error
        assert request.rdata == 0
        assert simulator.activity.get("apb", "decode_errors") == 1

    def test_error_does_not_block_following_transfers(self):
        simulator = Simulator()
        bus = ApbBus("apb")

        class Slave:
            name = "ok"

            def bus_read(self, offset):
                return 0x55

            def bus_write(self, offset, value):
                pass

        bus.attach_slave(0x1000, 0x100, Slave())
        simulator.add_component(bus)
        bad = bus.submit(read_request("m0", 0xDEAD_0000))
        good = bus.submit(read_request("m0", 0x1000))
        simulator.step(5)
        assert bad.error
        assert good.done and not good.error and good.rdata == 0x55


class TestMisprogrammedLink:
    def make_soc(self):
        return build_soc(SocConfig(pels_config=PelsConfig(n_links=2, scm_lines=4)))

    def trigger_timer_once(self, soc):
        soc.timer.regs.reg("COMPARE").hw_write(2)
        soc.timer.regs.reg("CTRL").hw_write(0x3)

    def test_bad_base_address_aborts_sequence_without_hanging(self):
        soc = self.make_soc()
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        # Base address points at a hole in the address map.
        soc.pels.program_link(0, assemble("set 0x10 0x1\nend"), trigger_mask=timer_bit, base_address=0x1B00_0000)
        self.trigger_timer_once(soc)
        soc.run(60)
        link = soc.pels.link(0)
        assert not link.busy
        assert link.execution.bus_errors == 1
        assert link.execution.sequences_aborted == 1

    def test_link_recovers_and_services_the_next_event(self):
        soc = self.make_soc()
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        link = soc.pels.program_link(
            0, assemble("set 0x10 0x1\nend"), trigger_mask=timer_bit, base_address=0x1B00_0000
        )
        self.trigger_timer_once(soc)
        soc.run(40)
        # Repair the base address (as firmware would after noticing the error counter)
        # and fire another event: the link must service it normally.
        link.set_base_address(soc.address_map.peripheral_base("gpio"))
        program = assemble(f"set {soc.gpio.regs.offset_of('OUT') // 4} 0x1\nend")
        link.load_program(program)
        self.trigger_timer_once(soc)
        soc.run(40)
        assert soc.gpio.pad(0)
        assert link.execution.sequences_completed >= 1

    def test_healthy_link_unaffected_by_faulty_neighbour(self):
        soc = self.make_soc()
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        base = soc.address_map.peripheral_base("udma")
        gpio_out = (soc.address_map.peripheral_base("gpio") + soc.gpio.regs.offset_of("OUT") - base) // 4
        soc.pels.program_link(0, assemble("set 0x10 0x1\nend"), trigger_mask=timer_bit, base_address=0x1B00_0000)
        soc.pels.program_link(1, assemble(f"set {gpio_out} 0x1\nend"), trigger_mask=timer_bit, base_address=base)
        self.trigger_timer_once(soc)
        soc.run(60)
        assert soc.gpio.pad(0)
        assert soc.pels.link(0).execution.bus_errors == 1
        assert soc.pels.link(1).execution.bus_errors == 0


class TestIbexBusError:
    def test_handler_survives_error_response(self):
        from repro.cpu.instructions import Alu, AluOp, Load, Store

        soc = build_soc(SocConfig(with_pels=False))
        # The handler loads from a valid peripheral, then stores to a hole
        # behind the peripheral bridge region... there is none reachable via
        # the bridge (the interconnect validates), so inject the error on the
        # APB directly instead: a PELS-less SoC has no master doing that, so
        # simply check that a load of a valid address after an injected APB
        # error still works.
        from repro.bus.transaction import read_request

        bad = soc.peripheral_bus.submit(read_request("probe", 0x1A10_0FF0 + 0x10000))
        soc.run(3)
        assert bad.done and bad.error
        good = soc.peripheral_bus.submit(read_request("probe", soc.register_address("gpio", "OUT")))
        soc.run(4)
        assert good.done and not good.error


class TestTriggerFlood:
    def test_event_flood_drops_excess_triggers_but_keeps_running(self):
        soc = build_soc(SocConfig(pels_config=PelsConfig(n_links=1, scm_lines=4, fifo_depth=2)))
        timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
        base = soc.address_map.peripheral_base("udma")
        gpio_toggle = (soc.address_map.peripheral_base("gpio") + soc.gpio.regs.offset_of("TOGGLE") - base) // 4
        link = soc.pels.program_link(
            0, assemble(f"write {gpio_toggle} 0x1\nend"), trigger_mask=timer_bit, base_address=base
        )
        soc.timer.regs.reg("COMPARE").hw_write(1)  # an event every cycle: far too fast
        soc.timer.start()
        soc.run(30)
        soc.timer.stop()
        soc.run(100)
        assert link.trigger.fifo.dropped > 0
        assert link.events_serviced > 0
        assert not link.busy
