"""Tests for the event-driven scheduling kernel (wake protocol + skipping)."""

import pytest

from repro.peripherals.pwm import Pwm
from repro.peripherals.timer import Timer
from repro.peripherals.watchdog import Watchdog
from repro.sim.component import Component
from repro.sim.simulator import SimulationError, Simulator


class DenseCounter(Component):
    """Ticks every cycle and gives no wake hint: forces dense stepping."""

    def __init__(self, name="dense_counter"):
        super().__init__(name)
        self.ticks = 0

    def tick(self, cycle):
        self.ticks += 1


class HintedBlinker(Component):
    """Pulses every ``period`` cycles and advertises the gap as skippable."""

    def __init__(self, period, name="blinker"):
        super().__init__(name)
        self.period = period
        self.countdown = period
        self.tick_calls = 0
        self.skipped_cycles = 0
        self.pulses = 0

    def tick(self, cycle):
        self.tick_calls += 1
        self.countdown -= 1
        if self.countdown == 0:
            self.pulses += 1
            self.countdown = self.period
            self.record("pulses")
        self.record("cycles")

    def next_event(self):
        return self.countdown

    def skip(self, cycles):
        self.skipped_cycles += cycles
        self.countdown -= cycles
        self.record("cycles", cycles)


class PassiveBlock(Component):
    """Never overrides tick: trivially idle."""


class TestWakeProtocolDefaults:
    def test_tick_overriding_component_defaults_to_every_cycle(self):
        assert DenseCounter().next_event() == 1

    def test_passive_component_defaults_to_no_wake(self):
        assert PassiveBlock("p").next_event() is None

    def test_default_skip_is_a_no_op(self):
        block = PassiveBlock("p")
        block.skip(100)  # must not raise or change anything observable


class TestQuiescenceSkipping:
    def test_hinted_component_is_ticked_only_at_wakes(self):
        simulator = Simulator()
        blinker = simulator.add_component(HintedBlinker(period=50))
        simulator.step(500)
        assert blinker.pulses == 10
        assert simulator.current_cycle == 500
        # One real tick per pulse; everything else was skipped in batches.
        assert blinker.tick_calls == 10
        assert blinker.skipped_cycles == 490

    def test_skipped_activity_matches_dense(self):
        results = []
        for dense in (True, False):
            simulator = Simulator(dense=dense)
            simulator.add_component(HintedBlinker(period=7))
            simulator.step(100)
            results.append(simulator.activity.as_dict())
        assert results[0] == results[1]

    def test_instance_assigned_tick_is_still_simulated(self):
        # Test doubles often monkey-patch tick on the instance rather than
        # subclassing; that must force dense stepping and be called per cycle
        # in both modes, as iterating the raw component list always did.
        for dense in (True, False):
            simulator = Simulator(dense=dense)
            component = PassiveBlock("patched")
            calls = []
            component.tick = calls.append  # instance attribute, not a subclass
            simulator.add_component(component)
            simulator.add_component(HintedBlinker(period=50))
            simulator.step(20)
            assert len(calls) == 20, f"dense={dense}"
            assert component.next_event() == 1

    def test_tick_patched_after_registration_is_picked_up(self):
        simulator = Simulator()
        component = simulator.add_component(PassiveBlock("late_patch"))
        simulator.add_component(HintedBlinker(period=50))
        simulator.step(10)
        calls = []
        component.tick = calls.append
        simulator.step(10)
        assert len(calls) == 10

    def test_dense_forcing_component_disables_skipping(self):
        simulator = Simulator()
        counter = simulator.add_component(DenseCounter())
        blinker = simulator.add_component(HintedBlinker(period=50))
        simulator.step(200)
        assert counter.ticks == 200
        assert blinker.tick_calls == 200
        assert blinker.skipped_cycles == 0

    def test_step_chunking_does_not_change_state(self):
        one_shot = Simulator()
        chunked = Simulator()
        a = one_shot.add_component(HintedBlinker(period=13))
        b = chunked.add_component(HintedBlinker(period=13))
        one_shot.step(400)
        for chunk in (1, 7, 100, 292):
            chunked.step(chunk)
        assert one_shot.current_cycle == chunked.current_cycle == 400
        assert a.pulses == b.pulses
        assert a.countdown == b.countdown

    def test_slow_domain_wakes_convert_to_base_ticks(self):
        simulator = Simulator(default_frequency_hz=50e6)
        slow = simulator.add_clock_domain("slow", 25e6)
        blinker = simulator.add_component(HintedBlinker(period=10), domain=slow)
        simulator.step(100)
        # 100 base ticks = 50 slow-domain cycles = 5 pulses.
        assert blinker.pulses == 5
        assert blinker.tick_calls == 5
        assert simulator.clock_domain("slow").cycles == 50

    def test_dense_flag_can_be_toggled_mid_run(self):
        simulator = Simulator()
        blinker = simulator.add_component(HintedBlinker(period=10))
        simulator.step(35)
        simulator.dense = True
        simulator.step(35)
        assert blinker.pulses == 7
        assert simulator.current_cycle == 70


class TestSocComponentHints:
    def test_disabled_peripherals_are_idle(self):
        assert Timer().next_event() is None
        assert Watchdog().next_event() is None
        assert Pwm().next_event() is None

    def test_timer_overflow_cycle_is_exact(self):
        for prescaler, compare in ((0, 10), (3, 5), (7, 1)):
            dense_sim, event_sim = Simulator(dense=True), Simulator()
            timers = []
            for simulator in (dense_sim, event_sim):
                timer = Timer(compare=compare)
                timer.regs.reg("PRESCALER").hw_write(prescaler)
                simulator.add_component(timer)
                timer.start()
                timers.append(timer)
            for simulator in (dense_sim, event_sim):
                simulator.step(200)
            dense_timer, event_timer = timers
            assert dense_timer.overflow_count == event_timer.overflow_count
            assert dense_timer.regs.reg("COUNT").value == event_timer.regs.reg("COUNT").value
            assert dense_sim.activity.as_dict() == event_sim.activity.as_dict()

    def test_timer_wake_hint_is_tight(self):
        timer = Timer(compare=10)
        Simulator().add_component(timer)
        timer.start()
        # Fresh timer, no prescaler: overflow pulses on the 10th tick.
        assert timer.next_event() == 10

    def test_watchdog_bark_cycle_is_exact(self):
        dense_sim, event_sim = Simulator(dense=True), Simulator()
        dogs = []
        for simulator in (dense_sim, event_sim):
            wdt = Watchdog(timeout=40, grace=10)
            simulator.add_component(wdt)
            wdt.start()
            dogs.append(wdt)
            simulator.run_until(lambda wdt=wdt: wdt.barked, max_cycles=100)
        assert dense_sim.current_cycle == event_sim.current_cycle
        assert dense_sim.activity.as_dict() == event_sim.activity.as_dict()

    def test_pwm_output_high_cycles_survive_skipping(self):
        dense_sim, event_sim = Simulator(dense=True), Simulator()
        pwms = []
        for simulator in (dense_sim, event_sim):
            pwm = Pwm(period=32, duty=12)
            simulator.add_component(pwm)
            pwm.start()
            pwms.append(pwm)
            simulator.step(101)
        assert pwms[0].output_high_cycles == pwms[1].output_high_cycles
        assert pwms[0].periods_elapsed == pwms[1].periods_elapsed
        assert pwms[0].regs.reg("COUNT").value == pwms[1].regs.reg("COUNT").value


class TestRunUntilEventDriven:
    def test_event_condition_is_detected_on_the_exact_cycle(self):
        dense_sim, event_sim = Simulator(dense=True), Simulator()
        elapsed = []
        for simulator in (dense_sim, event_sim):
            timer = Timer(compare=33)
            simulator.add_component(timer)
            timer.start()
            elapsed.append(
                simulator.run_until(lambda timer=timer: timer.overflow_count >= 3, max_cycles=1000)
            )
        assert elapsed[0] == elapsed[1] == 99

    def test_timeout_is_exact_under_skipping(self):
        simulator = Simulator()
        simulator.add_component(Timer())  # disabled: fully idle system
        with pytest.raises(SimulationError):
            simulator.run_until(lambda: False, max_cycles=10, label="never")
        assert simulator.current_cycle == 10


class TestSatelliteFixes:
    def test_run_for_time_does_not_truncate(self):
        # 7 clock periods at 55 MHz: 7 * (1 / 55e6) * 55e6 evaluates to
        # 6.999999... in binary floating point, so int() used to drop a cycle.
        simulator = Simulator(default_frequency_hz=55e6)
        assert simulator.run_for_time(7 * (1 / 55e6)) == 7
        assert simulator.current_cycle == 7

    def test_reset_clears_traces_in_place(self):
        simulator = Simulator()
        held_reference = simulator.traces
        simulator.trace("sig", 1)
        simulator.reset()
        assert simulator.traces is held_reference
        assert len(held_reference) == 0
        simulator.trace("sig", 2)
        # The pre-reset reference observes post-reset recordings.
        assert held_reference.trace("sig").changes()[0].value == 2
