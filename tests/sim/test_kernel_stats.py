"""Pinned kernel_stats instrumentation for a small armed-PWM scenario.

The scheduler counters (``next_event_calls``, ``spans_skipped``,
``dense_ticks``, ``cycles_skipped``) are the observable contract of the
cached wake-horizon scheduler and the consumer-aware fabric: the CI
perf-regression job asserts wall-clock floors, but wall clocks are noisy —
these exact counts are the deterministic net that catches a kernel refactor
(plan/state splits included) silently regressing the scheduler into extra
polls or extra wakes.

The scenario is the benchmark's ``figure5-idle`` SoC with the PWM actuator
armed at a 128-cycle period: under the consumer-aware fabric nothing
observes the PWM's ``period`` line, so the cached scheduler must cross the
whole horizon in one span; the legacy (uncached, fully observed) kernel
must wake exactly once per PWM period.
"""

from repro.power.scenarios import build_idle_measurement_soc

HORIZON = 50_000
PWM_PERIOD = 128


def _armed_idle_soc(legacy: bool):
    soc = build_idle_measurement_soc("pels", frequency_hz=27e6)
    if legacy:
        # PR-1 kernel: no deadline cache, every event line observed (the
        # pre-consumer-aware fabric woke for every PWM period pulse).
        soc.simulator.cached_wakes = False
        soc.fabric.subscribe(lambda line: None)
    soc.pwm.regs.reg("PERIOD").write(PWM_PERIOD)
    soc.pwm.start()
    soc.run(HORIZON)
    return soc


class TestCachedSchedulerCounts:
    def test_unobserved_pwm_crosses_the_horizon_in_one_span(self):
        soc = _armed_idle_soc(legacy=False)
        stats = soc.simulator.kernel_stats
        # One initial poll sweep over the hinted components (13 peripherals +
        # the CPU's volatile hint), then silence: the armed-but-unobserved
        # PWM never forces a boundary.
        assert stats["next_event_calls"] == 14
        assert stats["spans_skipped"] == 1
        assert stats["dense_ticks"] == 1
        assert stats["cycles_skipped"] == HORIZON - 1
        assert stats["plan_builds"] == 1

    def test_pwm_state_is_exact_despite_the_single_span(self):
        soc = _armed_idle_soc(legacy=False)
        # 50_000 cycles = 390 full 128-cycle periods plus the armed cycle:
        # the O(1) multi-period skip replay must account every wrap.
        assert soc.pwm.periods_elapsed == HORIZON // PWM_PERIOD - 0 == 390

    def test_time_accounting_is_complete(self):
        soc = _armed_idle_soc(legacy=False)
        stats = soc.simulator.kernel_stats
        assert stats["dense_ticks"] + stats["cycles_skipped"] == HORIZON


class TestLegacyKernelCounts:
    def test_observed_pwm_wakes_once_per_period(self):
        soc = _armed_idle_soc(legacy=True)
        stats = soc.simulator.kernel_stats
        periods = HORIZON // PWM_PERIOD  # 390
        # One dense tick per period wake plus the arming tick.
        assert stats["dense_ticks"] == periods + 1
        assert stats["spans_skipped"] == periods + 1
        assert stats["dense_ticks"] + stats["cycles_skipped"] == HORIZON
        # Every boundary re-polls all 12 hinted peripherals plus the CPU
        # (the poll-reorder heuristic trims the count slightly below
        # 13 * boundaries; pin the exact total).
        assert stats["next_event_calls"] == 4701

    def test_both_kernels_agree_on_the_pwm(self):
        cached = _armed_idle_soc(legacy=False)
        legacy = _armed_idle_soc(legacy=True)
        assert cached.pwm.periods_elapsed == legacy.pwm.periods_elapsed == 390
        assert (
            cached.pwm.regs.reg("COUNT").value == legacy.pwm.regs.reg("COUNT").value
        )
