"""Tests for the clock-domain abstraction."""

import pytest

from repro.sim.clock import ClockDomain


class TestClockDomain:
    def test_period_seconds(self):
        clock = ClockDomain("soc", 55e6)
        assert clock.period_s == pytest.approx(1 / 55e6)

    def test_period_nanoseconds(self):
        clock = ClockDomain("soc", 100e6)
        assert clock.period_ns == pytest.approx(10.0)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain("bad", 0)
        with pytest.raises(ValueError):
            ClockDomain("bad", -1e6)

    def test_cycles_for_time(self):
        clock = ClockDomain("soc", 55e6)
        assert clock.cycles_for_time(500e-9) == 27  # the paper's 500 ns target

    def test_cycles_for_time_rejects_negative(self):
        clock = ClockDomain("soc", 1e6)
        with pytest.raises(ValueError):
            clock.cycles_for_time(-1.0)

    def test_time_for_cycles_roundtrip(self):
        clock = ClockDomain("soc", 27e6)
        assert clock.time_for_cycles(27) == pytest.approx(1e-6)

    def test_time_for_cycles_rejects_negative(self):
        clock = ClockDomain("soc", 1e6)
        with pytest.raises(ValueError):
            clock.time_for_cycles(-5)

    def test_advance_and_reset(self):
        clock = ClockDomain("soc", 1e6)
        clock.advance()
        clock.advance(3)
        assert clock.cycles == 4
        clock.reset()
        assert clock.cycles == 0

    def test_advance_rejects_negative(self):
        clock = ClockDomain("soc", 1e6)
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_iso_latency_operating_points(self):
        """27 MHz and 55 MHz both satisfy the paper's 500 ns latency target."""
        pels_clock = ClockDomain("pels", 27e6)
        ibex_clock = ClockDomain("ibex", 55e6)
        assert pels_clock.cycles_for_time(500e-9) >= 7   # sequenced action budget
        assert ibex_clock.cycles_for_time(500e-9) >= 16  # interrupt handler budget
