"""Kernel-level tests for batched multi-instance execution.

Covers the two halves of the plan/state split:

* :class:`repro.sim.SchedulePlan` interning — simulators of identical
  topology share one immutable plan object, and per-instance mutation
  (deadline heaps, volatile-list reordering) never leaks across instances;
* :class:`repro.sim.BatchSimulator` — N instances advanced in lockstep over
  span boundaries end in exactly the state of N standalone runs, and
  mid-run stops observe exactly the state a standalone run of that horizon
  would have finished in.
"""

import pytest

from repro.sim import BatchSimulator, SimulationError, Simulator
from repro.sim.backend import available_backends
from repro.sim.component import Component

BACKENDS = available_backends()


class Blinker(Component):
    """Cacheable periodic pulse counter (the wake-cache test workhorse)."""

    wake_cacheable = True

    def __init__(self, period, name="blinker"):
        super().__init__(name)
        self.period = period
        self.countdown = period
        self.pulses = 0
        self.idle_cycles = 0

    def tick(self, cycle):
        self.countdown -= 1
        if self.countdown == 0:
            self.pulses += 1
            self.countdown = self.period

    def next_event(self):
        return self.countdown

    def skip(self, cycles):
        self.countdown -= cycles
        self.idle_cycles += cycles


def _build(periods):
    simulator = Simulator()
    blinkers = [
        simulator.add_component(Blinker(period, name=f"b{i}")) for i, period in enumerate(periods)
    ]
    return simulator, blinkers


class TestPlanSharing:
    def test_same_topology_shares_one_plan(self):
        sim_a, _ = _build([7, 1000])
        sim_b, _ = _build([13, 500])  # different parameters, same structure
        sim_a.step(10)
        sim_b.step(10)
        assert sim_a.state.bound_plan is sim_b.state.bound_plan
        assert sim_a.kernel_stats["plan_builds"] == 1
        assert sim_b.kernel_stats["plan_builds"] == 1
        assert sim_b.kernel_stats["plan_shared"] == 1

    def test_fresh_topology_builds_fresh_plan(self):
        class Unique(Blinker):  # local class => new type => new fingerprint
            pass

        simulator = Simulator()
        simulator.add_component(Unique(5))
        simulator.step(10)
        assert simulator.kernel_stats["plan_builds"] == 1
        assert simulator.kernel_stats["plan_shared"] == 0

    def test_shared_plan_is_immutable_across_instances(self):
        sim_a, (a,) = _build([10])
        sim_b, (b,) = _build([10])
        sim_a.step(95)
        sim_b.step(25)
        # Same plan object, independent per-instance state.
        assert sim_a.state.bound_plan is sim_b.state.bound_plan
        assert (a.pulses, b.pulses) == (9, 2)
        assert sim_a.current_cycle == 95
        assert sim_b.current_cycle == 25

    def test_cached_wakes_toggle_selects_a_different_plan(self):
        sim_a, _ = _build([10])
        sim_a.step(5)
        cached_plan = sim_a.state.bound_plan
        sim_a.cached_wakes = False
        sim_a.step(5)
        assert sim_a.state.bound_plan is not cached_plan
        assert sim_a.kernel_stats["plan_builds"] == 2


class TestBatchSimulator:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batched_instances_match_standalone_runs(self, backend):
        # Heterogeneous periods and horizons: every instance must end in
        # exactly the state of its own standalone run — on every backend.
        configs = [([7, 50], 1_000), ([13, 990], 2_500), ([1, 3], 311)]
        solo = []
        for periods, horizon in configs:
            simulator, blinkers = _build(periods)
            simulator.step(horizon)
            solo.append([(b.pulses, b.idle_cycles, b.countdown) for b in blinkers])

        batch = BatchSimulator(backend=backend)
        batched_states = []
        for periods, horizon in configs:
            simulator, blinkers = _build(periods)
            batched_states.append(blinkers)
            batch.add(simulator, [(horizon, lambda elapsed: None)])
        batch.run()
        assert batch.backend_name == backend
        batched = [
            [(b.pulses, b.idle_cycles, b.countdown) for b in blinkers]
            for blinkers in batched_states
        ]
        assert batched == solo

    def test_stops_observe_the_exact_standalone_state(self):
        # A stop at cycle k must see the state a standalone step(k) produces,
        # even though the instance keeps running to a larger horizon.
        stops_at = [311, 1_000, 2_048]
        solo_states = []
        for horizon in stops_at:
            simulator, (blinker,) = _build([7])
            simulator.step(horizon)
            solo_states.append((blinker.pulses, blinker.idle_cycles, blinker.countdown))

        simulator, (blinker,) = _build([7])
        seen = {}

        def snapshot(elapsed):
            seen[elapsed] = (blinker.pulses, blinker.idle_cycles, blinker.countdown)

        batch = BatchSimulator()
        batch.add(simulator, [(cycles, snapshot) for cycles in stops_at])
        batch.run()
        assert [seen[cycles] for cycles in stops_at] == solo_states
        assert simulator.current_cycle == stops_at[-1]

    def test_dense_instances_are_supported(self):
        simulator, (blinker,) = _build([10])
        simulator.dense = True
        batch = BatchSimulator()
        batch.add(simulator, [(100, lambda elapsed: None)])
        batch.run()
        assert blinker.pulses == 10
        assert simulator.kernel_stats["dense_ticks"] == 100

    def test_rounds_interleave_instances(self):
        batch = BatchSimulator()
        for _ in range(3):
            simulator, _ = _build([10])
            batch.add(simulator, [(1_000, lambda elapsed: None)])
        batch.run()
        # Lockstep: the batch needed one round per span boundary, not one
        # round per instance.
        assert batch.rounds >= 100

    def test_stop_validation(self):
        simulator, _ = _build([10])
        batch = BatchSimulator()
        with pytest.raises(SimulationError, match="at least one stop"):
            batch.add(simulator, [])
        with pytest.raises(SimulationError, match="at least one cycle"):
            batch.add(simulator, [(0, lambda elapsed: None)])
        with pytest.raises(SimulationError, match="duplicate batch stop"):
            batch.add(simulator, [(5, lambda elapsed: None), (5, lambda elapsed: None)])

    def test_double_enrollment_is_rejected(self):
        simulator, _ = _build([10])
        batch = BatchSimulator()
        batch.add(simulator, [(10, lambda elapsed: None)])
        with pytest.raises(SimulationError, match="already enrolled"):
            batch.add(simulator, [(20, lambda elapsed: None)])

    def test_callback_advancing_the_simulator_is_detected(self):
        simulator, _ = _build([10])
        batch = BatchSimulator()
        batch.add(simulator, [(50, lambda elapsed: simulator.step(1))])
        with pytest.raises(SimulationError, match="advanced the simulator"):
            batch.run()

    def test_mid_run_enrollment_is_rejected(self):
        # add() during run() would give the new instance a partial round and
        # desynchronise the lockstep; it must fail loudly, not corrupt state.
        simulator, _ = _build([10])
        batch = BatchSimulator()

        def sneak(elapsed):
            extra, _ = _build([10])
            batch.add(extra, [(10, lambda e: None)])

        batch.add(simulator, [(20, sneak)])
        with pytest.raises(SimulationError, match="while the batch is running"):
            batch.run()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_progress_raises_instead_of_spinning(self, backend):
        # Regression: a live instance whose advance_span returns 0 (mis-wired
        # wake scheduling) used to spin run() forever.  It must raise,
        # naming the instance, its elapsed cycle, and the pending stop.
        simulator, _ = _build([10])
        simulator.dense = True  # both backends route dense via advance_span
        batch = BatchSimulator(backend=backend)
        batch.add(simulator, [(50, lambda elapsed: None)], label="stuck-instance")
        simulator.state.advance_span = lambda limit, dense=False: 0
        with pytest.raises(SimulationError) as excinfo:
            batch.run()
        message = str(excinfo.value)
        assert "stuck-instance" in message
        assert "elapsed cycle 0" in message
        assert "cycle 50" in message

    def test_backend_selection_validates_names(self):
        simulator, _ = _build([10])
        batch = BatchSimulator(backend="fortran")
        batch.add(simulator, [(10, lambda elapsed: None)])
        with pytest.raises(SimulationError, match="unknown batch backend"):
            batch.run()
