"""Tests for the cached wake-horizon scheduler (deadline cache + invalidation)."""

import pytest

from repro.peripherals.timer import Timer
from repro.peripherals.watchdog import Watchdog
from repro.sim.component import Component
from repro.sim.simulator import Simulator


class CountingBlinker(Component):
    """Cacheable periodic component that counts its next_event polls.

    Mimics the peripheral contract by hand: the only externally driven state
    change (set_period) calls wake_changed.
    """

    wake_cacheable = True

    def __init__(self, period, name="blinker"):
        super().__init__(name)
        self.period = period
        self.countdown = period
        self.polls = 0
        self.pulses = 0

    def tick(self, cycle):
        self.countdown -= 1
        if self.countdown == 0:
            self.pulses += 1
            self.countdown = self.period

    def next_event(self):
        self.polls += 1
        return self.countdown

    def skip(self, cycles):
        self.countdown -= cycles

    def set_period(self, period):
        self.period = period
        self.countdown = period
        self.wake_changed()


class VolatileIdler(Component):
    """Non-cacheable hinted component: must be re-polled at every boundary."""

    def __init__(self, name="idler"):
        super().__init__(name)
        self.polls = 0

    def tick(self, cycle):
        pass

    def next_event(self):
        self.polls += 1
        return None


class TestDeadlineCache:
    def test_idle_cached_component_is_not_repolled(self):
        simulator = Simulator()
        fast = simulator.add_component(CountingBlinker(period=10, name="fast"))
        slow = simulator.add_component(CountingBlinker(period=10_000, name="slow"))
        simulator.step(5_000)
        assert fast.pulses == 500
        # The slow component never fired and never changed: one poll when the
        # plan was built, nothing after — O(active), not O(all).
        assert slow.polls == 1
        assert fast.polls >= 500

    def test_volatile_component_is_polled_every_boundary(self):
        simulator = Simulator()
        simulator.add_component(CountingBlinker(period=10))
        idler = simulator.add_component(VolatileIdler())
        simulator.step(1_000)
        # ~2 boundaries per pulse (span end + post-dense-tick).
        assert idler.polls >= 100

    def test_cached_wakes_flag_disables_the_cache(self):
        simulator = Simulator(cached_wakes=False)
        fast = simulator.add_component(CountingBlinker(period=10, name="fast"))
        slow = simulator.add_component(CountingBlinker(period=10_000, name="slow"))
        simulator.step(5_000)
        assert fast.pulses == 500
        assert slow.polls >= 100  # legacy kernel: re-polled per boundary

    def test_cached_wakes_toggle_takes_effect_mid_run(self):
        # Regression: the toggle is part of the plan fingerprint, so flipping
        # it between steps must reclassify components (like `dense` does).
        simulator = Simulator()
        simulator.add_component(CountingBlinker(period=10, name="fast"))
        slow = simulator.add_component(CountingBlinker(period=10_000, name="slow"))
        simulator.step(1_000)
        cached_polls = slow.polls
        assert cached_polls == 1
        simulator.cached_wakes = False
        simulator.step(1_000)
        assert slow.polls >= cached_polls + 100  # volatile again
        simulator.cached_wakes = True
        legacy_polls = slow.polls
        simulator.step(1_000)
        assert slow.polls <= legacy_polls + 1  # back to one re-poll on rebuild

    def test_wake_changed_moves_the_deadline(self):
        simulator = Simulator()
        blinker = simulator.add_component(CountingBlinker(period=1_000))
        simulator.step(10)
        blinker.set_period(5)  # invalidates the cached 1000-cycle deadline
        simulator.step(20)
        assert blinker.pulses == 4

    def test_stale_deadline_without_invalidation_is_a_contract_break(self):
        # Documents *why* wake_changed is mandatory: mutating wake-relevant
        # state without it leaves the cached deadline in place.
        simulator = Simulator()
        blinker = simulator.add_component(CountingBlinker(period=1_000))
        simulator.step(10)
        blinker.period = 5
        blinker.countdown = 5  # no wake_changed(): scheduler still waits ~990
        simulator.step(20)
        assert blinker.pulses == 0

    def test_deadlines_survive_step_boundaries(self):
        simulator = Simulator()
        blinker = simulator.add_component(CountingBlinker(period=997))
        for _ in range(10):
            simulator.step(100)
        assert blinker.pulses == 1
        assert simulator.kernel_stats["plan_builds"] == 1

    def test_late_component_add_rebuilds_the_plan(self):
        simulator = Simulator()
        simulator.add_component(CountingBlinker(period=50, name="a"))
        simulator.step(100)
        late = simulator.add_component(CountingBlinker(period=7, name="b"))
        simulator.step(70)
        assert late.pulses == 10
        assert simulator.kernel_stats["plan_builds"] == 2

    def test_reset_clears_absolute_deadlines(self):
        simulator = Simulator()
        blinker = simulator.add_component(CountingBlinker(period=100))
        simulator.step(350)
        assert blinker.pulses == 3
        simulator.reset()
        blinker.countdown = blinker.period
        simulator.step(350)
        # A stale absolute deadline (399) would postpone the first pulse past
        # the whole run; re-derived deadlines fire 3 more times.
        assert blinker.pulses == 6

    def test_kernel_stats_account_for_skipping(self):
        simulator = Simulator()
        simulator.add_component(CountingBlinker(period=100))
        simulator.step(1_000)
        stats = simulator.kernel_stats
        assert stats["dense_ticks"] == 10
        assert stats["cycles_skipped"] == 990
        assert stats["dense_ticks"] + stats["cycles_skipped"] == 1_000
        assert stats["spans_skipped"] >= 10


class TestPeripheralInvalidation:
    def test_register_write_invalidates_timer_deadline(self):
        dense_sim, event_sim = Simulator(dense=True), Simulator()
        timers = []
        for simulator in (dense_sim, event_sim):
            timer = Timer(compare=10_000)
            simulator.add_component(timer)
            timer.start()
            simulator.step(5)
            # Mid-run reconfiguration: the cached 10k-cycle deadline must die.
            timer.regs.reg("COMPARE").write(20)
            simulator.step(100)
            timers.append(timer)
        assert timers[0].overflow_count == timers[1].overflow_count > 0
        assert (
            timers[0].regs.reg("COUNT").value == timers[1].regs.reg("COUNT").value
        )

    def test_software_helper_invalidates_watchdog_deadline(self):
        dense_sim, event_sim = Simulator(dense=True), Simulator()
        dogs = []
        for simulator in (dense_sim, event_sim):
            wdt = Watchdog(timeout=50, grace=10)
            simulator.add_component(wdt)
            wdt.start()
            simulator.step(30)
            wdt.kick()  # hw_write path: reload must re-arm the deadline
            simulator.step(45)
            dogs.append(wdt)
        assert dogs[0].barks == dogs[1].barks
        assert dogs[0].regs.reg("COUNT").value == dogs[1].regs.reg("COUNT").value

    def test_next_event_calls_drop_with_cache(self):
        def run(cached):
            simulator = Simulator(cached_wakes=cached)
            timer = Timer(compare=500)
            simulator.add_component(timer)
            for name in ("wdt_a", "wdt_b", "wdt_c"):
                wdt = Watchdog(name=name, timeout=1_000_000)
                simulator.add_component(wdt)
                wdt.start()
            timer.start()
            simulator.step(100_000)
            return simulator.kernel_stats["next_event_calls"]

        cached_calls = run(True)
        legacy_calls = run(False)
        assert cached_calls < legacy_calls / 2


class TestMicroFixes:
    def test_component_lookup_is_dict_backed(self):
        simulator = Simulator()
        blinker = simulator.add_component(CountingBlinker(period=3))
        assert simulator.component("blinker") is blinker
        assert simulator._components_by_name["blinker"] is blinker

    def test_divisors_recomputed_only_on_frequency_change(self):
        simulator = Simulator(default_frequency_hz=50e6)
        slow = simulator.add_clock_domain("slow", 25e6)
        blinker = simulator.add_component(CountingBlinker(period=10), domain=slow)
        simulator.step(100)
        state = simulator.state
        assert state.divisors == {"slow": 2}  # only domains with components
        snapshot = state._freq_snapshot
        simulator.step(100)
        assert simulator.state._freq_snapshot is snapshot  # untouched
        assert blinker.pulses == 10

    def test_frequency_change_mid_run_stays_exact(self):
        simulator = Simulator(default_frequency_hz=50e6)
        slow = simulator.add_clock_domain("slow", 25e6)
        blinker = simulator.add_component(CountingBlinker(period=10), domain=slow)
        simulator.step(100)
        assert blinker.pulses == 5
        slow.frequency_hz = 50e6  # domain catches up to the base clock
        simulator.step(100)
        assert blinker.pulses == 15
