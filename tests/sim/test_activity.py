"""Tests for the activity counters feeding the power model."""

import pytest

from repro.sim.activity import ActivityCounters, as_nested_dict, merge_all, total_events


class TestActivityCounters:
    def test_add_and_get(self):
        counters = ActivityCounters()
        counters.add("sram", "reads")
        counters.add("sram", "reads", 3)
        assert counters.get("sram", "reads") == 4

    def test_unseen_counter_reads_zero(self):
        counters = ActivityCounters()
        assert counters.get("sram", "writes") == 0

    def test_rejects_negative_amount(self):
        counters = ActivityCounters()
        with pytest.raises(ValueError):
            counters.add("sram", "reads", -1)

    def test_rejects_empty_names(self):
        counters = ActivityCounters()
        with pytest.raises(ValueError):
            counters.add("", "reads")
        with pytest.raises(ValueError):
            counters.add("sram", "")

    def test_component_total(self):
        counters = ActivityCounters()
        counters.add("apb", "reads", 2)
        counters.add("apb", "writes", 3)
        counters.add("sram", "reads", 10)
        assert counters.component_total("apb") == 5
        assert counters.component_total("apb", "writes") == 3

    def test_components_sorted(self):
        counters = ActivityCounters()
        counters.add("zeta", "x")
        counters.add("alpha", "y")
        assert counters.components() == ("alpha", "zeta")

    def test_events_for_component(self):
        counters = ActivityCounters()
        counters.add("ibex", "loads", 2)
        counters.add("ibex", "stores", 1)
        assert counters.events("ibex") == {"loads": 2, "stores": 1}

    def test_merge_accumulates(self):
        first = ActivityCounters()
        second = ActivityCounters()
        first.add("apb", "grants", 2)
        second.add("apb", "grants", 3)
        second.add("sram", "reads", 1)
        first.merge(second)
        assert first.get("apb", "grants") == 5
        assert first.get("sram", "reads") == 1

    def test_scaled(self):
        counters = ActivityCounters()
        counters.add("apb", "grants", 4)
        assert counters.scaled(0.5)[("apb", "grants")] == pytest.approx(2.0)

    def test_scaled_rejects_negative_factor(self):
        counters = ActivityCounters()
        with pytest.raises(ValueError):
            counters.scaled(-1.0)

    def test_clear(self):
        counters = ActivityCounters()
        counters.add("apb", "grants", 4)
        counters.clear()
        assert len(counters) == 0

    def test_iteration_sorted(self):
        counters = ActivityCounters()
        counters.add("b", "y", 1)
        counters.add("a", "x", 1)
        keys = [key for key, _ in counters]
        assert keys == [("a", "x"), ("b", "y")]


class TestHelpers:
    def test_merge_all(self):
        sets = []
        for index in range(3):
            counters = ActivityCounters()
            counters.add("spi", "words", index + 1)
            sets.append(counters)
        merged = merge_all(sets)
        assert merged.get("spi", "words") == 6

    def test_as_nested_dict(self):
        counters = ActivityCounters()
        counters.add("spi", "words", 2)
        counters.add("spi", "transfers", 1)
        nested = as_nested_dict(counters)
        assert nested == {"spi": {"transfers": 1, "words": 2}}

    def test_total_events(self):
        counters = ActivityCounters()
        counters.add("a", "x", 2)
        counters.add("b", "y", 3)
        assert total_events(counters.as_dict()) == 5
