"""Tests for the cycle-driven simulation kernel."""

import pytest

from repro.sim.component import Component
from repro.sim.simulator import SimulationError, Simulator, build_simulator


class CycleCounter(Component):
    """Minimal component that counts its own ticks."""

    def __init__(self, name="counter"):
        super().__init__(name)
        self.ticks = 0
        self.seen_cycles = []

    def tick(self, cycle):
        self.ticks += 1
        self.seen_cycles.append(cycle)

    def reset(self):
        self.ticks = 0
        self.seen_cycles = []


class TestSimulatorBasics:
    def test_step_ticks_components(self):
        simulator = Simulator()
        counter = simulator.add_component(CycleCounter())
        simulator.step(10)
        assert counter.ticks == 10
        assert simulator.current_cycle == 10

    def test_component_sees_domain_local_cycles(self):
        simulator = Simulator()
        counter = simulator.add_component(CycleCounter())
        simulator.step(3)
        assert counter.seen_cycles == [0, 1, 2]

    def test_duplicate_component_name_rejected(self):
        simulator = Simulator()
        simulator.add_component(CycleCounter("x"))
        with pytest.raises(SimulationError):
            simulator.add_component(CycleCounter("x"))

    def test_component_lookup(self):
        simulator = Simulator()
        counter = simulator.add_component(CycleCounter("x"))
        assert simulator.component("x") is counter
        with pytest.raises(SimulationError):
            simulator.component("missing")

    def test_negative_step_rejected(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.step(-1)

    def test_run_until(self):
        simulator = Simulator()
        counter = simulator.add_component(CycleCounter())
        elapsed = simulator.run_until(lambda: counter.ticks >= 5, max_cycles=100)
        assert elapsed == 5

    def test_run_until_timeout(self):
        simulator = Simulator()
        simulator.add_component(CycleCounter())
        with pytest.raises(SimulationError):
            simulator.run_until(lambda: False, max_cycles=10, label="never")

    def test_run_for_time(self):
        simulator = Simulator(default_frequency_hz=1e6)
        counter = simulator.add_component(CycleCounter())
        cycles = simulator.run_for_time(10e-6)
        assert cycles == 10
        assert counter.ticks == 10

    def test_reset_clears_everything(self):
        simulator = Simulator()
        counter = simulator.add_component(CycleCounter())
        simulator.step(5)
        simulator.activity.add("x", "y", 3)
        simulator.reset()
        assert simulator.current_cycle == 0
        assert counter.ticks == 0
        assert simulator.activity.get("x", "y") == 0

    def test_build_simulator_helper(self):
        counter = CycleCounter()
        simulator = build_simulator(10e6, [counter])
        assert counter.is_attached
        assert simulator.default_domain.frequency_hz == 10e6


class TestClockDomains:
    def test_slow_domain_ticks_less_often(self):
        simulator = Simulator(default_frequency_hz=50e6)
        slow_domain = simulator.add_clock_domain("slow", 25e6)
        fast = simulator.add_component(CycleCounter("fast"))
        slow = simulator.add_component(CycleCounter("slow_counter"), domain=slow_domain)
        simulator.step(10)
        assert fast.ticks == 10
        assert slow.ticks == 5

    def test_duplicate_domain_rejected(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.add_clock_domain("default", 1e6)

    def test_unknown_domain_lookup(self):
        simulator = Simulator()
        with pytest.raises(SimulationError):
            simulator.clock_domain("missing")

    def test_non_divisor_frequency_rejected(self):
        simulator = Simulator(default_frequency_hz=50e6)
        odd = simulator.add_clock_domain("odd", 33e6)
        simulator.add_component(CycleCounter("c"), domain=odd)
        simulator.add_component(CycleCounter("fast"))
        with pytest.raises(SimulationError):
            simulator.step(1)

    def test_large_exact_ratio_survives_float_noise(self):
        # A 30518:1 divide (a 1 GHz SoC clock against a ~32.77 kHz RTC-ish
        # domain) carries float derivation noise proportional to the ratio:
        # here ~1.5e-5 absolute, which the old fixed 1e-6 window wrongly
        # rejected while the relative tolerance (1e-9 per unit of divisor)
        # accepts it as the exact integer ratio it is.
        base = 1e9
        divisor = 30_518
        simulator = Simulator(default_frequency_hz=base)
        slow = simulator.add_clock_domain("slow", base / divisor * (1 + 5e-10))
        simulator.add_component(CycleCounter("s"), domain=slow)
        simulator.add_component(CycleCounter("fast"))
        simulator.step(5)
        assert simulator.state.divisors["slow"] == divisor

    def test_small_near_miss_ratio_rejected(self):
        # 50 MHz against 50e6 / 2.0000005 is a ratio of 2 + 5e-7: inside the
        # old absolute 1e-6 window (silently drifting the slow domain by a
        # cycle every ~2M cycles) but 250x over the relative tolerance.
        base = 50e6
        simulator = Simulator(default_frequency_hz=base)
        near = simulator.add_clock_domain("near", base / (2 + 5e-7))
        simulator.add_component(CycleCounter("c"), domain=near)
        simulator.add_component(CycleCounter("fast"))
        with pytest.raises(SimulationError, match="must divide"):
            simulator.step(1)


class TestComponentActivity:
    def test_record_before_attach_is_preserved(self):
        counter = CycleCounter()
        counter.record("early", 2)
        simulator = Simulator()
        simulator.add_component(counter)
        assert simulator.activity.get("counter", "early") == 2

    def test_record_after_attach_goes_to_simulator(self):
        simulator = Simulator()
        counter = simulator.add_component(CycleCounter())
        counter.record("late", 5)
        assert simulator.activity.get("counter", "late") == 5

    def test_double_attach_rejected(self):
        simulator = Simulator()
        counter = simulator.add_component(CycleCounter())
        other = Simulator()
        with pytest.raises(RuntimeError):
            other.add_component(counter)

    def test_unattached_component_properties_raise(self):
        counter = CycleCounter()
        with pytest.raises(RuntimeError):
            _ = counter.simulator
        with pytest.raises(RuntimeError):
            _ = counter.clock

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            CycleCounter("")

    def test_trace_records_at_current_cycle(self):
        simulator = Simulator()
        simulator.add_component(CycleCounter())
        simulator.step(4)
        simulator.trace("signal", 1)
        trace = simulator.traces.trace("signal")
        assert trace.changes()[0].cycle == 4
