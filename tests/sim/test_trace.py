"""Tests for signal tracing."""

import pytest

from repro.sim.trace import SignalTrace, TraceRecorder


class TestSignalTrace:
    def test_records_and_reads_back(self):
        trace = SignalTrace("irq")
        trace.record(3, 1)
        trace.record(7, 0)
        assert len(trace) == 2
        assert trace.changes()[0].value == 1

    def test_value_at_returns_latest_change(self):
        trace = SignalTrace("irq")
        trace.record(2, "low")
        trace.record(5, "high")
        assert trace.value_at(1) is None
        assert trace.value_at(3) == "low"
        assert trace.value_at(5) == "high"
        assert trace.value_at(100) == "high"

    def test_rejects_negative_cycle(self):
        trace = SignalTrace("irq")
        with pytest.raises(ValueError):
            trace.record(-1, 0)

    def test_rejects_out_of_order_records(self):
        trace = SignalTrace("irq")
        trace.record(5, 1)
        with pytest.raises(ValueError):
            trace.record(4, 0)

    def test_first_cycle_with_value(self):
        trace = SignalTrace("state")
        trace.record(1, "idle")
        trace.record(4, "busy")
        trace.record(9, "idle")
        assert trace.first_cycle_with_value("busy") == 4
        assert trace.first_cycle_with_value("missing") is None

    def test_event_str_is_readable(self):
        trace = SignalTrace("pin")
        trace.record(12, True)
        assert "pin" in str(trace.changes()[0])


class TestTraceRecorder:
    def test_creates_traces_on_demand(self):
        recorder = TraceRecorder()
        recorder.record(0, "a", 1)
        recorder.record(1, "b", 2)
        assert set(recorder.signals()) == {"a", "b"}
        assert "a" in recorder
        assert len(recorder) == 2

    def test_missing_trace_raises(self):
        recorder = TraceRecorder()
        with pytest.raises(KeyError):
            recorder.trace("missing")

    def test_merged_timeline_is_chronological(self):
        recorder = TraceRecorder()
        recorder.record(5, "b", "later")
        recorder.record(1, "a", "early")
        recorder.record(5, "a", "mid")
        timeline = recorder.merged_timeline()
        assert [event.cycle for event in timeline] == [1, 5, 5]
        assert timeline[1].signal == "a"  # ties broken by signal name

    def test_merged_timeline_subset(self):
        recorder = TraceRecorder()
        recorder.record(1, "a", 1)
        recorder.record(2, "b", 2)
        timeline = recorder.merged_timeline(["b"])
        assert len(timeline) == 1
        assert timeline[0].signal == "b"
