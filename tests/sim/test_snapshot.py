"""Snapshot/restore of prepared scenarios and the serialisable plan format.

The acceptance oracle is the restore⇒identical-run property: a prepared
scenario snapshotted mid-run and restored in (conceptually) another
process must continue to exactly the outcome the original run produces —
same stats, same activity counters, same kernel counters.  Around that
sit the container-integrity checks (every corruption is a *named*
``SnapshotError``), the registry-free plan serialisation, and the bounded
plan intern table.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import simulator as simulator_module
from repro.sim.simulator import PLAN_INTERN_CAPACITY, SchedulePlan
from repro.sim.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_SCHEMA_VERSION,
    SnapshotError,
    plan_digest,
    plan_from_payload,
    plan_to_payload,
    read_header,
    restore_prepared,
    snapshot_prepared,
)
from repro.workloads.registry import scenario

SCENARIO = "duty-cycled-logging"
HORIZONS = [30_000, 60_000]


def _prepare(dense=False, **params):
    return scenario(SCENARIO).batch_prepare(list(HORIZONS), dense, **params)


def _plan_of(prepared):
    prepared.simulator.step(1)  # force plan resolution
    return prepared.simulator._plan


def _loop_stats(simulator):
    """Kernel counters minus the plan_* keys: plan build/share/evict tallies
    depend on the process-wide intern table (what earlier tests interned),
    not on this run's stepping behaviour."""
    return {k: v for k, v in simulator.kernel_stats.items() if not k.startswith("plan_")}


class TestPlanPayload:
    def test_round_trip_returns_canonical_interned_plan(self):
        plan = _plan_of(_prepare())
        payload = plan_to_payload(plan)
        assert payload["entries"], "expected a non-trivial topology"
        for entry in payload["entries"]:
            assert ":" in entry["component"]
        rebuilt = plan_from_payload(payload)
        assert rebuilt.fingerprint == plan.fingerprint
        # adopt() returns the already-interned instance, not a twin.
        assert rebuilt is plan

    def test_digest_is_stable_and_structural(self):
        plan_a = _plan_of(_prepare())
        plan_b = _plan_of(_prepare())
        assert plan_digest(plan_a) == plan_digest(plan_b)
        assert len(plan_digest(plan_a)) == 64

    def test_unresolvable_class_is_a_named_error(self):
        payload = plan_to_payload(_plan_of(_prepare()))
        payload["entries"][0]["component"] = "repro.no.such.module:Ghost"
        with pytest.raises(SnapshotError, match="cannot resolve component class"):
            plan_from_payload(payload)
        payload["entries"][0]["component"] = "no-colon-here"
        with pytest.raises(SnapshotError, match="malformed component class reference"):
            plan_from_payload(payload)

    def test_malformed_payload_is_a_named_error(self):
        with pytest.raises(SnapshotError, match="malformed plan payload"):
            plan_from_payload({"cached_wakes": True, "entries": [{"component": 3}]})


class TestContainerIntegrity:
    @pytest.fixture()
    def blob(self):
        prepared = _prepare()
        prepared.simulator.step(HORIZONS[0])
        return snapshot_prepared(prepared)

    def test_header_reads_back(self, blob):
        header, payload = read_header(blob)
        assert header["schema_version"] == SNAPSHOT_SCHEMA_VERSION
        assert header["base_tick"] == HORIZONS[0]
        assert header["payload_bytes"] == len(payload)
        assert header["plan"] is not None and header["plan_digest"] is not None

    def test_bad_magic(self, blob):
        with pytest.raises(SnapshotError, match="bad magic"):
            read_header(b"not a snapshot" + blob)

    def test_missing_header_terminator(self):
        with pytest.raises(SnapshotError, match="missing header terminator"):
            read_header(SNAPSHOT_MAGIC + b"{}")

    def test_stale_schema_version(self, blob):
        stale = blob.replace(
            b'"schema_version":%d' % SNAPSHOT_SCHEMA_VERSION,
            b'"schema_version":%d' % (SNAPSHOT_SCHEMA_VERSION + 1),
        )
        with pytest.raises(SnapshotError, match="stale snapshot schema"):
            read_header(stale)

    def test_truncated_payload(self, blob):
        with pytest.raises(SnapshotError, match="truncated snapshot payload"):
            read_header(blob[:-10])

    def test_corrupt_payload_checksum(self, blob):
        flipped = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        with pytest.raises(SnapshotError, match="checksum mismatch"):
            read_header(flipped)

    def test_corrupt_pickle_with_valid_checksum(self):
        # A header that frames garbage correctly: only unpickling can fail.
        import hashlib
        import json

        payload = b"\x80\x05garbage"
        header = {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "base_tick": 0,
            "plan": None,
            "plan_digest": None,
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        blob = SNAPSHOT_MAGIC + json.dumps(header).encode() + b"\n" + payload
        with pytest.raises(SnapshotError, match="unpickling failed"):
            restore_prepared(blob)

    def test_unpicklable_prepared_is_a_named_error(self):
        class Unpicklable:
            simulator = None

            def __reduce__(self):
                raise TypeError("nope")

        with pytest.raises(SnapshotError, match="has no .simulator"):
            snapshot_prepared(object())
        prepared = _prepare()
        prepared.poison = Unpicklable()
        with pytest.raises(SnapshotError, match="not picklable"):
            snapshot_prepared(prepared)


class TestRestoreOracle:
    def test_snapshot_does_not_perturb_the_running_instance(self):
        perturbed, reference = _prepare(), _prepare()
        perturbed.simulator.step(HORIZONS[0])
        reference.simulator.step(HORIZONS[0])
        snapshot_prepared(perturbed)
        perturbed.simulator.step(HORIZONS[1] - HORIZONS[0])
        reference.simulator.step(HORIZONS[1] - HORIZONS[0])
        assert perturbed.outcome(HORIZONS[1]).stats == reference.outcome(HORIZONS[1]).stats

    def test_restore_continues_to_the_identical_outcome(self):
        fresh = _prepare()
        fresh.simulator.step(HORIZONS[0])
        restored = restore_prepared(snapshot_prepared(fresh))
        assert restored.base_tick == HORIZONS[0]
        assert restored.prepared.simulator.current_cycle == HORIZONS[0]
        # Outcomes agree at the snapshot point...
        assert restored.prepared.outcome(HORIZONS[0]).stats == fresh.outcome(HORIZONS[0]).stats
        # ...and stay in lockstep when both continue simulating.
        fresh.simulator.step(HORIZONS[1] - HORIZONS[0])
        restored.prepared.simulator.step(HORIZONS[1] - HORIZONS[0])
        assert restored.prepared.outcome(HORIZONS[1]).stats == fresh.outcome(HORIZONS[1]).stats
        assert _loop_stats(restored.prepared.simulator) == _loop_stats(fresh.simulator)

    def test_restore_adopts_the_canonical_interned_plan(self):
        fresh = _prepare()
        plan = _plan_of(fresh)
        restored = restore_prepared(snapshot_prepared(fresh))
        simulator = restored.prepared.simulator
        assert simulator._plan is plan
        assert simulator._state.bound_plan is plan
        assert restored.plan_shared is True

    def test_snapshot_is_backend_neutral(self):
        prepared = _prepare()
        prepared.simulator.step(HORIZONS[0])
        state = pickle.loads(pickle.dumps(prepared.simulator._state))
        assert state._wake_row is None
        assert state._active_component is None

    @settings(max_examples=8, deadline=None)
    @given(
        period=st.sampled_from([1_000, 1_700, 2_000, 3_500]),
        cut=st.integers(min_value=1, max_value=29_999),
        dense=st.booleans(),
    )
    def test_differential_fresh_vs_restored(self, period, cut, dense):
        """Snapshot at an arbitrary mid-run cycle (not just stop boundaries),
        restore, continue: the outcome and the simulated *work* (dense
        ticks, skipped cycles) must match a fresh uninterrupted run, and
        every loop counter must match a twin that merely paused at the same
        cycle without snapshotting — snapshot/restore adds nothing beyond
        what pausing itself does.  Both kernel modes."""
        fresh = _prepare(dense=dense, sample_period_cycles=period)
        paused = _prepare(dense=dense, sample_period_cycles=period)
        interrupted = _prepare(dense=dense, sample_period_cycles=period)
        paused.simulator.step(cut)
        interrupted.simulator.step(cut)
        restored = restore_prepared(snapshot_prepared(interrupted)).prepared
        fresh.simulator.step(HORIZONS[0])
        paused.simulator.step(HORIZONS[0] - cut)
        restored.simulator.step(HORIZONS[0] - cut)
        assert restored.outcome(HORIZONS[0]).stats == fresh.outcome(HORIZONS[0]).stats
        assert _loop_stats(restored.simulator) == _loop_stats(paused.simulator)
        # Pausing may split a quiescent span (one extra next_event call);
        # the simulated work itself must be identical to the one-shot run.
        for key in ("dense_ticks", "cycles_skipped"):
            assert restored.simulator.kernel_stats[key] == fresh.simulator.kernel_stats[key]


class TestPlanInternBounds:
    def _fingerprint(self, index):
        # Distinct structural fingerprints without building real topologies:
        # the entry tuple shape is (cls, ticks, hinted, skips, cacheable,
        # slot) — vary the slot to vary the fingerprint.
        return (True, ((object, True, True, False, True, index),))

    def test_adopt_evicts_least_recently_used_beyond_capacity(self, monkeypatch):
        monkeypatch.setattr(simulator_module, "PLAN_INTERN_CAPACITY", 2)
        monkeypatch.setattr(simulator_module, "_PLAN_INTERN", {})
        table = simulator_module._PLAN_INTERN
        plans = [SchedulePlan(self._fingerprint(i)) for i in range(3)]
        assert SchedulePlan.adopt(plans[0]) == (plans[0], False, 0)
        assert SchedulePlan.adopt(plans[1]) == (plans[1], False, 0)
        # Refresh plan 0 so plan 1 is now the least recently used.
        adopted, shared, evicted = SchedulePlan.adopt(SchedulePlan(self._fingerprint(0)))
        assert adopted is plans[0] and shared and evicted == 0
        _, _, evicted = SchedulePlan.adopt(plans[2])
        assert evicted == 1
        assert plans[1].fingerprint not in table
        assert plans[0].fingerprint in table and plans[2].fingerprint in table

    def test_evictions_are_charged_to_kernel_stats(self, monkeypatch):
        monkeypatch.setattr(simulator_module, "PLAN_INTERN_CAPACITY", 0)
        monkeypatch.setattr(simulator_module, "_PLAN_INTERN", {})
        prepared = _prepare()
        prepared.simulator.step(1)
        stats = prepared.simulator.kernel_stats
        assert stats["plan_builds"] == 1
        assert stats["plan_evictions"] == 1  # capacity 0: every insert evicts

    def test_default_capacity_is_sane(self):
        assert PLAN_INTERN_CAPACITY >= 64
