"""One canonical kernel_stats key set across every kernel and backend.

``repro.obs.metrics.KERNEL_STAT_KEYS`` is the single definition of the
scheduler-counter contract: the dense kernel, the cached event-driven
kernel, the legacy uncached kernel, and every batch backend must produce
``kernel_stats`` with exactly this key set — no more, no fewer.  The
telemetry layer (``MetricsRegistry.absorb_kernel_stats``, sweep manifests,
``repro.run stats``) aggregates these dicts blindly across workers and
shards, so a kernel that grows or drops a counter without updating the
canonical tuple would silently corrupt the aggregation.  This module pins
the set and the fail-fast behaviour of the fixed-key ``CounterSet``.
"""

import pytest

from repro.obs.metrics import KERNEL_STAT_KEYS, CounterSet
from repro.sim import BatchSimulator, Simulator
from repro.sim.backend import available_backends
from repro.sim.component import Component

BACKENDS = available_backends()

HORIZON = 2_000


class Pulse(Component):
    """Minimal cacheable periodic ticker to exercise the span scheduler."""

    wake_cacheable = True

    def __init__(self, period, name="pulse"):
        super().__init__(name)
        self.period = period
        self.countdown = period

    def tick(self, cycle):
        self.countdown -= 1
        if self.countdown == 0:
            self.countdown = self.period

    def next_event(self):
        return self.countdown

    def skip(self, cycles):
        self.countdown -= cycles


def _run_kernel(**kwargs):
    simulator = Simulator(**kwargs)
    simulator.add_component(Pulse(7))
    simulator.step(HORIZON)
    return simulator.kernel_stats


class TestCanonicalKeySet:
    def test_the_canonical_tuple_is_pinned(self):
        assert KERNEL_STAT_KEYS == (
            "next_event_calls",
            "dense_ticks",
            "spans_skipped",
            "cycles_skipped",
            "plan_builds",
            "plan_shared",
            "plan_evictions",
        )

    def test_event_driven_cached_kernel(self):
        assert tuple(_run_kernel()) == KERNEL_STAT_KEYS

    def test_event_driven_legacy_uncached_kernel(self):
        assert tuple(_run_kernel(cached_wakes=False)) == KERNEL_STAT_KEYS

    def test_dense_kernel(self):
        assert tuple(_run_kernel(dense=True)) == KERNEL_STAT_KEYS

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_backends(self, backend):
        batch = BatchSimulator(backend=backend)
        for period in (7, 11):
            simulator = Simulator()
            simulator.add_component(Pulse(period))
            batch.add(simulator, [(HORIZON, lambda elapsed: None)])
        batch.run()
        assert batch.backend_name == backend
        for instance in batch.instances:
            assert tuple(instance.simulator.kernel_stats) == KERNEL_STAT_KEYS


class TestFixedKeyContract:
    def test_kernel_stats_is_a_fixed_key_counter_set(self):
        simulator = Simulator()
        assert isinstance(simulator.kernel_stats, CounterSet)

    def test_undeclared_counter_raises_at_the_increment_site(self):
        simulator = Simulator()
        with pytest.raises(KeyError, match="mystery_counter"):
            simulator.kernel_stats["mystery_counter"] += 1

    def test_reset_preserves_the_canonical_keys(self):
        stats = _run_kernel()
        assert stats["plan_builds"] == 1
        stats.reset()
        assert tuple(stats) == KERNEL_STAT_KEYS
        assert set(stats.values()) == {0}
