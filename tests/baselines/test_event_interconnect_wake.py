"""Wake-hint tests for the event-interconnect baseline.

``repro.baselines.event_interconnect`` had no wake hints at all, so any
system containing it fell back to dense stepping (the ROADMAP gap).  The
router now sleeps until a producer pulse is waiting on the fabric and
batch-records its idle cycles, which is what lets baseline-vs-PELS ablation
runs benefit from quiescence skipping too.
"""

from repro.baselines.event_interconnect import EventInterconnect
from repro.peripherals.events import EventFabric
from repro.peripherals.gpio import Gpio
from repro.peripherals.timer import Timer
from repro.sim.component import Component
from repro.sim.simulator import Simulator


class HintedFabricCloser(Component):
    """End-of-cycle pulse clearing with a wake hint (mirrors the SoC helper)."""

    def __init__(self, fabric):
        super().__init__("closer")
        self._fabric = fabric

    def tick(self, cycle):
        self._fabric.end_cycle()

    def next_event(self):
        return 1 if self._fabric.active_mask() else None


def make_system(dense=False, timer_compare=50):
    simulator = Simulator(dense=dense)
    fabric = EventFabric()
    timer = Timer("timer", compare=timer_compare)
    timer.connect_events(fabric)
    gpio = Gpio("gpio")
    gpio.connect_events(fabric)
    interconnect = EventInterconnect("prs", fabric=fabric, n_channels=4)
    simulator.add_component(timer)
    simulator.add_component(gpio)
    simulator.add_component(interconnect)
    simulator.add_component(HintedFabricCloser(fabric))
    return simulator, fabric, timer, gpio, interconnect


class TestEventInterconnectWakeHints:
    def test_quiet_fabric_never_wakes_the_router(self):
        _, fabric, _, _, interconnect = make_system()
        assert fabric.active_mask() == 0
        assert interconnect.next_event() is None

    def test_unconnected_router_never_wakes(self):
        router = EventInterconnect("lonely")
        assert router.next_event() is None
        router.skip(25)
        assert router._local_activity.get("lonely", "idle_cycles") == 0

    def test_pending_pulse_forces_a_dense_tick(self):
        _, fabric, timer, _, interconnect = make_system()
        fabric.pulse(timer.event_line_name("overflow"))
        assert interconnect.next_event() == 1

    def test_skip_batch_records_idle_cycles(self):
        simulator, _, _, _, interconnect = make_system()
        interconnect.skip(500)
        assert simulator.activity.get("prs", "idle_cycles") == 500

    def test_dense_and_event_runs_agree(self):
        outcomes = {}
        for dense in (True, False):
            simulator, _, timer, gpio, interconnect = make_system(dense=dense)
            interconnect.configure_channel(0, [timer.event_line_name("overflow")])
            interconnect.route_to_peripheral(0, gpio, "toggle_pad0")
            timer.start()
            simulator.step(500)
            outcomes[dense] = (
                simulator.current_cycle,
                timer.overflow_count,
                interconnect.total_fires,
                interconnect.last_fire_cycle,
                gpio.toggle_count,
                simulator.activity.as_dict(),
            )
        assert outcomes[True] == outcomes[False]
        assert outcomes[False][2] > 0  # the routed channel really fired

    def test_router_no_longer_forces_dense_stepping(self):
        """The whole point of the satellite: an idle stretch with the router
        present must be skippable, not stepped cycle by cycle."""
        simulator, _, timer, gpio, interconnect = make_system(timer_compare=400)
        interconnect.configure_channel(0, [timer.event_line_name("overflow")])
        interconnect.route_to_peripheral(0, gpio, "set_pad0")
        timer.start()
        ticks = 0
        original_tick = interconnect.tick

        def counting_tick(cycle):
            nonlocal ticks
            ticks += 1
            original_tick(cycle)

        interconnect.tick = counting_tick
        simulator.step(399)
        # Without wake hints this would have been 399 dense ticks.
        assert ticks == 0
        assert simulator.activity.get("prs", "idle_cycles") == 399
