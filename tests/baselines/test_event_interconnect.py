"""Tests for the configurable event-interconnect baseline (Section II-B class)."""

import pytest

from repro.baselines.event_interconnect import (
    MAX_TASKS_PER_CHANNEL,
    Channel,
    ChannelFunction,
    EventInterconnect,
)
from repro.peripherals.events import EventFabric
from repro.peripherals.gpio import Gpio
from repro.peripherals.timer import Timer
from repro.sim.component import Component
from repro.sim.simulator import Simulator


class _FabricCloser(Component):
    def __init__(self, fabric):
        super().__init__("closer")
        self._fabric = fabric

    def tick(self, cycle):
        self._fabric.end_cycle()


def make_system(n_channels=4):
    simulator = Simulator()
    fabric = EventFabric()
    timer = Timer("timer", compare=5)
    timer.connect_events(fabric)
    gpio = Gpio("gpio")
    gpio.connect_events(fabric)
    interconnect = EventInterconnect("prs", fabric=fabric, n_channels=n_channels)
    simulator.add_component(timer)
    simulator.add_component(gpio)
    simulator.add_component(interconnect)
    simulator.add_component(_FabricCloser(fabric))
    return simulator, fabric, timer, gpio, interconnect


class TestChannelFunction:
    def test_any(self):
        assert ChannelFunction.ANY.evaluate([False, True])
        assert not ChannelFunction.ANY.evaluate([False, False])

    def test_all(self):
        assert ChannelFunction.ALL.evaluate([True, True])
        assert not ChannelFunction.ALL.evaluate([True, False])

    def test_none_forwards_first(self):
        assert ChannelFunction.NONE.evaluate([True, False])
        assert not ChannelFunction.NONE.evaluate([False, True])

    def test_empty_selection_never_fires(self):
        for function in ChannelFunction:
            assert not function.evaluate([])


class TestEventInterconnect:
    def test_routes_timer_overflow_to_gpio(self):
        simulator, fabric, timer, gpio, interconnect = make_system()
        interconnect.configure_channel(0, [timer.event_line_name("overflow")])
        interconnect.route_to_peripheral(0, gpio, "set_pad0")
        timer.start()
        simulator.step(6)
        assert gpio.pad(0)
        assert interconnect.total_fires == 1

    def test_single_cycle_latency(self):
        """The baseline's strength: fixed single-cycle event-to-task latency."""
        simulator, fabric, timer, gpio, interconnect = make_system()
        fired_at = []
        interconnect.configure_channel(0, [timer.event_line_name("overflow")])
        interconnect.route_to_callback(0, "probe", lambda: fired_at.append(simulator.current_cycle))
        timer.start()
        simulator.step(10)
        assert timer.overflow_count >= 1
        # The timer overflows at cycle 4 (compare=5, counting from cycle 0) and
        # the channel fires in the same fabric cycle.
        assert fired_at[0] == 4
        assert interconnect.channel_latency_cycles() == 1

    def test_all_condition_needs_every_producer(self):
        simulator, fabric, timer, gpio, interconnect = make_system()
        fabric.add_line("ext.a")
        fabric.add_line("ext.b")
        hits = []
        interconnect.configure_channel(0, ["ext.a", "ext.b"], function=ChannelFunction.ALL)
        interconnect.route_to_callback(0, "probe", lambda: hits.append(1))
        fabric.pulse("ext.a")
        simulator.step(1)
        assert not hits
        fabric.pulse("ext.a")
        fabric.pulse("ext.b")
        simulator.step(1)
        assert len(hits) == 1

    def test_task_fan_out_limited_to_two(self):
        """Table I note b: channel systems broadcast to at most two tasks."""
        channel = Channel(index=0)
        channel.add_task("a", lambda: None)
        channel.add_task("b", lambda: None)
        with pytest.raises(ValueError):
            channel.add_task("c", lambda: None)
        assert MAX_TASKS_PER_CHANNEL == 2

    def test_no_sequenced_actions(self):
        """The baseline cannot issue bus transactions — that is what PELS adds."""
        _, _, _, _, interconnect = make_system()
        assert not interconnect.supports_sequenced_actions

    def test_disabled_channel_does_not_fire(self):
        simulator, fabric, timer, gpio, interconnect = make_system()
        channel = interconnect.configure_channel(0, [timer.event_line_name("overflow")], enabled=False)
        interconnect.route_to_peripheral(0, gpio, "set_pad0")
        timer.start()
        simulator.step(10)
        assert channel.fire_count == 0
        assert not gpio.pad(0)

    def test_unknown_producer_line_rejected(self):
        _, _, _, _, interconnect = make_system()
        with pytest.raises(KeyError):
            interconnect.configure_channel(0, ["missing.line"])

    def test_channel_index_bounds(self):
        _, _, _, _, interconnect = make_system(n_channels=2)
        with pytest.raises(IndexError):
            interconnect.channel(2)

    def test_requires_fabric_before_configuration(self):
        interconnect = EventInterconnect("prs", fabric=None)
        with pytest.raises(RuntimeError):
            interconnect.configure_channel(0, ["x"])

    def test_invalid_channel_count_rejected(self):
        with pytest.raises(ValueError):
            EventInterconnect(n_channels=0)

    def test_reset(self):
        simulator, fabric, timer, gpio, interconnect = make_system()
        interconnect.configure_channel(0, [timer.event_line_name("overflow")])
        interconnect.route_to_peripheral(0, gpio, "set_pad0")
        timer.start()
        simulator.step(6)
        interconnect.reset()
        assert interconnect.total_fires == 0
        assert interconnect.channel(0).fire_count == 0
