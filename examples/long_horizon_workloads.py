#!/usr/bin/env python3
"""Long-horizon workloads through the scenario registry and batch runner.

Demonstrates the scenarios that were impractical under the cycle-driven
kernel: duty-cycled multi-sensor logging, burst SPI→DMA streaming, and the
autonomous watchdog-recovery loop.  Each is run over its default horizon via
the registry (the same path ``python -m repro.run`` uses), with wall-clock
timing so the effect of quiescence skipping is visible.

Run with:  python examples/long_horizon_workloads.py

The equivalent command-line invocations:

    python -m repro.run --list
    python -m repro.run duty-cycled-logging --horizon-ms 10
    python -m repro.run burst-spi-dma --compare
"""

import time

from repro.workloads.registry import run_scenario, scenarios

LONG_HORIZON = ("duty-cycled-logging", "burst-spi-dma", "watchdog-recovery")


def main() -> None:
    print("Registered scenarios:")
    for spec in scenarios():
        print(f"  {spec.name:<22} {spec.description}")
    print()

    for name in LONG_HORIZON:
        start = time.perf_counter()
        stats = run_scenario(name)
        elapsed = time.perf_counter() - start
        cycles = stats.get("horizon_cycles", 0)
        rate = float(cycles) / max(elapsed, 1e-9)
        print(f"--- {name}: {cycles} cycles in {elapsed * 1e3:.1f} ms ({rate / 1e6:.1f} Mcycle/s) ---")
        for key, value in stats.items():
            print(f"  {key:<22} : {value}")
        print()


if __name__ == "__main__":
    main()
