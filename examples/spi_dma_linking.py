#!/usr/bin/env python3
"""The paper's functional evaluation: PELS vs. the Ibex interrupt baseline.

Workload (Section IV-B): a µDMA-managed SPI sensor readout followed by a
threshold-crossing check.  The same stimulus is run twice on the same SoC
model — once with PELS mediating the linking event, once with the Ibex core
servicing it through a classic interrupt — and the script reports the
latency, the switching activity around the memory system, and the estimated
power (the Figure 5 quantities).

Run with:  python examples/spi_dma_linking.py
"""

from repro.analysis.latency import measure_latency_comparison
from repro.power.report import format_figure5
from repro.power.scenarios import run_figure5
from repro.workloads.threshold import (
    ThresholdWorkloadConfig,
    run_ibex_threshold_workload,
    run_pels_threshold_workload,
)


def main() -> None:
    config = ThresholdWorkloadConfig(n_events=6)

    print("=== functional run: threshold check after SPI + uDMA sensor readout ===\n")
    pels = run_pels_threshold_workload(config)
    ibex = run_ibex_threshold_workload(config)
    print(f"{'':<32s} {'PELS':>10s} {'Ibex IRQ':>10s}")
    print(f"{'events serviced':<32s} {pels.events_serviced:>10d} {ibex.events_serviced:>10d}")
    print(f"{'alerts raised':<32s} {pels.alerts_raised:>10d} {ibex.alerts_raised:>10d}")
    print(f"{'linking cycles (busy)':<32s} {pels.linking_cycles:>10d} {ibex.linking_cycles:>10d}")
    print(f"{'CPU interrupts':<32s} {pels.soc.cpu.interrupts_serviced:>10d} {ibex.soc.cpu.interrupts_serviced:>10d}")
    print(
        f"{'SRAM instruction fetches':<32s} "
        f"{pels.soc.activity.get('sram', 'instruction_fetches'):>10d} "
        f"{ibex.soc.activity.get('sram', 'instruction_fetches'):>10d}"
    )
    print(
        f"{'PELS private SCM reads':<32s} "
        f"{pels.soc.activity.get('pels', 'scm_reads'):>10d} {'-':>10s}"
    )

    print("\n=== latency of the minimal linking event (Section IV-B) ===\n")
    print(measure_latency_comparison().format())

    print("\n=== Figure 5: power breakdown, iso-latency and iso-frequency ===\n")
    print(format_figure5(run_figure5(n_events=6, idle_cycles=1500)))


if __name__ == "__main__":
    main()
