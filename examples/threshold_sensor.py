#!/usr/bin/env python3
"""Figure 3 of the paper: threshold-triggered operation after a sensor readout.

A synthetic thermistor is read over SPI; when the SPI transfer finishes, a
PELS link runs the exact five-command program from Figure 3:

    CMD0: clear   AFLAG MASK      ; acknowledge the application flag
    CMD1: capture ADATA 0x0FF     ; read the lowest byte of the sample
    CMD2: jump-if CMD4 LE THRES   ; below the threshold? then we are done
    CMD3: set     AGPIO MASK      ; otherwise raise the alert pad (sequenced)
    CMD4: end

The script runs the program twice — once with a sample stream that crosses
the threshold and once without — and also shows the instant-action variant
(CMD3 replaced by an ``action`` command driving the GPIO event input).

Run with:  python examples/threshold_sensor.py
"""

from repro.workloads.threshold import ThresholdWorkloadConfig, run_pels_threshold_workload


def run_case(label: str, config: ThresholdWorkloadConfig) -> None:
    result = run_pels_threshold_workload(config)
    print(f"--- {label} ---")
    print(f"  linking events serviced : {result.events_serviced}")
    print(f"  alerts raised           : {result.alerts_raised} (expected {config.samples_above_threshold})")
    print(f"  mean event latency      : {result.mean_latency:.1f} cycles")
    print(f"  worst event latency     : {result.worst_latency} cycles")
    print(f"  CPU interrupts          : {result.soc.cpu.interrupts_serviced}")
    print()


def main() -> None:
    hot_samples = (10, 80, 20, 90, 30, 100, 40, 110)   # last word of each transfer crosses 50
    cold_samples = (10, 20, 15, 25, 12, 22, 18, 28)    # never crosses 50

    print("Threshold-crossing check after SPI sensor readout (Figure 3 program)\n")
    run_case(
        "sequenced alert, sensor crosses the 50-unit threshold",
        ThresholdWorkloadConfig(n_events=4, threshold=50, samples=hot_samples),
    )
    run_case(
        "sequenced alert, sensor stays below the threshold",
        ThresholdWorkloadConfig(n_events=4, threshold=50, samples=cold_samples),
    )
    run_case(
        "instant alert (single-wire event line to the GPIO)",
        ThresholdWorkloadConfig(n_events=4, threshold=50, samples=hot_samples, use_instant_alert=True),
    )


if __name__ == "__main__":
    main()
