#!/usr/bin/env python3
"""Generate the complete experiment report (all tables and figures) in one go.

Runs the latency comparison, the Figure 5 power scenarios, the Figure 6 area
models, and Table I, and writes a single markdown document with measured
values side by side with the paper's reference numbers.

Run with:  python examples/full_report.py [output.md]
"""

import sys

from repro.analysis.report import write_report


def main() -> None:
    output_path = sys.argv[1] if len(sys.argv) > 1 else "pels_experiment_report.md"
    report = write_report(output_path)
    headline = report.headline()
    print(f"report written to {output_path}\n")
    print("Headline numbers (measured vs paper):")
    print(f"  sequenced / instant / interrupt latency : "
          f"{headline['sequenced_cycles']:.0f} / {headline['instant_cycles']:.0f} / "
          f"{headline['ibex_cycles']:.0f} cycles   (paper: 7 / 2 / 16)")
    print(f"  linking power ratio, iso-latency        : {headline['linking_iso_latency_ratio']:.2f}x (paper: 2.5x)")
    print(f"  linking power ratio, iso-frequency      : {headline['linking_iso_freq_ratio']:.2f}x (paper: 1.6x)")
    print(f"  idle power ratio, iso-latency           : {headline['idle_iso_latency_ratio']:.2f}x (paper: 1.5x)")
    print(f"  minimal PELS area                       : {headline['pels_minimal_kge']:.1f} kGE (paper: ~7 kGE)")
    print(f"  PELS share of PULPissimo logic          : {headline['pels_soc_logic_fraction'] * 100:.1f} % (paper: ~9.5 %)")


if __name__ == "__main__":
    main()
