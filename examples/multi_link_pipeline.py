#!/usr/bin/env python3
"""Multi-link autonomous sensing pipeline.

Demonstrates the features that distinguish PELS from fixed event
interconnects (Section III of the paper):

* **link specialisation** — each link has its own base address and services a
  subset of peripherals;
* **chained events** — a timer overflow starts an ADC conversion (instant
  action), the ADC end-of-conversion triggers a UART notification
  (sequenced action);
* **inter-link triggering** — the UART link also fires a looped-back event
  line that wakes a third, watchdog-style link built from ``wait``/``loop``
  commands, which blinks a status LED (GPIO pad) a few times.

The main CPU never wakes up.

Run with:  python examples/multi_link_pipeline.py
"""

from repro import Assembler, PelsConfig, SocConfig, build_soc


def main() -> None:
    soc = build_soc(SocConfig(pels_config=PelsConfig(n_links=4, scm_lines=8)))
    pels = soc.pels
    assembler = Assembler()

    # ------------------------------------------------ link 0: timer -> ADC (instant)
    pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.adc, port="soc")
    timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    pels.program_link(0, assembler.assemble("action 0 0x1\nend"), trigger_mask=timer_bit)

    # --------------------------------------- link 1: ADC EOC -> UART byte + loopback
    # This link's base address is the UART window itself, so the 12-bit offset
    # field only has to cover the UART registers (link specialisation).
    wake_blinker = pels.add_loopback_line("wake_blinker")
    pels.route_action_to_fabric(group=1, bit=0, line_name=wake_blinker)
    uart_assembler = Assembler()
    uart_assembler.define_register("UART_TX", soc.uart.regs.offset_of("TXDATA"))
    adc_bit = 1 << soc.fabric.index_of(soc.adc.event_line_name("eoc"))
    pels.program_link(
        1,
        uart_assembler.assemble(
            """
            write UART_TX 0x21   ; '!' alert byte
            action 1 0x1         ; wake the blinker link through the loopback line
            end
            """
        ),
        trigger_mask=adc_bit,
        base_address=soc.address_map.peripheral_base("uart"),
    )

    # ------------------------------------------------ link 2: watchdog-style blinker
    pels.route_action_to_peripheral(group=2, bit=0, peripheral=soc.gpio, port="toggle_pad0")
    blinker_bit = 1 << soc.fabric.index_of(wake_blinker)
    pels.program_link(
        2,
        assembler.assemble(
            """
            BLINK: action 2 0x1
            wait 10
            loop BLINK 3
            end
            """
        ),
        trigger_mask=blinker_bit,
    )

    # --------------------------------------------------------------------- run
    soc.timer.regs.reg("COMPARE").hw_write(120)
    soc.timer.start()
    soc.run(1000)

    print("Autonomous multi-link pipeline after 1000 cycles @ 55 MHz:")
    print(f"  timer overflows          : {soc.timer.overflow_count}")
    print(f"  ADC conversions          : {soc.adc.conversions}")
    print(f"  UART bytes transmitted   : {len(soc.uart.transmitted)} {soc.uart.transmitted}")
    print(f"  GPIO pad toggles (blinks): {soc.gpio.toggle_count}")
    print(f"  events serviced per link : {[link.events_serviced for link in pels.links]}")
    print(f"  CPU interrupts taken     : {soc.cpu.interrupts_serviced}")
    print(f"  instant actions delivered: {pels.instant_actions_delivered}")


if __name__ == "__main__":
    main()
