#!/usr/bin/env python3
"""Regenerate the paper's comparison artefacts: Table I and Figure 6.

Prints the state-of-the-art feature comparison (Table I), the PELS area
sweep over links and SCM lines against Ibex and PicoRV32 (Figure 6a), and
the PULPissimo area breakdown with a 4-link / 6-line PELS (Figure 6b).

Run with:  python examples/area_and_sota_report.py
"""

from repro.analysis.tables import format_table1
from repro.area.soc import figure6b_breakdown
from repro.area.sweep import figure6a_sweep, minimal_configuration_summary, sweep_as_table
from repro.core.config import PelsConfig


def main() -> None:
    print("=== Table I: autonomous peripheral-event handling, feature comparison ===\n")
    print(format_table1())

    print("\n\n=== Figure 6a: PELS area sweep (TSMC 65 nm model, kGE) ===\n")
    print(sweep_as_table(figure6a_sweep()))
    summary = minimal_configuration_summary()
    print(
        f"\nminimal configuration: {summary['pels_minimal_kge']:.1f} kGE "
        f"({summary['ibex_ratio']:.1f}x smaller than Ibex, "
        f"{summary['picorv32_ratio']:.1f}x smaller than PicoRV32)"
    )

    print("\n\n=== Figure 6b: PULPissimo area breakdown (4 links, 6 SCM lines) ===\n")
    data = figure6b_breakdown(PelsConfig(n_links=4, scm_lines=6))
    print("logic only:")
    for name, fraction in sorted(data["logic_fractions"].items(), key=lambda item: -item[1]):
        print(f"  {name:<20s} {fraction * 100:5.1f} %")
    print("including the 192 KiB SRAM:")
    for name, fraction in sorted(data["with_sram_fractions"].items(), key=lambda item: -item[1]):
        print(f"  {name:<20s} {fraction * 100:5.1f} %")


if __name__ == "__main__":
    main()
