#!/usr/bin/env python3
"""Always-on monitoring: sensor → actuator loop with watchdog supervision.

The scenario the paper's introduction motivates (always-on wearables,
monitoring services): the timer paces periodic ADC sampling, every sample is
turned into a PWM duty-cycle update, and a watchdog supervises the loop — all
three steps handled by PELS links while the CPU sleeps.

The script runs the loop twice: once healthy (the watchdog is kicked on
every completed iteration and stays quiet) and once with the supervision
link removed (the watchdog barks, demonstrating the failure-detection path).

Run with:  python examples/always_on_monitor.py
"""

from repro.workloads.periodic import PeriodicMonitorConfig, run_periodic_monitor


def report(label: str, result) -> None:
    print(f"--- {label} ---")
    print(f"  ADC samples taken        : {result.samples_taken}")
    print(f"  PWM duty updates         : {result.duty_updates} (final duty {result.final_duty})")
    print(f"  watchdog kicks / barks   : {result.watchdog_kicks} / {result.watchdog_barks}")
    print(f"  CPU interrupts           : {result.cpu_interrupts}")
    print(f"  loop closed autonomously : {result.loop_closed}")
    print()


def main() -> None:
    print("Always-on periodic monitoring on the PULPissimo + PELS model\n")
    healthy = run_periodic_monitor(PeriodicMonitorConfig(n_samples=8))
    report("healthy loop (supervision link armed)", healthy)

    unsupervised = run_periodic_monitor(
        PeriodicMonitorConfig(n_samples=8, kick_watchdog=False, watchdog_timeout_cycles=150)
    )
    report("same loop without watchdog kicks (supervision fires)", unsupervised)


if __name__ == "__main__":
    main()
