#!/usr/bin/env python3
"""Always-on monitoring: sensor → actuator loop with watchdog supervision.

The scenario the paper's introduction motivates (always-on wearables,
monitoring services): the timer paces periodic ADC sampling, every sample is
turned into a PWM duty-cycle update, and a watchdog supervises the loop — all
three steps handled by PELS links while the CPU sleeps.

The script runs the loop three ways:

1. healthy, under the event-driven kernel (the default) — via the registered
   ``always-on-monitor`` scenario, the same entry point
   ``python -m repro.run always-on-monitor`` uses;
2. healthy, under the legacy dense kernel — same results, and the wall-clock
   comparison shows what quiescence skipping buys on an idle-heavy scenario
   (the loop is idle for ~97 % of its cycles);
3. with the supervision link removed (the watchdog barks, demonstrating the
   failure-detection path).

Run with:  python examples/always_on_monitor.py
"""

import time

from repro.workloads.periodic import PeriodicMonitorConfig, run_periodic_monitor
from repro.workloads.registry import run_scenario

HORIZON_CYCLES = 68_000


def timed_scenario(dense: bool):
    start = time.perf_counter()
    stats = run_scenario("always-on-monitor", horizon_cycles=HORIZON_CYCLES, dense=dense)
    return time.perf_counter() - start, stats


def report(label: str, stats: dict) -> None:
    print(f"--- {label} ---")
    print(f"  ADC samples taken        : {stats['samples_taken']}")
    print(f"  PWM duty updates         : {stats['duty_updates']} (final duty {stats['final_duty']})")
    print(f"  watchdog kicks / barks   : {stats['watchdog_kicks']} / {stats['watchdog_barks']}")
    print(f"  CPU interrupts           : {stats['cpu_interrupts']}")
    print(f"  loop closed autonomously : {stats['samples_taken'] > 0 and stats['duty_updates'] > 0}")
    print()


def main() -> None:
    print("Always-on periodic monitoring on the PULPissimo + PELS model\n")

    event_s, healthy = timed_scenario(dense=False)
    report("healthy loop (supervision link armed, event-driven kernel)", healthy)

    dense_s, dense_stats = timed_scenario(dense=True)
    assert dense_stats == healthy, "kernels must agree cycle-exactly"
    print("--- kernel comparison (identical results, see assert) ---")
    print(f"  dense kernel        : {dense_s * 1e3:8.1f} ms wall-clock")
    print(f"  event-driven kernel : {event_s * 1e3:8.1f} ms wall-clock")
    print(f"  speedup             : {dense_s / max(event_s, 1e-9):8.1f}x")
    print()

    unsupervised = run_periodic_monitor(
        PeriodicMonitorConfig(
            sample_period_cycles=1_000,
            n_samples=8,
            kick_watchdog=False,
            watchdog_timeout_cycles=2_500,
            watchdog_grace_cycles=1_000,
        )
    )
    report(
        "same loop without watchdog kicks (supervision fires)",
        {
            "samples_taken": unsupervised.samples_taken,
            "duty_updates": unsupervised.duty_updates,
            "final_duty": unsupervised.final_duty,
            "watchdog_kicks": unsupervised.watchdog_kicks,
            "watchdog_barks": unsupervised.watchdog_barks,
            "cpu_interrupts": unsupervised.cpu_interrupts,
        },
    )


if __name__ == "__main__":
    main()
