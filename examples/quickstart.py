#!/usr/bin/env python3
"""Quickstart: link a timer overflow to a GPIO pad without waking the CPU.

This is the smallest end-to-end PELS use case:

1. build the PULPissimo-style SoC model (CPU, peripherals, µDMA, PELS);
2. assemble a two-command link program — one *instant action* driving the
   GPIO's single-wire ``set_pad0`` input and one *sequenced action* writing
   the GPIO OUT register over the peripheral bus;
3. arm the link on the timer-overflow event and let the system run.

The CPU sleeps through the whole thing: the linking happens entirely in the
I/O domain, which is the point of the paper.

Run with:  python examples/quickstart.py
"""

from repro import Assembler, SocConfig, build_soc


def main() -> None:
    soc = build_soc(SocConfig())
    pels = soc.pels

    # ------------------------------------------------------------------ program
    # Symbols: register offsets are *word* offsets relative to the link's base
    # address, which we point at the start of the peripheral region.
    peripheral_region = soc.address_map.peripheral_base("udma")
    gpio_out = soc.address_map.peripheral_base("gpio") + soc.gpio.regs.offset_of("OUT") - peripheral_region

    assembler = Assembler()
    assembler.define_register("GPIO_OUT", gpio_out)
    program = assembler.assemble(
        """
        action 0 0x1        ; instant action: pulse the GPIO's set_pad0 input (2-cycle latency)
        set GPIO_OUT 0x2    ; sequenced action: RMW pad 1 through the peripheral bus (7-cycle latency)
        end
        """
    )
    print("Assembled link program:")
    print(program.listing())

    # ------------------------------------------------------------------- wiring
    # Route instant-action line (group 0, bit 0) to the GPIO's event input.
    pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.gpio, port="set_pad0")
    # Trigger the link on the timer's overflow event.
    timer_event = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    pels.program_link(0, program, trigger_mask=timer_event, base_address=peripheral_region)

    # --------------------------------------------------------------------- run
    soc.timer.regs.reg("COMPARE").hw_write(50)  # overflow every 50 cycles
    soc.timer.start()
    soc.run(500)

    link = pels.link(0)
    print(f"\nTimer overflows            : {soc.timer.overflow_count}")
    print(f"Linking events serviced    : {link.events_serviced}")
    print(f"GPIO output value          : 0x{soc.gpio.output_value:x} (pad0 via instant, pad1 via sequenced)")
    print(f"CPU interrupts taken       : {soc.cpu.interrupts_serviced} (the core slept through everything)")
    record = link.last_record
    print(f"Instant-action latency     : {record.instant_latency} cycles (paper: 2)")
    print(
        f"Sequenced-action latency   : {record.sequenced_latency} cycles "
        "(paper: 7 for a standalone set; here it runs as the second command, one cycle later)"
    )


if __name__ == "__main__":
    main()
