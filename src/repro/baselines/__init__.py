"""Behavioural baselines PELS is compared against.

Two baselines appear in the paper:

* the **software interrupt** baseline (Figure 1a) — implemented by the Ibex
  model in :mod:`repro.cpu` together with the ISR programs in
  :mod:`repro.cpu.programs`;
* the **configurable event interconnect** class (Figure 1b, Section II-B:
  Silicon Labs PRS, Nordic PPI, ...) — implemented here as
  :class:`~repro.baselines.event_interconnect.EventInterconnect`: channel
  routing with optional combinational functions and built-in actions, but no
  sequenced actions and therefore a need for peripheral co-design.

The event-interconnect baseline is used by the ablation benchmark to show
what the microcode/sequenced-action half of PELS adds on top of plain event
routing.
"""

from repro.baselines.event_interconnect import (
    Channel,
    ChannelFunction,
    EventInterconnect,
)

__all__ = ["Channel", "ChannelFunction", "EventInterconnect"]
