"""Configurable peripheral-event interconnect (the Section II-B baseline).

This models the class of systems the paper groups under "peripheral-event
interconnect": Silicon Labs PRS, Nordic PPI, Microchip EVSYS, Renesas LELC.
Their common structure is a set of **channels**; each channel selects one or
more producer event lines, optionally combines them with a small
combinational function (AND / OR / LUT-style), and forwards the result to
one or two consumer *tasks* — hard-wired, built-in peripheral actions
delivered over single-wire lines.

Strengths and limits are exactly as Table I states:

* instant actions with fixed single-cycle latency — supported;
* sequenced actions (arbitrary register accesses over the bus) — **not**
  supported: anything beyond the built-in task set still needs the CPU;
* consumers must be co-designed to expose event inputs.

The model plugs into the same :class:`~repro.peripherals.events.EventFabric`
as PELS so the ablation benchmarks can swap one for the other.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.peripherals.events import EventFabric
from repro.sim.component import Component

# One channel may fan out to at most two tasks (the Nordic PPI restriction,
# the most permissive of the surveyed channel-based systems).
MAX_TASKS_PER_CHANNEL = 2


class ChannelFunction(enum.Enum):
    """Combinational function applied to the selected producer events."""

    ANY = "any"     # OR of the selected events
    ALL = "all"     # AND of the selected events
    NONE = "none"   # forward the first selected event unmodified

    def evaluate(self, levels: Sequence[bool]) -> bool:
        """Whether the channel fires for the sampled producer levels."""
        if not levels:
            return False
        if self is ChannelFunction.ANY:
            return any(levels)
        if self is ChannelFunction.ALL:
            return all(levels)
        return levels[0]


@dataclass
class Channel:
    """One producer-to-task route of the event interconnect."""

    index: int
    producer_lines: List[str] = field(default_factory=list)
    function: ChannelFunction = ChannelFunction.ANY
    tasks: List[Callable[[], None]] = field(default_factory=list)
    task_labels: List[str] = field(default_factory=list)
    enabled: bool = True
    fire_count: int = field(default=0, init=False)

    def add_task(self, label: str, deliver: Callable[[], None]) -> None:
        """Attach a built-in consumer action; at most two per channel."""
        if len(self.tasks) >= MAX_TASKS_PER_CHANNEL:
            raise ValueError(
                f"channel {self.index}: at most {MAX_TASKS_PER_CHANNEL} tasks per channel "
                "(the limitation of channel-based event systems, cf. Table I note b)"
            )
        self.tasks.append(deliver)
        self.task_labels.append(label)


class EventInterconnect(Component):
    """Channel-based event router with built-in actions only.

    The latency from a producer pulse to the consumer task is one cycle
    (sampled at the router's clock edge), matching the "predictable, low
    event latency" property of the surveyed systems.
    """

    def __init__(
        self, name: str = "event_interconnect", fabric: Optional[EventFabric] = None, n_channels: int = 8
    ) -> None:
        super().__init__(name)
        if n_channels < 1:
            raise ValueError("the event interconnect needs at least one channel")
        self.fabric = fabric
        self.channels: List[Channel] = [Channel(index=index) for index in range(n_channels)]
        self.total_fires = 0
        self.last_fire_cycle: Optional[int] = None
        self._last_trigger_cycles: dict[int, int] = {}
        #: Line names currently declared observed per channel (consumer-aware
        #: wake protocol; see EventFabric.observe).
        self._observed_by_channel: dict[int, List[str]] = {}

    # ------------------------------------------------------------ configuration

    def connect_fabric(self, fabric: EventFabric) -> None:
        """Attach the interconnect to the SoC event fabric."""
        if self.fabric is not None:
            raise RuntimeError(f"{self.name}: fabric already connected")
        self.fabric = fabric

    def channel(self, index: int) -> Channel:
        """Return channel ``index``."""
        if not 0 <= index < len(self.channels):
            raise IndexError(f"channel index {index} out of range [0, {len(self.channels)})")
        return self.channels[index]

    def configure_channel(
        self,
        index: int,
        producer_lines: Sequence[str],
        function: ChannelFunction = ChannelFunction.ANY,
        enabled: bool = True,
    ) -> Channel:
        """Select the producer events and combination function of one channel."""
        if self.fabric is None:
            raise RuntimeError(f"{self.name}: connect_fabric() must be called first")
        for line_name in producer_lines:
            self.fabric.line(line_name)  # validate early
        channel = self.channel(index)
        channel.producer_lines = list(producer_lines)
        channel.function = ChannelFunction(function)
        channel.enabled = enabled
        self._sync_observed(channel)
        return channel

    def _sync_observed(self, channel: Channel) -> None:
        """Reconcile the fabric observer table with one channel's config.

        An enabled channel samples its producer lines every pulse cycle, so
        those lines are consumed; reconfiguring or disabling the channel
        retracts the old declarations.  Channels must be reconfigured through
        :meth:`configure_channel`, not by mutating the dataclass directly.
        """
        assert self.fabric is not None
        for line_name in self._observed_by_channel.pop(channel.index, []):
            self.fabric.unobserve(line_name)
        if channel.enabled and channel.producer_lines:
            for line_name in channel.producer_lines:
                self.fabric.observe(line_name)
            self._observed_by_channel[channel.index] = list(channel.producer_lines)

    def route_to_peripheral(self, index: int, peripheral, port: str) -> None:
        """Attach a peripheral's built-in event input as a channel task."""
        channel = self.channel(index)
        channel.add_task(f"{peripheral.name}.{port}", lambda: peripheral.on_event_input(port))

    def route_to_callback(self, index: int, label: str, callback: Callable[[], None]) -> None:
        """Attach an arbitrary callback as a channel task (tests, co-simulation)."""
        self.channel(index).add_task(label, callback)

    # ---------------------------------------------------------------- behaviour

    def tick(self, cycle: int) -> None:
        if self.fabric is None:
            return
        fired_any = False
        for channel in self.channels:
            if not channel.enabled or not channel.producer_lines or not channel.tasks:
                continue
            levels = [self.fabric.is_active(name) for name in channel.producer_lines]
            if not channel.function.evaluate(levels):
                continue
            for deliver in channel.tasks:
                deliver()
            channel.fire_count += 1
            self.total_fires += 1
            self.last_fire_cycle = cycle
            self._last_trigger_cycles[channel.index] = cycle
            fired_any = True
            self.record("channel_fires")
        if fired_any:
            self.record("busy_cycles")
        else:
            self.record("idle_cycles")

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        # Channels sample the fabric's single-cycle pulses, which are only
        # raised inside dense ticks (a producer's wake), so the router needs
        # a real tick exactly while a pulse is waiting to be observed.  An
        # unconnected router never ticks usefully at all.
        if self.fabric is not None and self.fabric.active_mask():
            return 1
        return None

    def skip(self, cycles: int) -> None:
        if self.fabric is None or self.fabric.active_mask():
            return
        # A dense tick with no active producer lines fires nothing and
        # records one idle cycle.
        self.record("idle_cycles", cycles)

    # ------------------------------------------------------------------ queries

    def channel_latency_cycles(self) -> int:
        """Event-to-task latency of this baseline (fixed single cycle)."""
        return 1

    @property
    def supports_sequenced_actions(self) -> bool:
        """Table I: channel-based interconnects cannot issue bus transactions."""
        return False

    def reset(self) -> None:
        for channel in self.channels:
            channel.fire_count = 0
        self.total_fires = 0
        self.last_fire_cycle = None
        self._last_trigger_cycles.clear()
