"""SoC-level interconnect.

PULPissimo has two fabrics (Figure 4 of the paper): the *SoC interconnect*
that connects the core, the µDMA, and the memory banks, and the *peripheral
interconnect* (APB) behind it.  The SoC interconnect is modelled here as a
logarithmic crossbar with single-cycle access to SRAM and a bridge to the
peripheral bus; what matters for the evaluation is (i) the extra cycle the
bridge adds to CPU-initiated peripheral accesses and (ii) the memory-system
activity it records, which dominates the power difference between the Ibex
baseline and PELS.
"""

from __future__ import annotations

from typing import Optional

from repro.bus.apb import ApbBus
from repro.bus.decoder import AddressDecoder, BusSlave, DecodeError
from repro.bus.transaction import BusRequest, TransferKind, WORD_MASK
from repro.sim.component import Component

SRAM_ACCESS_CYCLES = 1
BRIDGE_CYCLES = 1


class SystemInterconnect(Component):
    """Crossbar connecting CPU/µDMA masters to SRAM and the peripheral bridge.

    Accesses that decode to a local (SRAM-side) region complete in
    ``SRAM_ACCESS_CYCLES``.  Accesses that decode to the peripheral bus are
    forwarded through a bridge that adds ``BRIDGE_CYCLES`` before the APB
    transfer starts.
    """

    def __init__(self, name: str = "soc_interconnect", peripheral_bus: Optional[ApbBus] = None) -> None:
        super().__init__(name)
        self.local_decoder = AddressDecoder()
        self.peripheral_bus = peripheral_bus
        self._in_flight: list[_InFlight] = []

    def attach_memory(self, base: int, size: int, slave: BusSlave) -> None:
        """Register a memory-side slave (SRAM bank, ROM, ...)."""
        self.local_decoder.add_region(base, size, slave)

    def submit(self, request: BusRequest) -> BusRequest:
        """Post a transfer from a SoC-side master (CPU or µDMA)."""
        region = self.local_decoder.region_for(request.address)
        if region is not None:
            self._in_flight.append(_InFlight(request, remaining=SRAM_ACCESS_CYCLES, local=True))
            self.record("memory_requests")
            return request
        if self.peripheral_bus is None or self.peripheral_bus.decoder.region_for(request.address) is None:
            raise DecodeError(
                f"address 0x{request.address:08x} is neither local memory nor peripheral space"
            )
        self._in_flight.append(_InFlight(request, remaining=BRIDGE_CYCLES, local=False))
        self.record("bridge_requests")
        return request

    def tick(self, cycle: int) -> None:
        still_pending: list[_InFlight] = []
        for entry in self._in_flight:
            entry.remaining -= 1
            if entry.remaining > 0:
                still_pending.append(entry)
                continue
            if entry.local:
                self._complete_local(entry.request, cycle)
            else:
                assert self.peripheral_bus is not None
                self.peripheral_bus.submit(entry.request)
                self.record("bridge_forwards")
        self._in_flight = still_pending
        if self._in_flight:
            self.record("busy_cycles")

    def _complete_local(self, request: BusRequest, cycle: int) -> None:
        slave, offset = self.local_decoder.decode(request.address)
        if request.kind is TransferKind.READ:
            rdata = slave.bus_read(offset) & WORD_MASK
            self.record("memory_reads")
        else:
            slave.bus_write(offset, request.wdata & WORD_MASK)
            rdata = 0
            self.record("memory_writes")
        request.complete(rdata, cycle)

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        # The earliest completion (slave access or bridge forward) is the
        # wake; the countdown ticks before it are uniform busy cycles.  Idle
        # is a no-op.
        if not self._in_flight:
            return None
        return max(min(entry.remaining for entry in self._in_flight), 1)

    def skip(self, cycles: int) -> None:
        if not self._in_flight:
            return
        # Replay the countdown: every in-flight entry ages, and each tick
        # with transfers still pending records one busy cycle.
        for entry in self._in_flight:
            entry.remaining -= cycles
        self.record("busy_cycles", cycles)

    def reset(self) -> None:
        self._in_flight.clear()


class _InFlight:
    """Book-keeping for one transfer moving through the interconnect."""

    __slots__ = ("request", "remaining", "local")

    def __init__(self, request: BusRequest, remaining: int, local: bool) -> None:
        self.request = request
        self.remaining = remaining
        self.local = local
