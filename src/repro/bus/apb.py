"""APB-style peripheral bus model.

The bus is a :class:`~repro.sim.component.Component`.  Masters post
:class:`~repro.bus.transaction.BusRequest` objects with :meth:`ApbBus.submit`
and poll ``request.done``.  Each transfer costs:

* one *setup* cycle,
* one *access* cycle, plus
* any wait states the addressed slave requests (``slave.wait_states``), plus
* arbitration wait if another master holds the bus.

This matches the paper's description of sequenced-action latency being
"dependent on the peripheral bus protocol (APB)" while instant actions bypass
the bus entirely.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.bus.arbiter import RoundRobinArbiter
from repro.bus.decoder import AddressDecoder, BusSlave, DecodeError
from repro.bus.transaction import BusRequest, WORD_MASK
from repro.sim.component import Component

APB_SETUP_CYCLES = 1
APB_ACCESS_CYCLES = 1


class BusError(RuntimeError):
    """Raised on protocol misuse (e.g. two outstanding requests per master)."""


class ApbBus(Component):
    """Single-channel APB fabric with round-robin arbitration."""

    def __init__(self, name: str = "apb", decoder: Optional[AddressDecoder] = None) -> None:
        super().__init__(name)
        self.decoder = decoder if decoder is not None else AddressDecoder()
        self.arbiter = RoundRobinArbiter()
        self._pending: Dict[str, Deque[BusRequest]] = {}
        self._active: Optional[BusRequest] = None
        self._remaining_cycles = 0
        self._active_slave: Optional[BusSlave] = None
        self._active_offset = 0
        self._completed_transfers = 0

    # ---------------------------------------------------------------- plumbing

    def attach_slave(self, base: int, size: int, slave: BusSlave) -> None:
        """Register ``slave`` at address window ``[base, base + size)``."""
        self.decoder.add_region(base, size, slave)

    def submit(self, request: BusRequest) -> BusRequest:
        """Queue a transfer for arbitration.

        Multiple masters may have requests queued simultaneously; a single
        master may queue several back-to-back transfers (they complete in
        order).
        """
        if request.done:
            raise BusError("cannot submit an already-completed request")
        queue = self._pending.setdefault(request.master, deque())
        queue.append(request)
        self.arbiter.add_requestor(request.master)
        request.issued_cycle = self.clock.cycles if self.is_attached else 0
        return request

    @property
    def busy(self) -> bool:
        """Whether a transfer is currently in flight."""
        return self._active is not None

    @property
    def has_pending(self) -> bool:
        """Whether any master still has queued transfers."""
        return any(queue for queue in self._pending.values())

    @property
    def completed_transfers(self) -> int:
        """Total number of transfers completed since the last reset."""
        return self._completed_transfers

    # --------------------------------------------------------------- behaviour

    def tick(self, cycle: int) -> None:
        if self._active is not None:
            # APB transfers do not overlap: the cycle that finishes one access
            # is not reused as the setup phase of the next.
            self._advance_active(cycle)
            return
        self._start_next(cycle)

    def _advance_active(self, cycle: int) -> None:
        self.record("busy_cycles")
        self._remaining_cycles -= 1
        if self._remaining_cycles > 0:
            return
        request = self._active
        slave = self._active_slave
        assert request is not None and slave is not None
        if request.is_read:
            rdata = slave.bus_read(self._active_offset) & WORD_MASK
            self.record("reads")
        else:
            slave.bus_write(self._active_offset, request.wdata & WORD_MASK)
            rdata = 0
            self.record("writes")
        request.complete(rdata, cycle)
        self._completed_transfers += 1
        self.simulator.trace(f"{self.name}.transfer", f"{request.master}:{request.kind.value}@0x{request.address:08x}")
        self._active = None
        self._active_slave = None

    def _start_next(self, cycle: int) -> None:
        requesting = [master for master, queue in self._pending.items() if queue]
        granted = self.arbiter.grant(requesting)
        if granted is None:
            self.record("idle_cycles")
            return
        request = self._pending[granted].popleft()
        try:
            slave, offset = self.decoder.decode(request.address)
        except DecodeError:
            # APB error response (PSLVERR): the transfer completes immediately
            # with the error flag set instead of hanging the fabric.
            request.complete(0, cycle, error=True)
            self.record("decode_errors")
            self._completed_transfers += 1
            return
        wait_states = int(getattr(slave, "wait_states", 0))
        self._active = request
        self._active_slave = slave
        self._active_offset = offset
        # The grant cycle doubles as the APB setup phase, so only the access
        # phase and any slave wait states remain after this tick.
        self._remaining_cycles = APB_ACCESS_CYCLES + wait_states
        self.record("busy_cycles")
        self.record("grants")
        self.record(f"grants_to_{granted}")

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        if self._active is not None:
            # The in-flight transfer completes (slave access, master wake-up)
            # in the tick entered with one remaining cycle; the access/wait
            # cycles before it only count down and record busy activity.
            return max(self._remaining_cycles, 1)
        if self.has_pending:
            # The next tick is the grant/setup phase of a queued transfer.
            return 1
        return None

    def skip(self, cycles: int) -> None:
        if self._active is not None:
            # Replay the wait/access countdown: one busy cycle recorded per
            # tick, no slave interaction until the completion tick (which the
            # scheduler always runs densely).
            self.record("busy_cycles", cycles)
            self._remaining_cycles -= cycles
            return
        if self.has_pending:
            return
        # An idle dense tick runs one empty arbitration round per cycle and
        # records it; the arbiter itself is stateless for an empty round.
        self.record("idle_cycles", cycles)

    def reset(self) -> None:
        self._pending.clear()
        self._active = None
        self._active_slave = None
        self._remaining_cycles = 0
        self._completed_transfers = 0
        self.arbiter.reset()
