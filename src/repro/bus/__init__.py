"""Bus substrate: APB-style peripheral bus, arbitration, and address decoding.

PELS issues *sequenced actions* as memory-mapped reads and writes on the
peripheral interconnect; the Ibex baseline and the µDMA use the same fabric.
The model is transaction-level but cycle-accurate: an unloaded APB transfer
costs two cycles (setup + access), contention adds round-robin arbitration
wait, and slaves may insert wait states.
"""

from repro.bus.transaction import BusRequest, BusResponse, TransferKind
from repro.bus.decoder import AddressDecoder, AddressRegion, BusSlave, DecodeError
from repro.bus.arbiter import RoundRobinArbiter
from repro.bus.apb import ApbBus, BusError
from repro.bus.interconnect import SystemInterconnect

__all__ = [
    "AddressDecoder",
    "AddressRegion",
    "ApbBus",
    "BusError",
    "BusRequest",
    "BusResponse",
    "BusSlave",
    "DecodeError",
    "RoundRobinArbiter",
    "SystemInterconnect",
    "TransferKind",
]
