"""Address decoding for the peripheral and SoC interconnects."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Tuple, runtime_checkable

from repro.bus.transaction import WORD_BYTES


class DecodeError(RuntimeError):
    """Raised when an address does not map to any slave region."""


@runtime_checkable
class BusSlave(Protocol):
    """Interface every memory-mapped slave must implement.

    ``offset`` is a byte offset relative to the slave's base address and is
    always word aligned.  Slaves may additionally expose ``wait_states`` (an
    ``int`` attribute or property) to model access latency beyond the two APB
    protocol cycles.
    """

    name: str

    def bus_read(self, offset: int) -> int:
        """Return the 32-bit word at byte ``offset``."""
        ...

    def bus_write(self, offset: int, value: int) -> None:
        """Write the 32-bit ``value`` at byte ``offset``."""
        ...


@dataclass(frozen=True)
class AddressRegion:
    """A contiguous address window owned by one slave."""

    base: int
    size: int
    slave: BusSlave

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ValueError("address region base must be >= 0 and size > 0")
        if self.base % WORD_BYTES != 0 or self.size % WORD_BYTES != 0:
            raise ValueError("address region base and size must be word aligned")

    @property
    def end(self) -> int:
        """First address past the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this region."""
        return self.base <= address < self.end

    def overlaps(self, other: "AddressRegion") -> bool:
        """Whether this region and ``other`` share any address."""
        return self.base < other.end and other.base < self.end


class AddressDecoder:
    """Maps absolute addresses to ``(slave, offset)`` pairs."""

    def __init__(self) -> None:
        self._regions: List[AddressRegion] = []

    def add_region(self, base: int, size: int, slave: BusSlave) -> AddressRegion:
        """Register a slave at ``[base, base + size)``.

        Overlapping regions are rejected so a mis-configured address map fails
        loudly at construction time rather than silently aliasing peripherals.
        """
        region = AddressRegion(base=base, size=size, slave=slave)
        for existing in self._regions:
            if existing.overlaps(region):
                raise DecodeError(
                    f"region 0x{base:08x}+0x{size:x} for {slave.name!r} overlaps "
                    f"0x{existing.base:08x}+0x{existing.size:x} ({existing.slave.name!r})"
                )
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.base)
        return region

    def decode(self, address: int) -> Tuple[BusSlave, int]:
        """Return the slave owning ``address`` and the offset within it."""
        region = self.region_for(address)
        if region is None:
            raise DecodeError(f"address 0x{address:08x} does not map to any slave")
        return region.slave, address - region.base

    def region_for(self, address: int) -> Optional[AddressRegion]:
        """The region containing ``address``, or ``None``."""
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def slave_base(self, slave_name: str) -> int:
        """Base address of the region owned by ``slave_name``."""
        for region in self._regions:
            if region.slave.name == slave_name:
                return region.base
        raise DecodeError(f"no region registered for slave {slave_name!r}")

    @property
    def regions(self) -> Tuple[AddressRegion, ...]:
        """All registered regions sorted by base address."""
        return tuple(self._regions)

    def __len__(self) -> int:
        return len(self._regions)
