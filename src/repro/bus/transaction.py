"""Bus transaction primitives shared by all masters and fabrics."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

WORD_MASK = 0xFFFF_FFFF
WORD_BYTES = 4


class TransferKind(enum.Enum):
    """Direction of a bus transfer."""

    READ = "read"
    WRITE = "write"


@dataclass
class BusRequest:
    """A single-word transfer posted by a bus master.

    The master constructs the request, hands it to the fabric, and then polls
    :attr:`done` each cycle; once set, :attr:`response` carries the read data
    (for reads) and the completion cycle.
    """

    master: str
    kind: TransferKind
    address: int
    wdata: int = 0
    issued_cycle: int = 0
    done: bool = field(default=False, init=False)
    response: Optional["BusResponse"] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError("bus address must be non-negative")
        if self.address % WORD_BYTES != 0:
            raise ValueError(f"bus address 0x{self.address:08x} is not word aligned")
        if not 0 <= self.wdata <= WORD_MASK:
            raise ValueError("write data must fit in 32 bits")
        if not self.master:
            raise ValueError("master name must be non-empty")

    @property
    def is_read(self) -> bool:
        """Whether this is a read transfer."""
        return self.kind is TransferKind.READ

    @property
    def is_write(self) -> bool:
        """Whether this is a write transfer."""
        return self.kind is TransferKind.WRITE

    def complete(self, rdata: int, cycle: int, error: bool = False) -> None:
        """Mark the request complete with read data ``rdata`` at ``cycle``.

        ``error`` models an APB error response (PSLVERR), e.g. an access that
        decodes to no slave.
        """
        if self.done:
            raise RuntimeError("bus request already completed")
        self.response = BusResponse(rdata=rdata & WORD_MASK, completed_cycle=cycle, error=error)
        self.done = True

    @property
    def rdata(self) -> int:
        """Read data of a completed request."""
        if self.response is None:
            raise RuntimeError("bus request has not completed yet")
        return self.response.rdata

    @property
    def latency(self) -> int:
        """Cycles from issue to completion (inclusive of the access cycle)."""
        if self.response is None:
            raise RuntimeError("bus request has not completed yet")
        return self.response.completed_cycle - self.issued_cycle


    @property
    def error(self) -> bool:
        """Whether the transfer completed with an error response."""
        if self.response is None:
            raise RuntimeError("bus request has not completed yet")
        return self.response.error


@dataclass(frozen=True)
class BusResponse:
    """Completion record of a bus transfer."""

    rdata: int
    completed_cycle: int
    error: bool = False


def read_request(master: str, address: int, issued_cycle: int = 0) -> BusRequest:
    """Convenience constructor for a read transfer."""
    return BusRequest(master=master, kind=TransferKind.READ, address=address, issued_cycle=issued_cycle)


def write_request(master: str, address: int, wdata: int, issued_cycle: int = 0) -> BusRequest:
    """Convenience constructor for a write transfer."""
    return BusRequest(
        master=master,
        kind=TransferKind.WRITE,
        address=address,
        wdata=wdata,
        issued_cycle=issued_cycle,
    )
