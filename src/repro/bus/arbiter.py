"""Round-robin arbitration.

PULPissimo's interconnect uses round-robin arbiters to guarantee fair
bandwidth distribution among masters (Section IV-A of the paper); the same
policy is used here for the peripheral bus shared by the PELS links, the CPU,
and the µDMA.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class RoundRobinArbiter:
    """Fair single-grant arbiter over a dynamic set of requestor names.

    The arbiter remembers the last granted requestor and, on the next
    arbitration round, starts searching from the *next* position, so a
    continuously requesting master cannot starve the others.
    """

    def __init__(self, requestors: Sequence[str] = ()) -> None:
        self._order: List[str] = []
        self._grants: Dict[str, int] = {}
        self._last_granted_index = -1
        for name in requestors:
            self.add_requestor(name)

    def add_requestor(self, name: str) -> None:
        """Register a requestor; idempotent for already-known names."""
        if not name:
            raise ValueError("requestor name must be non-empty")
        if name not in self._order:
            self._order.append(name)
            self._grants[name] = 0

    @property
    def requestors(self) -> Sequence[str]:
        """Registered requestors in priority-rotation order."""
        return tuple(self._order)

    def grant(self, requesting: Sequence[str]) -> Optional[str]:
        """Pick one of ``requesting`` to grant this cycle.

        Unknown requestors are registered on the fly (appended after existing
        ones).  Returns ``None`` when nothing is requesting.
        """
        for name in requesting:
            if name not in self._grants:
                self.add_requestor(name)
        if not requesting:
            return None
        active = set(requesting)
        count = len(self._order)
        for step in range(1, count + 1):
            index = (self._last_granted_index + step) % count
            candidate = self._order[index]
            if candidate in active:
                self._last_granted_index = index
                self._grants[candidate] += 1
                return candidate
        return None

    def grant_count(self, name: str) -> int:
        """How many times ``name`` has been granted so far."""
        return self._grants.get(name, 0)

    def reset(self) -> None:
        """Clear grant history and rotation state."""
        self._last_granted_index = -1
        for name in self._grants:
            self._grants[name] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RoundRobinArbiter(requestors={self._order}, last={self._last_granted_index})"
