"""The ``python -m repro.run store`` subcommands: ingest / query / info.

Exit codes follow the repo convention (see ``docs/cli.md``):

* ``store ingest`` — 0 everything inserted or deduplicated; 1 at least
  one directory had content conflicts (its transaction was rolled back,
  the rest were ingested); 2 usage error or artifacts/database that fail
  validation.
* ``store query`` — 0 rows (possibly none) rendered; 2 usage error
  (unknown filter/aggregate syntax, missing database, schema mismatch).
* ``store info`` — 0 summary rendered; 2 missing database or schema
  mismatch.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.store import ingest as ingest_mod
from repro.store import query as query_mod
from repro.store import schema
from repro.store.schema import DEFAULT_STORE_DB, StoreError


def _add_db_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--db",
        default=DEFAULT_STORE_DB,
        metavar="FILE",
        help="sqlite database file of the results store (default: %(default)s)",
    )


def _build_ingest_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run store ingest",
        description=(
            "Ingest sweep artifact directories (full runs, --shard slices, "
            "merged or partial merges) into the results store.  Idempotent: "
            "records already stored under the same campaign identity and "
            "point index are deduplicated, so re-ingesting inserts nothing; "
            "a content conflict rolls the whole directory back and exits 1."
        ),
    )
    parser.add_argument(
        "directories",
        nargs="+",
        metavar="DIR",
        help="artifact directory (the one directly containing results.json "
        "and manifest.json); pass as many as you like",
    )
    _add_db_argument(parser)
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the structured ingest report as JSON instead of a summary",
    )
    return parser


def _build_query_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run store query",
        description=(
            "Query the results store across every ingested campaign.  "
            "Columns follow the results.csv namespace: index, scenario, "
            "horizon_cycles, seed, wall_seconds, campaign, param.<axis>, "
            "stat.<key>, power_uw.<component>, area_kge.<component>.  "
            "See docs/store.md for a cookbook."
        ),
    )
    _add_db_argument(parser)
    parser.add_argument(
        "--campaign", default=None, help="restrict to one campaign (name or spec_hash)"
    )
    parser.add_argument("--scenario", default=None, help="restrict to one scenario")
    parser.add_argument(
        "--where",
        action="append",
        default=[],
        metavar="EXPR",
        help="filter 'column OP value' with OP one of == != <= >= < > "
        "(repeatable; all must hold), e.g. --where 'param.divisor<=8' "
        "--where 'stat.recovered==true'",
    )
    parser.add_argument(
        "--columns",
        default=None,
        metavar="A,B,...",
        help="comma-separated columns to project (default: every column "
        "present in the matching rows)",
    )
    parser.add_argument(
        "--aggregate",
        action="append",
        default=[],
        metavar="SPEC",
        help="reduce rows instead of listing them: 'count' or "
        "'min|mean|max|sum:<column>' (repeatable), e.g. "
        "--aggregate mean:power_uw.Total",
    )
    parser.add_argument(
        "--group-by",
        default=None,
        metavar="A,B,...",
        help="comma-separated columns to group aggregates by, e.g. "
        "--group-by campaign,param.divisor",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        default="table",
        help="output rendering (default: %(default)s)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the rendering to FILE instead of stdout",
    )
    return parser


def _build_info_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.run store info",
        description="Summarise the store: schema version, campaigns, coverage, "
        "ingest history.",
    )
    _add_db_argument(parser)
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the summary as JSON instead of a table",
    )
    return parser


def _split_csv(text: Optional[str]) -> Optional[List[str]]:
    if text is None:
        return None
    items = [item.strip() for item in text.split(",") if item.strip()]
    return items or None


def _ingest_main(argv: Sequence[str]) -> int:
    args = _build_ingest_parser().parse_args(argv)
    try:
        conn = schema.connect(args.db)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = ingest_mod.ingest_directories(conn, [Path(d) for d in args.directories])
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        conn.close()
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        for entry in report.directories:
            status = "CONFLICT" if entry.conflicts else "ok"
            print(
                f"{status:<8} {entry.source} ({entry.kind}, campaign {entry.campaign}): "
                f"{entry.inserted} inserted, {entry.deduplicated} deduplicated"
                + (f", {len(entry.conflicts)} conflicts (rolled back)" if entry.conflicts else "")
            )
        print(
            f"store {args.db}: {report.inserted} inserted, "
            f"{report.deduplicated} deduplicated, {report.conflicts} conflicts"
        )
    if not report.ok:
        conflicted = [entry.source for entry in report.directories if entry.conflicts]
        print(
            "error: conflicting record content for an already-stored point in: "
            + ", ".join(conflicted)
            + " — the same campaign point must always produce the same record; "
            "these directories were rolled back",
            file=sys.stderr,
        )
        return 1
    return 0


def _query_main(argv: Sequence[str]) -> int:
    args = _build_query_parser().parse_args(argv)
    try:
        where = [query_mod.parse_filter(text) for text in args.where]
        aggregates = [query_mod.parse_aggregate(text) for text in args.aggregate]
        group_by = _split_csv(args.group_by) or []
        if group_by and not aggregates:
            raise StoreError("--group-by requires at least one --aggregate")
        conn = schema.connect(args.db, create=False)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        rows = query_mod.select_rows(
            conn,
            campaign=args.campaign,
            scenario=args.scenario,
            where=where,
            columns=_split_csv(args.columns),
        )
        if aggregates:
            rows = query_mod.aggregate_rows(rows, aggregates, group_by)
        rendering = query_mod.write_rows(rows, args.format, args.out)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        conn.close()
    if args.out:
        print(f"{len(rows)} row(s) written to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(rendering)
    return 0


def _info_main(argv: Sequence[str]) -> int:
    args = _build_info_parser().parse_args(argv)
    try:
        conn = schema.connect(args.db, create=False)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        info = query_mod.store_info(conn)
    finally:
        conn.close()
    if args.json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"store {args.db}: schema version {info['schema_version']}, {info['total_points']} points")
    for entry in info["campaigns"]:
        coverage = f"{entry['points_stored']}/{entry['points_total']}"
        state = "complete" if entry["complete"] else "partial"
        print(
            f"  {entry['name']:<26} {coverage:>9} points ({state})  scenario "
            f"{entry['scenario']}  {entry['ingests']} ingest(s)  "
            f"{entry['wall_seconds']:.2f} s wall"
        )
    if not info["campaigns"]:
        print("  (empty — ingest some artifacts: python -m repro.run store ingest <dir>...)")
    return 0


def store_main(argv: Sequence[str]) -> int:
    """Dispatch ``store ingest`` / ``store query`` / ``store info``."""
    if not argv or argv[0] in ("-h", "--help"):
        usage = (
            "usage: python -m repro.run store {ingest,query,info} ...\n\n"
            "  ingest  fold sweep artifact directories into the results store\n"
            "  query   filter/project/aggregate the stored corpus\n"
            "  info    summarise campaigns, coverage, and ingest history\n\n"
            "see docs/store.md for the schema reference and query cookbook"
        )
        # --help is an answer (stdout, 0); a bare 'store' is a usage error.
        print(usage, file=sys.stdout if argv else sys.stderr)
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "ingest":
        return _ingest_main(rest)
    if command == "query":
        return _query_main(rest)
    if command == "info":
        return _info_main(rest)
    print(
        f"error: unknown store subcommand {command!r} (expected ingest, query, or info)",
        file=sys.stderr,
    )
    return 2
