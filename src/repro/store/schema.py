"""Versioned sqlite DDL for the campaign results store.

One database file holds the accumulated corpus of every campaign ever
ingested.  Three tables:

* ``campaigns`` — one row per campaign *identity*, keyed by the same
  ``spec_hash`` that ``--resume`` validates (:mod:`repro.sweep.resume`).
  The row carries everything :func:`~repro.sweep.resume.spec_from_manifest`
  needs, so a store row — like a manifest — can reconstruct its
  :class:`~repro.sweep.campaign.CampaignSpec` registry-free.
* ``points`` — one row per ``(campaign, point_index)``: the point's
  identity (index, seed, horizon), its record payload (params, stats,
  activity, power, area — each stored as canonical JSON so the original
  ``results.json`` record is reconstructable byte for byte), the wall
  timing scavenged from the manifest, and a ``record_sha`` over the
  canonical record used for O(1) dedup/conflict detection on re-ingest.
* ``ingests`` — the provenance log: one row per ingested artifact
  directory with its kind (full / shard / merged / partial), insert/dedup
  counts, and — for merged artifacts — the source shard directories from
  the manifest's ``execution.merged_from`` block.

**Versioning.** The schema version lives in sqlite's ``user_version``
pragma (mirrored into ``store_meta`` for human introspection).  Opening a
database written by a *newer* schema raises :class:`SchemaVersionError`;
opening an *older* one walks the :data:`MIGRATIONS` hook table one step at
a time (``register_migration``), raising when a step is missing.  A fresh
file is initialised at :data:`STORE_SCHEMA_VERSION`.

**Concurrency.** Connections run in WAL journal mode: many concurrent
readers proceed while one writer appends — the many-readers/one-writer
serving posture the store exists for.  See ``docs/store.md``.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Callable, Dict, Union

#: Bump when the store DDL changes; pair every bump with a migration.
STORE_SCHEMA_VERSION = 1

#: Default database location, next to the sweep artifact root.
DEFAULT_STORE_DB = "results/store.sqlite"


class StoreError(ValueError):
    """A store operation that cannot proceed: a missing or unreadable
    database, artifacts that fail validation, a malformed query.  The
    message always names the offending path/column/value."""


class SchemaVersionError(StoreError):
    """The database's schema version cannot be used by this code: it is
    newer than :data:`STORE_SCHEMA_VERSION`, or older with no registered
    migration to walk it forward."""


#: Migration hook table: ``from_version -> migrator``; each migrator
#: upgrades an open connection one step (``from_version`` to
#: ``from_version + 1``).  :func:`connect` walks these in order and stamps
#: the new version; register one with :func:`register_migration` for every
#: schema bump so old databases keep opening.
Migration = Callable[[sqlite3.Connection], None]
MIGRATIONS: Dict[int, Migration] = {}


def register_migration(from_version: int) -> Callable[[Migration], Migration]:
    """Decorator: register a one-step migrator for ``from_version``."""

    def decorate(migrator: Migration) -> Migration:
        if from_version in MIGRATIONS:
            raise ValueError(f"a migration from schema version {from_version} is already registered")
        MIGRATIONS[from_version] = migrator
        return migrator

    return decorate


_DDL = """
CREATE TABLE campaigns (
    id INTEGER PRIMARY KEY,
    spec_hash TEXT NOT NULL UNIQUE,
    name TEXT NOT NULL,
    description TEXT NOT NULL DEFAULT '',
    scenario TEXT NOT NULL,
    base_seed INTEGER NOT NULL,
    dense INTEGER NOT NULL,
    axis_order TEXT NOT NULL,        -- JSON list: grid axes in row-major order
    grid TEXT NOT NULL,              -- JSON object: axis -> value list
    points_total INTEGER NOT NULL,   -- size of the full expanded grid
    artifact_schema_version INTEGER NOT NULL
);

CREATE TABLE points (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    point_index INTEGER NOT NULL,
    scenario TEXT NOT NULL,
    horizon_cycles INTEGER NOT NULL,
    seed INTEGER NOT NULL,
    params TEXT NOT NULL,            -- canonical JSON (sorted keys, compact)
    stats TEXT NOT NULL,
    activity TEXT NOT NULL,
    power_uw TEXT NOT NULL,
    area_kge TEXT NOT NULL,
    wall_seconds REAL NOT NULL DEFAULT 0.0,
    record_sha TEXT NOT NULL,        -- sha256 of the canonical record (dedup key)
    PRIMARY KEY (campaign_id, point_index)
);

CREATE INDEX idx_points_scenario ON points(scenario);
CREATE INDEX idx_points_horizon ON points(campaign_id, horizon_cycles);

CREATE TABLE ingests (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    source TEXT NOT NULL,            -- the ingested artifact directory
    kind TEXT NOT NULL,              -- full | shard | merged | partial
    inserted INTEGER NOT NULL,
    deduplicated INTEGER NOT NULL,
    conflicts INTEGER NOT NULL,
    merged_from TEXT NOT NULL DEFAULT '[]'  -- JSON list of source shard dirs
);

CREATE TABLE store_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def connect(
    path: Union[str, Path], *, create: bool = True, timeout: float = 30.0
) -> sqlite3.Connection:
    """Open (and if needed initialise or migrate) the store at ``path``.

    Returns a WAL-mode connection with ``sqlite3.Row`` rows and foreign
    keys enforced.  ``create=False`` refuses to materialise a missing file
    — the read-side (``store query``/``store info``/``--resume-from-store``)
    uses it so a typo'd path is a named error, never a fresh empty store
    silently answering "no rows".
    """
    path = Path(path)
    if not create and not path.exists():
        raise StoreError(f"{path}: no such store database (ingest something first?)")
    if create:
        path.parent.mkdir(parents=True, exist_ok=True)
    try:
        conn = sqlite3.connect(str(path), timeout=timeout)
    except sqlite3.Error as exc:
        raise StoreError(f"{path}: cannot open store database: {exc}") from exc
    conn.row_factory = sqlite3.Row
    try:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA foreign_keys=ON")
        conn.execute("PRAGMA synchronous=NORMAL")
        _ensure_schema(conn, path)
    except sqlite3.Error as exc:
        # A file that is not (or no longer) a sqlite database must surface
        # as a StoreError so callers with a degrade path (the fleet) catch it.
        conn.close()
        raise StoreError(f"{path}: not a usable store database: {exc}") from exc
    except BaseException:
        conn.close()
        raise
    return conn


def schema_version(conn: sqlite3.Connection) -> int:
    """The schema version recorded in the database's ``user_version``."""
    return int(conn.execute("PRAGMA user_version").fetchone()[0])


def _is_empty(conn: sqlite3.Connection) -> bool:
    row = conn.execute("SELECT count(*) FROM sqlite_master WHERE type = 'table'").fetchone()
    return int(row[0]) == 0


def _stamp_version(conn: sqlite3.Connection, version: int) -> None:
    # PRAGMA does not take parameters; version is always an int from our code.
    conn.execute(f"PRAGMA user_version = {int(version)}")
    conn.execute(
        "INSERT INTO store_meta (key, value) VALUES ('schema_version', ?) "
        "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
        (str(version),),
    )


def _ensure_schema(conn: sqlite3.Connection, path: Path) -> None:
    version = schema_version(conn)
    if _is_empty(conn):
        with conn:
            conn.executescript(_DDL)
            _stamp_version(conn, STORE_SCHEMA_VERSION)
        return
    if version == STORE_SCHEMA_VERSION:
        return
    if version > STORE_SCHEMA_VERSION:
        raise SchemaVersionError(
            f"{path}: store schema version {version} is newer than this code "
            f"supports ({STORE_SCHEMA_VERSION}) — upgrade the code, not the database"
        )
    # Older database: walk the migration hooks one step at a time.
    while version < STORE_SCHEMA_VERSION:
        migrator = MIGRATIONS.get(version)
        if migrator is None:
            raise SchemaVersionError(
                f"{path}: store schema version {version} predates this code "
                f"({STORE_SCHEMA_VERSION}) and no migration from {version} is "
                f"registered — re-ingest into a fresh database"
            )
        with conn:
            migrator(conn)
            version += 1
            _stamp_version(conn, version)
