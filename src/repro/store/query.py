"""Read API over the results store: filter, project, aggregate, export.

The query model mirrors the ``results.csv`` column namespace so nothing new
has to be learned: ``index``, ``scenario``, ``horizon_cycles``, ``seed``,
``wall_seconds``, ``campaign``, plus the namespaced payload columns
``param.<axis>``, ``stat.<key>``, ``power_uw.<component>``,
``area_kge.<component>``.  Rows are prefiltered in SQL by campaign and
scenario, then the JSON payload columns are flattened in Python — the
store deliberately depends on nothing beyond stdlib ``sqlite3`` (no JSON1
extension assumptions).

Three layers:

* :func:`select_rows` — flat row dicts for a filter/projection;
* :func:`aggregate_rows` — ``count`` / ``min:col`` / ``mean:col`` /
  ``max:col`` / ``sum:col`` over the selected rows, optionally grouped;
* :func:`format_rows` / :func:`write_rows` — render as an aligned text
  table, JSON, or CSV (stdout or ``--out`` file).

:func:`campaign_points` and :func:`reconstruct_results_payload` are the
store's fidelity seam: they rebuild the exact
:func:`repro.sweep.artifacts.point_record` dicts and the exact
``results.json`` payload from the stored canonical JSON — byte-identical
once dumped with the artifact serialiser (proven by
``tests/store/test_roundtrip.py``).  ``--resume-from-store`` rests on the
same reconstruction.  Queries emit a ``store.query`` span when a tracer
is installed.
"""

from __future__ import annotations

import csv
import io
import json
import sqlite3
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import tracing
from repro.store.schema import StoreError, schema_version

#: Scalar columns stored directly on the points table.
SCALAR_COLUMNS = ("index", "scenario", "horizon_cycles", "seed", "wall_seconds")

#: JSON payload namespaces, in results.csv order.
NAMESPACES = ("param", "stat", "power_uw", "area_kge")

_NAMESPACE_TO_SQL = {
    "param": "params",
    "stat": "stats",
    "power_uw": "power_uw",
    "area_kge": "area_kge",
}

#: Comparison operators accepted in ``--where`` filters, longest first so
#: ``<=`` never parses as ``<``.
OPERATORS = ("==", "!=", "<=", ">=", "<", ">")


@dataclass(frozen=True)
class Filter:
    """One parsed ``column OP value`` condition."""

    column: str
    op: str
    value: object

    def matches(self, row_value: object) -> bool:
        if self.op == "==":
            return row_value == self.value
        if self.op == "!=":
            return row_value != self.value
        if row_value is None:
            return False
        try:
            if self.op == "<=":
                return row_value <= self.value  # type: ignore[operator]
            if self.op == ">=":
                return row_value >= self.value  # type: ignore[operator]
            if self.op == "<":
                return row_value < self.value  # type: ignore[operator]
            return row_value > self.value  # type: ignore[operator]
        except TypeError:
            raise StoreError(
                f"filter {self.column} {self.op} {self.value!r}: cannot compare "
                f"against stored value {row_value!r}"
            ) from None


def parse_filter(text: str) -> Filter:
    """Parse ``column OP value`` (e.g. ``param.divisor<=8``, ``stat.recovered==true``).

    Values parse as JSON when possible (numbers, ``true``/``false``), and
    fall back to the bare string otherwise (scenario names need no quotes).
    """
    for op in OPERATORS:
        column, found, raw = text.partition(op)
        if found:
            column = column.strip()
            raw = raw.strip()
            if not column or not raw:
                break
            try:
                value = json.loads(raw)
            except ValueError:
                value = raw
            return Filter(column=column, op=op, value=value)
    raise StoreError(
        f"filter {text!r} is not of the form 'column OP value' with OP one of "
        f"{', '.join(OPERATORS)}"
    )


def _row_from_db(db_row: sqlite3.Row) -> Dict[str, object]:
    """Flatten one points row (+ campaign name) into the query namespace."""
    row: Dict[str, object] = {
        "campaign": db_row["name"],
        "index": db_row["point_index"],
        "scenario": db_row["scenario"],
        "horizon_cycles": db_row["horizon_cycles"],
        "seed": db_row["seed"],
        "wall_seconds": db_row["wall_seconds"],
    }
    for namespace, sql_column in _NAMESPACE_TO_SQL.items():
        for key, value in json.loads(db_row[sql_column]).items():
            row[f"{namespace}.{key}"] = value
    return row


def select_rows(
    conn: sqlite3.Connection,
    campaign: Optional[str] = None,
    scenario: Optional[str] = None,
    where: Sequence[Filter] = (),
    columns: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Flat row dicts matching the filters, ordered by (campaign, index).

    ``campaign``/``scenario`` prefilter in SQL; ``where`` filters apply to
    the flattened namespace; ``columns`` projects (unknown columns come
    back as ``None`` so sparse campaigns stay queryable side by side).
    """
    tracer = tracing.TRACER
    start_ns = tracer.now_ns() if tracer is not None else 0
    sql = (
        "SELECT campaigns.name AS name, points.* FROM points"
        " JOIN campaigns ON campaigns.id = points.campaign_id"
    )
    clauses: List[str] = []
    params: List[object] = []
    if campaign is not None:
        # Resolve name-or-spec_hash up front so an unknown campaign is a
        # named error rather than a silent empty result set.
        clauses.append("campaigns.id = ?")
        params.append(campaign_row(conn, campaign)["id"])
    if scenario is not None:
        clauses.append("points.scenario = ?")
        params.append(scenario)
    if clauses:
        sql += " WHERE " + " AND ".join(clauses)
    sql += " ORDER BY campaigns.name, points.point_index"
    rows = []
    for db_row in conn.execute(sql, params):
        row = _row_from_db(db_row)
        if all(condition.matches(row.get(condition.column)) for condition in where):
            if columns:
                row = {column: row.get(column) for column in columns}
            rows.append(row)
    if tracer is not None:
        tracer.event(
            "store.query",
            "store",
            start_ns,
            tracer.now_ns() - start_ns,
            {
                "campaign": campaign or "*",
                "scenario": scenario or "*",
                "filters": len(where),
                "rows": len(rows),
            },
        )
    return rows


def parse_aggregate(text: str) -> Tuple[str, Optional[str]]:
    """Parse one aggregate spec: ``count`` or ``min|mean|max|sum:column``."""
    func, found, column = text.partition(":")
    if func == "count" and not found:
        return "count", None
    if func in ("min", "mean", "max", "sum") and column:
        return func, column
    raise StoreError(
        f"aggregate {text!r} is not 'count' or one of min/mean/max/sum:<column>"
    )


def aggregate_rows(
    rows: Sequence[Dict[str, object]],
    aggregates: Sequence[Tuple[str, Optional[str]]],
    group_by: Sequence[str] = (),
) -> List[Dict[str, object]]:
    """Reduce selected rows to one output row per group.

    Non-numeric and missing values are excluded from min/mean/max/sum (a
    column absent from one campaign does not poison a cross-campaign
    aggregate); ``count`` counts rows.
    """
    groups: Dict[Tuple[object, ...], List[Dict[str, object]]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in group_by)
        groups.setdefault(key, []).append(row)
    output: List[Dict[str, object]] = []
    for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
        members = groups[key]
        out: Dict[str, object] = dict(zip(group_by, key))
        for func, column in aggregates:
            if func == "count":
                out["count"] = len(members)
                continue
            values = [
                value
                for member in members
                if isinstance(value := member.get(column), (int, float))
                and not isinstance(value, bool)
            ]
            label = f"{func}:{column}"
            if not values:
                out[label] = None
            elif func == "min":
                out[label] = min(values)
            elif func == "max":
                out[label] = max(values)
            elif func == "sum":
                out[label] = sum(values)
            else:
                out[label] = sum(values) / len(values)
        output.append(out)
    return output


def _ordered_columns(rows: Sequence[Dict[str, object]]) -> List[str]:
    columns: List[str] = []
    for row in rows:
        for column in row:
            if column not in columns:
                columns.append(column)
    return columns


def format_rows(rows: Sequence[Dict[str, object]], fmt: str = "table") -> str:
    """Render rows as ``table`` (aligned text), ``json``, or ``csv``."""
    if fmt == "json":
        return json.dumps(list(rows), indent=2, sort_keys=True) + "\n"
    columns = _ordered_columns(rows)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for row in rows:
            writer.writerow(["" if row.get(c) is None else row.get(c) for c in columns])
        return buffer.getvalue()
    if fmt != "table":
        raise StoreError(f"unknown output format {fmt!r} (expected table, json, or csv)")
    if not rows:
        return "(no rows)\n"
    cells = [[("" if row.get(c) is None else str(row.get(c))) for c in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in cells)) for i, column in enumerate(columns)
    ]
    lines = ["  ".join(column.ljust(widths[i]) for i, column in enumerate(columns)).rstrip()]
    for line in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)).rstrip())
    return "\n".join(lines) + "\n"


def write_rows(rows: Sequence[Dict[str, object]], fmt: str, out: Optional[str]) -> str:
    """Format rows; write to ``out`` when given.  Returns the rendering
    (the CLI prints it when no ``--out`` was requested)."""
    rendering = format_rows(rows, fmt)
    if out:
        from pathlib import Path

        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(rendering, encoding="utf-8")
    return rendering


# ---------------------------------------------------------------------------
# Reconstruction: the store → results.json fidelity seam.


def campaign_row(conn: sqlite3.Connection, campaign: str) -> sqlite3.Row:
    """The campaigns row for ``campaign`` (a name or a spec_hash)."""
    row = conn.execute(
        "SELECT * FROM campaigns WHERE name = ? OR spec_hash = ?", (campaign, campaign)
    ).fetchone()
    if row is None:
        raise StoreError(f"campaign {campaign!r} is not in the store")
    return row


def campaign_points(conn: sqlite3.Connection, campaign_id: int) -> List[Dict[str, object]]:
    """Exact :func:`repro.sweep.artifacts.point_record` dicts for every
    stored point of one campaign, in index order.

    The payload columns were stored as the canonical JSON of the original
    record's sub-objects, so parsing them back yields objects equal to the
    originals — and the artifact serialiser (sorted keys) then re-emits
    byte-identical records.
    """
    records: List[Dict[str, object]] = []
    for row in conn.execute(
        "SELECT * FROM points WHERE campaign_id = ? ORDER BY point_index", (campaign_id,)
    ):
        records.append(
            {
                "index": row["point_index"],
                "scenario": row["scenario"],
                "horizon_cycles": row["horizon_cycles"],
                "seed": row["seed"],
                "params": json.loads(row["params"]),
                "stats": json.loads(row["stats"]),
                "activity": json.loads(row["activity"]),
                "power_uw": json.loads(row["power_uw"]),
                "area_kge": json.loads(row["area_kge"]),
            }
        )
    return records


def reconstruct_results_payload(conn: sqlite3.Connection, campaign: str) -> Dict[str, object]:
    """Rebuild the (unsharded) ``results.json`` payload of one campaign.

    Byte-identical to the artifact a full or merged run wrote once dumped
    with ``json.dumps(payload, indent=2, sort_keys=True) + "\\n"`` —
    provided the store actually holds every point (a partial corpus
    raises, naming the gap, rather than emitting an artifact that
    understates the campaign).
    """
    row = campaign_row(conn, campaign)
    points = campaign_points(conn, int(row["id"]))
    missing = sorted(set(range(int(row["points_total"]))) - {int(r["index"]) for r in points})
    if missing:
        shown = ", ".join(str(index) for index in missing[:12])
        extra = len(missing) - 12
        raise StoreError(
            f"campaign {row['name']!r}: store holds {len(points)} of "
            f"{row['points_total']} points (missing {shown}"
            + (f", … ({extra} more)" if extra > 0 else "")
            + ") — ingest the missing shards first"
        )
    return {
        "schema_version": int(row["artifact_schema_version"]),
        "campaign": row["name"],
        "scenario": row["scenario"],
        "n_points": len(points),
        "points": points,
    }


def store_info(conn: sqlite3.Connection) -> Dict[str, object]:
    """Summary payload for ``store info``: schema version, per-campaign
    coverage (stored vs. total points, seeds, ingest history size), and
    corpus totals."""
    campaigns = []
    for row in conn.execute("SELECT * FROM campaigns ORDER BY name"):
        stored = conn.execute(
            "SELECT count(*) AS n, sum(wall_seconds) AS wall FROM points WHERE campaign_id = ?",
            (row["id"],),
        ).fetchone()
        ingests = conn.execute(
            "SELECT count(*) AS n FROM ingests WHERE campaign_id = ?", (row["id"],)
        ).fetchone()
        campaigns.append(
            {
                "name": row["name"],
                "scenario": row["scenario"],
                "spec_hash": row["spec_hash"],
                "points_stored": int(stored["n"]),
                "points_total": int(row["points_total"]),
                "complete": int(stored["n"]) == int(row["points_total"]),
                "wall_seconds": float(stored["wall"] or 0.0),
                "ingests": int(ingests["n"]),
            }
        )
    totals = conn.execute("SELECT count(*) AS n FROM points").fetchone()
    return {
        "schema_version": schema_version(conn),
        "campaigns": campaigns,
        "total_points": int(totals["n"]),
    }
