"""Idempotent ingestion of sweep artifact directories into the store.

:func:`ingest_directory` takes one artifact directory — a full run, a
``--shard I/N`` slice, a merged multi-host run, or a partial merge — and
folds its point records into the database:

* **Validation reuses the resume machinery.**  The manifest is parsed
  through :func:`repro.sweep.resume.load_artifact_json`, its campaign
  block reconstructed with :func:`~repro.sweep.resume.spec_from_manifest`
  and re-hashed with :func:`~repro.sweep.resume.spec_hash`; a manifest
  whose stored ``spec_hash`` disagrees with its own campaign block is
  rejected the same way ``sweep merge`` rejects it.  Records are checked
  for the full point-record shape and in-range indices before anything is
  written.
* **Dedup is keyed on ``(spec_hash, point_index)``** — the same identity
  ``--resume`` trusts.  A record already in the store with the same
  ``record_sha`` (sha256 over the canonical compact JSON of the record)
  is counted as *deduplicated* and skipped; re-ingesting the same
  artifacts therefore inserts zero rows.  A colliding index whose sha
  **differs** is a *conflict*: determinism says the same campaign point
  can only ever produce one record, so a mismatch means corrupt or
  hand-edited artifacts — the directory's whole transaction is rolled
  back (the store is never left half-ingested) and the conflicting
  indices are reported structurally.
* **Provenance is logged**, not inferred: every accepted directory gets
  an ``ingests`` row recording its kind (``full``/``shard``/``merged``/
  ``partial``) and, for merged artifacts, the source shard directories
  from the manifest's ``execution.merged_from`` block.

Wall timings ride along from ``execution.point_wall_seconds`` so the
fleet's cost model (:func:`repro.fleet.cost.store_point_walls`) can price
points from the store.  Ingestion emits a ``store.ingest`` span per
directory when a tracer is installed.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs import tracing
from repro.store.schema import StoreError
from repro.sweep.artifacts import MANIFEST_JSON, RESULTS_JSON, SCHEMA_VERSION
from repro.sweep.campaign import CampaignSpec
from repro.sweep.resume import (
    ResumeError,
    load_artifact_json,
    spec_from_manifest,
    spec_hash,
)

#: The exact key set of one results.json point record
#: (:func:`repro.sweep.artifacts.point_record`); anything more or less is
#: not an artifact this code base wrote.
RECORD_KEYS = frozenset(
    {
        "index",
        "scenario",
        "horizon_cycles",
        "seed",
        "params",
        "stats",
        "activity",
        "power_uw",
        "area_kge",
    }
)


def canonical_json(value: object) -> str:
    """The canonical compact serialisation hashed and stored per record."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def record_sha(record: Dict[str, object]) -> str:
    """sha256 over the canonical record — the dedup/conflict key."""
    return hashlib.sha256(canonical_json(record).encode("utf-8")).hexdigest()


class _ConflictRollback(Exception):
    """Internal: unwinds the ``with conn`` transaction block so sqlite rolls
    the whole directory back when content conflicts were detected."""


@dataclass
class DirectoryReport:
    """What ingesting one artifact directory did (or refused to do)."""

    source: str
    kind: str = ""
    campaign: str = ""
    spec_hash: str = ""
    n_records: int = 0
    inserted: int = 0
    deduplicated: int = 0
    #: Structured conflict records: ``{"index", "stored_sha", "incoming_sha"}``.
    #: Non-empty means the directory's transaction was rolled back whole.
    conflicts: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.conflicts

    def as_dict(self) -> Dict[str, object]:
        return {
            "source": self.source,
            "kind": self.kind,
            "campaign": self.campaign,
            "spec_hash": self.spec_hash,
            "n_records": self.n_records,
            "inserted": self.inserted,
            "deduplicated": self.deduplicated,
            "conflicts": list(self.conflicts),
            "ok": self.ok,
        }


@dataclass
class IngestReport:
    """The combined outcome of one ``store ingest`` invocation."""

    directories: List[DirectoryReport] = field(default_factory=list)

    @property
    def inserted(self) -> int:
        return sum(report.inserted for report in self.directories)

    @property
    def deduplicated(self) -> int:
        return sum(report.deduplicated for report in self.directories)

    @property
    def conflicts(self) -> int:
        return sum(len(report.conflicts) for report in self.directories)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.directories)

    def as_dict(self) -> Dict[str, object]:
        return {
            "inserted": self.inserted,
            "deduplicated": self.deduplicated,
            "conflicts": self.conflicts,
            "ok": self.ok,
            "directories": [report.as_dict() for report in self.directories],
        }


def _artifact_kind(manifest: Dict[str, object]) -> Tuple[str, List[str]]:
    """Classify the directory and extract merged-from provenance.

    ``shard`` block → a shard slice; ``partial`` block → a partial merge;
    ``execution.merged_from`` → a complete merge (the block `sweep merge`
    stamps); otherwise a plain full run.
    """
    execution = manifest.get("execution")
    merged_from: List[str] = []
    if isinstance(execution, dict):
        sources = execution.get("merged_from")
        if isinstance(sources, list):
            merged_from = [
                str(entry.get("directory", "")) for entry in sources if isinstance(entry, dict)
            ]
    if isinstance(manifest.get("shard"), dict):
        return "shard", merged_from
    if isinstance(manifest.get("partial"), dict):
        return "partial", merged_from
    if merged_from:
        return "merged", merged_from
    return "full", merged_from


def _load_validated(directory: Path) -> Tuple[Dict[str, object], Dict[str, object], CampaignSpec]:
    """Load and validate one directory's artifact pair; return
    ``(results, manifest, spec)``.  All failures are :class:`StoreError`
    naming the path — ingest never writes from artifacts it cannot trust."""
    directory = Path(directory)
    if not directory.is_dir():
        raise StoreError(
            f"{directory}: not a directory — pass each campaign/shard artifact "
            f"directory (the one that directly contains {RESULTS_JSON})"
        )
    try:
        results = load_artifact_json(directory / RESULTS_JSON, required=True)
        manifest = load_artifact_json(directory / MANIFEST_JSON, required=True)
    except ResumeError as exc:
        raise StoreError(str(exc)) from None
    if manifest.get("schema_version") != SCHEMA_VERSION:
        raise StoreError(
            f"{directory}: artifact schema version "
            f"{manifest.get('schema_version')!r} != {SCHEMA_VERSION} — re-run the "
            f"campaign with this version of the code before ingesting"
        )
    stored_hash = manifest.get("spec_hash")
    if not stored_hash:
        raise StoreError(f"{directory}: manifest has no spec_hash — artifacts predate resume support")
    try:
        spec = spec_from_manifest(manifest)
    except ValueError as exc:
        raise StoreError(f"{directory / MANIFEST_JSON}: {exc}") from None
    if spec_hash(spec) != stored_hash:
        raise StoreError(
            f"{directory}: manifest spec_hash {stored_hash} does not match its own "
            f"campaign block (recomputed {spec_hash(spec)}) — the manifest was "
            f"edited or corrupted"
        )
    if results.get("campaign") != spec.name or results.get("scenario") != spec.scenario:
        raise StoreError(
            f"{directory / RESULTS_JSON}: results are for campaign "
            f"{results.get('campaign')!r} / scenario {results.get('scenario')!r} but "
            f"the manifest describes {spec.name!r} / {spec.scenario!r} — the "
            f"artifact pair is inconsistent"
        )
    if not isinstance(results.get("points"), list):
        raise StoreError(f"{directory / RESULTS_JSON}: has no points list")
    return results, manifest, spec


def _points_total(manifest: Dict[str, object], spec: CampaignSpec, directory: Path) -> int:
    """The full-grid point count these artifacts are a slice of."""
    for block_name, key in (("shard", "points_total"), ("partial", "points_total")):
        block = manifest.get(block_name)
        if isinstance(block, dict):
            try:
                return int(block[key])
            except (KeyError, TypeError, ValueError):
                raise StoreError(
                    f"{directory}: manifest {block_name} block is malformed: {block!r}"
                ) from None
    try:
        return int(manifest["n_points"])
    except (KeyError, TypeError, ValueError):
        raise StoreError(f"{directory}: manifest has no usable n_points") from None


def _upsert_campaign(
    conn: sqlite3.Connection, spec: CampaignSpec, points_total: int
) -> int:
    """Find or create the campaign row for ``spec``; return its id."""
    digest = spec_hash(spec)
    row = conn.execute("SELECT id FROM campaigns WHERE spec_hash = ?", (digest,)).fetchone()
    if row is not None:
        return int(row["id"])
    cursor = conn.execute(
        "INSERT INTO campaigns (spec_hash, name, description, scenario, base_seed,"
        " dense, axis_order, grid, points_total, artifact_schema_version)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        (
            digest,
            spec.name,
            spec.description,
            spec.scenario,
            spec.base_seed,
            int(spec.dense),
            canonical_json(list(spec.grid)),
            canonical_json({axis: list(values) for axis, values in spec.grid.items()}),
            points_total,
            SCHEMA_VERSION,
        ),
    )
    return int(cursor.lastrowid)


def _validated_record(
    record: object, points_total: int, directory: Path
) -> Dict[str, object]:
    """One results.json record, shape-checked: exact key set, integer
    identity fields, in-range index, mapping payloads."""
    if not isinstance(record, dict) or set(record) != RECORD_KEYS:
        raise StoreError(
            f"{directory / RESULTS_JSON}: point record {str(record)[:80]!r} does not "
            f"have the expected record shape — results.json is truncated or corrupt"
        )
    try:
        index = int(record["index"])
        int(record["horizon_cycles"])
        int(record["seed"])
        str(record["scenario"])
        for key in ("params", "stats", "activity", "power_uw", "area_kge"):
            if not isinstance(record[key], dict):
                raise TypeError(f"{key} is not a mapping")
    except (TypeError, ValueError) as exc:
        raise StoreError(
            f"{directory / RESULTS_JSON}: point record {record.get('index')!r} is "
            f"malformed ({exc!r})"
        ) from None
    if not 0 <= index < points_total:
        raise StoreError(
            f"{directory / RESULTS_JSON}: record index {index} is outside the "
            f"campaign's {points_total} points"
        )
    return record


def ingest_directory(conn: sqlite3.Connection, directory: Path) -> DirectoryReport:
    """Ingest one artifact directory in one transaction.

    Returns the per-directory report.  Conflicting records (same
    ``(spec_hash, point_index)``, different content) roll back the whole
    directory — partial ingestion of an inconsistent directory would be a
    corrupt store — and land in ``report.conflicts``; validation failures
    raise :class:`StoreError` before anything is written.
    """
    directory = Path(directory)
    results, manifest, spec = _load_validated(directory)
    kind, merged_from = _artifact_kind(manifest)
    points_total = _points_total(manifest, spec, directory)
    execution = manifest.get("execution")
    walls = execution.get("point_wall_seconds", {}) if isinstance(execution, dict) else {}
    if not isinstance(walls, dict):
        walls = {}

    report = DirectoryReport(
        source=str(directory), kind=kind, campaign=spec.name, spec_hash=spec_hash(spec)
    )
    tracer = tracing.TRACER
    start_ns = tracer.now_ns() if tracer is not None else 0
    try:
        with conn:  # one transaction per directory
            campaign_id = _upsert_campaign(conn, spec, points_total)
            seen_indices: Dict[int, str] = {}
            for raw in results["points"]:
                record = _validated_record(raw, points_total, directory)
                index = int(record["index"])
                sha = record_sha(record)
                if index in seen_indices:
                    raise StoreError(
                        f"{directory / RESULTS_JSON}: duplicate record for point "
                        f"{index} within one results.json — the artifacts are corrupt"
                    )
                seen_indices[index] = sha
                report.n_records += 1
                existing = conn.execute(
                    "SELECT record_sha FROM points WHERE campaign_id = ? AND point_index = ?",
                    (campaign_id, index),
                ).fetchone()
                if existing is not None:
                    if existing["record_sha"] == sha:
                        report.deduplicated += 1
                    else:
                        report.conflicts.append(
                            {
                                "index": index,
                                "stored_sha": existing["record_sha"],
                                "incoming_sha": sha,
                            }
                        )
                    continue
                try:
                    wall = float(walls.get(str(index), 0.0))
                except (TypeError, ValueError):
                    wall = 0.0
                conn.execute(
                    "INSERT INTO points (campaign_id, point_index, scenario,"
                    " horizon_cycles, seed, params, stats, activity, power_uw,"
                    " area_kge, wall_seconds, record_sha)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        campaign_id,
                        index,
                        str(record["scenario"]),
                        int(record["horizon_cycles"]),
                        int(record["seed"]),
                        canonical_json(record["params"]),
                        canonical_json(record["stats"]),
                        canonical_json(record["activity"]),
                        canonical_json(record["power_uw"]),
                        canonical_json(record["area_kge"]),
                        wall,
                        sha,
                    ),
                )
                report.inserted += 1
            if report.conflicts:
                # Roll the whole directory back: determinism says a campaign
                # point has exactly one record, so a content collision means
                # these artifacts cannot be trusted at all.
                report.inserted = 0
                raise _ConflictRollback()
            conn.execute(
                "INSERT INTO ingests (campaign_id, source, kind, inserted,"
                " deduplicated, conflicts, merged_from) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    str(directory),
                    kind,
                    report.inserted,
                    report.deduplicated,
                    0,
                    canonical_json(merged_from),
                ),
            )
    except _ConflictRollback:
        pass
    if tracer is not None:
        tracer.event(
            "store.ingest",
            "store",
            start_ns,
            tracer.now_ns() - start_ns,
            {
                "source": str(directory),
                "kind": kind,
                "inserted": report.inserted,
                "deduplicated": report.deduplicated,
                "conflicts": len(report.conflicts),
            },
        )
    return report


def ingest_directories(conn: sqlite3.Connection, directories: Sequence[Path]) -> IngestReport:
    """Ingest several artifact directories; one transaction each.

    A directory with content conflicts is rolled back and reported but
    does not stop the remaining directories; a directory that fails
    validation raises :class:`StoreError` immediately (nothing about it
    was written).
    """
    report = IngestReport()
    for directory in directories:
        report.directories.append(ingest_directory(conn, directory))
    return report
