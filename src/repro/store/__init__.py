"""repro.store — queryable, persistent corpus of campaign results.

Every sweep/fleet execution emits flat ``results.json``/``results.csv``
per campaign directory; this package folds those artifacts into one
sqlite database (stdlib ``sqlite3``, WAL mode — many concurrent readers,
one writer) keyed by the same ``spec_hash`` + point index + seed identity
that ``--resume`` and ``sweep merge`` already validate:

* :mod:`repro.store.schema` — versioned DDL (``PRAGMA user_version`` +
  ``store_meta``), migration hook, :func:`connect`;
* :mod:`repro.store.ingest` — idempotent ingestion of full/shard/merged/
  partial artifact directories with sha-keyed dedup and structured
  conflict reporting;
* :mod:`repro.store.query` — filter/project/aggregate/export read API
  plus byte-faithful record reconstruction;
* :mod:`repro.store.resume` — ``--resume-from-store``, sharing manifest
  resume's validation gate;
* :mod:`repro.store.cli` — the ``python -m repro.run store`` subcommands
  (``ingest`` / ``query`` / ``info``).

Store operations emit ``store.ingest`` / ``store.query`` spans through
:mod:`repro.obs.tracing` when a tracer is installed.  See
``docs/store.md`` for the schema reference and query cookbook.
"""

from repro.store.ingest import DirectoryReport, IngestReport, ingest_directories, ingest_directory
from repro.store.query import (
    aggregate_rows,
    campaign_points,
    format_rows,
    parse_aggregate,
    parse_filter,
    reconstruct_results_payload,
    select_rows,
    store_info,
)
from repro.store.resume import load_reusable_results_from_store
from repro.store.schema import (
    DEFAULT_STORE_DB,
    MIGRATIONS,
    STORE_SCHEMA_VERSION,
    SchemaVersionError,
    StoreError,
    connect,
    register_migration,
    schema_version,
)

__all__ = [
    "DEFAULT_STORE_DB",
    "DirectoryReport",
    "IngestReport",
    "MIGRATIONS",
    "STORE_SCHEMA_VERSION",
    "SchemaVersionError",
    "StoreError",
    "aggregate_rows",
    "campaign_points",
    "connect",
    "format_rows",
    "ingest_directories",
    "ingest_directory",
    "load_reusable_results_from_store",
    "parse_aggregate",
    "parse_filter",
    "reconstruct_results_payload",
    "register_migration",
    "schema_version",
    "select_rows",
    "store_info",
]
