"""``--resume-from-store``: resume a sweep from the store instead of a
directory hunt.

Manifest-based ``--resume`` walks the campaign's output directory looking
for artifact sets whose ``spec_hash`` matches.  The store already indexes
every ingested point by exactly that hash, so resume becomes one lookup:
find the campaign row, reconstruct its point records
(:func:`repro.store.query.campaign_points` returns them byte-faithful),
and push every record through the **same** validation gate manifest
resume uses — :func:`repro.sweep.resume.point_result_from_record` — so
the two paths cannot drift.  ``tests/store/test_resume_from_store.py``
pins that a store resume and a manifest resume of the same campaign
produce byte-identical artifacts with zero recomputed points.

Semantics mirror manifest resume exactly:

* a campaign that is simply *not in the store* (or a missing/other
  campaign's corpus) reuses nothing — silent no-resume, run everything;
* a database that exists but cannot be trusted (wrong schema version,
  records contradicting the current expansion) raises
  :class:`~repro.sweep.resume.ResumeError` — the CLI exits 2;
* a missing database *file* is an error too (``StoreError``): unlike an
  artifact directory, a store path is always explicit user input, so a
  typo must not silently degrade into a full recompute.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict

from repro.store import schema
from repro.store.query import campaign_points
from repro.store.schema import SchemaVersionError, StoreError
from repro.sweep.campaign import CampaignSpec, expand_campaign
from repro.sweep.resume import ResumeError, point_result_from_record, spec_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sweep.execute import PointResult


def load_reusable_results_from_store(spec: CampaignSpec, db_path: Path) -> Dict[int, "PointResult"]:
    """Per-point results of ``spec`` held in the store, keyed by index.

    Returns an empty mapping when the store has no campaign row for this
    spec hash (nothing to reuse).  Raises :class:`StoreError` for a
    missing database file and :class:`ResumeError` (via the shared record
    gate) for stored records that contradict the current expansion —
    the same trust boundary as manifest resume.
    """
    conn = schema.connect(db_path, create=False)
    try:
        row = conn.execute(
            "SELECT id FROM campaigns WHERE spec_hash = ?", (spec_hash(spec),)
        ).fetchone()
        if row is None:
            return {}
        walls = {
            str(wall_row["point_index"]): float(wall_row["wall_seconds"])
            for wall_row in conn.execute(
                "SELECT point_index, wall_seconds FROM points WHERE campaign_id = ?",
                (int(row["id"]),),
            )
        }
        records = campaign_points(conn, int(row["id"]))
    finally:
        conn.close()
    points_by_index = {point.index: point for point in expand_campaign(spec)}
    reusable: Dict[int, "PointResult"] = {}
    for record in records:
        result = point_result_from_record(
            record,
            spec,
            points_by_index,
            walls=walls,
            source=f"{db_path} (campaign {spec.name!r})",
        )
        reusable[result.index] = result
    return reusable


__all__ = [
    "load_reusable_results_from_store",
    "ResumeError",
    "SchemaVersionError",
    "StoreError",
]
