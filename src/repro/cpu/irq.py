"""Interrupt controller.

In the baseline (Figure 1a of the paper) every peripheral event that needs
linking is routed to the processing domain as an interrupt.  The controller
subscribes to the event fabric, latches enabled events as pending interrupt
lines, and presents the highest-priority pending line to the core.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.peripherals.events import EventFabric, EventLine
from repro.sim.component import Component


class InterruptController(Component):
    """Level-latched interrupt controller fed by the event fabric."""

    def __init__(self, name: str = "irq_ctrl", fabric: Optional[EventFabric] = None) -> None:
        super().__init__(name)
        self._fabric: Optional[EventFabric] = None
        self._enabled_lines: Dict[str, int] = {}
        self._pending: Dict[int, bool] = {}
        self.total_interrupts = 0
        if fabric is not None:
            self.connect_fabric(fabric)

    def connect_fabric(self, fabric: EventFabric) -> None:
        """Subscribe to every pulse of the event fabric.

        The subscription is *selective* for the consumer-aware wake protocol:
        the controller only acts on lines in its enabled table, so only those
        are declared observed (``observe_all=False`` plus per-line
        :meth:`~repro.peripherals.events.EventFabric.observe` calls) and
        producers of unrouted lines keep their unbounded idle horizons.
        """
        self._fabric = fabric
        fabric.subscribe(self._on_event, observe_all=False)
        for line_name in self._enabled_lines:
            fabric.observe(line_name)

    def enable_line(self, event_line_name: str, irq_number: int) -> None:
        """Route fabric line ``event_line_name`` to interrupt ``irq_number``."""
        if irq_number < 0:
            raise ValueError("irq number must be non-negative")
        if event_line_name not in self._enabled_lines and self._fabric is not None:
            self._fabric.observe(event_line_name)
        self._enabled_lines[event_line_name] = irq_number
        self._pending.setdefault(irq_number, False)

    def disable_line(self, event_line_name: str) -> None:
        """Stop routing ``event_line_name`` to the core."""
        removed = self._enabled_lines.pop(event_line_name, None)
        if removed is not None and self._fabric is not None:
            self._fabric.unobserve(event_line_name)

    def _on_event(self, line: EventLine) -> None:
        irq_number = self._enabled_lines.get(line.name)
        if irq_number is None:
            return
        if not self._pending.get(irq_number, False):
            self.total_interrupts += 1
        self._pending[irq_number] = True
        self.record("interrupts_raised")

    # ------------------------------------------------------------- core facing

    @property
    def has_pending(self) -> bool:
        """Whether any enabled interrupt is pending."""
        return any(self._pending.values())

    def highest_pending(self) -> Optional[int]:
        """Lowest-numbered (highest-priority) pending interrupt, or ``None``."""
        pending = [irq for irq, is_pending in self._pending.items() if is_pending]
        return min(pending) if pending else None

    def claim(self, irq_number: int) -> None:
        """Core acknowledges ``irq_number``; clears the pending latch."""
        if not self._pending.get(irq_number, False):
            raise RuntimeError(f"interrupt {irq_number} is not pending")
        self._pending[irq_number] = False
        self.record("interrupts_claimed")

    def pending_mask(self) -> int:
        """Bitmask of pending interrupt numbers (for status registers/tests)."""
        mask = 0
        for irq_number, is_pending in self._pending.items():
            if is_pending and irq_number < 32:
                mask |= 1 << irq_number
        return mask

    def reset(self) -> None:
        for irq_number in self._pending:
            self._pending[irq_number] = False
        self.total_interrupts = 0
