"""A tiny instruction model for interrupt-service routines.

This is deliberately *not* a full RISC-V ISS.  The evaluation only needs the
baseline core to execute short interrupt handlers with realistic timing and
realistic bus/memory traffic, so instructions are modelled at the class level
(ALU, load, store, branch) with a handful of architectural registers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

WORD_MASK = 0xFFFF_FFFF


class AluOp(enum.Enum):
    """ALU operations available to handler code."""

    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    MOV = "mov"

    def apply(self, lhs: int, rhs: int) -> int:
        """Compute ``lhs <op> rhs`` with 32-bit wrap-around."""
        if self is AluOp.ADD:
            return (lhs + rhs) & WORD_MASK
        if self is AluOp.SUB:
            return (lhs - rhs) & WORD_MASK
        if self is AluOp.AND:
            return lhs & rhs
        if self is AluOp.OR:
            return lhs | rhs
        if self is AluOp.XOR:
            return lhs ^ rhs
        return rhs & WORD_MASK


class BranchCondition(enum.Enum):
    """Branch comparisons between a register and an immediate."""

    EQ = "eq"
    NE = "ne"
    GT = "gt"
    GE = "ge"
    LT = "lt"
    LE = "le"

    def evaluate(self, value: int, immediate: int) -> bool:
        """Whether the branch is taken."""
        if self is BranchCondition.EQ:
            return value == immediate
        if self is BranchCondition.NE:
            return value != immediate
        if self is BranchCondition.GT:
            return value > immediate
        if self is BranchCondition.GE:
            return value >= immediate
        if self is BranchCondition.LT:
            return value < immediate
        return value <= immediate


class Instruction:
    """Base class; every instruction costs at least one issue cycle."""

    issue_cycles = 1

    def describe(self) -> str:
        """Short mnemonic used in traces."""
        return type(self).__name__.lower()


@dataclass
class Li(Instruction):
    """Load an immediate into a register (models ``lui``/``addi`` pairs as one cycle)."""

    dest: str
    immediate: int

    def describe(self) -> str:
        return f"li {self.dest}, 0x{self.immediate:x}"


@dataclass
class Alu(Instruction):
    """Register-immediate or register-register ALU operation."""

    dest: str
    src: str
    op: AluOp
    immediate: int = 0

    def describe(self) -> str:
        return f"{self.op.value} {self.dest}, {self.src}, 0x{self.immediate:x}"


@dataclass
class Load(Instruction):
    """Load a word from ``address`` into ``dest`` (stalls on the bus)."""

    dest: str
    address: int

    def describe(self) -> str:
        return f"lw {self.dest}, 0x{self.address:08x}"


@dataclass
class Store(Instruction):
    """Store register ``src`` to ``address`` (stalls until the write lands)."""

    src: str
    address: int

    def describe(self) -> str:
        return f"sw {self.src}, 0x{self.address:08x}"


@dataclass
class Branch(Instruction):
    """Compare ``src`` with ``immediate``; if taken, skip the next ``skip_count`` instructions.

    Taken branches cost an extra pipeline-flush cycle on Ibex, which the core
    model accounts for.
    """

    src: str
    condition: BranchCondition
    immediate: int
    skip_count: int = 1

    def describe(self) -> str:
        return f"b{self.condition.value} {self.src}, 0x{self.immediate:x} (+{self.skip_count})"


@dataclass
class Nop(Instruction):
    """Burn ``cycles`` cycles (models handler bookkeeping not otherwise captured)."""

    cycles: int = 1

    def describe(self) -> str:
        return f"nop x{self.cycles}"
