"""Processing-domain models: the Ibex-class core and its interrupt fabric.

The paper's baseline routes every linking event to the main core through a
classic interrupt.  We model the Ibex core at the timing level that matters
for the evaluation: interrupt entry/exit overhead, per-instruction-class
cycle costs, loads/stores that traverse the SoC interconnect and peripheral
bridge, and the instruction-fetch traffic towards the SRAM banks that
dominates the memory-system power in Figure 5.
"""

from repro.cpu.instructions import (
    Alu,
    AluOp,
    Branch,
    BranchCondition,
    Instruction,
    Li,
    Load,
    Nop,
    Store,
)
from repro.cpu.irq import InterruptController
from repro.cpu.ibex import CpuState, IbexCore
from repro.cpu.programs import build_linking_isr, build_threshold_isr

__all__ = [
    "Alu",
    "AluOp",
    "Branch",
    "BranchCondition",
    "CpuState",
    "IbexCore",
    "Instruction",
    "InterruptController",
    "Li",
    "Load",
    "Nop",
    "Store",
    "build_linking_isr",
    "build_threshold_isr",
]
