"""Canned interrupt-service routines for the baseline scenarios.

Two handlers are provided:

* :func:`build_linking_isr` — the minimal linking handler: read a peripheral
  register, OR a mask into it, write it back.  This is the software
  equivalent of PELS's single ``set`` sequenced action and is the handler
  whose 16-cycle latency Section IV-B reports for Ibex.
* :func:`build_threshold_isr` — the evaluation application's handler: clear
  the SPI application flag, read the captured sample, compare it against a
  threshold and, if exceeded, set a GPIO pad — the software equivalent of the
  Figure 3 microcode.
"""

from __future__ import annotations

from typing import List

from repro.cpu.instructions import (
    Alu,
    AluOp,
    Branch,
    BranchCondition,
    Instruction,
    Li,
    Load,
    Store,
)


def build_linking_isr(
    peripheral_register_address: int,
    mask: int,
    source_flag_address: int | None = None,
    source_flag_mask: int = 0x1,
) -> List[Instruction]:
    """Minimal linking handler: acknowledge the source, then read-modify-write.

    A real interrupt handler must first clear the event flag of the producer
    peripheral (write-1-to-clear store), otherwise the interrupt re-fires;
    the linking action itself is then a single lw / ori / sw read-modify-write
    of the consumer register — the software equivalent of PELS's ``set``
    sequenced action.  Peripheral base addresses are assumed to be held in
    saved registers by the firmware's initialisation code, so no address
    formation appears here; the interrupt entry cost covers the vectored
    dispatch.
    """
    instructions: List[Instruction] = []
    if source_flag_address is not None:
        instructions.extend(
            [
                Li(dest="t1", immediate=source_flag_mask),
                Store(src="t1", address=source_flag_address),
            ]
        )
    instructions.extend(
        [
            Load(dest="t0", address=peripheral_register_address),
            Alu(dest="t0", src="t0", op=AluOp.OR, immediate=mask),
            Store(src="t0", address=peripheral_register_address),
        ]
    )
    return instructions


def build_threshold_isr(
    flag_register_address: int,
    flag_mask: int,
    data_register_address: int,
    data_mask: int,
    threshold: int,
    gpio_set_register_address: int,
    gpio_mask: int,
) -> List[Instruction]:
    """Threshold-check handler mirroring the Figure 3 microcode in software.

    Sequence: clear the application flag (read-modify-write), read the data
    register, mask the sample, compare against ``threshold``, and — when the
    sample exceeds it — set the GPIO pad.
    """
    return [
        # clear AFLAG MASK
        Load(dest="t0", address=flag_register_address),
        Alu(dest="t0", src="t0", op=AluOp.AND, immediate=(~flag_mask) & 0xFFFF_FFFF),
        Store(src="t0", address=flag_register_address),
        # capture ADATA 0x0FF
        Load(dest="t1", address=data_register_address),
        Alu(dest="t1", src="t1", op=AluOp.AND, immediate=data_mask),
        # jump-if <= THRES -> skip the GPIO update
        Branch(src="t1", condition=BranchCondition.LE, immediate=threshold, skip_count=3),
        # set AGPIO MASK (read-modify-write on the GPIO OUT register)
        Load(dest="t2", address=gpio_set_register_address),
        Alu(dest="t2", src="t2", op=AluOp.OR, immediate=gpio_mask),
        Store(src="t2", address=gpio_set_register_address),
    ]
