"""Ibex-class core model.

PULPissimo's smallest supported core is the 2-stage, in-order Ibex, which the
paper uses for the interrupt-driven baseline.  The model captures the pieces
of Ibex behaviour the evaluation depends on:

* **Sleep (WFI)**: between linking events the core sits in wait-for-interrupt;
  the clock still toggles (the paper's idle scenario excludes standby
  leakage-saving techniques), which the power model accounts for as idle
  clocking activity.
* **Interrupt entry / exit**: a fixed pipeline-flush + vector-fetch cost on
  entry and an ``mret`` cost on exit.
* **Handler execution**: one instruction per issue cycle, with loads/stores
  stalling on the SoC interconnect and peripheral bridge.
* **Instruction-fetch traffic**: every executed instruction counts one fetch
  from the SRAM banks, the activity that makes the memory system draw 3.7–4.3×
  more power in the baseline than with PELS (Section IV-B).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional

from repro.bus.interconnect import SystemInterconnect
from repro.bus.transaction import BusRequest, TransferKind
from repro.cpu.instructions import (
    Alu,
    Branch,
    Instruction,
    Li,
    Load,
    Nop,
    Store,
    WORD_MASK,
)
from repro.cpu.irq import InterruptController
from repro.sim.component import Component

# Ibex interrupt timing (cycles).  Entry covers the pipeline flush, the
# vectored dispatch, and the first handler-instruction fetch from the L2
# memory; exit covers ``mret``.
DEFAULT_INTERRUPT_ENTRY_CYCLES = 5
DEFAULT_MRET_CYCLES = 2
TAKEN_BRANCH_PENALTY = 1


class CpuState(enum.Enum):
    """Top-level state of the core."""

    SLEEPING = "sleeping"
    INTERRUPT_ENTRY = "interrupt_entry"
    EXECUTING = "executing"
    MRET = "mret"
    STALLED = "stalled"


class IbexCore(Component):
    """Timing-level model of the Ibex core servicing linking interrupts."""

    def __init__(
        self,
        name: str = "ibex",
        interconnect: Optional[SystemInterconnect] = None,
        irq_controller: Optional[InterruptController] = None,
        interrupt_entry_cycles: int = DEFAULT_INTERRUPT_ENTRY_CYCLES,
        mret_cycles: int = DEFAULT_MRET_CYCLES,
        instruction_memory: Optional[object] = None,
    ) -> None:
        super().__init__(name)
        self.interconnect = interconnect
        self.irq_controller = irq_controller
        self.interrupt_entry_cycles = interrupt_entry_cycles
        self.mret_cycles = mret_cycles
        self.instruction_memory = instruction_memory
        self.registers: Dict[str, int] = {}
        # When True the core's clock is gated while sleeping (the PELS-driven
        # scenarios): WFI cycles then cost no clock-tree activity.
        self.clock_gated = False
        self.state = CpuState.SLEEPING
        self._isr_table: Dict[int, List[Instruction]] = {}
        self._isr_done_callbacks: Dict[int, Callable[[], None]] = {}
        self._current_isr: List[Instruction] = []
        self._current_irq: Optional[int] = None
        self._pc = 0
        self._countdown = 0
        self._pending_request: Optional[BusRequest] = None
        self._pending_load_dest: Optional[str] = None
        # Statistics consumed by the latency and power analyses.
        self.instructions_retired = 0
        self.interrupts_serviced = 0
        self.sleep_cycles = 0
        self.active_cycles = 0
        self.stall_cycles = 0
        self.loads = 0
        self.stores = 0
        self.last_interrupt_cycle: Optional[int] = None
        self.last_handler_done_cycle: Optional[int] = None
        self.last_store_complete_cycle: Optional[int] = None

    # ------------------------------------------------------------ configuration

    def register_isr(
        self,
        irq_number: int,
        instructions: List[Instruction],
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """Install the handler executed when ``irq_number`` is taken."""
        if irq_number < 0:
            raise ValueError("irq number must be non-negative")
        self._isr_table[irq_number] = list(instructions)
        if on_done is not None:
            self._isr_done_callbacks[irq_number] = on_done

    # ---------------------------------------------------------------- behaviour

    def tick(self, cycle: int) -> None:
        if self.state is CpuState.SLEEPING:
            self._tick_sleeping(cycle)
        elif self.state is CpuState.INTERRUPT_ENTRY:
            self._tick_countdown(cycle, next_state=CpuState.EXECUTING)
        elif self.state is CpuState.EXECUTING:
            self._tick_executing(cycle)
        elif self.state is CpuState.STALLED:
            self._tick_stalled(cycle)
        elif self.state is CpuState.MRET:
            self._tick_countdown(cycle, next_state=CpuState.SLEEPING)

    def _tick_sleeping(self, cycle: int) -> None:
        self.sleep_cycles += 1
        self.record("gated_cycles" if self.clock_gated else "sleep_cycles")
        if self.irq_controller is None or not self.irq_controller.has_pending:
            return
        irq_number = self.irq_controller.highest_pending()
        assert irq_number is not None
        if irq_number not in self._isr_table:
            return
        self.irq_controller.claim(irq_number)
        self._current_irq = irq_number
        self._current_isr = self._isr_table[irq_number]
        self._pc = 0
        self._countdown = self.interrupt_entry_cycles
        self.state = CpuState.INTERRUPT_ENTRY
        self.last_interrupt_cycle = cycle
        self.interrupts_serviced += 1
        self.record("interrupts_taken")

    def _tick_countdown(self, cycle: int, next_state: CpuState) -> None:
        self.active_cycles += 1
        self.record("active_cycles")
        self._fetch_activity()
        self._countdown -= 1
        if self._countdown > 0:
            return
        if next_state is CpuState.SLEEPING:
            self._finish_handler(cycle)
        self.state = next_state

    def _tick_executing(self, cycle: int) -> None:
        self.active_cycles += 1
        self.record("active_cycles")
        if self._pc >= len(self._current_isr):
            self._countdown = self.mret_cycles
            self.state = CpuState.MRET
            self._fetch_activity()
            return
        instruction = self._current_isr[self._pc]
        self._fetch_activity()
        self._execute(instruction, cycle)

    def _tick_stalled(self, cycle: int) -> None:
        self.active_cycles += 1
        self.stall_cycles += 1
        self.record("active_cycles")
        self.record("stall_cycles")
        request = self._pending_request
        if request is None or not request.done:
            return
        if request.error:
            # A bus-error response surfaces to software as a zero read / lost
            # store; the handler continues (Ibex would trap, but the linking
            # handlers here have no recovery path beyond carrying on).
            self.record("bus_errors")
        if request.kind is TransferKind.READ and self._pending_load_dest is not None:
            self.registers[self._pending_load_dest] = 0 if request.error else request.rdata
        if request.kind is TransferKind.WRITE and request.response is not None:
            self.last_store_complete_cycle = request.response.completed_cycle
        self._pending_request = None
        self._pending_load_dest = None
        self.instructions_retired += 1
        self._pc += 1
        self.state = CpuState.EXECUTING

    # ----------------------------------------------------------- instruction exec

    def _execute(self, instruction: Instruction, cycle: int) -> None:
        if isinstance(instruction, Li):
            self.registers[instruction.dest] = instruction.immediate & WORD_MASK
            self._retire()
        elif isinstance(instruction, Alu):
            source = self.registers.get(instruction.src, 0)
            self.registers[instruction.dest] = instruction.op.apply(source, instruction.immediate)
            self._retire()
        elif isinstance(instruction, Nop):
            # A multi-cycle NOP models handler bookkeeping; burn the cycles inline.
            if instruction.cycles > 1:
                self._countdown = instruction.cycles - 1
                self.state = CpuState.INTERRUPT_ENTRY  # reuse the countdown machinery
            self._retire()
        elif isinstance(instruction, Branch):
            value = self.registers.get(instruction.src, 0)
            taken = instruction.condition.evaluate(value, instruction.immediate)
            self.record("branches")
            if taken:
                self.record("branches_taken")
                self._pc += instruction.skip_count
                self.active_cycles += TAKEN_BRANCH_PENALTY
                self.record("active_cycles", TAKEN_BRANCH_PENALTY)
            self._retire()
        elif isinstance(instruction, Load):
            self._issue_memory(TransferKind.READ, instruction.address, 0)
            self._pending_load_dest = instruction.dest
            self.loads += 1
            self.record("loads")
        elif isinstance(instruction, Store):
            value = self.registers.get(instruction.src, 0)
            self._issue_memory(TransferKind.WRITE, instruction.address, value)
            self.stores += 1
            self.record("stores")
        else:  # pragma: no cover - all instruction kinds handled
            raise RuntimeError(f"unknown instruction {instruction!r}")

    def _retire(self) -> None:
        self.instructions_retired += 1
        self._pc += 1

    def _issue_memory(self, kind: TransferKind, address: int, value: int) -> None:
        if self.interconnect is None:
            raise RuntimeError(f"{self.name}: load/store issued but no interconnect connected")
        request = BusRequest(master=self.name, kind=kind, address=address, wdata=value)
        self.interconnect.submit(request)
        self._pending_request = request
        self.state = CpuState.STALLED

    def _fetch_activity(self) -> None:
        """Account one instruction fetch from the SRAM banks."""
        self.record("ifetches")
        if self.instruction_memory is not None and hasattr(self.instruction_memory, "record_fetch"):
            self.instruction_memory.record_fetch()

    def _finish_handler(self, cycle: int) -> None:
        self.last_handler_done_cycle = cycle
        callback = self._isr_done_callbacks.get(self._current_irq or -1)
        if callback is not None:
            callback()
        self._current_irq = None
        self._current_isr = []
        self._pc = 0
        self.record("handlers_completed")

    # ------------------------------------------------------------ wake protocol

    def next_event(self):
        if self.state is not CpuState.SLEEPING:
            return 1
        if self.irq_controller is not None and self.irq_controller.has_pending:
            irq_number = self.irq_controller.highest_pending()
            if irq_number in self._isr_table:
                return 1
        # WFI with nothing serviceable: the clock still toggles (or is gated),
        # which skip() accounts for, but only an external interrupt wakes us.
        return None

    def skip(self, cycles: int) -> None:
        if self.state is not CpuState.SLEEPING:
            return
        self.sleep_cycles += cycles
        self.record("gated_cycles" if self.clock_gated else "sleep_cycles", cycles)

    # ------------------------------------------------------------------- status

    @property
    def sleeping(self) -> bool:
        """Whether the core is in WFI."""
        return self.state is CpuState.SLEEPING

    @property
    def busy(self) -> bool:
        """Whether the core is handling an interrupt."""
        return self.state is not CpuState.SLEEPING

    def reset(self) -> None:
        self.registers = {}
        self.state = CpuState.SLEEPING
        self._current_isr = []
        self._current_irq = None
        self._pc = 0
        self._countdown = 0
        self._pending_request = None
        self._pending_load_dest = None
        self.instructions_retired = 0
        self.interrupts_serviced = 0
        self.sleep_cycles = 0
        self.active_cycles = 0
        self.stall_cycles = 0
        self.loads = 0
        self.stores = 0
        self.last_interrupt_cycle = None
        self.last_handler_done_cycle = None
        self.last_store_complete_cycle = None
