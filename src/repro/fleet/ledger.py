"""The fleet ledger: ``fleet.json``, the audit trail of one orchestration.

Everything the fleet did — every attempt of every shard with its exit
classification, validation verdict, wall time and log path; every heal
round with its backoff and the gap it was dispatched to close; the final
status and exit code — lands in one JSON document next to the campaign's
artifacts.  The ledger is pure bookkeeping: it never influences results
(the merged artifacts stay byte-identical to a serial run) and it is what
``python -m repro.run fleet status <dir>`` renders back for humans.

Fleet-level telemetry reuses the PR 7 metrics registry
(:class:`~repro.obs.metrics.MetricsRegistry`): attempt counters labelled by
outcome, healed/computed point counters, and a shard wall-time histogram,
serialised under the ledger's ``metrics`` key in the same schema the sweep
manifest uses — so ``stats``-style tooling can consume either.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

from repro.fleet.supervisor import Attempt

FLEET_JSON = "fleet.json"

#: Ledger schema version (independent of the artifact schema).
LEDGER_SCHEMA_VERSION = 1

STATUS_COMPLETE = "complete"
STATUS_PARTIAL = "partial"


def _summarise_indices(indices: List[int], limit: int = 16) -> List[int]:
    return sorted(indices)[:limit]


class FleetLedger:
    """Accumulates the orchestration record and writes ``fleet.json``."""

    def __init__(
        self,
        campaign: str,
        spec_hash: str,
        points_total: int,
        workers: int,
        transport: str,
        timeout: Optional[float],
        max_retries: int,
        backoff_base: float,
        backoff_cap: float,
    ) -> None:
        self.campaign = campaign
        self.spec_hash = spec_hash
        self.points_total = points_total
        self.config = {
            "workers": workers,
            "transport": transport,
            "timeout_seconds": timeout,
            "max_retries": max_retries,
            "backoff_base_seconds": backoff_base,
            "backoff_cap_seconds": backoff_cap,
        }
        self.rounds: List[Dict[str, object]] = []
        self.notes: List[str] = []
        self.metrics = MetricsRegistry()
        self.status: Optional[str] = None
        self.exit_code: Optional[int] = None
        self.wall_seconds: float = 0.0
        self.missing: List[int] = []
        self.artifacts: Dict[str, str] = {}

    # ------------------------------------------------------------- rounds

    def start_round(
        self, index: int, backoff_seconds: float, missing_before: List[int]
    ) -> Dict[str, object]:
        """Open round ``index`` (0 = the initial cut; ≥1 = heal rounds)."""
        record: Dict[str, object] = {
            "round": index,
            "backoff_seconds": backoff_seconds,
            "missing_before": len(missing_before),
            "missing_before_sample": _summarise_indices(missing_before),
            "attempts": [],
        }
        self.rounds.append(record)
        self.metrics.counter("fleet.rounds").inc()
        return record

    def record_attempt(
        self, round_record: Dict[str, object], attempt: Attempt, points_delivered: int
    ) -> None:
        """Append one finished attempt to its round."""
        start, stop = attempt.shard.span or (None, None)
        entry: Dict[str, object] = {
            "shard": str(attempt.shard),
            "span": [start, stop] if start is not None else None,
            "attempt": attempt.number,
            "outcome": attempt.outcome,
            "exit_class": attempt.exit_class,
            "returncode": attempt.returncode,
            "accepted": attempt.accepted,
            "points_delivered": points_delivered,
            "wall_seconds": round(attempt.wall_seconds, 6),
            "artifact_dir": str(attempt.artifact_dir),
            "log": str(attempt.handle.spec.log_path) if attempt.handle else None,
            "worker": attempt.handle.ident if attempt.handle else None,
        }
        if attempt.detail:
            entry["detail"] = attempt.detail
        if attempt.chaos:
            entry["chaos"] = attempt.chaos
        round_record["attempts"].append(entry)
        self.metrics.counter("fleet.attempts", {"outcome": attempt.outcome or "unknown"}).inc()
        self.metrics.counter("fleet.points", {"kind": "delivered"}).inc(points_delivered)
        self.metrics.histogram("fleet.shard_wall_seconds").observe(attempt.wall_seconds)

    # -------------------------------------------------------------- final

    def note(self, message: str) -> None:
        self.notes.append(message)

    def finish(
        self,
        status: str,
        exit_code: int,
        wall_seconds: float,
        missing: List[int],
        artifacts: Dict[str, Path],
    ) -> None:
        self.status = status
        self.exit_code = exit_code
        self.wall_seconds = wall_seconds
        self.missing = list(missing)
        self.artifacts = {key: str(path) for key, path in artifacts.items()}
        self.metrics.counter("fleet.points", {"kind": "missing"}).inc(len(missing))

    def payload(self) -> Dict[str, object]:
        return {
            "schema_version": LEDGER_SCHEMA_VERSION,
            "campaign": self.campaign,
            "spec_hash": self.spec_hash,
            "points_total": self.points_total,
            "config": dict(self.config),
            "status": self.status,
            "exit_code": self.exit_code,
            "wall_seconds": round(self.wall_seconds, 6),
            "missing": len(self.missing),
            "missing_sample": _summarise_indices(self.missing),
            "rounds": self.rounds,
            "notes": self.notes,
            "artifacts": dict(self.artifacts),
            "metrics": self.metrics.as_dict(),
        }

    def write(self, directory: Path) -> Path:
        """Write ``fleet.json`` into ``directory``; return the path."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / FLEET_JSON
        path.write_text(
            json.dumps(self.payload(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return path


# ------------------------------------------------------------------ render


def load_ledger(directory: Path) -> Dict[str, object]:
    """Read a ``fleet.json`` (the file itself, or the directory holding it).

    Raises ``ValueError`` with the path named when the ledger is missing or
    unparseable.
    """
    path = Path(directory)
    if path.is_dir():
        path = path / FLEET_JSON
    if not path.exists():
        raise ValueError(f"{path}: no fleet ledger found")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ValueError(f"{path}: invalid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object at the top level")
    return payload


def render_ledger(payload: Dict[str, object]) -> str:
    """Human-readable rendering of a ledger payload (``fleet status``)."""
    lines: List[str] = []
    config = payload.get("config") or {}
    lines.append(
        f"fleet {payload.get('campaign')!s}: {payload.get('status')} "
        f"(exit {payload.get('exit_code')}) in {payload.get('wall_seconds', 0.0):.2f}s"
    )
    lines.append(
        f"  points {payload.get('points_total')} total, {payload.get('missing', 0)} missing"
        + (f" (sample: {payload.get('missing_sample')})" if payload.get("missing") else "")
    )
    lines.append(
        f"  config: workers={config.get('workers')} transport={config.get('transport')} "
        f"timeout={config.get('timeout_seconds')}s max-retries={config.get('max_retries')} "
        f"backoff={config.get('backoff_base_seconds')}s..{config.get('backoff_cap_seconds')}s"
    )
    counters = (payload.get("metrics") or {}).get("counter") or {}
    if any(key.startswith("cache.") for key in counters):
        shared = counters.get("kernel.plan_shared")
        lines.append(
            f"  plan cache ({config.get('plan_cache')}): "
            f"{counters.get('cache.hit', 0)} hits, {counters.get('cache.miss', 0)} misses, "
            f"{counters.get('cache.write', 0)} writes, {counters.get('cache.error', 0)} errors"
            + (f"; kernel.plan_shared={shared} fleet-wide" if shared is not None else "")
        )
    for round_record in payload.get("rounds", []):
        backoff = round_record.get("backoff_seconds", 0.0)
        heading = (
            f"  round {round_record.get('round')}"
            + (f" (backoff {backoff:.2f}s)" if backoff else "")
            + f": {round_record.get('missing_before')} point(s) to cover"
        )
        lines.append(heading)
        for attempt in round_record.get("attempts", []):
            mark = "+" if attempt.get("accepted") else "-"
            chaos = f" chaos={attempt['chaos']}" if attempt.get("chaos") else ""
            lines.append(
                f"    {mark} shard {attempt.get('shard')} attempt {attempt.get('attempt')}: "
                f"{attempt.get('outcome')} rc={attempt.get('returncode')} "
                f"{attempt.get('points_delivered')} point(s) "
                f"in {attempt.get('wall_seconds', 0.0):.2f}s{chaos}"
            )
            if attempt.get("detail"):
                lines.append(f"      {attempt['detail']}")
    for note in payload.get("notes", []):
        lines.append(f"  note: {note}")
    artifacts = payload.get("artifacts") or {}
    for key in sorted(artifacts):
        lines.append(f"  {key}: {artifacts[key]}")
    return "\n".join(lines)
