"""repro.fleet — fault-tolerant autonomous campaign orchestration.

The fleet drives a whole sweep campaign through ordinary ``sweep --shard``
workers: cost-weighted shard cuts, pluggable worker transports, heartbeat
supervision with timeouts and kill discipline, validation-driven acceptance,
heal-driven retry with exponential backoff, and graceful degradation to
partial artifacts when the retry budget runs out.  With ``--store DB``
every accepted shard is also ingested into the results store
(:mod:`repro.store`) the moment validation accepts it.  Entry point:
``python -m repro.run fleet <campaign> --workers N``.

Module map:

* :mod:`~repro.fleet.cost` — per-point cost estimation and span cuts
  (calibrated from past manifests and, with ``--store``, from the
  results store's accumulated timings);
* :mod:`~repro.fleet.transport` — how one shard runs somewhere (local
  subprocess today; the registry is where ssh/object-storage slot in);
* :mod:`~repro.fleet.supervisor` — bounded concurrency, deadlines, kills,
  exit classification;
* :mod:`~repro.fleet.controller` — the orchestration loop itself;
* :mod:`~repro.fleet.ledger` — the ``fleet.json`` audit trail and its
  ``fleet status`` rendering.
"""

from repro.fleet.controller import (
    CHAOS_FAULTS,
    CORRUPT_ARTIFACTS,
    COMPLETED,
    EXIT_COMPLETE,
    EXIT_PARTIAL,
    PARTIAL_DELIVERY,
    FleetConfig,
    FleetResult,
    parse_chaos,
    run_fleet,
)
from repro.fleet.cost import (
    DEFAULT_SECONDS_PER_CYCLE,
    cut_shards,
    cut_spans,
    estimate_costs,
    scavenge_point_walls,
    store_point_walls,
)
from repro.fleet.ledger import (
    FLEET_JSON,
    LEDGER_SCHEMA_VERSION,
    STATUS_COMPLETE,
    STATUS_PARTIAL,
    FleetLedger,
    load_ledger,
    render_ledger,
)
from repro.fleet.supervisor import (
    CRASH,
    EXITED,
    NONZERO_EXIT,
    TIMEOUT,
    Attempt,
    Supervisor,
)
from repro.fleet.transport import (
    LocalSubprocessTransport,
    Transport,
    WorkerHandle,
    WorkerSpec,
    default_worker_argv,
    resolve_transport,
)

__all__ = [
    "CHAOS_FAULTS",
    "COMPLETED",
    "CORRUPT_ARTIFACTS",
    "CRASH",
    "DEFAULT_SECONDS_PER_CYCLE",
    "EXIT_COMPLETE",
    "EXIT_PARTIAL",
    "EXITED",
    "FLEET_JSON",
    "LEDGER_SCHEMA_VERSION",
    "NONZERO_EXIT",
    "PARTIAL_DELIVERY",
    "STATUS_COMPLETE",
    "STATUS_PARTIAL",
    "TIMEOUT",
    "Attempt",
    "FleetConfig",
    "FleetLedger",
    "FleetResult",
    "LocalSubprocessTransport",
    "Supervisor",
    "Transport",
    "WorkerHandle",
    "WorkerSpec",
    "cut_shards",
    "cut_spans",
    "default_worker_argv",
    "estimate_costs",
    "load_ledger",
    "parse_chaos",
    "render_ledger",
    "resolve_transport",
    "run_fleet",
    "scavenge_point_walls",
    "store_point_walls",
]
