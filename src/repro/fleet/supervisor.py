"""Worker supervision: bounded concurrency, deadlines, and kill duty.

One round of the fleet is a set of launch thunks (one per shard).  The
:class:`Supervisor` runs at most ``max_workers`` of them at a time, polls
every running handle on a short interval (the heartbeat), and enforces two
kinds of kill:

* **deadline** — a worker that outlives ``timeout`` seconds is SIGKILLed
  and its attempt marked ``timeout``; a hung simulation must not wedge the
  whole fleet;
* **scheduled** (``kill_at``) — chaos injection: the controller can arm an
  attempt to be killed shortly after launch, which is how the chaos tests
  produce a real mid-shard SIGKILL through exactly the production path.

The supervisor only *classifies how the process exited* (``timeout``,
``crash`` for signal deaths, ``nonzero-exit``, ``exited`` for rc 0).
Whether the attempt actually *delivered* is decided later by artifact
validation in the controller — a timeout victim that flushed its artifacts
still counts, a clean exit with a truncated results.json does not.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.sweep.campaign import ShardSpec

from repro.fleet.transport import WorkerHandle

#: Exit classifications the supervisor assigns (pre-validation).
TIMEOUT = "timeout"
CRASH = "crash"
NONZERO_EXIT = "nonzero-exit"
EXITED = "exited"


@dataclass
class Attempt:
    """One execution attempt of one shard."""

    shard: ShardSpec
    #: 1-based attempt number for this shard's span (ledger bookkeeping).
    number: int
    #: The artifact directory this attempt is expected to produce.
    artifact_dir: "object"
    handle: Optional[WorkerHandle] = None
    started: float = 0.0
    #: Monotonic deadline; ``None`` disables the timeout.
    deadline: Optional[float] = None
    #: Monotonic instant at which to SIGKILL this attempt (chaos injection).
    kill_at: Optional[float] = None
    returncode: Optional[int] = None
    wall_seconds: float = 0.0
    #: Supervisor exit classification (one of the module constants).
    exit_class: Optional[str] = None
    #: Filled by the controller after artifact validation.
    outcome: Optional[str] = None
    accepted: bool = False
    detail: str = ""
    #: Chaos fault injected into this attempt, if any (ledger audit trail).
    chaos: Optional[str] = None


#: A thunk that launches one attempt and returns it with ``handle``,
#: ``started``, ``deadline`` and (optionally) ``kill_at`` populated.
LaunchFn = Callable[[], Attempt]


class Supervisor:
    """Run launch thunks with bounded concurrency and kill discipline."""

    def __init__(
        self,
        max_workers: int,
        poll_interval: float = 0.05,
        on_exit: Optional[Callable[[Attempt], None]] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be at least 1, got {max_workers}")
        self.max_workers = max_workers
        self.poll_interval = poll_interval
        self.on_exit = on_exit

    def run(self, launches: Sequence[LaunchFn]) -> List[Attempt]:
        """Run every launch to completion; return attempts in launch order."""
        pending = list(launches)
        running: List[Attempt] = []
        finished: List[Attempt] = []
        order: List[Attempt] = []
        while pending or running:
            while pending and len(running) < self.max_workers:
                attempt = pending.pop(0)()
                order.append(attempt)
                running.append(attempt)
            now = time.monotonic()
            still_running: List[Attempt] = []
            for attempt in running:
                if self._sweep(attempt, now):
                    finished.append(attempt)
                    if self.on_exit is not None:
                        self.on_exit(attempt)
                else:
                    still_running.append(attempt)
            running = still_running
            if running and not (pending and len(running) < self.max_workers):
                time.sleep(self.poll_interval)
        return order

    def _sweep(self, attempt: Attempt, now: float) -> bool:
        """Poll one attempt; kill it when a deadline or chaos timer fires.
        Returns True once the attempt has fully exited."""
        handle = attempt.handle
        returncode = handle.poll()
        if returncode is None:
            timed_out = attempt.deadline is not None and now >= attempt.deadline
            chaos_due = attempt.kill_at is not None and now >= attempt.kill_at
            if timed_out or chaos_due:
                handle.kill()
                if timed_out:
                    # Mark now: the post-kill returncode will be a signal
                    # death, which must classify as timeout, not crash.
                    attempt.exit_class = TIMEOUT
            return False
        attempt.returncode = returncode
        attempt.wall_seconds = now - attempt.started
        if attempt.exit_class is None:
            if returncode == 0:
                attempt.exit_class = EXITED
            elif returncode < 0:
                attempt.exit_class = CRASH
            else:
                attempt.exit_class = NONZERO_EXIT
        return True
