"""The fleet controller: autonomous, fault-tolerant campaign orchestration.

One call to :func:`run_fleet` drives a whole campaign end to end:

1. **Cut** — the expanded grid is split into cost-weighted contiguous spans
   (:mod:`repro.fleet.cost`), calibrated from any past manifest timings
   found under ``--out``.
2. **Dispatch** — each span runs as an ordinary ``python -m repro.run sweep
   <campaign> --shard I/N@START:STOP`` worker through the configured
   :mod:`transport <repro.fleet.transport>`, so artifacts are produced by
   exactly the code path a human would use and stay byte-identical.
3. **Supervise** — the :class:`~repro.fleet.supervisor.Supervisor` polls
   every worker, SIGKILLs any that outlive the timeout, and classifies the
   exits (timeout / crash / nonzero-exit); acceptance is then decided by
   **artifact validation** (:func:`repro.sweep.merge.validate_shard_dir`),
   never by exit status alone — a killed worker that flushed valid
   artifacts is salvaged, a clean exit with a truncated results.json is
   classified ``corrupt-artifacts`` and rejected.
4. **Heal** — the accepted directories are merged; on incomplete coverage
   the standard heal plan is written to ``heal.json`` and **consumed right
   back**: its shard specs are re-dispatched after an exponential backoff
   (``base·2^(round-1)``, capped), for at most ``--max-retries`` heal
   rounds.  Only missing points are ever re-run.
5. **Degrade** — if the retry budget runs out, every completed point is
   salvaged into partial merged artifacts under ``<campaign>/partial/``,
   the final ``heal.json`` stays as the hand-off, and the fleet exits with
   the distinct code :data:`EXIT_PARTIAL`.  Completed work is never lost.

Everything the fleet does is recorded in the ``fleet.json`` ledger
(:mod:`repro.fleet.ledger`), including per-attempt telemetry counters in
the PR 7 metrics schema.  Chaos faults (``--chaos kill:0,hang:3``) inject
real failures — an actual SIGKILL, an argv swapped for a sleeper, a
post-exit artifact truncation — through the production supervision path,
which is what ``tests/fleet/`` and the ``fleet-chaos`` CI job drive.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sweep.artifacts import MANIFEST_JSON, RESULTS_JSON, shard_dirname
from repro.sweep.campaign import CampaignSpec, ShardSpec, expand_campaign
from repro.sweep.merge import (
    HEAL_JSON,
    IncompleteCoverageError,
    MergedCampaign,
    MergeError,
    merge_shards,
    plan_heal,
    validate_shard_dir,
    write_heal_plan,
    write_merged_artifacts,
)
from repro.sweep.resume import spec_hash

from repro.fleet.cost import cut_shards, estimate_costs, scavenge_point_walls, store_point_walls
from repro.fleet.ledger import STATUS_COMPLETE, STATUS_PARTIAL, FleetLedger
from repro.fleet.supervisor import CRASH, EXITED, NONZERO_EXIT, TIMEOUT, Attempt, Supervisor
from repro.fleet.transport import (
    Transport,
    WorkerSpec,
    default_worker_argv,
    resolve_transport,
)

#: Fleet exit codes.  0 = complete; 4 = retry budget exhausted but partial
#: artifacts + heal.json + ledger written (distinct from the sweep CLI's
#: 1/2/3 so automation can tell graceful degradation from hard failure).
EXIT_COMPLETE = 0
EXIT_PARTIAL = 4

#: Validated-outcome labels (the supervisor's exit classes plus the two
#: verdicts only artifact validation can assign).
COMPLETED = "completed"
PARTIAL_DELIVERY = "partial-delivery"
CORRUPT_ARTIFACTS = "corrupt-artifacts"

CHAOS_FAULTS = ("kill", "hang", "truncate")


def parse_chaos(text: str) -> Dict[int, str]:
    """Parse ``--chaos kill:0,hang:3,truncate:5`` into ``{ordinal: fault}``.

    The ordinal counts worker launches fleet-wide (0-based, across rounds),
    so a fault targets one specific attempt and its retry runs clean.
    """
    plan: Dict[int, str] = {}
    for part in filter(None, (piece.strip() for piece in text.split(","))):
        fault, sep, ordinal_text = part.partition(":")
        if not sep or fault not in CHAOS_FAULTS:
            raise ValueError(
                f"chaos spec {part!r} must be fault:ordinal with fault one of "
                f"{', '.join(CHAOS_FAULTS)}"
            )
        try:
            ordinal = int(ordinal_text)
        except ValueError:
            raise ValueError(f"chaos spec {part!r}: ordinal must be an integer") from None
        if ordinal < 0:
            raise ValueError(f"chaos spec {part!r}: ordinal must be non-negative")
        if ordinal in plan:
            raise ValueError(f"chaos spec: ordinal {ordinal} given twice")
        plan[ordinal] = fault
    return plan


@dataclass
class FleetConfig:
    """Everything one fleet run needs (CLI flags map 1:1 onto this)."""

    campaign: str
    workers: int
    out: Path = Path("results/sweeps")
    max_retries: int = 3
    timeout: Optional[float] = 600.0
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    #: ``--jobs`` passed to each worker (workers already parallelise across
    #: shards, so per-worker pools default to serial).
    worker_jobs: int = 1
    transport: str = "local"
    #: Thread telemetry through the workers (--trace-out/--profile) so the
    #: merged artifacts carry a stitched multi-lane Perfetto trace.
    trace: bool = False
    #: Results-store database to feed and feed from (``--store``): accepted
    #: shard artifacts are ingested the moment validation accepts them, and
    #: the cost model calibrates from stored timings in addition to the
    #: directory scavenge.  ``None`` disables both (the default).  Store
    #: failures degrade to ledger notes — the store is an accelerant, never
    #: a dependency of campaign completion.
    store: Optional[Path] = None
    #: Shared prepared-state snapshot cache directory passed to every worker
    #: (``--plan-cache``).  ``None`` auto-provisions
    #: ``<out>/<campaign>/plan-cache`` — :func:`run_fleet` resolves it and
    #: writes the resolved path back here so every launch (including heal
    #: rounds) uses the same directory.  Workers running with a plan cache
    #: also run ``--profile`` so their manifests carry kernel stats and the
    #: ledger can aggregate ``plan_shared``/cache counters fleet-wide.
    plan_cache: Optional[Path] = None
    #: ``--no-plan-cache`` disables warm starts entirely.
    plan_cache_enabled: bool = True
    #: Fault injection: launch ordinal -> fault (see :func:`parse_chaos`).
    chaos: Dict[int, str] = field(default_factory=dict)
    #: Seconds after launch at which a ``kill`` chaos fault fires.
    chaos_kill_delay: float = 0.15
    poll_interval: float = 0.05
    #: Progress sink (fleet progress lines; default stderr).
    echo: Callable[[str], None] = lambda message: print(message, file=sys.stderr, flush=True)


@dataclass
class FleetResult:
    """What :func:`run_fleet` produced."""

    status: str
    exit_code: int
    rounds: int
    missing: List[int]
    artifacts: Dict[str, Path]
    ledger_path: Path
    campaign_dir: Path


class _ChaosInjector:
    """Applies the chaos plan at the three injection points."""

    def __init__(self, plan: Dict[int, str], kill_delay: float) -> None:
        self.plan = dict(plan)
        self.kill_delay = kill_delay
        self.launches = 0

    def next_fault(self) -> Optional[str]:
        fault = self.plan.get(self.launches)
        self.launches += 1
        return fault

    @staticmethod
    def hang_argv() -> List[str]:
        # A worker that never makes progress: exercises the timeout path for
        # real (the supervisor must notice and SIGKILL it).
        return [sys.executable, "-c", "import time; time.sleep(3600)"]

    @staticmethod
    def truncate_artifacts(artifact_dir: Path) -> None:
        results = Path(artifact_dir) / RESULTS_JSON
        if results.exists():
            text = results.read_text(encoding="utf-8")
            results.write_text(text[: max(len(text) // 2, 1)], encoding="utf-8")


def _worker_argv(config: FleetConfig, shard: ShardSpec) -> List[str]:
    argv = default_worker_argv() + [
        "sweep",
        config.campaign,
        "--shard",
        str(shard),
        "--out",
        str(config.out),
        "--jobs",
        str(config.worker_jobs),
    ]
    if config.trace:
        argv += ["--trace-out", "trace.json", "--profile"]
    if config.plan_cache_enabled and config.plan_cache is not None:
        argv += ["--plan-cache", str(config.plan_cache)]
        if not config.trace:
            # Kernel stats only reach the shard manifest under --profile;
            # the ledger needs them to aggregate plan_shared fleet-wide.
            argv += ["--profile"]
    return argv


def _span_points(shard: ShardSpec, points_total: int) -> int:
    start, stop = shard.bounds(points_total)
    return stop - start


def run_fleet(config: FleetConfig, spec: Optional[CampaignSpec] = None) -> FleetResult:
    """Drive ``config.campaign`` end to end; see the module docstring.

    ``spec`` overrides the registry lookup (tests register ad-hoc
    campaigns in-process; subprocess workers can only see built-ins, so
    overriding only makes sense together with a registered campaign name).
    Raises ``KeyError`` for an unknown campaign and ``ValueError`` for
    unusable configuration — CLI-layer concerns; once dispatch starts, all
    failure is handled, ledgered, and expressed in the exit code.
    """
    if config.workers < 1:
        raise ValueError(f"--workers must be at least 1, got {config.workers}")
    if config.max_retries < 0:
        raise ValueError(f"--max-retries must be non-negative, got {config.max_retries}")
    if spec is None:
        from repro.sweep.campaigns import campaign as campaign_lookup

        spec = campaign_lookup(config.campaign)
    points = expand_campaign(spec)
    points_total = len(points)
    campaign_dir = Path(config.out) / spec.name
    log_dir = campaign_dir / "fleet-logs"
    transport = resolve_transport(config.transport)
    if config.plan_cache_enabled:
        # One shared snapshot cache for the whole fleet: the first worker to
        # reach a horizon publishes, every later worker (and every heal-round
        # re-run) warm-starts from it.
        if config.plan_cache is None:
            config.plan_cache = campaign_dir / "plan-cache"
        config.plan_cache.mkdir(parents=True, exist_ok=True)
        config.echo(f"fleet: shared plan cache at {config.plan_cache}")
    ledger = FleetLedger(
        campaign=spec.name,
        spec_hash=spec_hash(spec),
        points_total=points_total,
        workers=config.workers,
        transport=transport.name,
        timeout=config.timeout,
        max_retries=config.max_retries,
        backoff_base=config.backoff_base,
        backoff_cap=config.backoff_cap,
    )
    ledger.config["plan_cache"] = (
        str(config.plan_cache) if config.plan_cache_enabled else None
    )
    chaos = _ChaosInjector(config.chaos, config.chaos_kill_delay)
    started = time.monotonic()

    walls, notes = scavenge_point_walls(spec, config.out)
    for note in notes:
        ledger.note(f"timing scavenge skipped a damaged directory: {note}")
        config.echo(f"fleet: scavenge: {note}")
    if config.store is not None:
        # Store timings fill the gaps the directory scavenge left; fresher
        # on-disk manifests win ties (they may post-date the last ingest).
        store_walls, store_notes = store_point_walls(spec, config.store)
        for index, wall in store_walls.items():
            walls.setdefault(index, wall)
        for note in store_notes:
            ledger.note(f"store timing calibration: {note}")
            config.echo(f"fleet: store: {note}")
    costs = estimate_costs(points, walls)
    shards = cut_shards(costs, config.workers)
    config.echo(
        f"fleet {spec.name}: {points_total} points cut into {len(shards)} "
        f"cost-weighted shard(s) for {config.workers} worker(s)"
        + (f" (calibrated from {len(walls)} past timings)" if walls else "")
    )

    accepted_dirs: List[Path] = []
    accepted_set: set = set()
    attempt_counts: Dict[str, int] = {}
    missing_before = list(range(points_total))
    merged: Optional[MergedCampaign] = None
    final_missing: List[int] = []
    round_index = 0
    backoff = 0.0

    while True:
        round_record = ledger.start_round(round_index, backoff, missing_before)
        if backoff > 0:
            config.echo(f"fleet: backing off {backoff:.2f}s before heal round {round_index}")
            time.sleep(backoff)
        attempts = _dispatch_round(
            config, spec, shards, transport, log_dir, chaos, attempt_counts
        )
        for attempt in attempts:
            delivered = _validate_attempt(attempt, spec)
            if attempt.accepted and attempt.artifact_dir not in accepted_set:
                accepted_set.add(attempt.artifact_dir)
                accepted_dirs.append(Path(attempt.artifact_dir))
                _absorb_shard_telemetry(ledger, Path(attempt.artifact_dir))
                if config.store is not None:
                    _ingest_accepted(config, ledger, Path(attempt.artifact_dir))
            ledger.record_attempt(round_record, attempt, delivered)
            config.echo(
                f"fleet: shard {attempt.shard} attempt {attempt.number}: "
                f"{attempt.outcome} (exit={attempt.exit_class} rc={attempt.returncode}, "
                f"{delivered} point(s), {attempt.wall_seconds:.2f}s)"
                + (f" chaos={attempt.chaos}" if attempt.chaos else "")
            )
        merged, gap = _try_merge(accepted_dirs, spec, points_total)
        if merged is not None:
            break
        plan = plan_heal(gap, config.out)
        heal_path = write_heal_plan(plan, config.out)
        missing_before = list(gap.missing)
        if round_index >= config.max_retries:
            final_missing = list(gap.missing)
            config.echo(
                f"fleet: retry budget exhausted with {len(final_missing)} point(s) "
                f"missing; heal plan at {heal_path}"
            )
            break
        # Consume the heal plan *from disk*: the file is the contract, and
        # reading it back guarantees a human re-running it by hand and the
        # fleet dispatch exactly the same work.
        plan = json.loads(heal_path.read_text(encoding="utf-8"))
        shards = [ShardSpec.parse(str(command["shard"])) for command in plan["commands"]]
        round_index += 1
        backoff = min(config.backoff_base * (2 ** (round_index - 1)), config.backoff_cap)
        config.echo(
            f"fleet: heal round {round_index}/{config.max_retries}: "
            f"{len(missing_before)} missing point(s) across {len(shards)} shard(s)"
        )

    artifacts: Dict[str, Path] = {}
    if merged is not None:
        paths = write_merged_artifacts(merged, config.out)
        artifacts = dict(paths)
        status, exit_code = STATUS_COMPLETE, EXIT_COMPLETE
        config.echo(
            f"fleet {spec.name}: complete — {merged.result.n_points} points merged "
            f"from {len(merged.sources)} shard artifact(s)"
        )
    else:
        status, exit_code = STATUS_PARTIAL, EXIT_PARTIAL
        if accepted_dirs:
            partial = merge_shards(accepted_dirs, allow_missing=True)
            paths = write_merged_artifacts(partial, config.out, subdir="partial")
            artifacts = dict(paths)
            config.echo(
                f"fleet {spec.name}: partial — salvaged {partial.result.n_points}/"
                f"{points_total} points into {campaign_dir / 'partial'}"
            )
        else:
            config.echo(f"fleet {spec.name}: partial — no shard delivered any artifacts")
        artifacts["heal_json"] = campaign_dir / HEAL_JSON

    ledger.finish(
        status=status,
        exit_code=exit_code,
        wall_seconds=time.monotonic() - started,
        missing=final_missing,
        artifacts=artifacts,
    )
    ledger_path = ledger.write(campaign_dir)
    config.echo(f"fleet ledger: {ledger_path}")
    return FleetResult(
        status=status,
        exit_code=exit_code,
        rounds=round_index + 1,
        missing=final_missing,
        artifacts=artifacts,
        ledger_path=ledger_path,
        campaign_dir=campaign_dir,
    )


def _dispatch_round(
    config: FleetConfig,
    spec: CampaignSpec,
    shards: Sequence[ShardSpec],
    transport: Transport,
    log_dir: Path,
    chaos: _ChaosInjector,
    attempt_counts: Dict[str, int],
) -> List[Attempt]:
    """Launch one round's shards under supervision; return finished attempts."""
    launches = [
        _make_launch(config, spec, shard, transport, log_dir, chaos, attempt_counts)
        for shard in shards
    ]
    supervisor = Supervisor(
        max_workers=config.workers, poll_interval=config.poll_interval
    )
    attempts = supervisor.run(launches)
    # Post-exit chaos: truncate the artifacts of a designated attempt before
    # validation sees them (the corrupt-artifacts path).
    for attempt in attempts:
        if attempt.chaos == "truncate":
            chaos.truncate_artifacts(Path(attempt.artifact_dir))
    return attempts


def _make_launch(
    config: FleetConfig,
    spec: CampaignSpec,
    shard: ShardSpec,
    transport: Transport,
    log_dir: Path,
    chaos: _ChaosInjector,
    attempt_counts: Dict[str, int],
):
    """Build one launch thunk (deferred so the supervisor controls timing)."""

    def launch() -> Attempt:
        key = str(shard)
        number = attempt_counts.get(key, 0) + 1
        attempt_counts[key] = number
        dirname = shard_dirname(shard)
        artifact_dir = Path(config.out) / spec.name / dirname
        fault = chaos.next_fault()
        argv = _worker_argv(config, shard)
        if fault == "hang":
            argv = chaos.hang_argv()
        worker_spec = WorkerSpec(
            name=f"{dirname}.a{number}",
            argv=argv,
            log_path=log_dir / f"{dirname}.a{number}.log",
        )
        handle = transport.launch(worker_spec)
        now = time.monotonic()
        attempt = Attempt(
            shard=shard,
            number=number,
            artifact_dir=artifact_dir,
            handle=handle,
            started=now,
            deadline=(now + config.timeout) if config.timeout else None,
            chaos=fault,
        )
        if fault == "kill":
            attempt.kill_at = now + config.chaos_kill_delay
        return attempt

    return launch


def _validate_attempt(attempt: Attempt, spec: CampaignSpec) -> int:
    """Validate one attempt's artifacts; set outcome/accepted; return the
    number of point records the attempt delivered."""
    directory = Path(attempt.artifact_dir)
    delivered = 0
    if not (directory / RESULTS_JSON).exists():
        attempt.accepted = False
        attempt.detail = f"{directory}: no artifacts produced"
    else:
        try:
            artifacts = validate_shard_dir(directory, spec)
        except MergeError as exc:
            attempt.accepted = False
            attempt.detail = str(exc)
        else:
            attempt.accepted = True
            delivered = len(artifacts.results.get("points", []))
    span = _span_points(attempt.shard, spec.n_points)
    if attempt.accepted:
        attempt.outcome = COMPLETED if delivered >= span else PARTIAL_DELIVERY
    elif attempt.exit_class in (TIMEOUT, CRASH, NONZERO_EXIT):
        attempt.outcome = attempt.exit_class
    elif attempt.exit_class == EXITED:
        attempt.outcome = CORRUPT_ARTIFACTS
    else:
        attempt.outcome = attempt.exit_class or "unknown"
    return delivered


def _absorb_shard_telemetry(ledger: FleetLedger, directory: Path) -> None:
    """Fold one accepted shard manifest's cache + kernel counters into the
    ledger's metrics registry.

    This is where ``kernel_stats.plan_shared`` (and the plan cache's
    hit/miss/write/error totals) become visible *fleet-wide*: each worker
    sums its own counters into its manifest, and the ledger sums across
    accepted shards.  Pure bookkeeping — any read failure degrades to a
    ledger note, never fleet failure.
    """
    manifest_path = Path(directory) / MANIFEST_JSON
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        execution = manifest.get("execution") or {}
    except (OSError, ValueError, AttributeError) as exc:
        ledger.note(f"telemetry aggregation skipped {manifest_path}: {exc}")
        return
    cache_block = execution.get("cache")
    if isinstance(cache_block, dict):
        for name, counter in (
            ("hits", "cache.hit"),
            ("misses", "cache.miss"),
            ("writes", "cache.write"),
            ("errors", "cache.error"),
        ):
            ledger.metrics.counter(counter).inc(int(cache_block.get(name) or 0))
        for note in cache_block.get("notes") or []:
            ledger.note(f"plan cache ({directory.name}): {note}")
    telemetry = execution.get("telemetry")
    if isinstance(telemetry, dict):
        counters = (telemetry.get("metrics") or {}).get("counter") or {}
        for name, value in counters.items():
            if name.startswith("kernel."):
                ledger.metrics.counter(name).inc(int(value))


def _ingest_accepted(config: FleetConfig, ledger: FleetLedger, directory: Path) -> None:
    """Fold one just-accepted shard directory into the results store.

    Every accepted shard is already past :func:`validate_shard_dir`, so
    ingestion should only ever insert or deduplicate; anything else —
    a locked/corrupt database, a content conflict — degrades to a ledger
    note and a metrics count.  The fleet's outcome never depends on the
    store: the merge still works from the directories alone.
    """
    from repro.store import StoreError, connect, ingest_directory

    try:
        conn = connect(config.store)
        try:
            report = ingest_directory(conn, directory)
        finally:
            conn.close()
    except StoreError as exc:
        ledger.note(f"store ingest failed for {directory}: {exc}")
        ledger.metrics.counter("fleet.store_ingest", {"outcome": "error"}).inc()
        config.echo(f"fleet: store ingest failed for {directory}: {exc}")
        return
    if report.conflicts:
        ledger.note(
            f"store ingest of {directory} hit {len(report.conflicts)} content "
            f"conflict(s) and was rolled back — determinism violation or stale store"
        )
        ledger.metrics.counter("fleet.store_ingest", {"outcome": "conflict"}).inc()
        config.echo(f"fleet: store ingest of {directory}: {len(report.conflicts)} conflict(s)")
        return
    ledger.metrics.counter("fleet.store_ingest", {"outcome": "ok"}).inc()
    ledger.metrics.counter("fleet.store_points", {"kind": "inserted"}).inc(report.inserted)
    ledger.metrics.counter("fleet.store_points", {"kind": "deduplicated"}).inc(report.deduplicated)
    ledger.note(
        f"store ingest {directory}: {report.inserted} inserted, "
        f"{report.deduplicated} deduplicated into {config.store}"
    )


def _try_merge(
    accepted_dirs: Sequence[Path], spec: CampaignSpec, points_total: int
) -> Tuple[Optional[MergedCampaign], Optional[IncompleteCoverageError]]:
    """Merge the accepted directories, or explain the gap.

    With zero accepted directories there is nothing to load, so the gap is
    synthesised directly: every point missing, no surviving shards.
    """
    if not accepted_dirs:
        return None, IncompleteCoverageError(
            "no shard delivered valid artifacts",
            spec=spec,
            points_total=points_total,
            missing=list(range(points_total)),
            shards=[],
        )
    try:
        return merge_shards(list(accepted_dirs)), None
    except IncompleteCoverageError as exc:
        return None, exc
