"""Pluggable worker transports: how the fleet runs one shard somewhere.

The controller speaks one tiny vocabulary: *launch this argv, give me a
handle I can poll and kill*.  Everything campaign-specific (the ``sweep
--shard`` argv, artifact directories, validation) stays in the controller;
everything host-specific (process creation, log capture, environment) lives
behind :class:`Transport`.  That split is what lets an ssh or
object-storage transport slot in later without touching the orchestration
logic: implement :meth:`Transport.launch` returning a
:class:`WorkerHandle`, and make the shard's artifact directory appear under
``--out`` by the time the handle reports an exit.

:class:`LocalSubprocessTransport` is the first (and default)
implementation: one OS subprocess per shard, stdout+stderr captured to a
per-attempt log file, the repo's ``src/`` prepended to ``PYTHONPATH`` so
workers import the same code as the controller.
"""

from __future__ import annotations

import abc
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional


@dataclass
class WorkerSpec:
    """One launch request: what to run and where its log goes."""

    name: str
    argv: List[str]
    log_path: Path
    #: Extra environment entries layered over the inherited environment.
    env: Dict[str, str] = field(default_factory=dict)
    cwd: Optional[Path] = None


class WorkerHandle(abc.ABC):
    """A running (or finished) worker the supervisor can poll and kill."""

    spec: WorkerSpec

    @abc.abstractmethod
    def poll(self) -> Optional[int]:
        """The worker's exit status, or ``None`` while it is still running.
        Negative values mean death by signal (POSIX convention)."""

    @abc.abstractmethod
    def kill(self) -> None:
        """Forcibly terminate the worker (SIGKILL semantics).  Idempotent;
        a no-op once the worker has exited."""

    @property
    @abc.abstractmethod
    def ident(self) -> str:
        """A transport-specific identity for logs (e.g. ``pid:1234``)."""


class Transport(abc.ABC):
    """Factory for :class:`WorkerHandle`\\ s.  Implementations must be safe
    to call from a single-threaded supervision loop (launch returns
    immediately; all waiting happens via :meth:`WorkerHandle.poll`)."""

    name: str = "abstract"

    @abc.abstractmethod
    def launch(self, spec: WorkerSpec) -> WorkerHandle:
        """Start one worker; never blocks on its completion."""


class LocalProcessHandle(WorkerHandle):
    """Handle over one local OS subprocess."""

    def __init__(self, spec: WorkerSpec, process: subprocess.Popen, log_file) -> None:
        self.spec = spec
        self._process = process
        self._log_file = log_file

    def poll(self) -> Optional[int]:
        returncode = self._process.poll()
        if returncode is not None and self._log_file is not None:
            self._log_file.close()
            self._log_file = None
        return returncode

    def kill(self) -> None:
        if self._process.poll() is not None:
            return
        try:
            # The worker may have forked a multiprocessing pool; it runs in
            # its own session (start_new_session=True), so killing the
            # process group reaps the whole tree, not just the leader.
            os.killpg(self._process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            self._process.kill()

    @property
    def ident(self) -> str:
        return f"pid:{self._process.pid}"


class LocalSubprocessTransport(Transport):
    """Run each shard as a local subprocess with captured logs."""

    name = "local"

    def launch(self, spec: WorkerSpec) -> WorkerHandle:
        env = dict(os.environ)
        env.update(spec.env)
        # Workers must import the same repro tree as the controller even
        # when the controller was started via a path hack rather than an
        # installed package.
        import repro

        src_dir = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH", "")
        if src_dir not in existing.split(os.pathsep):
            env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
        spec.log_path.parent.mkdir(parents=True, exist_ok=True)
        log_file = spec.log_path.open("wb")
        process = subprocess.Popen(
            spec.argv,
            stdout=log_file,
            stderr=subprocess.STDOUT,
            stdin=subprocess.DEVNULL,
            env=env,
            cwd=str(spec.cwd) if spec.cwd is not None else None,
            start_new_session=True,
        )
        return LocalProcessHandle(spec, process, log_file)


_TRANSPORTS = {LocalSubprocessTransport.name: LocalSubprocessTransport}


def resolve_transport(name: str) -> Transport:
    """Instantiate a registered transport by name (``local`` today; the
    registry is where ssh/object-storage implementations will appear)."""
    try:
        factory = _TRANSPORTS[name]
    except KeyError:
        known = ", ".join(sorted(_TRANSPORTS))
        raise ValueError(f"unknown transport {name!r} (known: {known})") from None
    return factory()


def default_worker_argv() -> List[str]:
    """The interpreter prefix every local worker argv starts with."""
    return [sys.executable, "-m", "repro.run"]
