"""Per-point cost estimation and cost-weighted shard cuts.

A balanced ``--shard I/N`` cut gives every worker the same number of
*points*, but points are wildly unequal in wall time: campaign grids sweep
``horizon_cycles`` over orders of magnitude, so the worker that drew the
long-horizon tail finishes long after the rest.  The fleet instead cuts the
expanded grid by estimated **cost**:

* :func:`scavenge_point_walls` harvests real per-point wall timings from any
  past artifacts of the same campaign found under ``--out`` — the campaign
  directory itself, shard slices, merged and partial runs — using the same
  ``spec_hash`` validation as ``--resume`` (a damaged manifest is skipped
  with a note, never silently priced at zero; see
  :class:`~repro.sweep.resume.ResumeError`);
* :func:`estimate_costs` prices every point: an observed wall when one was
  scavenged, otherwise the point's ``horizon_cycles`` scaled by the median
  observed seconds-per-cycle (or alone, when nothing was observed — cost is
  only ever *compared*, so any common scale works);
* :func:`cut_shards` walks the cost prefix and emits contiguous
  explicit-span shards (``I/N@START:STOP``) with equal-as-possible cost,
  which ride the ordinary ``sweep --shard`` worker path unchanged.

Contiguity is non-negotiable: it keeps every shard's artifacts in row-major
index order, which is what makes the merge a validated concatenation.
"""

from __future__ import annotations

import statistics
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.sweep.campaign import CampaignSpec, ShardSpec, SweepPoint
from repro.sweep.resume import ResumeError, load_point_walls


def scavenge_point_walls(
    spec: CampaignSpec, out_dir: Path
) -> Tuple[Dict[int, float], List[str]]:
    """Harvest per-point wall timings for ``spec`` from ``out_dir``.

    Scans ``<out>/<campaign>/`` and every directory directly under it (shard
    slices, ``partial/``) for manifests whose ``spec_hash`` matches the
    campaign.  Returns ``(walls, notes)``: the per-index timings (later
    directories win ties — they are at least as fresh) and one note per
    directory that *looked* like an artifact dir but failed validation.
    """
    campaign_dir = Path(out_dir) / spec.name
    walls: Dict[int, float] = {}
    notes: List[str] = []
    if not campaign_dir.is_dir():
        return walls, notes
    candidates = [campaign_dir] + sorted(
        child for child in campaign_dir.iterdir() if child.is_dir()
    )
    for directory in candidates:
        if not (directory / "manifest.json").exists():
            continue
        try:
            walls.update(load_point_walls(directory, spec))
        except ResumeError as exc:
            notes.append(str(exc))
    return walls, notes


def store_point_walls(spec: CampaignSpec, db_path: Path) -> Tuple[Dict[int, float], List[str]]:
    """Harvest per-point wall timings for ``spec`` from a results store.

    The store indexes every ingested point by the same ``spec_hash`` the
    directory scavenger validates, so calibration becomes one lookup over
    the accumulated corpus instead of a directory walk.  Returns
    ``(walls, notes)`` like :func:`scavenge_point_walls`: a store that is
    missing, unreadable, or holds no matching campaign contributes nothing
    but a note — the fleet must never die over a pricing hint.
    """
    from repro.store import connect
    from repro.store.schema import StoreError
    from repro.sweep.resume import spec_hash

    walls: Dict[int, float] = {}
    notes: List[str] = []
    try:
        conn = connect(db_path, create=False)
        try:
            row = conn.execute(
                "SELECT id FROM campaigns WHERE spec_hash = ?", (spec_hash(spec),)
            ).fetchone()
            if row is None:
                notes.append(f"store {db_path}: no timings for campaign {spec.name!r} yet")
                return walls, notes
            for point_row in conn.execute(
                "SELECT point_index, wall_seconds FROM points WHERE campaign_id = ?"
                " AND wall_seconds > 0",
                (int(row["id"]),),
            ):
                walls[int(point_row["point_index"])] = float(point_row["wall_seconds"])
        finally:
            conn.close()
    except StoreError as exc:
        notes.append(str(exc))
    return walls, notes


#: Fallback price per simulated cycle when no timing was ever observed.
#: Arbitrary but positive: with zero observations every point is priced
#: purely proportionally to its horizon, which is all a *cut* needs.
DEFAULT_SECONDS_PER_CYCLE = 1e-6


def estimate_costs(points: Sequence[SweepPoint], walls: Dict[int, float]) -> List[float]:
    """Price every point of the expanded grid in (estimated) seconds.

    Observed walls are used verbatim; unobserved points get
    ``horizon_cycles`` times the median observed seconds-per-cycle, so one
    prior run of *any* subset calibrates the whole grid.  Every estimate is
    clamped strictly positive: a zero-cost point could make a cut emit
    degenerate empty spans.
    """
    rates = [
        walls[point.index] / point.horizon_cycles
        for point in points
        if walls.get(point.index, 0.0) > 0.0 and point.horizon_cycles > 0
    ]
    rate = statistics.median(rates) if rates else DEFAULT_SECONDS_PER_CYCLE
    costs: List[float] = []
    for point in points:
        observed = walls.get(point.index, 0.0)
        estimate = observed if observed > 0.0 else point.horizon_cycles * rate
        costs.append(max(estimate, 1e-12))
    return costs


def cut_spans(costs: Sequence[float], workers: int) -> List[Tuple[int, int]]:
    """Cut ``range(len(costs))`` into ≤ ``workers`` contiguous spans of
    equal-as-possible total cost.

    Greedy prefix walk: each span closes once it reaches the remaining
    average cost, except that a span never swallows so many points that a
    later worker would starve (every remaining worker is guaranteed at least
    one point while points remain).  Returns fewer spans than ``workers``
    when there are fewer points than workers; never returns an empty span.
    """
    if workers < 1:
        raise ValueError(f"workers must be at least 1, got {workers}")
    n_points = len(costs)
    spans: List[Tuple[int, int]] = []
    start = 0
    remaining_cost = float(sum(costs))
    for worker in range(workers):
        if start >= n_points:
            break
        workers_left = workers - worker
        target = remaining_cost / workers_left
        stop = start
        span_cost = 0.0
        # Leave at least one point per remaining worker; the last worker
        # takes everything left.
        limit = n_points - (workers_left - 1)
        while stop < max(limit, start + 1) and (span_cost < target or stop == start):
            span_cost += costs[stop]
            stop += 1
            if workers_left > 1 and span_cost >= target:
                break
        if workers_left == 1:
            stop = n_points
            span_cost = remaining_cost
        spans.append((start, stop))
        start = stop
        remaining_cost -= span_cost
    return spans


def cut_shards(costs: Sequence[float], workers: int) -> List[ShardSpec]:
    """Cost-weighted fleet cut: one explicit-span :class:`ShardSpec` per
    span of :func:`cut_spans`, numbered ``i/len(spans)`` in index order."""
    spans = cut_spans(costs, workers)
    return [
        ShardSpec(index=i, count=len(spans), span=span) for i, span in enumerate(spans)
    ]
