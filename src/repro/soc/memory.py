"""SRAM bank model.

The 192 KiB of L2 memory in the implemented PULPissimo configuration
(Section IV-C) is modelled as a sparse word store.  What matters for the
evaluation is not the contents but the *access activity*: every read and
write (data accesses through the interconnect plus the core's instruction
fetches) is counted so the power model can price the memory system, which is
where the baseline loses most of its power against PELS.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.component import Component

KIB = 1024
DEFAULT_SRAM_BYTES = 192 * KIB


class SramBank(Component):
    """A word-addressable SRAM bank with access counting."""

    def __init__(self, name: str = "sram", size_bytes: int = DEFAULT_SRAM_BYTES, wait_states: int = 0) -> None:
        super().__init__(name)
        if size_bytes <= 0 or size_bytes % 4 != 0:
            raise ValueError("SRAM size must be a positive multiple of 4 bytes")
        self.size_bytes = size_bytes
        self.wait_states = wait_states
        self._words: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        self.instruction_fetches = 0

    # --------------------------------------------------------------- bus slave

    def bus_read(self, offset: int) -> int:
        """Word read at byte ``offset``."""
        self._check_offset(offset)
        self.reads += 1
        self.record("reads")
        return self._words.get(offset // 4, 0)

    def bus_write(self, offset: int, value: int) -> None:
        """Word write at byte ``offset``."""
        self._check_offset(offset)
        self.writes += 1
        self.record("writes")
        self._words[offset // 4] = value & 0xFFFF_FFFF

    # ------------------------------------------------------------ direct access

    def load_words(self, offset: int, values) -> None:
        """Testbench helper: bulk-load words starting at byte ``offset``."""
        for index, value in enumerate(values):
            self._check_offset(offset + 4 * index)
            self._words[(offset + 4 * index) // 4] = value & 0xFFFF_FFFF

    def peek(self, offset: int) -> int:
        """Read a word without counting an access (for assertions)."""
        self._check_offset(offset)
        return self._words.get(offset // 4, 0)

    def record_fetch(self) -> None:
        """Account one instruction fetch served by this bank."""
        self.instruction_fetches += 1
        self.record("instruction_fetches")

    # ----------------------------------------------------------------- queries

    @property
    def total_accesses(self) -> int:
        """Data reads + data writes + instruction fetches."""
        return self.reads + self.writes + self.instruction_fetches

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset < self.size_bytes:
            raise IndexError(f"{self.name}: offset 0x{offset:x} outside 0..0x{self.size_bytes:x}")
        if offset % 4 != 0:
            raise ValueError(f"{self.name}: offset 0x{offset:x} is not word aligned")

    def reset(self) -> None:
        self._words.clear()
        self.reads = 0
        self.writes = 0
        self.instruction_fetches = 0
