"""PULPissimo-style SoC integration (Figure 4 of the paper).

The SoC top wires the processing domain (Ibex core, interrupt controller,
SRAM banks, SoC interconnect) to the I/O domain (peripheral interconnect,
peripherals, µDMA, and PELS), establishes the address map, and fixes the
component tick order so the cycle-level timing is deterministic.
"""

from repro.soc.address_map import AddressMap, DEFAULT_ADDRESS_MAP
from repro.soc.memory import SramBank
from repro.soc.pulpissimo import PulpissimoSoc, SocConfig, build_soc

__all__ = [
    "AddressMap",
    "DEFAULT_ADDRESS_MAP",
    "PulpissimoSoc",
    "SocConfig",
    "SramBank",
    "build_soc",
]
