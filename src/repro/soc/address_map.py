"""SoC address map.

The layout follows PULPissimo's convention: L2 SRAM in the 0x1C00_0000
region and the peripheral subsystem in the 0x1A10_0000 region, with one
4 KiB window per peripheral.  Offsets inside a window are what PELS encodes
in its 12-bit command field, relative to the link's base address — which is
simply the peripheral window base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class AddressMap:
    """Base addresses and window sizes for every slave in the SoC."""

    sram_base: int = 0x1C00_0000
    sram_size: int = 192 * 1024
    peripheral_window: int = 0x1000
    peripheral_bases: Dict[str, int] = field(
        default_factory=lambda: {
            "udma": 0x1A10_0000,
            "gpio": 0x1A10_1000,
            "spi": 0x1A10_2000,
            "adc": 0x1A10_3000,
            "uart": 0x1A10_4000,
            "i2c": 0x1A10_5000,
            "pwm": 0x1A10_6000,
            "wdt": 0x1A10_7000,
            "timer": 0x1A10_B000,
            "pels": 0x1A10_C000,
        }
    )

    def peripheral_base(self, name: str) -> int:
        """Base address of peripheral ``name``."""
        try:
            return self.peripheral_bases[name]
        except KeyError as exc:
            raise KeyError(f"no base address defined for peripheral {name!r}") from exc

    def register_address(self, peripheral: str, byte_offset: int) -> int:
        """Absolute address of a register given its peripheral and byte offset."""
        if byte_offset < 0 or byte_offset >= self.peripheral_window:
            raise ValueError(
                f"offset 0x{byte_offset:x} outside the 0x{self.peripheral_window:x} peripheral window"
            )
        return self.peripheral_base(peripheral) + byte_offset

    def with_peripheral(self, name: str, base: int) -> "AddressMap":
        """Return a copy of the map with an extra (or overridden) peripheral base."""
        bases = dict(self.peripheral_bases)
        bases[name] = base
        return AddressMap(
            sram_base=self.sram_base,
            sram_size=self.sram_size,
            peripheral_window=self.peripheral_window,
            peripheral_bases=bases,
        )


DEFAULT_ADDRESS_MAP = AddressMap()
