"""PULPissimo SoC top level with PELS integrated (Figure 4 of the paper).

:func:`build_soc` instantiates and wires every block:

* processing domain: Ibex core, interrupt controller, SRAM, SoC interconnect;
* I/O domain: APB peripheral interconnect, GPIO/SPI/ADC/UART/I2C/timer
  peripherals, the µDMA, and PELS.

Component tick order (which fixes the intra-cycle causality) is:
peripherals → µDMA → PELS → CPU → SoC interconnect → APB bus.  Producers pulse
events before PELS samples them; masters submit bus requests before the
fabrics arbitrate them in the same cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.bus.apb import ApbBus
from repro.bus.interconnect import SystemInterconnect
from repro.core.config import PelsConfig
from repro.core.pels import Pels
from repro.cpu.ibex import IbexCore
from repro.cpu.irq import InterruptController
from repro.dma.udma import MicroDma
from repro.peripherals.adc import Adc
from repro.peripherals.events import EventFabric
from repro.peripherals.gpio import Gpio
from repro.peripherals.i2c import I2cController
from repro.peripherals.pwm import Pwm
from repro.peripherals.sensor import SensorWaveform, SyntheticSensor
from repro.peripherals.spi import SpiController
from repro.peripherals.timer import Timer
from repro.peripherals.uart import Uart
from repro.peripherals.watchdog import Watchdog
from repro.sim.component import Component
from repro.sim.simulator import Simulator
from repro.soc.address_map import AddressMap, DEFAULT_ADDRESS_MAP
from repro.soc.memory import SramBank

DEFAULT_FREQUENCY_HZ = 55e6


class _FabricCycleCloser(Component):
    """Clears single-cycle event pulses when no PELS instance does it.

    PELS ends the event cycle itself (after broadcasting the vector to its
    links); in the PELS-less baseline SoC this helper keeps the pulse
    semantics identical.
    """

    def __init__(self, fabric: EventFabric) -> None:
        super().__init__("fabric_closer")
        self._fabric = fabric

    def tick(self, cycle: int) -> None:
        self._fabric.end_cycle()

    def next_event(self):
        # Only needed while a pulse is waiting to be cleared; clearing an
        # empty fabric is a no-op, so idle spans can be skipped freely.
        return 1 if self._fabric.active_mask() else None


@dataclass(frozen=True)
class SocConfig:
    """Build-time parameters of the SoC."""

    frequency_hz: float = DEFAULT_FREQUENCY_HZ
    pels_config: Optional[PelsConfig] = PelsConfig(n_links=4, scm_lines=6)
    with_pels: bool = True
    address_map: AddressMap = DEFAULT_ADDRESS_MAP
    sensor_waveform: Optional[SensorWaveform] = None
    spi_cycles_per_word: int = 4
    adc_conversion_cycles: int = 8
    #: Use the legacy cycle-driven kernel instead of event-driven scheduling
    #: with quiescence skipping.  Both produce identical state; dense mode
    #: exists for differential testing and cycle-level polling.
    dense: bool = False


class PulpissimoSoc:
    """Container object exposing every block of the assembled SoC."""

    def __init__(
        self,
        simulator: Simulator,
        fabric: EventFabric,
        sram: SramBank,
        interconnect: SystemInterconnect,
        peripheral_bus: ApbBus,
        cpu: IbexCore,
        irq_controller: InterruptController,
        udma: MicroDma,
        gpio: Gpio,
        spi: SpiController,
        adc: Adc,
        uart: Uart,
        i2c: I2cController,
        pwm: Pwm,
        wdt: Watchdog,
        timer: Timer,
        sensor: SyntheticSensor,
        pels: Optional[Pels],
        address_map: AddressMap,
        config: SocConfig,
    ) -> None:
        self.simulator = simulator
        self.fabric = fabric
        self.sram = sram
        self.interconnect = interconnect
        self.peripheral_bus = peripheral_bus
        self.cpu = cpu
        self.irq_controller = irq_controller
        self.udma = udma
        self.gpio = gpio
        self.spi = spi
        self.adc = adc
        self.uart = uart
        self.i2c = i2c
        self.pwm = pwm
        self.wdt = wdt
        self.timer = timer
        self.sensor = sensor
        self.pels = pels
        self.address_map = address_map
        self.config = config

    # ------------------------------------------------------------- conveniences

    def run(self, cycles: int) -> None:
        """Advance the whole SoC by ``cycles`` clock cycles."""
        self.simulator.step(cycles)

    def run_until(self, condition, max_cycles: int = 1_000_000, label: str = "condition") -> int:
        """Run until ``condition()`` holds; returns elapsed cycles."""
        return self.simulator.run_until(condition, max_cycles=max_cycles, label=label)

    def register_address(self, peripheral: str, register: str) -> int:
        """Absolute address of ``register`` inside ``peripheral``'s window."""
        block = getattr(self, peripheral)
        return self.address_map.register_address(peripheral, block.regs.offset_of(register))

    @property
    def activity(self):
        """The simulator's activity counters (input to the power model)."""
        return self.simulator.activity

    @property
    def frequency_hz(self) -> float:
        """SoC clock frequency."""
        return self.config.frequency_hz

    def reset(self) -> None:
        """Reset every component and all statistics."""
        self.simulator.reset()
        self.sensor.reset()


def build_soc(config: SocConfig = SocConfig()) -> PulpissimoSoc:
    """Instantiate and wire a complete PULPissimo + PELS system."""
    simulator = Simulator(default_frequency_hz=config.frequency_hz, dense=config.dense)
    address_map = config.address_map
    fabric = EventFabric(capacity=64)

    # ---------------------------------------------------------------- I/O domain
    sensor = SyntheticSensor(
        "sensor", config.sensor_waveform if config.sensor_waveform is not None else SensorWaveform()
    )
    spi = SpiController("spi", sensor=sensor, cycles_per_word=config.spi_cycles_per_word)
    adc = Adc("adc", sensor=sensor, conversion_cycles=config.adc_conversion_cycles)
    gpio = Gpio("gpio")
    uart = Uart("uart")
    i2c = I2cController("i2c")
    pwm = Pwm("pwm")
    wdt = Watchdog("wdt")
    timer = Timer("timer")
    peripherals = [spi, adc, gpio, uart, i2c, pwm, wdt, timer]
    for peripheral in peripherals:
        peripheral.connect_events(fabric)

    peripheral_bus = ApbBus("apb")
    for peripheral in peripherals:
        peripheral_bus.attach_slave(
            address_map.peripheral_base(peripheral.name), address_map.peripheral_window, peripheral
        )

    # --------------------------------------------------------- processing domain
    sram = SramBank("sram", size_bytes=address_map.sram_size)
    interconnect = SystemInterconnect("soc_interconnect", peripheral_bus=peripheral_bus)
    interconnect.attach_memory(address_map.sram_base, address_map.sram_size, sram)

    irq_controller = InterruptController("irq_ctrl", fabric=fabric)
    cpu = IbexCore(
        "ibex",
        interconnect=interconnect,
        irq_controller=irq_controller,
        instruction_memory=sram,
    )
    udma = MicroDma("udma", interconnect=interconnect, fabric=fabric)

    # --------------------------------------------------------------------- PELS
    pels: Optional[Pels] = None
    if config.with_pels and config.pels_config is not None:
        pels = Pels(config.pels_config, fabric, peripheral_bus=peripheral_bus, name="pels")
        peripheral_bus.attach_slave(
            address_map.peripheral_base("pels"), address_map.peripheral_window, pels
        )

    # -------------------------------------------------------- tick-order wiring
    for peripheral in peripherals:
        simulator.add_component(peripheral)
    simulator.add_component(udma)
    if pels is not None:
        simulator.add_component(pels)
    else:
        simulator.add_component(_FabricCycleCloser(fabric))
    simulator.add_component(irq_controller)
    simulator.add_component(cpu)
    simulator.add_component(interconnect)
    simulator.add_component(peripheral_bus)
    simulator.add_component(sram)

    return PulpissimoSoc(
        simulator=simulator,
        fabric=fabric,
        sram=sram,
        interconnect=interconnect,
        peripheral_bus=peripheral_bus,
        cpu=cpu,
        irq_controller=irq_controller,
        udma=udma,
        gpio=gpio,
        spi=spi,
        adc=adc,
        uart=uart,
        i2c=i2c,
        pwm=pwm,
        wdt=wdt,
        timer=timer,
        sensor=sensor,
        pels=pels,
        address_map=address_map,
        config=config,
    )
