"""PELS — the Peripheral Event Linking System (the paper's contribution).

The package mirrors the block diagram in Figure 2 of the paper:

* :mod:`repro.core.isa` — the microcode command encoding (4-bit opcode,
  12-bit field, 32-bit operand).
* :mod:`repro.core.assembler` — a small textual assembler for writing link
  programs like the Figure 3 pseudocode.
* :mod:`repro.core.scm` — the per-link standard-cell-memory instruction
  memory (4–8 lines).
* :mod:`repro.core.trigger` — the trigger unit (event mask, AND/OR condition,
  trigger FIFO).
* :mod:`repro.core.execution` — the execution unit FSM issuing instant and
  sequenced actions.
* :mod:`repro.core.link` — one link = trigger unit + SCM + execution unit.
* :mod:`repro.core.pels` — the PELS top level: event broadcast, N links,
  instant-action routing (including inter-link loopback), and the
  memory-mapped configuration interface.
"""

from repro.core.isa import (
    Command,
    CommandEncodingError,
    JumpCondition,
    Opcode,
    decode_command,
    encode_command,
)
from repro.core.assembler import Assembler, AssemblyError, Program
from repro.core.config import LinkConfig, PelsConfig
from repro.core.scm import ScmMemory
from repro.core.fifo import TriggerFifo
from repro.core.trigger import TriggerCondition, TriggerUnit
from repro.core.execution import ExecutionUnit, ExecutionState
from repro.core.link import Link, LinkEventRecord
from repro.core.pels import ActionTarget, Pels

__all__ = [
    "ActionTarget",
    "Assembler",
    "AssemblyError",
    "Command",
    "CommandEncodingError",
    "ExecutionState",
    "ExecutionUnit",
    "JumpCondition",
    "Link",
    "LinkConfig",
    "LinkEventRecord",
    "Opcode",
    "Pels",
    "PelsConfig",
    "Program",
    "ScmMemory",
    "TriggerCondition",
    "TriggerFifo",
    "TriggerUnit",
    "decode_command",
    "encode_command",
]
