"""The per-link execution unit.

The execution unit is a small FSM (Figure 2 of the paper) that walks the
link's microcode one command per SCM line:

* *instant* commands (``action``) and control-flow commands (``jump_if``,
  ``loop``, ``wait``, ``end``) execute in the fetch cycle;
* *sequenced* commands (``write``, ``set``, ``clear``, ``toggle``,
  ``capture``) issue transfers on the peripheral interconnect and stall until
  the bus answers, performing the read-modify-write data path of markers
  5–8 in Figure 2.

Cycle budget for a read-modify-write sequenced action (matching the 7 cycles
reported in Section IV-B): trigger (1) + fetch (1) + bus read (2) + modify
(1) + bus write-back (2).
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Optional

from repro.bus.transaction import BusRequest, TransferKind, WORD_MASK
from repro.core.fifo import TriggerEntry
from repro.core.isa import Command, Opcode
from repro.core.scm import ScmMemory

# An action sink receives (group, mask, toggle, cycle) when an instant action fires.
ActionSink = Callable[[int, int, bool, int], None]
# A bus submit function queues a request on the peripheral interconnect.
BusSubmit = Callable[[BusRequest], BusRequest]


class ExecutionState(enum.Enum):
    """FSM states of the execution unit."""

    IDLE = "idle"
    FETCH = "fetch"
    ISSUE_READ = "issue_read"
    READ_WAIT = "read_wait"
    ISSUE_WRITE = "issue_write"
    WRITE_WAIT = "write_wait"
    WAITING = "waiting"


class ExecutionUnit:
    """Microcode interpreter for one link."""

    def __init__(
        self,
        name: str,
        scm: ScmMemory,
        bus_submit: Optional[BusSubmit] = None,
        action_sink: Optional[ActionSink] = None,
        base_address: int = 0,
    ) -> None:
        self.name = name
        self.scm = scm
        self.bus_submit = bus_submit
        self.action_sink = action_sink
        self.base_address = base_address
        self.state = ExecutionState.IDLE
        self.pc = 0
        self.capture_register = 0
        self._current: Optional[Command] = None
        self._pending_request: Optional[BusRequest] = None
        self._modified_value = 0
        self._wait_remaining = 0
        self._loop_remaining: Optional[int] = None
        self._active_trigger: Optional[TriggerEntry] = None
        # Statistics and timestamps used by the latency/power analyses.
        self.commands_executed: Dict[Opcode, int] = {opcode: 0 for opcode in Opcode}
        self.busy_cycles = 0
        self.stall_cycles = 0
        self.bus_reads = 0
        self.bus_writes = 0
        self.instant_actions = 0
        self.sequences_completed = 0
        self.bus_errors = 0
        self.sequences_aborted = 0
        self.last_trigger_cycle: Optional[int] = None
        self.last_completion_cycle: Optional[int] = None
        self.last_bus_write_cycle: Optional[int] = None
        self.first_action_cycle: Optional[int] = None

    # ------------------------------------------------------------------ control

    @property
    def idle(self) -> bool:
        """Whether the unit can accept a new trigger."""
        return self.state is ExecutionState.IDLE

    def start(self, trigger: TriggerEntry) -> None:
        """Begin servicing a trigger; the first fetch happens next cycle."""
        if not self.idle:
            raise RuntimeError(f"{self.name}: cannot start while {self.state.value}")
        self._active_trigger = trigger
        self.pc = 0
        self.state = ExecutionState.FETCH
        self.last_trigger_cycle = trigger.cycle
        self.first_action_cycle = None
        self.last_bus_write_cycle = None

    def set_base_address(self, base_address: int) -> None:
        """Reprogram the link base address used by sequenced actions."""
        if base_address < 0 or base_address % 4 != 0:
            raise ValueError("base address must be non-negative and word aligned")
        self.base_address = base_address

    # ---------------------------------------------------------------- behaviour

    def tick(self, cycle: int) -> None:
        """Advance the FSM by one clock cycle."""
        if self.state is ExecutionState.IDLE:
            return
        self.busy_cycles += 1
        handler = {
            ExecutionState.FETCH: self._tick_fetch,
            ExecutionState.ISSUE_READ: self._tick_issue_read,
            ExecutionState.READ_WAIT: self._tick_read_wait,
            ExecutionState.ISSUE_WRITE: self._tick_issue_write,
            ExecutionState.WRITE_WAIT: self._tick_write_wait,
            ExecutionState.WAITING: self._tick_waiting,
        }[self.state]
        handler(cycle)

    # ------------------------------------------------------------------- states

    def _tick_fetch(self, cycle: int) -> None:
        if self.pc >= self.scm.lines:
            self._finish(cycle)
            return
        command = self.scm.fetch(self.pc)
        self._current = command
        opcode = command.opcode
        if opcode is Opcode.END:
            self._count(opcode)
            self._finish(cycle)
        elif opcode is Opcode.ACTION:
            self._count(opcode)
            self._execute_action(command, cycle)
            self.pc += 1
        elif opcode is Opcode.JUMP_IF:
            self._count(opcode)
            taken = command.jump_condition.evaluate(self.capture_register, command.data)
            self.pc = command.jump_target if taken else self.pc + 1
        elif opcode is Opcode.LOOP:
            self._count(opcode)
            self._execute_loop(command)
        elif opcode is Opcode.WAIT:
            self._count(opcode)
            self._wait_remaining = command.data
            self.state = ExecutionState.WAITING if command.data > 0 else ExecutionState.FETCH
            if command.data == 0:
                self.pc += 1
        elif opcode is Opcode.WRITE:
            self.state = ExecutionState.ISSUE_WRITE
            self._modified_value = command.data
        elif opcode in (Opcode.SET, Opcode.CLEAR, Opcode.TOGGLE, Opcode.CAPTURE):
            self.state = ExecutionState.ISSUE_READ
        else:  # pragma: no cover - all opcodes handled above
            raise RuntimeError(f"{self.name}: unhandled opcode {opcode!r}")

    def _tick_issue_read(self, cycle: int) -> None:
        command = self._require_current()
        request = BusRequest(
            master=self.name,
            kind=TransferKind.READ,
            address=self.base_address + command.byte_offset,
        )
        self._submit(request)
        self.bus_reads += 1
        self.state = ExecutionState.READ_WAIT

    def _tick_read_wait(self, cycle: int) -> None:
        request = self._pending_request
        if request is None or not request.done:
            self.stall_cycles += 1
            return
        if request.error:
            self._abort_on_bus_error(cycle)
            return
        command = self._require_current()
        value = request.rdata
        self._pending_request = None
        if command.opcode is Opcode.CAPTURE:
            self.capture_register = value & command.data & WORD_MASK
            self._count(Opcode.CAPTURE)
            self.pc += 1
            self.state = ExecutionState.FETCH
            return
        # Read-modify-write commands: compute the writeback value (marker 7).
        if command.opcode is Opcode.SET:
            self._modified_value = (value | command.data) & WORD_MASK
        elif command.opcode is Opcode.CLEAR:
            self._modified_value = value & ~command.data & WORD_MASK
        else:  # TOGGLE
            self._modified_value = (value ^ command.data) & WORD_MASK
        self.state = ExecutionState.ISSUE_WRITE

    def _tick_issue_write(self, cycle: int) -> None:
        command = self._require_current()
        request = BusRequest(
            master=self.name,
            kind=TransferKind.WRITE,
            address=self.base_address + command.byte_offset,
            wdata=self._modified_value,
        )
        self._submit(request)
        self.bus_writes += 1
        self.state = ExecutionState.WRITE_WAIT

    def _tick_write_wait(self, cycle: int) -> None:
        request = self._pending_request
        if request is None or not request.done:
            self.stall_cycles += 1
            return
        if request.error:
            self._abort_on_bus_error(cycle)
            return
        command = self._require_current()
        self._pending_request = None
        if request.response is not None:
            self.last_bus_write_cycle = request.response.completed_cycle
        self._count(command.opcode)
        self.pc += 1
        self.state = ExecutionState.FETCH

    def _tick_waiting(self, cycle: int) -> None:
        self._wait_remaining -= 1
        if self._wait_remaining <= 0:
            self.pc += 1
            self.state = ExecutionState.FETCH

    # ------------------------------------------------------------------ helpers

    def _execute_action(self, command: Command, cycle: int) -> None:
        self.instant_actions += 1
        if self.first_action_cycle is None:
            self.first_action_cycle = cycle
        if self.action_sink is not None:
            self.action_sink(command.action_group, command.data, command.action_is_toggle, cycle)

    def _execute_loop(self, command: Command) -> None:
        if self._loop_remaining is None:
            self._loop_remaining = command.data
        if self._loop_remaining > 0:
            self._loop_remaining -= 1
            self.pc = command.jump_target
        else:
            self._loop_remaining = None
            self.pc += 1

    def _abort_on_bus_error(self, cycle: int) -> None:
        """Terminate the current sequence after an APB error response.

        A mis-programmed offset (an address outside any slave window) must
        not wedge the link: the sequence is abandoned, the error is counted,
        and the link returns to idle ready for the next trigger.
        """
        self.bus_errors += 1
        self.sequences_aborted += 1
        self._pending_request = None
        self.last_completion_cycle = cycle
        self._active_trigger = None
        self._current = None
        self._loop_remaining = None
        self.state = ExecutionState.IDLE

    def _submit(self, request: BusRequest) -> None:
        if self.bus_submit is None:
            raise RuntimeError(
                f"{self.name}: sequenced action needs a peripheral bus but none is connected"
            )
        self._pending_request = self.bus_submit(request)

    def _finish(self, cycle: int) -> None:
        self.sequences_completed += 1
        self.last_completion_cycle = cycle
        self._active_trigger = None
        self._current = None
        self._loop_remaining = None
        self.state = ExecutionState.IDLE

    def _require_current(self) -> Command:
        if self._current is None:
            raise RuntimeError(f"{self.name}: no command in flight")
        return self._current

    def _count(self, opcode: Opcode) -> None:
        self.commands_executed[opcode] += 1

    def reset(self) -> None:
        """Return to the post-reset state (statistics are cleared)."""
        self.state = ExecutionState.IDLE
        self.pc = 0
        self.capture_register = 0
        self._current = None
        self._pending_request = None
        self._modified_value = 0
        self._wait_remaining = 0
        self._loop_remaining = None
        self._active_trigger = None
        self.commands_executed = {opcode: 0 for opcode in Opcode}
        self.busy_cycles = 0
        self.stall_cycles = 0
        self.bus_reads = 0
        self.bus_writes = 0
        self.instant_actions = 0
        self.sequences_completed = 0
        self.bus_errors = 0
        self.sequences_aborted = 0
        self.last_trigger_cycle = None
        self.last_completion_cycle = None
        self.last_bus_write_cycle = None
        self.first_action_cycle = None
