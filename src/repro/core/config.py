"""PELS configuration parameters.

The paper sweeps two main parameters: the **number of links** (parallel
linking actions) and the **SCM size** (number of microcode commands per
link).  The evaluation uses 1–8 links and 4/6/8 SCM lines; the PULPissimo
integration of Figure 6b uses 4 links with 6 lines each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

VALID_SCM_LINES = (4, 6, 8, 12, 16)
MAX_LINKS = 16
DEFAULT_EVENT_CAPACITY = 32
DEFAULT_ACTION_GROUPS = 16
DEFAULT_ACTION_GROUP_WIDTH = 32


@dataclass(frozen=True)
class LinkConfig:
    """Static configuration of a single link."""

    scm_lines: int = 4
    fifo_depth: int = 4
    base_address: int = 0x0

    def __post_init__(self) -> None:
        if self.scm_lines < 1:
            raise ValueError("a link needs at least one SCM line")
        if self.fifo_depth < 1:
            raise ValueError("the trigger FIFO needs at least one entry")
        if self.base_address < 0 or self.base_address % 4 != 0:
            raise ValueError("link base address must be non-negative and word aligned")


@dataclass(frozen=True)
class PelsConfig:
    """Static configuration of a PELS instance.

    Parameters
    ----------
    n_links:
        Number of independent links (parallelism of the event-linking system).
    scm_lines:
        Microcode commands per link.
    event_capacity:
        Width of the incoming event vector broadcast to all trigger units.
    action_groups / action_group_width:
        Organisation of the outgoing instant-action event lines: the 12-bit
        command field selects a group, the 32-bit operand selects lines
        within it.
    fifo_depth:
        Trigger FIFO depth per link.
    """

    n_links: int = 1
    scm_lines: int = 4
    event_capacity: int = DEFAULT_EVENT_CAPACITY
    action_groups: int = DEFAULT_ACTION_GROUPS
    action_group_width: int = DEFAULT_ACTION_GROUP_WIDTH
    fifo_depth: int = 4
    link_base_addresses: Tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 1 <= self.n_links <= MAX_LINKS:
            raise ValueError(f"n_links must be in [1, {MAX_LINKS}]")
        if self.scm_lines < 1:
            raise ValueError("scm_lines must be >= 1")
        if self.event_capacity < 1 or self.event_capacity > 64:
            raise ValueError("event_capacity must be in [1, 64]")
        if self.action_groups < 1 or self.action_group_width < 1:
            raise ValueError("action group geometry must be positive")
        if self.fifo_depth < 1:
            raise ValueError("fifo_depth must be >= 1")
        if self.link_base_addresses and len(self.link_base_addresses) != self.n_links:
            raise ValueError("link_base_addresses must provide one base per link")

    def link_config(self, index: int) -> LinkConfig:
        """Per-link static configuration for link ``index``."""
        if not 0 <= index < self.n_links:
            raise ValueError(f"link index {index} out of range for {self.n_links} links")
        base = self.link_base_addresses[index] if self.link_base_addresses else 0
        return LinkConfig(scm_lines=self.scm_lines, fifo_depth=self.fifo_depth, base_address=base)

    @property
    def is_paper_minimal(self) -> bool:
        """Whether this is the paper's minimal 7 kGE configuration (1 link, 4 lines)."""
        return self.n_links == 1 and self.scm_lines == 4

    @property
    def is_paper_soc_default(self) -> bool:
        """Whether this is the Figure 6b PULPissimo configuration (4 links, 6 lines)."""
        return self.n_links == 4 and self.scm_lines == 6


MINIMAL_CONFIG = PelsConfig(n_links=1, scm_lines=4)
PAPER_SOC_CONFIG = PelsConfig(n_links=4, scm_lines=6)
