"""PELS top level.

Wires together:

* the incoming **event broadcast**: every cycle the active event-line vector
  of the :class:`~repro.peripherals.events.EventFabric` is presented to every
  link's trigger unit;
* the **links** themselves;
* the **instant-action routing**: outgoing single-wire event lines are
  organised in groups; each (group, bit) position can be routed to a
  peripheral event input, looped back into the event fabric (inter-link
  triggering, marker 9 in Figure 2), or left unconnected;
* the **memory-mapped configuration interface** through which the main CPU
  programs trigger masks, conditions, base addresses, and microcode.

PELS is itself a bus slave (for configuration) *and* a bus master (its links
issue sequenced actions on the peripheral interconnect).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bus.apb import ApbBus
from repro.bus.transaction import BusRequest
from repro.core.assembler import Program
from repro.core.config import PelsConfig
from repro.core.isa import Command, decode_command
from repro.core.link import Link
from repro.core.trigger import TriggerCondition
from repro.peripherals.events import EventFabric
from repro.sim.component import Component

# Register map constants (byte offsets within the PELS configuration window).
REG_GLOBAL_CTRL = 0x000
REG_NUM_LINKS = 0x004
REG_SCM_LINES = 0x008
REG_EVENT_COUNT = 0x00C
LINK_WINDOW_BASE = 0x100
LINK_WINDOW_STRIDE = 0x100
LINK_REG_ENABLE = 0x00
LINK_REG_MASK = 0x04
LINK_REG_CONDITION = 0x08
LINK_REG_BASE_ADDR = 0x0C
LINK_REG_STATUS = 0x10
LINK_REG_CAPTURE = 0x14
LINK_SCM_WINDOW = 0x40  # each SCM line occupies two words: data word, then {opcode, field}

GLOBAL_ENABLE_BIT = 0x1


@dataclass(frozen=True)
class ActionTarget:
    """Destination of one outgoing instant-action line.

    ``kind`` is ``"peripheral"`` (call ``peripheral.on_event_input(port)``),
    ``"fabric"`` (pulse the named fabric line next cycle — the loopback path
    used for inter-link triggering), or ``"callback"`` (invoke an arbitrary
    callable, used by tests and by co-designed peripherals).
    """

    kind: str
    label: str
    deliver: Callable[[], None]


# The wiring callables below are module-level classes rather than closures so
# a fully built SoC graph stays picklable (the prepared-state snapshot cache
# serialises whole prepared scenarios; see repro.sim.snapshot).


class _BusSubmit:
    """Bus-master hook: count the sequenced transfer, then submit."""

    __slots__ = ("pels",)

    def __init__(self, pels: "Pels") -> None:
        self.pels = pels

    def __call__(self, request: BusRequest) -> BusRequest:
        bus = self.pels.peripheral_bus
        assert bus is not None
        self.pels.record("sequenced_transfers")
        return bus.submit(request)


class _ActionSink:
    """Per-link outgoing action line feeding :meth:`Pels._deliver_action`."""

    __slots__ = ("pels", "link_index")

    def __init__(self, pels: "Pels", link_index: int) -> None:
        self.pels = pels
        self.link_index = link_index

    def __call__(self, group: int, mask: int, toggle: bool, cycle: int) -> None:
        self.pels._deliver_action(self.link_index, group, mask, toggle, cycle)


class _PeripheralDelivery:
    """Routed instant action: pulse one peripheral event input."""

    __slots__ = ("peripheral", "port")

    def __init__(self, peripheral, port: str) -> None:
        self.peripheral = peripheral
        self.port = port

    def __call__(self) -> None:
        self.peripheral.on_event_input(self.port)


class _FabricLoopback:
    """Routed instant action: re-inject a fabric line pulse next cycle."""

    __slots__ = ("pels", "line_name")

    def __init__(self, pels: "Pels", line_name: str) -> None:
        self.pels = pels
        self.line_name = line_name

    def __call__(self) -> None:
        self.pels._pending_loopback.append(self.line_name)


class Pels(Component):
    """The Peripheral Event Linking System."""

    def __init__(
        self,
        config: PelsConfig,
        fabric: EventFabric,
        peripheral_bus: Optional[ApbBus] = None,
        name: str = "pels",
    ) -> None:
        super().__init__(name)
        self.config = config
        self.fabric = fabric
        self.peripheral_bus = peripheral_bus
        self._enabled = True
        #: Union of enabled links' trigger masks currently declared observed
        #: on the fabric (consumer-aware wake protocol).
        self._observed_mask = 0
        submit = self._make_bus_submit() if peripheral_bus is not None else None
        self.links: List[Link] = [
            Link(
                index=index,
                config=config.link_config(index),
                bus_submit=submit,
                action_sink=self._make_action_sink(index),
            )
            for index in range(config.n_links)
        ]
        # (group, bit) -> ActionTarget
        self._action_routes: Dict[Tuple[int, int], ActionTarget] = {}
        self._pending_loopback: List[str] = []
        self.instant_actions_delivered = 0
        self.unrouted_actions = 0
        self._scm_reads_seen = 0
        self._scm_writes_seen = 0

    # ------------------------------------------------------------- bus mastering

    def _make_bus_submit(self):
        return _BusSubmit(self)

    # ------------------------------------------------------------ action routing

    def _make_action_sink(self, link_index: int):
        return _ActionSink(self, link_index)

    def route_action_to_peripheral(self, group: int, bit: int, peripheral, port: str) -> None:
        """Connect output line (``group``, ``bit``) to a peripheral event input."""
        self._check_route(group, bit)
        target = ActionTarget(
            kind="peripheral",
            label=f"{peripheral.name}.{port}",
            deliver=_PeripheralDelivery(peripheral, port),
        )
        self._action_routes[(group, bit)] = target

    def route_action_to_fabric(self, group: int, bit: int, line_name: str) -> None:
        """Loop output line (``group``, ``bit``) back into the event fabric.

        The pulse is applied at the start of the *next* cycle, modelling the
        registered loopback path that enables inter-link triggering.
        """
        self._check_route(group, bit)
        self.fabric.line(line_name)  # validate early
        target = ActionTarget(
            kind="fabric",
            label=line_name,
            deliver=_FabricLoopback(self, line_name),
        )
        self._action_routes[(group, bit)] = target

    def route_action_to_callback(self, group: int, bit: int, label: str, callback: Callable[[], None]) -> None:
        """Connect output line (``group``, ``bit``) to an arbitrary callback."""
        self._check_route(group, bit)
        self._action_routes[(group, bit)] = ActionTarget(kind="callback", label=label, deliver=callback)

    def add_loopback_line(self, name: str) -> str:
        """Create a dedicated fabric line for inter-link triggering and return its name."""
        line = self.fabric.add_line(f"{self.name}.{name}", producer=self.name)
        return line.name

    def _check_route(self, group: int, bit: int) -> None:
        if not 0 <= group < self.config.action_groups:
            raise ValueError(f"action group {group} out of range [0, {self.config.action_groups})")
        if not 0 <= bit < self.config.action_group_width:
            raise ValueError(f"action bit {bit} out of range [0, {self.config.action_group_width})")

    def _deliver_action(self, link_index: int, group: int, mask: int, toggle: bool, cycle: int) -> None:
        self.record("instant_actions")
        self.record(f"instant_actions_link{link_index}")
        for bit in range(self.config.action_group_width):
            if not mask & (1 << bit):
                continue
            target = self._action_routes.get((group, bit))
            if target is None:
                self.unrouted_actions += 1
                continue
            target.deliver()
            self.instant_actions_delivered += 1
            if self.is_attached:
                self.simulator.trace(f"{self.name}.action", f"link{link_index}->{target.label}")

    @property
    def action_routes(self) -> Dict[Tuple[int, int], str]:
        """Readable summary of the current routing table."""
        return {key: target.label for key, target in self._action_routes.items()}

    # ------------------------------------------------------- host-side configuration

    def link(self, index: int) -> Link:
        """Return link ``index``."""
        if not 0 <= index < len(self.links):
            raise IndexError(f"link index {index} out of range")
        return self.links[index]

    def program_link(
        self,
        index: int,
        program: Program | List[Command],
        trigger_mask: int,
        condition: TriggerCondition = TriggerCondition.ANY_SELECTED_ACTIVE,
        base_address: int = 0,
    ) -> Link:
        """Convenience host-side configuration of one link in a single call."""
        link = self.link(index)
        link.load_program(program)
        link.configure_trigger(trigger_mask, condition, enabled=True)
        link.set_base_address(base_address)
        self._sync_observed_lines()
        return link

    # ------------------------------------------------------- consumer awareness

    @property
    def enabled(self) -> bool:
        """Global PELS enable (mirrors REG_GLOBAL_CTRL bit 0)."""
        return self._enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._enabled = bool(value)
        self._sync_observed_lines()

    def _sync_observed_lines(self) -> None:
        """Reconcile the fabric's observer table with the trigger config.

        A line is consumed by PELS iff the global enable is set and some
        enabled link's trigger mask selects it; producers of lines that stop
        (or start) being consumed are notified through the fabric so their
        cached wake horizons re-bound on the exact cycle.  Must be called by
        every trigger-configuration path (``program_link``, the register
        window, ``reset``); links must not be reconfigured behind PELS's
        back.
        """
        mask = 0
        if self._enabled:
            for link in self.links:
                if link.trigger.enabled:
                    mask |= link.trigger.mask
        mask &= (1 << len(self.fabric)) - 1
        changed = mask ^ self._observed_mask
        index = 0
        while changed:
            if changed & 1:
                if (mask >> index) & 1:
                    self.fabric.observe(index)
                else:
                    self.fabric.unobserve(index)
            changed >>= 1
            index += 1
        self._observed_mask = mask

    # ----------------------------------------------------------------- behaviour

    def tick(self, cycle: int) -> None:
        # 1. Apply loopback pulses produced by instant actions last cycle.
        if self._pending_loopback:
            for line_name in self._pending_loopback:
                self.fabric.pulse(line_name)
                self.record("loopback_pulses")
            self._pending_loopback = []
        # 2. Broadcast the current event vector to every link.
        events = self.fabric.active_mask() if self.enabled else 0
        busy_links = 0
        for link in self.links:
            link.step(events, cycle)
            if link.busy:
                busy_links += 1
        if busy_links:
            self.record("busy_cycles")
            self.record("link_busy_cycles", busy_links)
        else:
            self.record("idle_cycles")
        # 3. Attribute this cycle's SCM traffic to PELS for the power model.
        scm_reads = sum(link.scm.read_count for link in self.links)
        scm_writes = sum(link.scm.write_count for link in self.links)
        if scm_reads > self._scm_reads_seen:
            self.record("scm_reads", scm_reads - self._scm_reads_seen)
            self._scm_reads_seen = scm_reads
        if scm_writes > self._scm_writes_seen:
            self.record("scm_writes", scm_writes - self._scm_writes_seen)
            self._scm_writes_seen = scm_writes
        # 4. Event pulses are single-cycle: clear them after all links sampled.
        self.fabric.end_cycle()

    # ------------------------------------------------------------ wake protocol

    def _quiescent(self) -> bool:
        # PELS must see the very next cycle whenever anything is in motion: a
        # registered loopback pulse to apply, an event on the fabric to
        # broadcast (it also owns the end-of-cycle pulse clearing), a link
        # executing microcode or holding queued triggers, a completed event
        # record awaiting closure, or SCM traffic (e.g. host-side microcode
        # programming) not yet attributed to the activity counters.
        if self._pending_loopback or self.fabric.active_mask():
            return False
        if not all(link.quiescent for link in self.links):
            return False
        return (
            sum(link.scm.read_count for link in self.links) == self._scm_reads_seen
            and sum(link.scm.write_count for link in self.links) == self._scm_writes_seen
        )

    def next_event(self):
        return None if self._quiescent() else 1

    def skip(self, cycles: int) -> None:
        if not self._quiescent():
            return
        self.record("idle_cycles", cycles)
        for link in self.links:
            link.skip_idle(cycles)

    def reset(self) -> None:
        for link in self.links:
            link.reset()
        self._pending_loopback = []
        self.instant_actions_delivered = 0
        self.unrouted_actions = 0
        self._scm_reads_seen = sum(link.scm.read_count for link in self.links)
        self._scm_writes_seen = sum(link.scm.write_count for link in self.links)
        self.enabled = True

    # --------------------------------------------------------- bus slave interface

    def bus_read(self, offset: int) -> int:
        """Configuration-window read (PELS as an APB slave)."""
        self.record("config_reads")
        if offset == REG_GLOBAL_CTRL:
            return GLOBAL_ENABLE_BIT if self.enabled else 0
        if offset == REG_NUM_LINKS:
            return self.config.n_links
        if offset == REG_SCM_LINES:
            return self.config.scm_lines
        if offset == REG_EVENT_COUNT:
            return len(self.fabric)
        link, local = self._decode_link_offset(offset)
        if link is None:
            return 0
        if local == LINK_REG_ENABLE:
            return int(link.trigger.enabled)
        if local == LINK_REG_MASK:
            return link.trigger.mask
        if local == LINK_REG_CONDITION:
            return int(link.trigger.condition)
        if local == LINK_REG_BASE_ADDR:
            return link.execution.base_address
        if local == LINK_REG_STATUS:
            return link.status_word()
        if local == LINK_REG_CAPTURE:
            return link.execution.capture_register
        line, is_high_word = self._decode_scm_offset(local, link)
        if line is not None:
            encoded = link.scm.read_line(line)
            return (encoded >> 32) & 0xFFFF if is_high_word else encoded & 0xFFFF_FFFF
        return 0

    def bus_write(self, offset: int, value: int) -> None:
        """Configuration-window write (PELS as an APB slave)."""
        self.record("config_writes")
        if offset == REG_GLOBAL_CTRL:
            self.enabled = bool(value & GLOBAL_ENABLE_BIT)
            return
        link, local = self._decode_link_offset(offset)
        if link is None:
            return
        if local == LINK_REG_ENABLE:
            link.trigger.enabled = bool(value & 0x1)
            self._sync_observed_lines()
        elif local == LINK_REG_MASK:
            link.trigger.mask = value
            self._sync_observed_lines()
        elif local == LINK_REG_CONDITION:
            link.trigger.condition = TriggerCondition(value & 0x1)
        elif local == LINK_REG_BASE_ADDR:
            link.set_base_address(value)
        else:
            line, is_high_word = self._decode_scm_offset(local, link)
            if line is None:
                return
            encoded = link.scm.read_line(line)
            if is_high_word:
                encoded = (encoded & 0xFFFF_FFFF) | ((value & 0xFFFF) << 32)
            else:
                encoded = (encoded & (0xFFFF << 32)) | (value & 0xFFFF_FFFF)
            link.scm.write_line(line, encoded)
            # Validate eagerly so a malformed microcode write fails loudly.
            decode_command(encoded)

    def _decode_link_offset(self, offset: int) -> Tuple[Optional[Link], int]:
        if offset < LINK_WINDOW_BASE:
            return None, 0
        index = (offset - LINK_WINDOW_BASE) // LINK_WINDOW_STRIDE
        local = (offset - LINK_WINDOW_BASE) % LINK_WINDOW_STRIDE
        if index >= len(self.links):
            return None, 0
        return self.links[index], local

    def _decode_scm_offset(self, local: int, link: Link) -> Tuple[Optional[int], bool]:
        if local < LINK_SCM_WINDOW:
            return None, False
        word_index = (local - LINK_SCM_WINDOW) // 4
        line = word_index // 2
        if line >= link.scm.lines:
            return None, False
        return line, bool(word_index % 2)

    # ------------------------------------------------------------------ queries

    @property
    def window_size(self) -> int:
        """Size in bytes of the configuration address window."""
        return LINK_WINDOW_BASE + LINK_WINDOW_STRIDE * self.config.n_links

    @property
    def busy(self) -> bool:
        """Whether any link is currently servicing an event."""
        return any(link.busy for link in self.links)

    def total_events_serviced(self) -> int:
        """Linking events serviced across all links since reset."""
        return sum(link.events_serviced for link in self.links)
