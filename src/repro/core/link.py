"""A single PELS link: trigger unit + private SCM + execution unit."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.assembler import Program
from repro.core.config import LinkConfig
from repro.core.execution import ActionSink, BusSubmit, ExecutionState, ExecutionUnit
from repro.core.isa import Command
from repro.core.scm import ScmMemory
from repro.core.trigger import TriggerCondition, TriggerUnit


@dataclass
class LinkEventRecord:
    """Timing record of one serviced linking event (used by the latency analysis)."""

    trigger_cycle: int
    completion_cycle: Optional[int] = None
    first_action_cycle: Optional[int] = None
    last_bus_write_cycle: Optional[int] = None

    @property
    def instant_latency(self) -> Optional[int]:
        """Cycles from the triggering event to the first instant action (inclusive)."""
        if self.first_action_cycle is None:
            return None
        return self.first_action_cycle - self.trigger_cycle + 1

    @property
    def sequenced_latency(self) -> Optional[int]:
        """Cycles from the triggering event to the last bus write landing (inclusive)."""
        if self.last_bus_write_cycle is None:
            return None
        return self.last_bus_write_cycle - self.trigger_cycle + 1

    @property
    def total_latency(self) -> Optional[int]:
        """Cycles from the triggering event to the end of the microcode sequence."""
        if self.completion_cycle is None:
            return None
        return self.completion_cycle - self.trigger_cycle + 1


class Link:
    """One of PELS's independent linking units.

    The link is *not* a simulator component itself: the PELS top level ticks
    all of its links so it can broadcast the event vector and route instant
    actions consistently.
    """

    def __init__(
        self,
        index: int,
        config: LinkConfig,
        bus_submit: Optional[BusSubmit] = None,
        action_sink: Optional[ActionSink] = None,
    ) -> None:
        if index < 0:
            raise ValueError("link index must be non-negative")
        self.index = index
        self.config = config
        self.name = f"pels_link{index}"
        self.scm = ScmMemory(config.scm_lines)
        self.trigger = TriggerUnit(fifo_depth=config.fifo_depth)
        self.execution = ExecutionUnit(
            name=self.name,
            scm=self.scm,
            bus_submit=bus_submit,
            action_sink=action_sink,
            base_address=config.base_address,
        )
        self.events_serviced = 0
        self.records: List[LinkEventRecord] = []
        self._open_record: Optional[LinkEventRecord] = None

    # ------------------------------------------------------------ configuration

    def load_program(self, program: Program | List[Command]) -> None:
        """Load an assembled program (or raw command list) into the SCM."""
        commands = list(program.commands) if isinstance(program, Program) else list(program)
        self.scm.load_program(commands)

    def configure_trigger(
        self,
        mask: int,
        condition: TriggerCondition = TriggerCondition.ANY_SELECTED_ACTIVE,
        enabled: bool = True,
    ) -> None:
        """Program the trigger mask, condition and enable bit."""
        self.trigger.configure(mask, condition, enabled)

    def set_base_address(self, base_address: int) -> None:
        """Set the base address sequenced-action offsets are relative to."""
        self.execution.set_base_address(base_address)

    # ---------------------------------------------------------------- behaviour

    def step(self, events: int, cycle: int) -> None:
        """Advance the link by one cycle with the broadcast event vector."""
        self.execution.tick(cycle)
        self._close_record_if_done()
        self.trigger.evaluate(events, cycle)
        if self.execution.idle and not self.trigger.fifo.empty:
            entry = self.trigger.fifo.pop()
            assert entry is not None
            self.execution.start(entry)
            self._open_record = LinkEventRecord(trigger_cycle=entry.cycle)
            self.events_serviced += 1

    def _close_record_if_done(self) -> None:
        record = self._open_record
        if record is None or self.execution.state is not ExecutionState.IDLE:
            return
        record.completion_cycle = self.execution.last_completion_cycle
        record.first_action_cycle = self.execution.first_action_cycle
        record.last_bus_write_cycle = self.execution.last_bus_write_cycle
        self.records.append(record)
        self._open_record = None

    def skip_idle(self, cycles: int) -> None:
        """Replay ``cycles`` idle steps (``events == 0``) in one batch.

        Only valid while :attr:`quiescent`: the execution unit stays idle, no
        trigger can fire on an empty event vector, and the only per-cycle
        effects of :meth:`step` are the trigger unit's evaluation counter and
        its (zero) masked-vector history.
        """
        self.trigger.evaluations += cycles
        self.trigger._previous_masked = 0

    # ------------------------------------------------------------------- status

    @property
    def busy(self) -> bool:
        """Whether the execution unit is servicing a linking event."""
        return not self.execution.idle

    @property
    def quiescent(self) -> bool:
        """Whether idle :meth:`step` calls are batchable by :meth:`skip_idle`.

        Requires an idle execution unit, an empty trigger FIFO, *and* no
        completed-event record still waiting to be closed (record closing is a
        per-step side effect the latency analysis depends on).
        """
        return self.execution.idle and self.trigger.fifo.empty and self._open_record is None

    @property
    def last_record(self) -> Optional[LinkEventRecord]:
        """Timing record of the most recently completed linking event."""
        return self.records[-1] if self.records else None

    def status_word(self) -> int:
        """Packed status: trigger status bits plus bit 10 = execution busy."""
        status = self.trigger.status_word()
        if self.busy:
            status |= 1 << 10
        return status

    def reset(self) -> None:
        """Reset trigger, execution unit, and statistics (SCM contents kept)."""
        self.trigger.reset()
        self.execution.reset()
        self.events_serviced = 0
        self.records = []
        self._open_record = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link(index={self.index}, lines={self.scm.lines}, busy={self.busy})"
