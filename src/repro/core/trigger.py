"""The per-link trigger unit.

Incoming events are broadcast to every link; each link's trigger unit masks
them (marker 1 in Figure 2), checks the masked vector against a trigger
condition such as all-selected-active (AND) or any-selected-active (OR)
(marker 2), and — when the condition holds — pushes a trigger into the FIFO
in front of the execution unit.  The main CPU configures both the mask and
the condition through the link's private configuration registers (marker 3).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.fifo import TriggerFifo


class TriggerCondition(enum.IntEnum):
    """Combination function applied to the masked event vector."""

    ANY_SELECTED_ACTIVE = 0  # OR of the masked events
    ALL_SELECTED_ACTIVE = 1  # AND of the masked events

    @property
    def mnemonic(self) -> str:
        """Short name used in register dumps and examples."""
        return "OR" if self is TriggerCondition.ANY_SELECTED_ACTIVE else "AND"


class TriggerUnit:
    """Event mask + condition check + trigger FIFO of a single link."""

    def __init__(self, fifo_depth: int = 4) -> None:
        self.mask = 0
        self.condition = TriggerCondition.ANY_SELECTED_ACTIVE
        self.enabled = False
        self.fifo = TriggerFifo(fifo_depth)
        self.evaluations = 0
        self.triggers = 0
        self.last_trigger_cycle: Optional[int] = None
        self._previous_masked = 0

    # ------------------------------------------------------------ configuration

    def configure(
        self,
        mask: int,
        condition: TriggerCondition = TriggerCondition.ANY_SELECTED_ACTIVE,
        enabled: bool = True,
    ) -> None:
        """Program the event mask, combination condition, and enable bit."""
        if mask < 0:
            raise ValueError("event mask must be non-negative")
        self.mask = mask
        self.condition = TriggerCondition(condition)
        self.enabled = enabled

    # --------------------------------------------------------------- evaluation

    def evaluate(self, events: int, cycle: int) -> bool:
        """Evaluate the incoming event vector for one cycle.

        Events are pulses, so the condition is evaluated on the current-cycle
        vector directly (edge semantics): a trigger fires in every cycle in
        which the masked vector satisfies the condition.  Returns whether a
        trigger was pushed this cycle.
        """
        self.evaluations += 1
        if not self.enabled or self.mask == 0:
            self._previous_masked = events & self.mask
            return False
        masked = events & self.mask
        if self.condition is TriggerCondition.ANY_SELECTED_ACTIVE:
            fired = masked != 0
        else:
            fired = masked == self.mask
        self._previous_masked = masked
        if not fired:
            return False
        self.triggers += 1
        self.last_trigger_cycle = cycle
        self.fifo.push(cycle, masked)
        return True

    # ------------------------------------------------------------------- status

    @property
    def pending(self) -> int:
        """Number of buffered triggers waiting for the execution unit."""
        return self.fifo.level

    def status_word(self) -> int:
        """Packed status register value: [7:0] FIFO level, [8] enabled, [9] condition."""
        status = self.fifo.level & 0xFF
        if self.enabled:
            status |= 1 << 8
        if self.condition is TriggerCondition.ALL_SELECTED_ACTIVE:
            status |= 1 << 9
        return status

    def reset(self) -> None:
        """Return to the post-reset state (configuration is cleared too)."""
        self.mask = 0
        self.condition = TriggerCondition.ANY_SELECTED_ACTIVE
        self.enabled = False
        self.fifo.clear()
        self.evaluations = 0
        self.triggers = 0
        self.last_trigger_cycle = None
        self._previous_masked = 0
