"""A small textual assembler for PELS link programs.

The syntax follows the pseudocode of Figure 3 in the paper::

    CMD0: clear   AFLAG   MASK
    CMD1: capture ADATA   0x0FF
    CMD2: jump-if CMD4 GT THRES
    CMD3: action  GROUP   MASK
    CMD4: end

* Labels (``CMD0:``) are optional and may be any identifier; they become jump
  targets.
* Operands are either numeric literals (decimal, ``0x`` hex, ``0b`` binary)
  or symbols resolved through the assembler's symbol table.  Register symbols
  map to *word offsets* relative to the link base address, data symbols map
  to 32-bit values; both live in one namespace.
* ``;`` and ``#`` start comments.

The assembler produces a :class:`Program` — an ordered list of
:class:`~repro.core.isa.Command` objects ready to be loaded into a link's SCM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.isa import Command, JumpCondition, Opcode, encode_command

_MNEMONICS = {
    "write": Opcode.WRITE,
    "set": Opcode.SET,
    "clear": Opcode.CLEAR,
    "toggle": Opcode.TOGGLE,
    "capture": Opcode.CAPTURE,
    "jump-if": Opcode.JUMP_IF,
    "jumpif": Opcode.JUMP_IF,
    "loop": Opcode.LOOP,
    "wait": Opcode.WAIT,
    "action": Opcode.ACTION,
    "end": Opcode.END,
}

_CONDITIONS = {condition.name: condition for condition in JumpCondition}


class AssemblyError(ValueError):
    """Raised for syntax errors, unknown symbols, or out-of-range operands."""

    def __init__(self, message: str, line_number: Optional[int] = None) -> None:
        prefix = f"line {line_number}: " if line_number is not None else ""
        super().__init__(prefix + message)
        self.line_number = line_number


@dataclass
class Program:
    """An assembled link program."""

    commands: List[Command] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    source: str = ""

    def encoded(self) -> List[int]:
        """48-bit SCM line values for the whole program."""
        return [encode_command(command) for command in self.commands]

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self):
        return iter(self.commands)

    def __getitem__(self, index: int) -> Command:
        return self.commands[index]

    def listing(self) -> str:
        """Human-readable disassembly with line numbers and labels."""
        label_for_line = {index: name for name, index in self.labels.items()}
        lines = []
        for index, command in enumerate(self.commands):
            label = label_for_line.get(index, "")
            label_text = f"{label}:" if label else ""
            lines.append(f"{index:2d}  {label_text:<10s} {command}")
        return "\n".join(lines)


class Assembler:
    """Two-pass assembler with a user-extensible symbol table."""

    def __init__(self, symbols: Optional[Dict[str, int]] = None) -> None:
        self._symbols: Dict[str, int] = {}
        if symbols:
            for name, value in symbols.items():
                self.define_symbol(name, value)

    # ----------------------------------------------------------------- symbols

    def define_symbol(self, name: str, value: int) -> None:
        """Add or overwrite a symbol usable as an offset or operand."""
        if not name or not name.replace("_", "").isalnum():
            raise AssemblyError(f"invalid symbol name {name!r}")
        if value < 0:
            raise AssemblyError(f"symbol {name!r}: value must be non-negative")
        self._symbols[name.upper()] = value

    def define_register(self, name: str, byte_offset: int) -> None:
        """Add a register symbol given its *byte* offset relative to the link base."""
        if byte_offset % 4 != 0:
            raise AssemblyError(f"register {name!r}: byte offset must be word aligned")
        self.define_symbol(name, byte_offset // 4)

    def symbols(self) -> Dict[str, int]:
        """A copy of the current symbol table."""
        return dict(self._symbols)

    # ---------------------------------------------------------------- assembly

    def assemble(self, source: str) -> Program:
        """Assemble ``source`` text into a :class:`Program`."""
        statements = self._parse(source)
        labels = {label: index for index, (label, _, _) in enumerate(statements) if label}
        commands = [
            self._build_command(mnemonic, operands_and_line, labels, None)
            for _, mnemonic, operands_and_line in statements
        ]
        return Program(commands=commands, labels=labels, source=source)

    def _parse(self, source: str) -> List[Tuple[Optional[str], str, Tuple[List[str], int]]]:
        statements: List[Tuple[Optional[str], str, Tuple[List[str], int]]] = []
        for line_number, raw_line in enumerate(source.splitlines(), start=1):
            line = raw_line.split(";")[0].split("#")[0].strip()
            if not line:
                continue
            label: Optional[str] = None
            if ":" in line:
                label_part, line = line.split(":", 1)
                label = label_part.strip().upper()
                if not label or not label.replace("_", "").isalnum():
                    raise AssemblyError(f"invalid label {label_part.strip()!r}", line_number)
                line = line.strip()
            if not line:
                raise AssemblyError("label without a command", line_number)
            tokens = line.replace(",", " ").split()
            mnemonic = tokens[0].lower()
            if mnemonic not in _MNEMONICS:
                raise AssemblyError(f"unknown mnemonic {tokens[0]!r}", line_number)
            statements.append((label, mnemonic, (tokens[1:], line_number)))
        if not statements:
            raise AssemblyError("empty program")
        return statements

    def _build_command(
        self,
        mnemonic: str,
        operands_and_line: Tuple[List[str], int],
        labels: Dict[str, int],
        _line: Optional[int],
    ) -> Command:
        operands, line_number = operands_and_line
        opcode = _MNEMONICS[mnemonic]
        try:
            if opcode in (Opcode.WRITE, Opcode.SET, Opcode.CLEAR, Opcode.TOGGLE, Opcode.CAPTURE):
                self._expect(operands, 2, mnemonic, line_number)
                offset = self._resolve(operands[0], labels, line_number)
                value = self._resolve(operands[1], labels, line_number)
                return Command(opcode, field=offset, data=value)
            if opcode is Opcode.JUMP_IF:
                self._expect(operands, 3, mnemonic, line_number)
                target = self._resolve(operands[0], labels, line_number)
                condition_name = operands[1].upper()
                if condition_name not in _CONDITIONS:
                    raise AssemblyError(
                        f"unknown jump condition {operands[1]!r}; expected one of {sorted(_CONDITIONS)}",
                        line_number,
                    )
                operand = self._resolve(operands[2], labels, line_number)
                return Command.jump_if(target, _CONDITIONS[condition_name], operand)
            if opcode is Opcode.LOOP:
                self._expect(operands, 2, mnemonic, line_number)
                target = self._resolve(operands[0], labels, line_number)
                count = self._resolve(operands[1], labels, line_number)
                return Command.loop(target, count)
            if opcode is Opcode.WAIT:
                self._expect(operands, 1, mnemonic, line_number)
                return Command.wait(self._resolve(operands[0], labels, line_number))
            if opcode is Opcode.ACTION:
                if len(operands) not in (2, 3):
                    raise AssemblyError(f"action expects 2 or 3 operands, got {len(operands)}", line_number)
                group = self._resolve(operands[0], labels, line_number)
                mask = self._resolve(operands[1], labels, line_number)
                toggle = len(operands) == 3 and operands[2].lower() == "toggle"
                if len(operands) == 3 and not toggle:
                    raise AssemblyError(f"unknown action modifier {operands[2]!r}", line_number)
                return Command.action(group, mask, toggle=toggle)
            # END
            if operands:
                raise AssemblyError("end takes no operands", line_number)
            return Command.end()
        except AssemblyError:
            raise
        except ValueError as exc:
            raise AssemblyError(str(exc), line_number) from exc

    @staticmethod
    def _expect(operands: List[str], count: int, mnemonic: str, line_number: int) -> None:
        if len(operands) != count:
            raise AssemblyError(f"{mnemonic} expects {count} operands, got {len(operands)}", line_number)

    def _resolve(self, token: str, labels: Dict[str, int], line_number: int) -> int:
        name = token.upper()
        if name in labels:
            return labels[name]
        if name in self._symbols:
            return self._symbols[name]
        try:
            return int(token, 0)
        except ValueError as exc:
            raise AssemblyError(f"unknown symbol or malformed literal {token!r}", line_number) from exc


def assemble(source: str, symbols: Optional[Dict[str, int]] = None) -> Program:
    """One-shot convenience wrapper around :class:`Assembler`."""
    return Assembler(symbols).assemble(source)
