"""Trigger FIFO.

When a link's trigger condition fires while the execution unit is still busy
with a previous sequenced action, the trigger is buffered "with a FIFO to
prevent interference with a running execution unit" (Section III-1b).  The
FIFO stores the masked event snapshot that caused the trigger so later
commands could, in principle, inspect it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional


@dataclass(frozen=True)
class TriggerEntry:
    """One buffered trigger occurrence."""

    cycle: int
    events_snapshot: int


class TriggerFifo:
    """Bounded FIFO of :class:`TriggerEntry` items.

    Overflow does not raise: like the hardware, the newest trigger is dropped
    and counted, so the rest of the system keeps running and the loss is
    observable (``dropped`` counter) — an important property for the
    worst-case analyses in the tests.
    """

    def __init__(self, depth: int) -> None:
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.depth = depth
        self._entries: Deque[TriggerEntry] = deque()
        self.pushed = 0
        self.popped = 0
        self.dropped = 0
        self.high_watermark = 0

    def push(self, cycle: int, events_snapshot: int) -> bool:
        """Buffer a trigger; returns ``False`` (and counts a drop) when full."""
        if len(self._entries) >= self.depth:
            self.dropped += 1
            return False
        self._entries.append(TriggerEntry(cycle=cycle, events_snapshot=events_snapshot))
        self.pushed += 1
        self.high_watermark = max(self.high_watermark, len(self._entries))
        return True

    def pop(self) -> Optional[TriggerEntry]:
        """Remove and return the oldest trigger, or ``None`` when empty."""
        if not self._entries:
            return None
        self.popped += 1
        return self._entries.popleft()

    def peek(self) -> Optional[TriggerEntry]:
        """Return the oldest trigger without removing it."""
        return self._entries[0] if self._entries else None

    @property
    def level(self) -> int:
        """Current occupancy."""
        return len(self._entries)

    @property
    def empty(self) -> bool:
        """Whether the FIFO holds no triggers."""
        return not self._entries

    @property
    def full(self) -> bool:
        """Whether another push would be dropped."""
        return len(self._entries) >= self.depth

    def clear(self) -> None:
        """Drop all entries and statistics."""
        self._entries.clear()
        self.pushed = 0
        self.popped = 0
        self.dropped = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._entries)
