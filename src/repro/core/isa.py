"""The PELS microcode instruction set.

Each SCM line holds one 48-bit command (Section III-2 of the paper):

* a **4-bit opcode**,
* a **12-bit field** — a word-addressed register offset relative to the
  link's base address for sequenced actions, an event-line group selector for
  ``action``, or a jump target plus condition for ``jump-if``,
* a **32-bit operand** — the datum, mask, compare value, wait count, or
  action line mask.

The commands are:

==========  ==========================================================
``write``   write the 32-bit operand to the addressed register
``set``     read-modify-write: OR the operand into the register
``clear``   read-modify-write: AND the complement of the operand
``toggle``  read-modify-write: XOR the operand into the register
``capture`` masked read into the link's single 32-bit capture register
``jump_if`` compare the capture register with the operand and branch
``loop``    non-nestable hardware loop back to an earlier command
``wait``    stall for the operand number of cycles (watchdog-style)
``action``  instant action: pulse single-wire event lines in a group
``end``     terminate the sequenced action
==========  ==========================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

OPCODE_BITS = 4
FIELD_BITS = 12
DATA_BITS = 32
COMMAND_BITS = OPCODE_BITS + FIELD_BITS + DATA_BITS

OPCODE_MASK = (1 << OPCODE_BITS) - 1
FIELD_MASK = (1 << FIELD_BITS) - 1
DATA_MASK = (1 << DATA_BITS) - 1

# jump-if packs the branch target in field[5:0] and the condition in field[8:6].
JUMP_TARGET_BITS = 6
JUMP_TARGET_MASK = (1 << JUMP_TARGET_BITS) - 1
JUMP_CONDITION_SHIFT = JUMP_TARGET_BITS
JUMP_CONDITION_MASK = 0x7

# loop packs the branch target in field[5:0]; the operand is the iteration count.
LOOP_TARGET_MASK = JUMP_TARGET_MASK

# action packs the event-line group index in field[3:0] and a toggle-mode flag
# in field[4] (0 = pulse/set, 1 = toggle a level output).
ACTION_GROUP_MASK = 0xF
ACTION_TOGGLE_BIT = 1 << 4


class CommandEncodingError(ValueError):
    """Raised when a command cannot be encoded in the 48-bit format."""


class Opcode(enum.IntEnum):
    """4-bit primary opcodes."""

    END = 0x0
    WRITE = 0x1
    SET = 0x2
    CLEAR = 0x3
    TOGGLE = 0x4
    CAPTURE = 0x5
    JUMP_IF = 0x6
    LOOP = 0x7
    WAIT = 0x8
    ACTION = 0x9

    @property
    def is_read_modify_write(self) -> bool:
        """Whether the opcode performs a bus read followed by a write-back."""
        return self in (Opcode.SET, Opcode.CLEAR, Opcode.TOGGLE)

    @property
    def is_sequenced(self) -> bool:
        """Whether the opcode needs the system interconnect."""
        return self in (Opcode.WRITE, Opcode.SET, Opcode.CLEAR, Opcode.TOGGLE, Opcode.CAPTURE)

    @property
    def is_instant(self) -> bool:
        """Whether the opcode drives single-wire event lines only."""
        return self is Opcode.ACTION


class JumpCondition(enum.IntEnum):
    """Comparison applied by ``jump_if`` between the capture register and the operand."""

    EQ = 0x0
    NE = 0x1
    GT = 0x2
    GE = 0x3
    LT = 0x4
    LE = 0x5
    ALWAYS = 0x6

    def evaluate(self, captured: int, operand: int) -> bool:
        """Whether the branch is taken for ``captured`` vs ``operand``."""
        if self is JumpCondition.EQ:
            return captured == operand
        if self is JumpCondition.NE:
            return captured != operand
        if self is JumpCondition.GT:
            return captured > operand
        if self is JumpCondition.GE:
            return captured >= operand
        if self is JumpCondition.LT:
            return captured < operand
        if self is JumpCondition.LE:
            return captured <= operand
        return True


@dataclass(frozen=True)
class Command:
    """One decoded microcode command."""

    opcode: Opcode
    field: int = 0
    data: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.field <= FIELD_MASK:
            raise CommandEncodingError(f"field 0x{self.field:x} does not fit in {FIELD_BITS} bits")
        if not 0 <= self.data <= DATA_MASK:
            raise CommandEncodingError(f"data 0x{self.data:x} does not fit in {DATA_BITS} bits")

    # ------------------------------------------------------- field accessors

    @property
    def word_offset(self) -> int:
        """Word-addressed register offset (sequenced actions)."""
        return self.field

    @property
    def byte_offset(self) -> int:
        """Byte offset of the addressed register relative to the link base."""
        return self.field * 4

    @property
    def jump_target(self) -> int:
        """Branch target line index (``jump_if`` / ``loop``)."""
        return self.field & JUMP_TARGET_MASK

    @property
    def jump_condition(self) -> JumpCondition:
        """Branch condition (``jump_if``)."""
        return JumpCondition((self.field >> JUMP_CONDITION_SHIFT) & JUMP_CONDITION_MASK)

    @property
    def action_group(self) -> int:
        """Event-line group selector (``action``)."""
        return self.field & ACTION_GROUP_MASK

    @property
    def action_is_toggle(self) -> bool:
        """Whether the ``action`` drives toggle-mode outputs instead of pulses."""
        return bool(self.field & ACTION_TOGGLE_BIT)

    # ------------------------------------------------------------ constructors

    @staticmethod
    def write(word_offset: int, value: int) -> "Command":
        """``write``: store ``value`` at the link-relative ``word_offset``."""
        return Command(Opcode.WRITE, field=word_offset, data=value)

    @staticmethod
    def set(word_offset: int, mask: int) -> "Command":
        """``set``: OR ``mask`` into the addressed register."""
        return Command(Opcode.SET, field=word_offset, data=mask)

    @staticmethod
    def clear(word_offset: int, mask: int) -> "Command":
        """``clear``: clear the ``mask`` bits of the addressed register."""
        return Command(Opcode.CLEAR, field=word_offset, data=mask)

    @staticmethod
    def toggle(word_offset: int, mask: int) -> "Command":
        """``toggle``: XOR ``mask`` into the addressed register."""
        return Command(Opcode.TOGGLE, field=word_offset, data=mask)

    @staticmethod
    def capture(word_offset: int, mask: int) -> "Command":
        """``capture``: masked read of the addressed register into the capture register."""
        return Command(Opcode.CAPTURE, field=word_offset, data=mask)

    @staticmethod
    def jump_if(target: int, condition: JumpCondition, operand: int) -> "Command":
        """``jump_if``: branch to line ``target`` when the condition holds."""
        if not 0 <= target <= JUMP_TARGET_MASK:
            raise CommandEncodingError(f"jump target {target} does not fit in {JUMP_TARGET_BITS} bits")
        field = (int(condition) << JUMP_CONDITION_SHIFT) | target
        return Command(Opcode.JUMP_IF, field=field, data=operand)

    @staticmethod
    def loop(target: int, count: int) -> "Command":
        """``loop``: jump back to line ``target`` ``count`` times."""
        if not 0 <= target <= LOOP_TARGET_MASK:
            raise CommandEncodingError(f"loop target {target} does not fit in {JUMP_TARGET_BITS} bits")
        return Command(Opcode.LOOP, field=target, data=count)

    @staticmethod
    def wait(cycles: int) -> "Command":
        """``wait``: stall the link for ``cycles`` clock cycles."""
        return Command(Opcode.WAIT, field=0, data=cycles)

    @staticmethod
    def action(group: int, mask: int, toggle: bool = False) -> "Command":
        """``action``: drive the ``mask`` lines of event-line ``group``."""
        if not 0 <= group <= ACTION_GROUP_MASK:
            raise CommandEncodingError(f"action group {group} does not fit in 4 bits")
        field = group | (ACTION_TOGGLE_BIT if toggle else 0)
        return Command(Opcode.ACTION, field=field, data=mask)

    @staticmethod
    def end() -> "Command":
        """``end``: terminate the sequenced action."""
        return Command(Opcode.END)

    def __str__(self) -> str:
        if self.opcode is Opcode.JUMP_IF:
            return f"jump-if -> line {self.jump_target} {self.jump_condition.name} 0x{self.data:x}"
        if self.opcode is Opcode.LOOP:
            return f"loop -> line {self.jump_target} x{self.data}"
        if self.opcode is Opcode.ACTION:
            mode = "toggle" if self.action_is_toggle else "pulse"
            return f"action group {self.action_group} mask 0x{self.data:x} ({mode})"
        if self.opcode is Opcode.END:
            return "end"
        if self.opcode is Opcode.WAIT:
            return f"wait {self.data} cycles"
        return f"{self.opcode.name.lower()} offset 0x{self.byte_offset:x} data 0x{self.data:x}"


def encode_command(command: Command) -> int:
    """Pack a :class:`Command` into its 48-bit SCM line representation."""
    return (
        (int(command.opcode) & OPCODE_MASK) << (FIELD_BITS + DATA_BITS)
        | (command.field & FIELD_MASK) << DATA_BITS
        | (command.data & DATA_MASK)
    )


def decode_command(encoded: int) -> Command:
    """Unpack a 48-bit SCM line into a :class:`Command`."""
    if not 0 <= encoded < (1 << COMMAND_BITS):
        raise CommandEncodingError(f"encoded command 0x{encoded:x} does not fit in {COMMAND_BITS} bits")
    opcode_value = (encoded >> (FIELD_BITS + DATA_BITS)) & OPCODE_MASK
    try:
        opcode = Opcode(opcode_value)
    except ValueError as exc:
        raise CommandEncodingError(f"unknown opcode 0x{opcode_value:x}") from exc
    field = (encoded >> DATA_BITS) & FIELD_MASK
    data = encoded & DATA_MASK
    return Command(opcode=opcode, field=field, data=data)
