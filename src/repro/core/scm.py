"""Per-link standard-cell-memory (SCM) instruction memory.

The paper stresses that PELS keeps its microcode in a *private* SCM rather
than the shared SRAM: fetches never contend on the system bus (single-cycle,
predictable latency) and, for the small footprints involved (4–8 lines), an
SCM is cheaper in area and power than an SRAM macro whose sense amplifiers
would dominate [Teman et al.].
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.isa import COMMAND_BITS, Command, decode_command, encode_command


class ScmMemory:
    """A tiny instruction memory with single-cycle read latency.

    Lines hold 48-bit encoded commands.  Reads and writes are tracked so the
    power model can attribute fetch energy to the SCM rather than the SRAM.
    """

    def __init__(self, lines: int) -> None:
        if lines < 1:
            raise ValueError("an SCM needs at least one line")
        self.lines = lines
        self._storage: List[int] = [0] * lines
        self.read_count = 0
        self.write_count = 0

    # ------------------------------------------------------------------ access

    def read_line(self, index: int) -> int:
        """Read the encoded command at ``index`` (counts as one SCM access)."""
        self._check_index(index)
        self.read_count += 1
        return self._storage[index]

    def fetch(self, index: int) -> Command:
        """Read and decode the command at ``index``."""
        return decode_command(self.read_line(index))

    def write_line(self, index: int, encoded: int) -> None:
        """Store an encoded command at ``index``."""
        self._check_index(index)
        if not 0 <= encoded < (1 << COMMAND_BITS):
            raise ValueError(f"encoded command 0x{encoded:x} does not fit in {COMMAND_BITS} bits")
        self._storage[index] = encoded
        self.write_count += 1

    def store(self, index: int, command: Command) -> None:
        """Encode and store ``command`` at ``index``."""
        self.write_line(index, encode_command(command))

    def load_program(self, commands: Sequence[Command] | Iterable[Command]) -> None:
        """Load a whole program starting at line 0.

        The program must fit: this mirrors the hardware constraint that a
        link's flexibility is bounded by its SCM size, which is exactly the
        trade-off the Figure 6a area sweep explores.
        """
        command_list = list(commands)
        if len(command_list) > self.lines:
            raise ValueError(
                f"program has {len(command_list)} commands but the SCM only has {self.lines} lines"
            )
        for index, command in enumerate(command_list):
            self.store(index, command)
        for index in range(len(command_list), self.lines):
            self.write_line(index, encode_command(Command.end()))

    def dump(self) -> List[Command]:
        """Decode every line (without counting reads), for debugging and tests."""
        return [decode_command(encoded) for encoded in self._storage]

    def clear(self) -> None:
        """Zero the memory and reset access statistics."""
        self._storage = [0] * self.lines
        self.read_count = 0
        self.write_count = 0

    # ----------------------------------------------------------------- helpers

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.lines:
            raise IndexError(f"SCM line {index} out of range [0, {self.lines})")

    def __len__(self) -> int:
        return self.lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScmMemory(lines={self.lines}, reads={self.read_count}, writes={self.write_count})"


def scm_bits(lines: int, optional_capture_register: bool = True) -> int:
    """Storage bits of a link's SCM (used by the area model).

    Each line stores a 48-bit command; the link additionally holds one 32-bit
    capture register next to the memory (Section III-2).
    """
    if lines < 1:
        raise ValueError("lines must be >= 1")
    bits = lines * COMMAND_BITS
    if optional_capture_register:
        bits += 32
    return bits
