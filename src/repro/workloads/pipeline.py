"""Multi-link autonomous sensing pipeline as a sweepable workload.

This is the scenario behind ``examples/multi_link_pipeline.py``, packaged for
the registry and the sweep subsystem.  Three specialised links chain three
stages (Section III of the paper):

* **link 0** — timer overflow starts an ADC conversion (instant action);
* **link 1** — ADC end-of-conversion writes a UART alert byte (sequenced
  action against the UART's own base address) and fires a loopback event;
* **link 2** — the loopback event wakes a ``wait``/``loop`` blinker that
  toggles a GPIO pad ``blink_count`` times.

The main CPU never wakes.  The sweepable **clock ratio** models the divider
between the SoC base clock and the I/O shift clock: peripherals whose work is
paced by the shift clock (ADC conversion, UART framing) take ``clock_ratio``
times as many base-clock cycles per unit of work, which is how a divided
functional clock manifests in a single-time-base simulation.  Sweeping it
shows when the pipeline's service time overruns the sampling period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.assembler import Assembler
from repro.core.config import PelsConfig
from repro.soc.pulpissimo import PulpissimoSoc, SocConfig, build_soc

#: Base service times at clock ratio 1 (in base-clock cycles).
BASE_ADC_CONVERSION_CYCLES = 8
BASE_UART_CYCLES_PER_BYTE = 10


@dataclass(frozen=True)
class MultiLinkPipelineConfig:
    """Parameters of the multi-link pipeline scenario."""

    timer_period_cycles: int = 150
    #: Divider between the SoC base clock and the peripheral shift clock.
    clock_ratio: int = 1
    blink_count: int = 3
    blink_gap_cycles: int = 10
    horizon_cycles: int = 50_000
    dense: bool = False

    def __post_init__(self) -> None:
        if self.timer_period_cycles < 60:
            raise ValueError("the pipeline needs a sampling period >= 60 cycles")
        if not 1 <= self.clock_ratio <= 16:
            raise ValueError("clock_ratio must be in [1, 16]")
        if self.blink_count < 1:
            raise ValueError("the blinker must blink at least once")
        if self.blink_gap_cycles < 1:
            raise ValueError("the blink gap must be at least one cycle")
        if self.horizon_cycles < 2 * self.timer_period_cycles:
            raise ValueError("the horizon must cover at least two sampling periods")


@dataclass
class MultiLinkPipelineResult:
    """Outcome of one multi-link pipeline run."""

    timer_overflows: int
    adc_conversions: int
    uart_bytes: int
    gpio_toggles: int
    link_events_serviced: int
    instant_actions: int
    cpu_interrupts: int
    horizon_cycles: int
    soc: Optional[PulpissimoSoc] = None

    def summary(self) -> dict:
        """Scalar statistics (used by the batch runner and the sweep worker)."""
        return {
            "timer_overflows": self.timer_overflows,
            "adc_conversions": self.adc_conversions,
            "uart_bytes": self.uart_bytes,
            "gpio_toggles": self.gpio_toggles,
            "link_events_serviced": self.link_events_serviced,
            "instant_actions": self.instant_actions,
            "cpu_interrupts": self.cpu_interrupts,
            "horizon_cycles": self.horizon_cycles,
        }


class PreparedPipeline:
    """A programmed multi-link pipeline, ready to run (or to be advanced by
    the batched executor) — everything of :func:`run_multi_link_pipeline`
    except the simulation itself."""

    def __init__(self, config: MultiLinkPipelineConfig, soc: PulpissimoSoc) -> None:
        self.config = config
        self.soc = soc

    @property
    def simulator(self):
        return self.soc.simulator

    def result(self, elapsed_cycles: int) -> MultiLinkPipelineResult:
        """Summarise the pipeline as of ``elapsed_cycles`` simulated cycles.

        Reading the counters at an intermediate cycle of a longer run is
        identical to finishing a run of exactly that horizon: the simulation
        is deterministic and none of the setup depends on the horizon.
        """
        soc = self.soc
        pels = soc.pels
        assert pels is not None
        return MultiLinkPipelineResult(
            timer_overflows=soc.timer.overflow_count,
            adc_conversions=soc.adc.conversions,
            uart_bytes=len(soc.uart.transmitted),
            gpio_toggles=soc.gpio.toggle_count,
            link_events_serviced=sum(link.events_serviced for link in pels.links),
            instant_actions=pels.instant_actions_delivered,
            cpu_interrupts=soc.cpu.interrupts_serviced,
            horizon_cycles=elapsed_cycles,
            soc=soc,
        )


def prepare_multi_link_pipeline(
    config: MultiLinkPipelineConfig = MultiLinkPipelineConfig(),
) -> PreparedPipeline:
    """Build and program the multi-link pipeline without running it."""
    soc = build_soc(
        SocConfig(
            pels_config=PelsConfig(n_links=4, scm_lines=8),
            adc_conversion_cycles=BASE_ADC_CONVERSION_CYCLES * config.clock_ratio,
            dense=config.dense,
        )
    )
    assert soc.pels is not None
    pels = soc.pels
    assembler = Assembler()
    soc.uart.regs.reg("BAUD_CYCLES").hw_write(BASE_UART_CYCLES_PER_BYTE * config.clock_ratio)

    # Link 0: timer overflow -> ADC conversion (instant action).
    pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.adc, port="soc")
    timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    pels.program_link(0, assembler.assemble("action 0 0x1\nend"), trigger_mask=timer_bit)

    # Link 1: ADC EOC -> UART alert byte (sequenced, UART-specialised base
    # address) + loopback event waking the blinker link.
    wake_blinker = pels.add_loopback_line("wake_blinker")
    pels.route_action_to_fabric(group=1, bit=0, line_name=wake_blinker)
    uart_assembler = Assembler()
    uart_assembler.define_register("UART_TX", soc.uart.regs.offset_of("TXDATA"))
    adc_bit = 1 << soc.fabric.index_of(soc.adc.event_line_name("eoc"))
    pels.program_link(
        1,
        uart_assembler.assemble(
            """
            write UART_TX 0x21   ; '!' alert byte
            action 1 0x1         ; wake the blinker link through the loopback line
            end
            """
        ),
        trigger_mask=adc_bit,
        base_address=soc.address_map.peripheral_base("uart"),
    )

    # Link 2: watchdog-style blinker (wait/loop microcode).
    pels.route_action_to_peripheral(group=2, bit=0, peripheral=soc.gpio, port="toggle_pad0")
    blinker_bit = 1 << soc.fabric.index_of(wake_blinker)
    pels.program_link(
        2,
        assembler.assemble(
            f"""
            BLINK: action 2 0x1
            wait {config.blink_gap_cycles}
            loop BLINK {config.blink_count}
            end
            """
        ),
        trigger_mask=blinker_bit,
    )

    soc.timer.regs.reg("COMPARE").hw_write(config.timer_period_cycles)
    soc.timer.start()
    return PreparedPipeline(config, soc)


def run_multi_link_pipeline(
    config: MultiLinkPipelineConfig = MultiLinkPipelineConfig(),
) -> MultiLinkPipelineResult:
    """Run the multi-link pipeline scenario."""
    prepared = prepare_multi_link_pipeline(config)
    prepared.soc.run(config.horizon_cycles)
    return prepared.result(config.horizon_cycles)
