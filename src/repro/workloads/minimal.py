"""The minimal linking event.

A producer peripheral (the timer) raises an event; the linking agent must
perform one read-modify-write (``set``) on a consumer peripheral register
(the GPIO OUT register).  Section IV-B reports this taking **7 cycles** when
PELS issues it as a sequenced action, **2 cycles** as an instant action, and
**16 cycles** when the Ibex core services it through an interrupt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.assembler import Assembler
from repro.core.trigger import TriggerCondition
from repro.cpu.programs import build_linking_isr
from repro.soc.pulpissimo import PulpissimoSoc, SocConfig, build_soc

GPIO_PAD_MASK = 0x1
LINKING_IRQ = 1


@dataclass
class MinimalLinkingResult:
    """Latency measurements for one serviced minimal linking event."""

    trigger_cycle: int
    write_landed_cycle: Optional[int]
    instant_action_cycle: Optional[int]
    handler_done_cycle: Optional[int]

    @property
    def sequenced_latency(self) -> Optional[int]:
        """Cycles from the event to the peripheral write landing (inclusive)."""
        if self.write_landed_cycle is None:
            return None
        return self.write_landed_cycle - self.trigger_cycle + 1

    @property
    def instant_latency(self) -> Optional[int]:
        """Cycles from the event to the instant-action line toggling (inclusive)."""
        if self.instant_action_cycle is None:
            return None
        return self.instant_action_cycle - self.trigger_cycle + 1


def _fire_timer_once(soc: PulpissimoSoc) -> None:
    """Arm the timer so it overflows exactly once, two cycles from now."""
    soc.timer.regs.reg("COMPARE").hw_write(2)
    soc.timer.regs.reg("CTRL").hw_write(0x3)  # enable + one-shot


def run_minimal_pels_linking(
    instant: bool = False,
    soc: Optional[PulpissimoSoc] = None,
    frequency_hz: float = 55e6,
) -> MinimalLinkingResult:
    """Run the minimal linking event through PELS and measure its latency.

    With ``instant=False`` the link issues a sequenced ``set`` on the GPIO OUT
    register; with ``instant=True`` it drives the GPIO ``set_pad0`` event
    input through an ``action`` command.
    """
    if soc is None:
        soc = build_soc(SocConfig(frequency_hz=frequency_hz))
    if soc.pels is None:
        raise ValueError("the provided SoC was built without PELS")
    pels = soc.pels
    peripheral_region = soc.address_map.peripheral_base("udma")
    gpio_out_offset = soc.address_map.peripheral_base("gpio") + soc.gpio.regs.offset_of("OUT") - peripheral_region

    assembler = Assembler()
    assembler.define_register("GPIO_OUT", gpio_out_offset)
    assembler.define_symbol("PAD_MASK", GPIO_PAD_MASK)
    if instant:
        program = assembler.assemble(
            """
            action 0 PAD_MASK
            end
            """
        )
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.gpio, port="set_pad0")
    else:
        program = assembler.assemble(
            """
            set GPIO_OUT PAD_MASK
            end
            """
        )

    timer_event = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    pels.program_link(
        0,
        program,
        trigger_mask=timer_event,
        condition=TriggerCondition.ANY_SELECTED_ACTIVE,
        base_address=peripheral_region,
    )

    _fire_timer_once(soc)
    link = pels.link(0)
    soc.run_until(lambda: link.last_record is not None, max_cycles=200, label="PELS linking event")
    soc.run(4)  # let trailing bus activity settle
    record = link.last_record
    assert record is not None
    return MinimalLinkingResult(
        trigger_cycle=record.trigger_cycle,
        write_landed_cycle=record.last_bus_write_cycle,
        instant_action_cycle=record.first_action_cycle,
        handler_done_cycle=record.completion_cycle,
    )


def run_minimal_ibex_linking(
    soc: Optional[PulpissimoSoc] = None,
    frequency_hz: float = 55e6,
) -> MinimalLinkingResult:
    """Run the same minimal linking event through the Ibex interrupt baseline."""
    if soc is None:
        soc = build_soc(SocConfig(frequency_hz=frequency_hz, with_pels=False))
    gpio_out_address = soc.register_address("gpio", "OUT")
    timer_status_address = soc.register_address("timer", "STATUS")
    soc.cpu.register_isr(
        LINKING_IRQ,
        build_linking_isr(
            gpio_out_address,
            GPIO_PAD_MASK,
            source_flag_address=timer_status_address,
            source_flag_mask=0x1,
        ),
    )
    soc.irq_controller.enable_line(soc.timer.event_line_name("overflow"), LINKING_IRQ)

    _fire_timer_once(soc)
    soc.run_until(lambda: soc.cpu.last_handler_done_cycle is not None, max_cycles=500, label="Ibex linking event")
    soc.run(4)
    # The interrupt is taken in the same cycle the timer event pulses, so the
    # wake-up cycle recorded by the core *is* the event cycle.
    event_cycle = soc.cpu.last_interrupt_cycle if soc.cpu.last_interrupt_cycle is not None else 0
    return MinimalLinkingResult(
        trigger_cycle=event_cycle,
        write_landed_cycle=soc.cpu.last_store_complete_cycle,
        instant_action_cycle=None,
        handler_done_cycle=soc.cpu.last_handler_done_cycle,
    )
