"""Periodic multi-sensor monitoring workload (always-on wearable scenario).

The paper's introduction motivates PELS with always-on monitoring
applications: sensors must be sampled periodically, results acted upon, and
the system supervised — all without waking the processing domain.  This
workload builds that scenario out of the blocks the other experiments use:

* the **timer** paces the sampling period;
* link 0 starts an **ADC conversion** on every timer overflow (instant action);
* link 1 copies each ADC result into the **PWM duty register** (capture +
  write + update), closing a sensor-to-actuator loop;
* link 2 **kicks the watchdog** whenever the loop makes progress, so a stall
  anywhere in the chain eventually raises the watchdog's bark event.

The same scenario can be run with the watchdog kicks disabled to show the
supervision firing (used by the fault-injection style tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.assembler import Assembler
from repro.soc.pulpissimo import PulpissimoSoc, SocConfig, build_soc
from repro.peripherals.sensor import SensorWaveform


@dataclass(frozen=True)
class PeriodicMonitorConfig:
    """Parameters of the periodic monitoring workload."""

    sample_period_cycles: int = 60
    n_samples: int = 8
    watchdog_timeout_cycles: int = 200
    watchdog_grace_cycles: int = 50
    kick_watchdog: bool = True
    sensor_amplitude: int = 96
    pwm_period: int = 128

    def __post_init__(self) -> None:
        if self.sample_period_cycles < 20:
            raise ValueError("the sampling period must leave room for the linking sequence")
        if self.n_samples < 1:
            raise ValueError("at least one sample is required")


@dataclass
class PeriodicMonitorResult:
    """Outcome of one periodic-monitoring run."""

    samples_taken: int
    duty_updates: int
    final_duty: int
    watchdog_kicks: int
    watchdog_barks: int
    cpu_interrupts: int
    total_cycles: int
    soc: Optional[PulpissimoSoc] = None

    @property
    def loop_closed(self) -> bool:
        """Whether the sensor-to-actuator loop ran end to end."""
        return self.samples_taken > 0 and self.duty_updates > 0


def run_periodic_monitor(
    config: PeriodicMonitorConfig = PeriodicMonitorConfig(),
    soc: Optional[PulpissimoSoc] = None,
) -> PeriodicMonitorResult:
    """Run the periodic monitoring scenario and return its statistics."""
    if soc is None:
        soc = build_soc(
            SocConfig(sensor_waveform=SensorWaveform(kind="constant", amplitude=config.sensor_amplitude))
        )
    if soc.pels is None:
        raise ValueError("the provided SoC was built without PELS")
    pels = soc.pels
    assembler = Assembler()

    # ----------------------------------------------- link 0: timer -> ADC start
    pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.adc, port="soc")
    timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    pels.program_link(0, assembler.assemble("action 0 0x1\nend"), trigger_mask=timer_bit)

    # -------------------------------------- link 1: ADC result -> PWM duty cycle
    # Base address at the ADC window keeps both the ADC and the PWM (three
    # windows above it) within the 12-bit word-offset range.
    adc_base = soc.address_map.peripheral_base("adc")
    adc_data = (soc.register_address("adc", "DATA") - adc_base) // 4
    pwm_shadow = (soc.register_address("pwm", "DUTY_SHADOW") - adc_base) // 4
    pels.route_action_to_peripheral(group=1, bit=0, peripheral=soc.pwm, port="update")
    duty_mask = min(config.sensor_amplitude, config.pwm_period)
    link1_program = assembler.assemble(
        f"""
        capture {adc_data} 0xFF
        write {pwm_shadow} {duty_mask}
        action 1 0x1
        end
        """
    )
    adc_bit = 1 << soc.fabric.index_of(soc.adc.event_line_name("eoc"))
    pels.program_link(1, link1_program, trigger_mask=adc_bit, base_address=adc_base)

    # ----------------------------------------------- link 2: watchdog supervision
    if config.kick_watchdog:
        pels.route_action_to_peripheral(group=2, bit=0, peripheral=soc.wdt, port="kick")
        pwm_period_bit = 1 << soc.fabric.index_of(soc.pwm.event_line_name("period"))
        pels.program_link(2, assembler.assemble("action 2 0x1\nend"), trigger_mask=adc_bit | pwm_period_bit)

    # --------------------------------------------------------------------- run
    soc.pwm.regs.reg("PERIOD").hw_write(config.pwm_period)
    soc.pwm.start()
    soc.wdt.regs.reg("TIMEOUT").hw_write(config.watchdog_timeout_cycles)
    soc.wdt.regs.reg("GRACE").hw_write(config.watchdog_grace_cycles)
    soc.wdt.start()
    soc.timer.regs.reg("COMPARE").hw_write(config.sample_period_cycles)
    soc.timer.start()

    total_cycles = config.sample_period_cycles * config.n_samples + 4 * config.sample_period_cycles
    soc.run(total_cycles)

    return PeriodicMonitorResult(
        samples_taken=soc.adc.conversions,
        duty_updates=soc.pwm.duty_updates,
        final_duty=soc.pwm.regs.reg("DUTY").value,
        watchdog_kicks=soc.wdt.kicks,
        watchdog_barks=soc.wdt.barks,
        cpu_interrupts=soc.cpu.interrupts_serviced,
        total_cycles=total_cycles,
        soc=soc,
    )
