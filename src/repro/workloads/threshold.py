"""The evaluation workload: threshold check after µDMA-managed SPI readout.

The stimulus mirrors Section IV-B of the paper:

1. the SPI controller reads sensor samples; the µDMA drains the RX FIFO into
   L2 memory without waking the core;
2. at the end of the SPI transfer an ``eot`` event fires;
3. the *linking agent* — PELS or the Ibex interrupt handler — must clear the
   SPI application flag, read the latest sample, compare it against a
   threshold, and set a GPIO pad when the threshold is exceeded (the
   Figure 3 program).

Both variants run on the same :class:`~repro.soc.pulpissimo.PulpissimoSoc`
model so their activity counters are directly comparable; the power
scenarios in :mod:`repro.power.scenarios` are thin wrappers around these
functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.assembler import Assembler
from repro.core.trigger import TriggerCondition
from repro.cpu.programs import build_threshold_isr
from repro.peripherals.sensor import SensorWaveform
from repro.soc.pulpissimo import PulpissimoSoc, SocConfig, build_soc

THRESHOLD_IRQ = 2
SAMPLE_MASK = 0x0FF
GPIO_ALERT_MASK = 0x1
DMA_BUFFER_ADDRESS_OFFSET = 0x100


@dataclass(frozen=True)
class ThresholdWorkloadConfig:
    """Parameters of the threshold-linking workload."""

    threshold: int = 50
    n_events: int = 8
    words_per_transfer: int = 4
    spi_cycles_per_word: int = 4
    event_gap_cycles: int = 40
    frequency_hz: float = 55e6
    samples: tuple = (10, 80, 20, 90, 30, 100, 40, 110, 5, 75, 15, 85, 25, 95, 35, 105)
    use_instant_alert: bool = False

    def __post_init__(self) -> None:
        if self.n_events < 1:
            raise ValueError("the workload needs at least one linking event")
        if self.words_per_transfer < 1:
            raise ValueError("words_per_transfer must be >= 1")
        if not self.samples:
            raise ValueError("the sample sequence must be non-empty")

    @property
    def samples_above_threshold(self) -> int:
        """How many of the per-event *last* samples exceed the threshold.

        The linking agent only inspects the most recent sample of each
        transfer, so the expected number of GPIO alerts follows from the
        sample at each transfer's final position.
        """
        alerts = 0
        position = 0
        for _ in range(self.n_events):
            position += self.words_per_transfer
            last_sample = self.samples[(position - 1) % len(self.samples)]
            if (last_sample & SAMPLE_MASK) > self.threshold:
                alerts += 1
        return alerts


@dataclass
class ThresholdWorkloadResult:
    """Outcome and statistics of one workload run."""

    mode: str
    events_serviced: int
    alerts_raised: int
    total_cycles: int
    idle_cycles: int
    linking_cycles: int
    event_latencies: List[int] = field(default_factory=list)
    soc: Optional[PulpissimoSoc] = None

    @property
    def mean_latency(self) -> float:
        """Mean event-to-completion latency in cycles."""
        if not self.event_latencies:
            return 0.0
        return sum(self.event_latencies) / len(self.event_latencies)

    @property
    def worst_latency(self) -> int:
        """Worst observed event-to-completion latency in cycles."""
        return max(self.event_latencies) if self.event_latencies else 0


class ThresholdWorkload:
    """Shared stimulus driver for both linking variants."""

    def __init__(self, soc: PulpissimoSoc, config: ThresholdWorkloadConfig) -> None:
        self.soc = soc
        self.config = config
        self.alerts_observed = 0
        self.dma_buffer_address = soc.address_map.sram_base + DMA_BUFFER_ADDRESS_OFFSET
        soc.sensor.waveform = SensorWaveform(kind="sequence", values=config.samples)
        soc.sensor.reset()
        soc.spi.regs.reg("LEN").hw_write(config.words_per_transfer)
        soc.spi.regs.reg("CLK_DIV").hw_write(config.spi_cycles_per_word)
        self.dma_channel = soc.udma.add_channel(
            source=soc.spi,
            destination_address=self.dma_buffer_address,
            length_words=config.words_per_transfer,
        )

    def start_transfer(self) -> None:
        """Kick one SPI sensor readout (as a timer or previous event would)."""
        self.soc.spi.regs.write(self.soc.spi.regs.offset_of("CTRL"), 0x1)

    def run_events(self, on_event_done, max_cycles_per_event: int = 5_000) -> int:
        """Run ``n_events`` transfers, waiting for the linking agent after each.

        ``on_event_done`` is a callable returning the number of linking events
        the agent has completed so far; the stimulus starts the next transfer
        only after the previous event was fully handled, plus a configurable
        idle gap, mimicking a periodic sensing application.  After every
        event the GPIO alert pad is sampled (and re-armed) so both linking
        variants report alerts the same way.
        """
        total_events = 0
        for _ in range(self.config.n_events):
            self.start_transfer()
            target = total_events + 1
            self.soc.run_until(
                lambda: on_event_done() >= target,
                max_cycles=max_cycles_per_event,
                label="linking event completion",
            )
            total_events = target
            self.soc.run(self.config.event_gap_cycles)
            self._sample_alert()
        return total_events

    def _sample_alert(self) -> None:
        if self.soc.gpio.pad(0):
            self.alerts_observed += 1
            # Re-arm the alert pad, as the actuator-side firmware would.
            self.soc.gpio.regs.reg("OUT").clear_bits(GPIO_ALERT_MASK)


# --------------------------------------------------------------------------- PELS


def _pels_figure3_program(soc: PulpissimoSoc, config: ThresholdWorkloadConfig):
    """Assemble the Figure 3 microcode against the SoC's real register offsets."""
    peripheral_region = soc.address_map.peripheral_base("udma")
    spi_base = soc.address_map.peripheral_base("spi") - peripheral_region
    gpio_base = soc.address_map.peripheral_base("gpio") - peripheral_region

    assembler = Assembler()
    assembler.define_register("AFLAG", spi_base + soc.spi.regs.offset_of("AFLAG"))
    assembler.define_register("ADATA", spi_base + soc.spi.regs.offset_of("RXDATA"))
    assembler.define_register("AGPIO", gpio_base + soc.gpio.regs.offset_of("OUT"))
    assembler.define_symbol("FLAG_MASK", 0x1)
    assembler.define_symbol("DATA_MASK", SAMPLE_MASK)
    assembler.define_symbol("THRES", config.threshold)
    assembler.define_symbol("GPIO_MASK", GPIO_ALERT_MASK)
    assembler.define_symbol("ALERT_GROUP", 0)

    if config.use_instant_alert:
        # Figure 3, left branch: drive the co-designed GPIO event input.
        alert_command = "action ALERT_GROUP GPIO_MASK"
    else:
        # Figure 3, right branch: sequenced read-modify-write on the GPIO.
        alert_command = "set AGPIO GPIO_MASK"
    source = f"""
    CMD0: clear   AFLAG  FLAG_MASK
    CMD1: capture ADATA  DATA_MASK
    CMD2: jump-if CMD4 LE THRES
    CMD3: {alert_command}
    CMD4: end
    """
    return assembler.assemble(source), peripheral_region


def run_pels_threshold_workload(
    config: ThresholdWorkloadConfig = ThresholdWorkloadConfig(),
    soc: Optional[PulpissimoSoc] = None,
) -> ThresholdWorkloadResult:
    """Run the threshold workload with PELS mediating the linking events."""
    if soc is None:
        soc = build_soc(
            SocConfig(frequency_hz=config.frequency_hz, spi_cycles_per_word=config.spi_cycles_per_word)
        )
    if soc.pels is None:
        raise ValueError("the provided SoC was built without PELS")
    pels = soc.pels
    program, base_address = _pels_figure3_program(soc, config)
    workload = ThresholdWorkload(soc, config)

    if config.use_instant_alert:
        pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.gpio, port="set_pad0")

    spi_eot_bit = 1 << soc.fabric.index_of(soc.spi.event_line_name("eot"))
    link = pels.program_link(
        0,
        program,
        trigger_mask=spi_eot_bit,
        condition=TriggerCondition.ANY_SELECTED_ACTIVE,
        base_address=base_address,
    )

    start_cycle = soc.simulator.current_cycle
    workload.run_events(lambda: len(link.records))
    total_cycles = soc.simulator.current_cycle - start_cycle

    latencies = [record.total_latency for record in link.records if record.total_latency is not None]
    linking_cycles = soc.activity.get("pels", "busy_cycles")
    return ThresholdWorkloadResult(
        mode="pels",
        events_serviced=len(link.records),
        alerts_raised=workload.alerts_observed,
        total_cycles=total_cycles,
        idle_cycles=total_cycles - linking_cycles,
        linking_cycles=linking_cycles,
        event_latencies=latencies,
        soc=soc,
    )


# --------------------------------------------------------------------------- Ibex


def run_ibex_threshold_workload(
    config: ThresholdWorkloadConfig = ThresholdWorkloadConfig(),
    soc: Optional[PulpissimoSoc] = None,
) -> ThresholdWorkloadResult:
    """Run the threshold workload with the Ibex interrupt baseline."""
    if soc is None:
        soc = build_soc(
            SocConfig(
                frequency_hz=config.frequency_hz,
                with_pels=False,
                spi_cycles_per_word=config.spi_cycles_per_word,
            )
        )
    workload = ThresholdWorkload(soc, config)
    isr = build_threshold_isr(
        flag_register_address=soc.register_address("spi", "AFLAG"),
        flag_mask=0x1,
        data_register_address=soc.register_address("spi", "RXDATA"),
        data_mask=SAMPLE_MASK,
        threshold=config.threshold,
        gpio_set_register_address=soc.register_address("gpio", "OUT"),
        gpio_mask=GPIO_ALERT_MASK,
    )
    soc.cpu.register_isr(THRESHOLD_IRQ, isr)
    soc.irq_controller.enable_line(soc.spi.event_line_name("eot"), THRESHOLD_IRQ)

    start_cycle = soc.simulator.current_cycle
    workload.run_events(lambda: soc.activity.get("ibex", "handlers_completed"))
    total_cycles = soc.simulator.current_cycle - start_cycle

    linking_cycles = soc.cpu.active_cycles
    return ThresholdWorkloadResult(
        mode="ibex",
        events_serviced=soc.cpu.interrupts_serviced,
        alerts_raised=workload.alerts_observed,
        total_cycles=total_cycles,
        idle_cycles=total_cycles - linking_cycles,
        linking_cycles=linking_cycles,
        event_latencies=[],
        soc=soc,
    )
