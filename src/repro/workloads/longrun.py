"""Long-horizon, idle-heavy workloads enabled by the event-driven kernel.

The paper's motivating applications — always-on monitoring, duty-cycled
sensing, supervised autonomous loops — spend almost all of their time idle:
the interesting activity is a few tens of cycles around each linking event,
separated by thousands to millions of quiescent cycles.  Under the legacy
cycle-driven kernel these horizons were impractical to simulate (every
component ticked on every cycle); with quiescence skipping they cost time
proportional to the *events*, not the horizon.

Three scenarios, all fully autonomous (the Ibex core sleeps throughout):

* :func:`run_duty_cycled_logging` — a timer paces simultaneous ADC sampling
  and SPI sensor readouts at a low duty cycle; the µDMA logs the SPI words to
  L2, each ADC sample closes a sensor→PWM actuator loop, and a watchdog
  supervises progress.
* :func:`run_burst_stream` — periodic bursts of SPI words streamed to memory
  by the µDMA, with long silent gaps in between; the end-of-transfer event
  kicks the watchdog.
* :func:`run_watchdog_recovery` — a supervised sampling loop into which the
  testbench injects a stall; the watchdog's *bark* event is linked back to
  the timer's ``start`` input, so PELS restarts the loop autonomously before
  the *bite* (system reset) would fire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.assembler import Assembler
from repro.peripherals.sensor import SensorWaveform
from repro.soc.pulpissimo import PulpissimoSoc, SocConfig, build_soc


def _soc_for(config_dense: bool, waveform: SensorWaveform, spi_cycles_per_word: int = 4) -> PulpissimoSoc:
    return build_soc(
        SocConfig(sensor_waveform=waveform, spi_cycles_per_word=spi_cycles_per_word, dense=config_dense)
    )


# --------------------------------------------------------------------- logging


@dataclass(frozen=True)
class DutyCycledLoggingConfig:
    """Parameters of the duty-cycled multi-sensor logging scenario."""

    sample_period_cycles: int = 5_000
    horizon_cycles: int = 500_000
    words_per_readout: int = 4
    spi_cycles_per_word: int = 4
    pwm_period: int = 2_048
    sensor_amplitude: int = 96
    dense: bool = False

    def __post_init__(self) -> None:
        if self.sample_period_cycles < 100:
            raise ValueError("duty-cycled sampling needs a period >= 100 cycles")
        if self.horizon_cycles < self.sample_period_cycles:
            raise ValueError("the horizon must cover at least one sampling period")
        if self.words_per_readout < 1:
            raise ValueError("each readout needs at least one word")


@dataclass
class DutyCycledLoggingResult:
    """Outcome of one duty-cycled logging run."""

    samples_taken: int
    readouts_completed: int
    words_logged: int
    duty_updates: int
    watchdog_kicks: int
    watchdog_barks: int
    cpu_interrupts: int
    horizon_cycles: int
    soc: Optional[PulpissimoSoc] = None

    def summary(self) -> dict:
        """Scalar statistics (used by the batch runner)."""
        return {
            "samples_taken": self.samples_taken,
            "readouts_completed": self.readouts_completed,
            "words_logged": self.words_logged,
            "duty_updates": self.duty_updates,
            "watchdog_kicks": self.watchdog_kicks,
            "watchdog_barks": self.watchdog_barks,
            "cpu_interrupts": self.cpu_interrupts,
            "horizon_cycles": self.horizon_cycles,
        }


class PreparedDutyCycledLogging:
    """A programmed duty-cycled logging system, ready to run — everything of
    :func:`run_duty_cycled_logging` except the simulation itself."""

    def __init__(self, config: DutyCycledLoggingConfig, soc: PulpissimoSoc) -> None:
        self.config = config
        self.soc = soc

    @property
    def simulator(self):
        return self.soc.simulator

    def result(self, elapsed_cycles: int) -> DutyCycledLoggingResult:
        """Summarise the run as of ``elapsed_cycles`` simulated cycles
        (identical to finishing a run of exactly that horizon — the setup
        does not depend on the horizon)."""
        soc = self.soc
        return DutyCycledLoggingResult(
            samples_taken=soc.adc.conversions,
            readouts_completed=soc.spi.transfers_completed,
            words_logged=soc.udma.total_words_moved,
            duty_updates=soc.pwm.duty_updates,
            watchdog_kicks=soc.wdt.kicks,
            watchdog_barks=soc.wdt.barks,
            cpu_interrupts=soc.cpu.interrupts_serviced,
            horizon_cycles=elapsed_cycles,
            soc=soc,
        )


def prepare_duty_cycled_logging(
    config: DutyCycledLoggingConfig = DutyCycledLoggingConfig(),
) -> PreparedDutyCycledLogging:
    """Build and program the duty-cycled logging scenario without running it.

    Per sampling period the timer overflow instant-starts *both* an ADC
    conversion and an SPI readout (one action, two routed lines); the ADC
    result updates the PWM duty cycle, the SPI words are streamed to L2 by
    the µDMA, and the SPI end-of-transfer kicks the watchdog.
    """
    soc = _soc_for(
        config.dense,
        SensorWaveform(kind="sine", amplitude=config.sensor_amplitude, offset=config.sensor_amplitude),
        config.spi_cycles_per_word,
    )
    assert soc.pels is not None
    pels = soc.pels
    assembler = Assembler()

    # Link 0: timer overflow -> start ADC conversion + SPI readout.
    pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.adc, port="soc")
    pels.route_action_to_peripheral(group=0, bit=1, peripheral=soc.spi, port="start")
    timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    pels.program_link(0, assembler.assemble("action 0 0x3\nend"), trigger_mask=timer_bit)

    # Link 1: ADC end-of-conversion -> PWM duty update (capture + write + update).
    adc_base = soc.address_map.peripheral_base("adc")
    adc_data = (soc.register_address("adc", "DATA") - adc_base) // 4
    pwm_shadow = (soc.register_address("pwm", "DUTY_SHADOW") - adc_base) // 4
    pels.route_action_to_peripheral(group=1, bit=0, peripheral=soc.pwm, port="update")
    duty = min(config.sensor_amplitude, config.pwm_period)
    adc_bit = 1 << soc.fabric.index_of(soc.adc.event_line_name("eoc"))
    pels.program_link(
        1,
        assembler.assemble(f"capture {adc_data} 0xFFFF\nwrite {pwm_shadow} {duty}\naction 1 0x1\nend"),
        trigger_mask=adc_bit,
        base_address=adc_base,
    )

    # Link 2: SPI end-of-transfer -> watchdog kick (progress supervision).
    pels.route_action_to_peripheral(group=2, bit=0, peripheral=soc.wdt, port="kick")
    spi_eot_bit = 1 << soc.fabric.index_of(soc.spi.event_line_name("eot"))
    pels.program_link(2, assembler.assemble("action 2 0x1\nend"), trigger_mask=spi_eot_bit)

    # µDMA channel: SPI RX FIFO -> L2 log buffer.
    log_buffer = soc.address_map.sram_base + 0x400
    soc.udma.add_channel(
        source=soc.spi, destination_address=log_buffer, length_words=config.words_per_readout
    )

    soc.spi.regs.reg("LEN").hw_write(config.words_per_readout)
    soc.pwm.regs.reg("PERIOD").hw_write(config.pwm_period)
    soc.pwm.start()
    soc.wdt.regs.reg("TIMEOUT").hw_write(3 * config.sample_period_cycles)
    soc.wdt.regs.reg("GRACE").hw_write(config.sample_period_cycles)
    soc.wdt.start()
    soc.timer.regs.reg("COMPARE").hw_write(config.sample_period_cycles)
    soc.timer.start()
    return PreparedDutyCycledLogging(config, soc)


def run_duty_cycled_logging(
    config: DutyCycledLoggingConfig = DutyCycledLoggingConfig(),
) -> DutyCycledLoggingResult:
    """Run the duty-cycled multi-sensor logging scenario (see
    :func:`prepare_duty_cycled_logging` for the wiring)."""
    prepared = prepare_duty_cycled_logging(config)
    prepared.soc.run(config.horizon_cycles)
    return prepared.result(config.horizon_cycles)


# -------------------------------------------------------------------- bursting


@dataclass(frozen=True)
class BurstStreamConfig:
    """Parameters of the burst SPI→DMA streaming scenario."""

    burst_period_cycles: int = 20_000
    horizon_cycles: int = 1_000_000
    words_per_burst: int = 64
    spi_cycles_per_word: int = 4
    dense: bool = False

    def __post_init__(self) -> None:
        if self.words_per_burst < 1:
            raise ValueError("a burst needs at least one word")
        burst_cycles = self.words_per_burst * max(self.spi_cycles_per_word, 1)
        if self.burst_period_cycles <= burst_cycles:
            raise ValueError("the burst period must exceed the burst itself")


@dataclass
class BurstStreamResult:
    """Outcome of one burst-streaming run."""

    bursts_completed: int
    words_streamed: int
    rx_overflows: int
    watchdog_kicks: int
    watchdog_barks: int
    cpu_interrupts: int
    horizon_cycles: int
    soc: Optional[PulpissimoSoc] = None

    def summary(self) -> dict:
        """Scalar statistics (used by the batch runner)."""
        return {
            "bursts_completed": self.bursts_completed,
            "words_streamed": self.words_streamed,
            "rx_overflows": self.rx_overflows,
            "watchdog_kicks": self.watchdog_kicks,
            "watchdog_barks": self.watchdog_barks,
            "cpu_interrupts": self.cpu_interrupts,
            "horizon_cycles": self.horizon_cycles,
        }


class PreparedBurstStream:
    """A programmed burst-streaming system, ready to run — everything of
    :func:`run_burst_stream` except the simulation itself."""

    def __init__(self, config: BurstStreamConfig, soc: PulpissimoSoc) -> None:
        self.config = config
        self.soc = soc

    @property
    def simulator(self):
        return self.soc.simulator

    def result(self, elapsed_cycles: int) -> BurstStreamResult:
        """Summarise the run as of ``elapsed_cycles`` simulated cycles."""
        soc = self.soc
        return BurstStreamResult(
            bursts_completed=soc.spi.transfers_completed,
            words_streamed=soc.udma.total_words_moved,
            rx_overflows=soc.spi.rx_overflows,
            watchdog_kicks=soc.wdt.kicks,
            watchdog_barks=soc.wdt.barks,
            cpu_interrupts=soc.cpu.interrupts_serviced,
            horizon_cycles=elapsed_cycles,
            soc=soc,
        )


def prepare_burst_stream(config: BurstStreamConfig = BurstStreamConfig()) -> PreparedBurstStream:
    """Build and program the burst SPI→DMA streaming scenario without
    running it.

    The timer paces SPI bursts; the µDMA drains each burst to memory while it
    is still arriving, and the end-of-transfer event kicks the watchdog.  The
    long inter-burst gaps are exactly the spans the event-driven kernel
    skips.
    """
    soc = _soc_for(
        config.dense,
        SensorWaveform(kind="ramp", amplitude=0xFFFF, step=7),
        config.spi_cycles_per_word,
    )
    assert soc.pels is not None
    pels = soc.pels
    assembler = Assembler()

    pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.spi, port="start")
    timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    pels.program_link(0, assembler.assemble("action 0 0x1\nend"), trigger_mask=timer_bit)

    pels.route_action_to_peripheral(group=1, bit=0, peripheral=soc.wdt, port="kick")
    spi_eot_bit = 1 << soc.fabric.index_of(soc.spi.event_line_name("eot"))
    pels.program_link(1, assembler.assemble("action 1 0x1\nend"), trigger_mask=spi_eot_bit)

    stream_buffer = soc.address_map.sram_base + 0x800
    soc.udma.add_channel(
        source=soc.spi, destination_address=stream_buffer, length_words=config.words_per_burst
    )

    soc.spi.regs.reg("LEN").hw_write(config.words_per_burst)
    soc.wdt.regs.reg("TIMEOUT").hw_write(3 * config.burst_period_cycles)
    soc.wdt.regs.reg("GRACE").hw_write(config.burst_period_cycles)
    soc.wdt.start()
    soc.timer.regs.reg("COMPARE").hw_write(config.burst_period_cycles)
    soc.timer.start()
    return PreparedBurstStream(config, soc)


def run_burst_stream(config: BurstStreamConfig = BurstStreamConfig()) -> BurstStreamResult:
    """Run the burst SPI→DMA streaming scenario (see
    :func:`prepare_burst_stream` for the wiring)."""
    prepared = prepare_burst_stream(config)
    prepared.soc.run(config.horizon_cycles)
    return prepared.result(config.horizon_cycles)


# -------------------------------------------------------------------- recovery


@dataclass(frozen=True)
class WatchdogRecoveryConfig:
    """Parameters of the watchdog-recovery scenario."""

    sample_period_cycles: int = 2_000
    stall_after_samples: int = 5
    horizon_cycles: int = 200_000
    sensor_amplitude: int = 80
    dense: bool = False

    def __post_init__(self) -> None:
        if self.sample_period_cycles < 100:
            raise ValueError("the sampling period must be >= 100 cycles")
        if self.stall_after_samples < 1:
            raise ValueError("the stall must happen after at least one sample")
        if self.horizon_cycles < (self.stall_after_samples + 4) * self.sample_period_cycles:
            raise ValueError("the horizon leaves no room for the recovery to play out")


def seeded_watchdog_recovery_config(
    seed: int, horizon_cycles: int = 200_000, dense: bool = False
) -> WatchdogRecoveryConfig:
    """Derive a fault-injection point deterministically from ``seed``.

    The seed picks the sampling period and the stall instant (how many healthy
    samples before the injected fault), the two knobs that decide how close to
    the watchdog's bite the recovery cuts.  The same seed always yields the
    same configuration, which is what makes fault-injection sweep campaigns
    reproducible point by point.
    """
    rng = random.Random(seed)
    period = rng.randrange(1_600, 2_500, 100)
    # Clamp the period so even stall_after_samples=1 leaves the (stall + 4)
    # periods the config validation demands — any horizon >= 500 cycles
    # yields a valid point for every seed.
    period = min(period, max(horizon_cycles // 5, 100))
    max_stall = max(horizon_cycles // period - 4, 1)
    stall_after = rng.randint(1, min(12, max_stall))
    return WatchdogRecoveryConfig(
        sample_period_cycles=period,
        stall_after_samples=stall_after,
        horizon_cycles=horizon_cycles,
        dense=dense,
    )


@dataclass
class WatchdogRecoveryResult:
    """Outcome of one watchdog-recovery run."""

    samples_before_stall: int
    samples_total: int
    watchdog_barks: int
    watchdog_bites: int
    recovered: bool
    cpu_interrupts: int
    horizon_cycles: int
    soc: Optional[PulpissimoSoc] = None

    def summary(self) -> dict:
        """Scalar statistics (used by the batch runner)."""
        return {
            "samples_before_stall": self.samples_before_stall,
            "samples_total": self.samples_total,
            "watchdog_barks": self.watchdog_barks,
            "watchdog_bites": self.watchdog_bites,
            "recovered": self.recovered,
            "cpu_interrupts": self.cpu_interrupts,
            "horizon_cycles": self.horizon_cycles,
        }


class PreparedWatchdogRecovery:
    """A programmed watchdog-recovery system plus its fault-injection drive.

    Unlike the other long-run workloads this scenario is *two-segment*: the
    testbench interferes mid-run (stopping the timer at the stall instant).
    The prepared object therefore exposes the interference as a **drive
    stop** — ``(stall_cycles, inject_stall)`` — which the batched executor
    merges into its snapshot schedule, so the batch fires the injection
    while paused exactly on the stall cycle, byte-identical to the
    standalone two-phase run.
    """

    def __init__(self, config: WatchdogRecoveryConfig, soc: PulpissimoSoc) -> None:
        self.config = config
        self.soc = soc
        #: Healthy sample count recorded by :meth:`inject_stall`; the
        #: recovery verdict in :meth:`result` is relative to it.
        self.samples_before_stall: Optional[int] = None

    @property
    def simulator(self):
        return self.soc.simulator

    @property
    def stall_cycles(self) -> int:
        """The absolute cycle at which the fault is injected."""
        period = self.config.sample_period_cycles
        return self.config.stall_after_samples * period + period // 2

    def inject_stall(self, elapsed_cycles: int) -> None:
        """Record the healthy sample count and stall the sampling loop.

        Observes-and-configures only (a register write); it never advances
        the clock, so it is a valid batch stop callback.
        """
        self.samples_before_stall = self.soc.adc.conversions
        self.soc.timer.stop()  # fault injection: the sampling loop stalls

    def drive_stops(self):
        """The scenario's mid-run interference as ``(cycle, callback)``."""
        return ((self.stall_cycles, self.inject_stall),)

    def result(self, elapsed_cycles: int) -> WatchdogRecoveryResult:
        """Summarise the run as of ``elapsed_cycles`` simulated cycles.

        Only meaningful after :meth:`inject_stall` has fired (every valid
        horizon lies beyond the stall instant — the config validation
        demands ``(stall + 4)`` periods of room).
        """
        soc = self.soc
        samples_before = self.samples_before_stall
        if samples_before is None:
            raise ValueError(
                "watchdog-recovery result requested before the stall was "
                f"injected (elapsed {elapsed_cycles} < stall {self.stall_cycles})"
            )
        recovered = (
            soc.timer.enabled and soc.adc.conversions > samples_before and soc.wdt.bites == 0
        )
        return WatchdogRecoveryResult(
            samples_before_stall=samples_before,
            samples_total=soc.adc.conversions,
            watchdog_barks=soc.wdt.barks,
            watchdog_bites=soc.wdt.bites,
            recovered=recovered,
            cpu_interrupts=soc.cpu.interrupts_serviced,
            horizon_cycles=elapsed_cycles,
            soc=soc,
        )


def prepare_watchdog_recovery(
    config: WatchdogRecoveryConfig = WatchdogRecoveryConfig(),
) -> PreparedWatchdogRecovery:
    """Build and program the watchdog-recovery scenario without running it."""
    soc = _soc_for(
        config.dense,
        SensorWaveform(kind="constant", amplitude=config.sensor_amplitude),
    )
    assert soc.pels is not None
    pels = soc.pels
    assembler = Assembler()

    # Link 0: timer overflow -> ADC conversion.
    pels.route_action_to_peripheral(group=0, bit=0, peripheral=soc.adc, port="soc")
    timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    pels.program_link(0, assembler.assemble("action 0 0x1\nend"), trigger_mask=timer_bit)

    # Link 1: ADC end-of-conversion -> watchdog kick.
    pels.route_action_to_peripheral(group=1, bit=0, peripheral=soc.wdt, port="kick")
    adc_bit = 1 << soc.fabric.index_of(soc.adc.event_line_name("eoc"))
    pels.program_link(1, assembler.assemble("action 1 0x1\nend"), trigger_mask=adc_bit)

    # Link 2: watchdog bark -> restart the timer (autonomous recovery).
    pels.route_action_to_peripheral(group=2, bit=0, peripheral=soc.timer, port="start")
    bark_bit = 1 << soc.fabric.index_of(soc.wdt.event_line_name("bark"))
    pels.program_link(2, assembler.assemble("action 2 0x1\nend"), trigger_mask=bark_bit)

    period = config.sample_period_cycles
    soc.wdt.regs.reg("TIMEOUT").hw_write(3 * period)
    # The grace period must outlast one full sampling period so the restarted
    # loop kicks the watchdog before it bites.
    soc.wdt.regs.reg("GRACE").hw_write(2 * period)
    soc.wdt.start()
    soc.timer.regs.reg("COMPARE").hw_write(period)
    soc.timer.start()
    return PreparedWatchdogRecovery(config, soc)


def run_watchdog_recovery(
    config: WatchdogRecoveryConfig = WatchdogRecoveryConfig(),
) -> WatchdogRecoveryResult:
    """Run the watchdog-recovery scenario.

    A timer-paced ADC sampling loop kicks the watchdog on every conversion.
    After ``stall_after_samples`` samples the testbench stops the timer
    (injecting the fault the supervision exists for).  The watchdog counts
    down and *barks*; the bark event is linked to the timer's ``start``
    input, so PELS restarts the loop autonomously — the *bite* (system
    reset) never fires and the CPU never wakes.
    """
    prepared = prepare_watchdog_recovery(config)
    soc = prepared.soc

    # Phase 1: healthy loop until the stall point.
    stall_cycles = prepared.stall_cycles
    soc.run(stall_cycles)
    prepared.inject_stall(stall_cycles)

    # Phase 2: the watchdog detects the stall, PELS restarts the loop.
    soc.run(config.horizon_cycles - stall_cycles)
    return prepared.result(config.horizon_cycles)
