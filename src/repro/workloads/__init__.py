"""Reusable event-linking workloads.

These are the applications the paper evaluates (Section IV-B), factored out
so the examples, the tests, the latency analysis, and the power scenarios all
drive exactly the same stimulus:

* :mod:`repro.workloads.threshold` — the headline workload: a threshold-
  crossing check after a µDMA-managed SPI sensor readout, handled either by
  PELS sequenced/instant actions or by the Ibex interrupt baseline.
* :mod:`repro.workloads.minimal` — the minimal linking event (a single
  read-modify-write of one peripheral register) used for the 7-cycle vs
  16-cycle latency comparison.
* :mod:`repro.workloads.periodic` — an always-on monitoring scenario
  (timer → ADC → PWM with watchdog supervision) built from the paper's
  motivating applications.
* :mod:`repro.workloads.longrun` — long-horizon, idle-heavy scenarios
  (duty-cycled multi-sensor logging, burst SPI→DMA streaming, autonomous
  watchdog recovery) that are practical to simulate thanks to the
  event-driven kernel's quiescence skipping.
* :mod:`repro.workloads.registry` — the scenario registry behind the batch
  runner (``python -m repro.run``).
"""

from repro.workloads.longrun import (
    BurstStreamConfig,
    BurstStreamResult,
    DutyCycledLoggingConfig,
    DutyCycledLoggingResult,
    WatchdogRecoveryConfig,
    WatchdogRecoveryResult,
    prepare_burst_stream,
    prepare_duty_cycled_logging,
    run_burst_stream,
    run_duty_cycled_logging,
    run_watchdog_recovery,
    seeded_watchdog_recovery_config,
)
from repro.workloads.minimal import MinimalLinkingResult, run_minimal_ibex_linking, run_minimal_pels_linking
from repro.workloads.pipeline import (
    MultiLinkPipelineConfig,
    MultiLinkPipelineResult,
    prepare_multi_link_pipeline,
    run_multi_link_pipeline,
)
from repro.workloads.registry import (
    PreparedScenario,
    ScenarioOutcome,
    ScenarioSpec,
    prepare_scenario_batch,
    register_batch_prepare,
    register_scenario,
    run_scenario,
    run_scenario_instrumented,
    scenario,
    scenario_names,
    scenarios,
)
from repro.workloads.periodic import (
    PeriodicMonitorConfig,
    PeriodicMonitorResult,
    run_periodic_monitor,
)
from repro.workloads.threshold import (
    ThresholdWorkload,
    ThresholdWorkloadConfig,
    ThresholdWorkloadResult,
    run_ibex_threshold_workload,
    run_pels_threshold_workload,
)

__all__ = [
    "BurstStreamConfig",
    "BurstStreamResult",
    "DutyCycledLoggingConfig",
    "DutyCycledLoggingResult",
    "MinimalLinkingResult",
    "MultiLinkPipelineConfig",
    "MultiLinkPipelineResult",
    "PeriodicMonitorConfig",
    "PeriodicMonitorResult",
    "PreparedScenario",
    "ScenarioOutcome",
    "ScenarioSpec",
    "ThresholdWorkload",
    "ThresholdWorkloadConfig",
    "ThresholdWorkloadResult",
    "WatchdogRecoveryConfig",
    "WatchdogRecoveryResult",
    "prepare_burst_stream",
    "prepare_duty_cycled_logging",
    "prepare_multi_link_pipeline",
    "prepare_scenario_batch",
    "register_batch_prepare",
    "register_scenario",
    "run_burst_stream",
    "run_duty_cycled_logging",
    "run_ibex_threshold_workload",
    "run_minimal_ibex_linking",
    "run_minimal_pels_linking",
    "run_multi_link_pipeline",
    "run_pels_threshold_workload",
    "run_periodic_monitor",
    "run_scenario",
    "run_scenario_instrumented",
    "run_watchdog_recovery",
    "scenario",
    "scenario_names",
    "scenarios",
    "seeded_watchdog_recovery_config",
]
