"""Scenario registry for the batch runner.

Every entry maps a stable scenario name to a callable that builds, runs, and
summarises one workload over a caller-chosen horizon.  The registry is what
``python -m repro.run`` dispatches on, and it gives tests and benchmarks a
single place to enumerate "everything the model can do".

Scenario callables take ``(horizon_cycles, dense)`` and return a flat
``dict`` of scalar statistics; ``horizon_cycles`` is the simulated horizon in
base-clock cycles and ``dense`` selects the legacy cycle-driven kernel
(:mod:`repro.sim.simulator`) for A/B comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Tuple

ScenarioRunner = Callable[[int, bool], Mapping[str, object]]


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario."""

    name: str
    description: str
    default_horizon_cycles: int
    run: ScenarioRunner


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    name: str, description: str, default_horizon_cycles: int
) -> Callable[[ScenarioRunner], ScenarioRunner]:
    """Decorator registering ``fn(horizon_cycles, dense) -> stats`` under ``name``."""

    def decorator(fn: ScenarioRunner) -> ScenarioRunner:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        if default_horizon_cycles < 1:
            raise ValueError("the default horizon must be at least one cycle")
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            description=description,
            default_horizon_cycles=default_horizon_cycles,
            run=fn,
        )
        return fn

    return decorator


def scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from exc


def scenario_names() -> Tuple[str, ...]:
    """Sorted names of all registered scenarios."""
    return tuple(sorted(_REGISTRY))


def scenarios() -> Tuple[ScenarioSpec, ...]:
    """All registered scenarios, sorted by name."""
    return tuple(_REGISTRY[name] for name in scenario_names())


def run_scenario(name: str, horizon_cycles: int | None = None, dense: bool = False) -> Dict[str, object]:
    """Run scenario ``name`` and return its statistics dictionary."""
    spec = scenario(name)
    horizon = spec.default_horizon_cycles if horizon_cycles is None else horizon_cycles
    if horizon < 1:
        raise ValueError("the horizon must be at least one cycle")
    return dict(spec.run(horizon, dense))


# --------------------------------------------------------------- registrations


@register_scenario(
    "always-on-monitor",
    "Timer-paced ADC sampling into a PWM actuator loop with watchdog supervision",
    default_horizon_cycles=200_000,
)
def _run_always_on_monitor(horizon_cycles: int, dense: bool) -> Mapping[str, object]:
    from repro.peripherals.sensor import SensorWaveform
    from repro.soc.pulpissimo import SocConfig, build_soc
    from repro.workloads.periodic import PeriodicMonitorConfig, run_periodic_monitor

    period = 1_000
    config = PeriodicMonitorConfig(
        sample_period_cycles=period,
        n_samples=max(horizon_cycles // period - 4, 1),
        watchdog_timeout_cycles=3 * period,
        watchdog_grace_cycles=period,
    )
    soc = build_soc(
        SocConfig(
            sensor_waveform=SensorWaveform(kind="constant", amplitude=config.sensor_amplitude),
            dense=dense,
        )
    )
    result = run_periodic_monitor(config, soc=soc)
    return {
        "samples_taken": result.samples_taken,
        "duty_updates": result.duty_updates,
        "final_duty": result.final_duty,
        "watchdog_kicks": result.watchdog_kicks,
        "watchdog_barks": result.watchdog_barks,
        "cpu_interrupts": result.cpu_interrupts,
        "horizon_cycles": result.total_cycles,
    }


@register_scenario(
    "duty-cycled-logging",
    "Duty-cycled multi-sensor logging: ADC + SPI readouts, µDMA log, PWM loop",
    default_horizon_cycles=500_000,
)
def _run_duty_cycled_logging(horizon_cycles: int, dense: bool) -> Mapping[str, object]:
    from repro.workloads.longrun import DutyCycledLoggingConfig, run_duty_cycled_logging

    return run_duty_cycled_logging(
        DutyCycledLoggingConfig(horizon_cycles=horizon_cycles, dense=dense)
    ).summary()


@register_scenario(
    "burst-spi-dma",
    "Burst SPI→µDMA streaming to L2 with long silent gaps",
    default_horizon_cycles=1_000_000,
)
def _run_burst_stream(horizon_cycles: int, dense: bool) -> Mapping[str, object]:
    from repro.workloads.longrun import BurstStreamConfig, run_burst_stream

    return run_burst_stream(BurstStreamConfig(horizon_cycles=horizon_cycles, dense=dense)).summary()


@register_scenario(
    "watchdog-recovery",
    "Stalled sampling loop detected by the watchdog and restarted by PELS",
    default_horizon_cycles=200_000,
)
def _run_watchdog_recovery(horizon_cycles: int, dense: bool) -> Mapping[str, object]:
    from repro.workloads.longrun import WatchdogRecoveryConfig, run_watchdog_recovery

    return run_watchdog_recovery(
        WatchdogRecoveryConfig(horizon_cycles=horizon_cycles, dense=dense)
    ).summary()


@register_scenario(
    "threshold-pels",
    "Paper workload: threshold check after µDMA-managed SPI readout (PELS-linked)",
    default_horizon_cycles=50_000,
)
def _run_threshold_pels(horizon_cycles: int, dense: bool) -> Mapping[str, object]:
    from repro.soc.pulpissimo import SocConfig, build_soc
    from repro.workloads.threshold import ThresholdWorkloadConfig, run_pels_threshold_workload

    config = ThresholdWorkloadConfig(n_events=max(horizon_cycles // 6_000, 1))
    soc = build_soc(SocConfig(spi_cycles_per_word=config.spi_cycles_per_word, dense=dense))
    result = run_pels_threshold_workload(config, soc=soc)
    return {
        "events_serviced": result.events_serviced,
        "alerts_raised": result.alerts_raised,
        "mean_latency_cycles": result.mean_latency,
        "worst_latency_cycles": result.worst_latency,
        "horizon_cycles": result.total_cycles,
    }
