"""Scenario registry for the batch runner and the sweep subsystem.

Every entry maps a stable scenario name to a callable that builds, runs, and
summarises one workload over a caller-chosen horizon.  The registry is what
``python -m repro.run`` dispatches on, what :mod:`repro.sweep` expands its
campaign grids over, and it gives tests and benchmarks a single place to
enumerate "everything the model can do".

Scenario callables take ``(horizon_cycles, dense, **params)`` and return a
:class:`ScenarioOutcome`; ``horizon_cycles`` is the simulated horizon in
base-clock cycles, ``dense`` selects the legacy cycle-driven kernel
(:mod:`repro.sim.simulator`) for A/B comparisons, and ``params`` are the
scenario's declared sweepable parameters (see :class:`ScenarioSpec.params`).
The outcome carries the flat scalar statistics plus (where available) the SoC
itself, so downstream consumers — the power and area models in the sweep
worker — can read activity counters and configuration without re-running.

:func:`run_scenario` keeps the original "stats dict" contract;
:func:`run_scenario_instrumented` exposes the full outcome.

**Batched execution.**  A scenario whose setup does not depend on the
horizon (the horizon only bounds how long the prepared system runs) may
additionally register a *batch-prepare* hook
(:func:`register_batch_prepare`): a callable taking ``(horizons, dense,
**params)`` that validates every requested horizon, builds the scenario
once for the largest, and returns a :class:`PreparedScenario`.  The sweep
layer's ``--batch`` mode advances such prepared instances through
:class:`repro.sim.batch.BatchSimulator` and snapshots
:meth:`PreparedScenario.outcome` at each point's horizon — one simulation
serving every point that shares its parameters, byte-identical to running
each point alone (the simulation is deterministic and a shorter horizon is
a strict prefix of a longer one).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

ScenarioRunner = Callable[..., "ScenarioOutcome"]


class BatchUnsupported(ValueError):
    """A batch-prepare hook declining this particular point group.

    Raised when the scenario supports batching in general but the requested
    parameters cannot share one prepared instance (e.g. a fault-injection
    seed that derives *different* drives at different horizons).  The sweep
    executor catches it, runs the group per-instance, and records the reason
    in the manifest's ``batch_fallbacks`` — unlike a plain ``ValueError``,
    which still means "bad point" and propagates.
    """


class PreparedScenario:
    """One built, ready-to-advance scenario instance (batched execution).

    Subclasses expose the system under simulation and summarise it at any
    *elapsed* cycle count — which must equal what a standalone run with
    ``horizon_cycles=elapsed`` would report, because the batch executor
    snapshots the outcome mid-run at every shared point's horizon.
    """

    @property
    def simulator(self):
        """The :class:`repro.sim.Simulator` the batch driver advances."""
        raise NotImplementedError

    def outcome(self, elapsed_cycles: int) -> "ScenarioOutcome":
        """The scenario outcome as of ``elapsed_cycles`` simulated cycles.

        Called with the simulator paused exactly on ``elapsed_cycles``; must
        only observe (read counters, reference the SoC), never advance.
        """
        raise NotImplementedError

    def drive_stops(self) -> Sequence[Tuple[int, Callable[[int], None]]]:
        """Mid-run testbench interference as ``(cycle, callback)`` stops.

        Most scenarios run uninterrupted and return nothing.  Two-segment
        scenarios (watchdog-recovery's fault injection) return the resumable
        drive script here; the batch executor merges these into its snapshot
        schedule so the interference fires while the batch is paused exactly
        on that cycle — callbacks may mutate the system (that is their
        point) but must never advance the clock.
        """
        return ()


BatchPrepare = Callable[..., PreparedScenario]


@dataclass
class ScenarioOutcome:
    """Everything one scenario run produced.

    ``stats`` is the flat scalar summary the batch runner prints; ``soc`` is
    the simulated system itself (``None`` for scenarios that do not expose
    it), from which activity counters, the clock frequency, and the PELS
    configuration can be read for power/area post-processing.
    """

    stats: Dict[str, object] = field(default_factory=dict)
    soc: Optional[Any] = None


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered scenario."""

    name: str
    description: str
    default_horizon_cycles: int
    run: ScenarioRunner
    #: Names of the keyword parameters the runner accepts beyond the horizon
    #: and kernel selection — the axes a sweep campaign may put in its grid.
    params: Tuple[str, ...] = ()
    #: Optional hook for batched execution: ``(horizons, dense, **params) ->
    #: PreparedScenario``.  ``None`` means the scenario cannot share a
    #: prepared instance across horizons (its setup depends on the horizon,
    #: or its drive pattern is not a single uninterrupted run) and the sweep
    #: layer falls back to per-point execution.
    batch_prepare: Optional[BatchPrepare] = None


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_scenario(
    name: str,
    description: str,
    default_horizon_cycles: int,
    params: Tuple[str, ...] = (),
) -> Callable[[ScenarioRunner], ScenarioRunner]:
    """Decorator registering ``fn(horizon_cycles, dense, **params)`` under ``name``."""

    def decorator(fn: ScenarioRunner) -> ScenarioRunner:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        if default_horizon_cycles < 1:
            raise ValueError("the default horizon must be at least one cycle")
        _REGISTRY[name] = ScenarioSpec(
            name=name,
            description=description,
            default_horizon_cycles=default_horizon_cycles,
            run=fn,
            params=tuple(params),
        )
        return fn

    return decorator


def register_batch_prepare(name: str) -> Callable[[BatchPrepare], BatchPrepare]:
    """Decorator attaching a batch-prepare hook to the scenario ``name``.

    The hook takes ``(horizons, dense, **params)`` where ``horizons`` is the
    ascending list of horizons the prepared instance must serve; it validates
    each of them exactly as the plain runner would (so a bad point fails the
    same way batched or not) and returns a :class:`PreparedScenario` built
    for the largest.
    """

    def decorator(fn: BatchPrepare) -> BatchPrepare:
        spec = scenario(name)
        if spec.batch_prepare is not None:
            raise ValueError(f"scenario {name!r} already has a batch-prepare hook")
        _REGISTRY[name] = replace(spec, batch_prepare=fn)
        return fn

    return decorator


def prepare_scenario_batch(
    name: str,
    horizons: Sequence[int],
    dense: bool = False,
    params: Optional[Mapping[str, object]] = None,
) -> PreparedScenario:
    """Build one prepared instance of ``name`` serving every horizon in
    ``horizons`` (ascending).  Raises ``ValueError`` when the scenario has no
    batch-prepare hook or rejects the parameters/horizons."""
    spec = scenario(name)
    if spec.batch_prepare is None:
        raise ValueError(f"scenario {name!r} does not support batched execution")
    horizons = sorted(horizons)
    if not horizons:
        raise ValueError("prepare_scenario_batch needs at least one horizon")
    if horizons[0] < 1:
        raise ValueError("the horizon must be at least one cycle")
    return spec.batch_prepare(horizons, dense, **_validated_params(spec, params))


def scenario(name: str) -> ScenarioSpec:
    """Look up a registered scenario by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scenario {name!r}; registered: {known}") from exc


def scenario_names() -> Tuple[str, ...]:
    """Sorted names of all registered scenarios."""
    return tuple(sorted(_REGISTRY))


def scenarios() -> Tuple[ScenarioSpec, ...]:
    """All registered scenarios, sorted by name."""
    return tuple(_REGISTRY[name] for name in scenario_names())


def _validated_params(spec: ScenarioSpec, params: Optional[Mapping[str, object]]) -> Dict[str, object]:
    if not params:
        return {}
    unknown = sorted(set(params) - set(spec.params))
    if unknown:
        accepted = ", ".join(spec.params) or "<none>"
        raise ValueError(
            f"scenario {spec.name!r} does not accept parameter(s) {unknown}; accepted: {accepted}"
        )
    return dict(params)


def run_scenario_instrumented(
    name: str,
    horizon_cycles: int | None = None,
    dense: bool = False,
    params: Optional[Mapping[str, object]] = None,
) -> ScenarioOutcome:
    """Run scenario ``name`` and return the full :class:`ScenarioOutcome`."""
    spec = scenario(name)
    horizon = spec.default_horizon_cycles if horizon_cycles is None else horizon_cycles
    if horizon < 1:
        raise ValueError("the horizon must be at least one cycle")
    outcome = spec.run(horizon, dense, **_validated_params(spec, params))
    if not isinstance(outcome, ScenarioOutcome):
        raise TypeError(f"scenario {name!r} returned {type(outcome).__name__}, not ScenarioOutcome")
    return outcome


def run_scenario(
    name: str,
    horizon_cycles: int | None = None,
    dense: bool = False,
    params: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """Run scenario ``name`` and return its statistics dictionary."""
    return dict(run_scenario_instrumented(name, horizon_cycles, dense, params).stats)


# --------------------------------------------------------------- registrations


@register_scenario(
    "always-on-monitor",
    "Timer-paced ADC sampling into a PWM actuator loop with watchdog supervision",
    default_horizon_cycles=200_000,
    params=("sample_period_cycles",),
)
def _run_always_on_monitor(
    horizon_cycles: int, dense: bool, sample_period_cycles: int = 1_000
) -> ScenarioOutcome:
    from repro.peripherals.sensor import SensorWaveform
    from repro.soc.pulpissimo import SocConfig, build_soc
    from repro.workloads.periodic import PeriodicMonitorConfig, run_periodic_monitor

    period = sample_period_cycles
    config = PeriodicMonitorConfig(
        sample_period_cycles=period,
        n_samples=max(horizon_cycles // period - 4, 1),
        watchdog_timeout_cycles=3 * period,
        watchdog_grace_cycles=period,
    )
    soc = build_soc(
        SocConfig(
            sensor_waveform=SensorWaveform(kind="constant", amplitude=config.sensor_amplitude),
            dense=dense,
        )
    )
    result = run_periodic_monitor(config, soc=soc)
    stats = {
        "samples_taken": result.samples_taken,
        "duty_updates": result.duty_updates,
        "final_duty": result.final_duty,
        "watchdog_kicks": result.watchdog_kicks,
        "watchdog_barks": result.watchdog_barks,
        "cpu_interrupts": result.cpu_interrupts,
        "horizon_cycles": result.total_cycles,
    }
    return ScenarioOutcome(stats=stats, soc=soc)


@register_scenario(
    "duty-cycled-logging",
    "Duty-cycled multi-sensor logging: ADC + SPI readouts, µDMA log, PWM loop",
    default_horizon_cycles=500_000,
    params=("sample_period_cycles", "words_per_readout", "spi_cycles_per_word", "pwm_period"),
)
def _run_duty_cycled_logging(horizon_cycles: int, dense: bool, **params: object) -> ScenarioOutcome:
    from repro.workloads.longrun import DutyCycledLoggingConfig, run_duty_cycled_logging

    result = run_duty_cycled_logging(
        DutyCycledLoggingConfig(horizon_cycles=horizon_cycles, dense=dense, **params)
    )
    return ScenarioOutcome(stats=result.summary(), soc=result.soc)


@register_scenario(
    "burst-spi-dma",
    "Burst SPI→µDMA streaming to L2 with long silent gaps",
    default_horizon_cycles=1_000_000,
    params=("burst_period_cycles", "words_per_burst", "spi_cycles_per_word"),
)
def _run_burst_stream(horizon_cycles: int, dense: bool, **params: object) -> ScenarioOutcome:
    from repro.workloads.longrun import BurstStreamConfig, run_burst_stream

    result = run_burst_stream(BurstStreamConfig(horizon_cycles=horizon_cycles, dense=dense, **params))
    return ScenarioOutcome(stats=result.summary(), soc=result.soc)


@register_scenario(
    "watchdog-recovery",
    "Stalled sampling loop detected by the watchdog and restarted by PELS",
    default_horizon_cycles=200_000,
    params=("sample_period_cycles", "stall_after_samples", "seed"),
)
def _run_watchdog_recovery(
    horizon_cycles: int,
    dense: bool,
    seed: Optional[int] = None,
    **params: object,
) -> ScenarioOutcome:
    from repro.workloads.longrun import (
        WatchdogRecoveryConfig,
        run_watchdog_recovery,
        seeded_watchdog_recovery_config,
    )

    if seed is not None:
        if params:
            raise ValueError(
                "watchdog-recovery takes either a fault-injection seed or explicit "
                f"parameters, not both (got seed={seed} and {sorted(params)})"
            )
        config = seeded_watchdog_recovery_config(seed, horizon_cycles=horizon_cycles, dense=dense)
    else:
        config = WatchdogRecoveryConfig(horizon_cycles=horizon_cycles, dense=dense, **params)
    result = run_watchdog_recovery(config)
    stats = result.summary()
    stats["sample_period_cycles"] = config.sample_period_cycles
    stats["stall_after_samples"] = config.stall_after_samples
    return ScenarioOutcome(stats=stats, soc=result.soc)


@register_scenario(
    "threshold-pels",
    "Paper workload: threshold check after µDMA-managed SPI readout (PELS-linked)",
    default_horizon_cycles=50_000,
    params=("spi_cycles_per_word",),
)
def _run_threshold_pels(
    horizon_cycles: int, dense: bool, spi_cycles_per_word: int = 4
) -> ScenarioOutcome:
    from repro.soc.pulpissimo import SocConfig, build_soc
    from repro.workloads.threshold import ThresholdWorkloadConfig, run_pels_threshold_workload

    config = ThresholdWorkloadConfig(
        n_events=max(horizon_cycles // 6_000, 1), spi_cycles_per_word=spi_cycles_per_word
    )
    soc = build_soc(SocConfig(spi_cycles_per_word=config.spi_cycles_per_word, dense=dense))
    result = run_pels_threshold_workload(config, soc=soc)
    stats = {
        "events_serviced": result.events_serviced,
        "alerts_raised": result.alerts_raised,
        "mean_latency_cycles": result.mean_latency,
        "worst_latency_cycles": result.worst_latency,
        "horizon_cycles": result.total_cycles,
    }
    return ScenarioOutcome(stats=stats, soc=soc)


@register_scenario(
    "multi-link-pipeline",
    "Chained timer→ADC→UART→blinker pipeline across three specialised links",
    default_horizon_cycles=50_000,
    params=("timer_period_cycles", "clock_ratio", "blink_count"),
)
def _run_multi_link_pipeline(horizon_cycles: int, dense: bool, **params: object) -> ScenarioOutcome:
    from repro.workloads.pipeline import MultiLinkPipelineConfig, run_multi_link_pipeline

    result = run_multi_link_pipeline(
        MultiLinkPipelineConfig(horizon_cycles=horizon_cycles, dense=dense, **params)
    )
    return ScenarioOutcome(stats=result.summary(), soc=result.soc)


class _PreparedFigure5Idle(PreparedScenario):
    """Built idle-measurement SoC serving the ``figure5-idle`` scenario."""

    def __init__(self, soc, mode: str, frequency_mhz: float, pwm_period: int) -> None:
        self.soc = soc
        self.mode = mode
        self.frequency_mhz = frequency_mhz
        self.pwm_period = pwm_period

    @property
    def simulator(self):
        return self.soc.simulator

    def outcome(self, elapsed_cycles: int) -> ScenarioOutcome:
        soc = self.soc
        activity = soc.activity
        stats = {
            "mode": self.mode,
            "frequency_mhz": self.frequency_mhz,
            "cpu_sleep_cycles": soc.cpu.sleep_cycles,
            "cpu_interrupts": soc.cpu.interrupts_serviced,
            "pels_idle_cycles": activity.get("pels", "idle_cycles"),
            "sram_reads": activity.get("sram", "reads"),
            "horizon_cycles": elapsed_cycles,
        }
        if self.pwm_period:
            stats["pwm_periods_elapsed"] = soc.pwm.periods_elapsed
        return ScenarioOutcome(stats=stats, soc=soc)


def _prepare_figure5_idle(
    dense: bool, mode: str, frequency_mhz: float, pwm_period: int
) -> _PreparedFigure5Idle:
    from repro.power.scenarios import build_idle_measurement_soc

    soc = build_idle_measurement_soc(mode, frequency_hz=frequency_mhz * 1e6, dense=dense)
    if pwm_period:
        # Arm the PWM actuator (as the always-on monitor keeps it running
        # while idle).  Nothing consumes its ``period`` event line here, so
        # this is the workload the consumer-aware fabric exists for: the
        # legacy kernel wakes every period, the cached kernel free-runs.
        soc.pwm.regs.reg("PERIOD").write(int(pwm_period))
        soc.pwm.start()
    return _PreparedFigure5Idle(soc, mode, frequency_mhz, pwm_period)


@register_scenario(
    "figure5-idle",
    "Paper-scale idle power study: armed threshold link waiting for events (Figure 5 idle bars)",
    default_horizon_cycles=110_000,
    params=("mode", "frequency_mhz", "pwm_period"),
)
def _run_figure5_idle(
    horizon_cycles: int,
    dense: bool,
    mode: str = "pels",
    frequency_mhz: float = 27.0,
    pwm_period: int = 0,
) -> ScenarioOutcome:
    prepared = _prepare_figure5_idle(dense, mode, frequency_mhz, pwm_period)
    prepared.soc.run(horizon_cycles)
    return prepared.outcome(horizon_cycles)


# ------------------------------------------------------- batch-prepare hooks
#
# Only scenarios whose setup is horizon-independent may register here: the
# batched executor builds the instance once for the largest horizon and
# snapshots the outcome at each smaller one, so any horizon-derived setup
# (always-on-monitor's sample count) or unscriptable mid-run host
# interaction (threshold-pels' run_until loop) would break the byte-identity
# guarantee.  Scripted interference is fine: watchdog-recovery exposes its
# fault injection as a drive stop (:meth:`PreparedScenario.drive_stops`)
# that the executor replays at the exact stall cycle.


class _PreparedFromRunner(PreparedScenario):
    """Adapter from a workload's prepared object (``.simulator`` +
    ``.result(elapsed)``, optionally ``.drive_stops()``) to the registry's
    outcome contract."""

    def __init__(self, prepared) -> None:
        self._prepared = prepared

    @property
    def simulator(self):
        return self._prepared.simulator

    def outcome(self, elapsed_cycles: int) -> ScenarioOutcome:
        result = self._prepared.result(elapsed_cycles)
        return ScenarioOutcome(stats=result.summary(), soc=result.soc)

    def drive_stops(self) -> Sequence[Tuple[int, Callable[[int], None]]]:
        stops = getattr(self._prepared, "drive_stops", None)
        return tuple(stops()) if stops is not None else ()


def _register_prepared_hook(name: str, load: Callable[[], Tuple[type, Callable]]) -> None:
    """Batch-prepare hook for the config/prepare/result workload shape.

    ``load`` lazily imports and returns ``(config_cls, prepare_fn)``; the
    hook validates a config per requested horizon (exactly like the plain
    runner would point by point) and prepares one instance for the largest.
    """

    def hook(horizons: Sequence[int], dense: bool, **params: object) -> PreparedScenario:
        config_cls, prepare = load()
        configs = [
            config_cls(horizon_cycles=horizon, dense=dense, **params) for horizon in horizons
        ]
        return _PreparedFromRunner(prepare(configs[-1]))

    register_batch_prepare(name)(hook)


def _load_multi_link_pipeline() -> Tuple[type, Callable]:
    from repro.workloads.pipeline import MultiLinkPipelineConfig, prepare_multi_link_pipeline

    return MultiLinkPipelineConfig, prepare_multi_link_pipeline


def _load_duty_cycled_logging() -> Tuple[type, Callable]:
    from repro.workloads.longrun import DutyCycledLoggingConfig, prepare_duty_cycled_logging

    return DutyCycledLoggingConfig, prepare_duty_cycled_logging


def _load_burst_stream() -> Tuple[type, Callable]:
    from repro.workloads.longrun import BurstStreamConfig, prepare_burst_stream

    return BurstStreamConfig, prepare_burst_stream


_register_prepared_hook("multi-link-pipeline", _load_multi_link_pipeline)
_register_prepared_hook("duty-cycled-logging", _load_duty_cycled_logging)
_register_prepared_hook("burst-spi-dma", _load_burst_stream)


class _PreparedWatchdogRecoveryScenario(_PreparedFromRunner):
    """Watchdog-recovery adapter mirroring the plain runner's stats shape
    (the runner appends the resolved drive parameters to the summary)."""

    def outcome(self, elapsed_cycles: int) -> ScenarioOutcome:
        outcome = super().outcome(elapsed_cycles)
        config = self._prepared.config
        outcome.stats["sample_period_cycles"] = config.sample_period_cycles
        outcome.stats["stall_after_samples"] = config.stall_after_samples
        return outcome


@register_batch_prepare("watchdog-recovery")
def _batch_watchdog_recovery(
    horizons: Sequence[int],
    dense: bool,
    seed: Optional[int] = None,
    **params: object,
) -> PreparedScenario:
    from repro.workloads.longrun import (
        WatchdogRecoveryConfig,
        prepare_watchdog_recovery,
        seeded_watchdog_recovery_config,
    )

    if seed is not None and params:
        raise ValueError(
            "watchdog-recovery takes either a fault-injection seed or explicit "
            f"parameters, not both (got seed={seed} and {sorted(params)})"
        )
    configs = []
    for horizon in horizons:
        if seed is not None:
            configs.append(
                seeded_watchdog_recovery_config(seed, horizon_cycles=horizon, dense=dense)
            )
        else:
            configs.append(WatchdogRecoveryConfig(horizon_cycles=horizon, dense=dense, **params))
    # A seeded config derives its drive (period, stall instant) from the
    # horizon too; the shared instance is only a valid prefix of every point
    # when all horizons derive the same drive.
    drives = {(c.sample_period_cycles, c.stall_after_samples) for c in configs}
    if len(drives) > 1:
        raise BatchUnsupported(
            f"watchdog-recovery seed {seed} derives different fault-injection "
            f"drives across horizons {sorted(horizons)}; the points cannot "
            f"share one prepared instance"
        )
    return _PreparedWatchdogRecoveryScenario(prepare_watchdog_recovery(configs[-1]))


@register_batch_prepare("figure5-idle")
def _batch_figure5_idle(
    horizons: Sequence[int],
    dense: bool,
    mode: str = "pels",
    frequency_mhz: float = 27.0,
    pwm_period: int = 0,
) -> PreparedScenario:
    return _prepare_figure5_idle(dense, mode, frequency_mhz, pwm_period)
