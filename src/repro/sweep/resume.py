"""Incremental re-execution: recover finished points from prior artifacts.

A sweep campaign's ``results.json`` is deterministic and keyed by point
index, and its ``manifest.json`` records the full campaign spec.  That makes
resumption trivial to do safely:

* :func:`spec_hash` canonicalises the campaign portion of the manifest
  (name, scenario, grid, seeds, kernel, schema version) into a sha256 — the
  identity of "the same campaign";
* :func:`load_reusable_results` reads a previous run's artifacts from the
  campaign's output directory and returns its per-point records **only** if
  the stored spec hash matches the current spec.  A renamed grid axis, a new
  value, a different base seed, or a schema bump all change the hash and
  force a clean re-run — a stale cache can never masquerade as fresh data.

Recovered records re-enter :func:`repro.sweep.execute.execute_campaign`
through its ``reuse`` parameter; because every record is a pure function of
its point, a resumed run's ``results.json``/``results.csv`` are byte-identical
to a from-scratch run (pinned by ``tests/sweep/test_resume.py``).  Wall-clock
timings of reused points are carried over from the previous manifest so the
new manifest stays fully populated.

Any artifact set that carries a matching ``spec_hash`` is a valid resume
source — a plain previous run, a single shard's artifacts (its records are
simply a subset), or a **merged** multi-host run written by
:mod:`repro.sweep.merge`.  That last case is what makes a fleet re-cuttable:
resume a ``--shard I/N`` run from a merged ``results.json`` and every point
of the new shard that was finished anywhere in the old fleet is reused.

:func:`spec_from_manifest` is the inverse of the manifest's campaign block:
it reconstructs the :class:`~repro.sweep.campaign.CampaignSpec` a manifest
was written from, which is how ``sweep merge`` revalidates shard artifacts
without consulting the campaign registry (the campaign may not be registered
on the merging host at all).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional

from repro.sweep.campaign import CampaignSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sweep.execute import PointResult


class ResumeError(ValueError):
    """Artifacts that *claim* to be resumable but cannot be trusted: a
    ``results.json``/``manifest.json`` that exists but is truncated, is not
    valid JSON, is not the expected shape, or carries records that
    contradict the manifest's own ``spec_hash``.  The message always names
    the offending path and what failed to parse.

    This is deliberately distinct from the two silent no-resume cases —
    missing artifacts and a ``spec_hash`` for a *different* campaign — which
    simply mean "nothing to reuse, run everything".  Damaged artifacts must
    be surfaced (the CLI exits 2) rather than silently recomputing the
    campaign on top of what may be a disk or truncation problem; the fleet
    orchestrator reuses the same validation when scavenging past timings and
    degrades by skipping the damaged directory with a ledger note.
    """


def load_artifact_json(path: Path, *, required: bool = False) -> Optional[Dict[str, object]]:
    """Parse one artifact JSON file into its top-level object.

    Returns ``None`` when the file does not exist (unless ``required``);
    raises :class:`ResumeError` naming the path and the failure for
    unreadable, unparseable, or non-object payloads — one shared gate for
    ``--resume``, the fleet's shard validation, and its timing scavenger.
    """
    path = Path(path)
    if not path.exists():
        if required:
            raise ResumeError(f"{path}: missing")
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ResumeError(f"{path}: unreadable: {exc}") from None
    except ValueError as exc:
        raise ResumeError(f"{path}: invalid JSON (truncated or corrupt): {exc}") from None
    if not isinstance(payload, dict):
        raise ResumeError(f"{path}: expected a JSON object at the top level, got {type(payload).__name__}")
    return payload


def campaign_identity(spec: CampaignSpec) -> Dict[str, object]:
    """The canonical campaign-identity payload hashed by :func:`spec_hash`."""
    from repro.sweep.artifacts import SCHEMA_VERSION

    return {
        "schema_version": SCHEMA_VERSION,
        "name": spec.name,
        "scenario": spec.scenario,
        "grid": {axis: list(values) for axis, values in spec.grid.items()},
        "base_seed": spec.base_seed,
        "dense": spec.dense,
    }


def spec_hash(spec: CampaignSpec) -> str:
    """Stable sha256 of the campaign identity (axis order included: it fixes
    the point enumeration, so reordering axes renumbers every point)."""
    canonical = json.dumps(campaign_identity(spec), sort_keys=False, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def spec_from_manifest(manifest: Mapping[str, object]) -> CampaignSpec:
    """Reconstruct the :class:`CampaignSpec` a manifest's campaign block
    describes.

    Raises ``ValueError`` when the manifest has no well-formed campaign
    block.  The reconstruction is exact for every identity field (name,
    scenario, grid with axis order, base seed, kernel), so
    ``spec_hash(spec_from_manifest(m)) == m["spec_hash"]`` for any manifest
    this code base wrote — :mod:`repro.sweep.merge` asserts exactly that
    before trusting a shard directory.
    """
    campaign = manifest.get("campaign")
    if not isinstance(campaign, Mapping):
        raise ValueError("manifest has no campaign block")
    grid = campaign.get("grid")
    if not isinstance(grid, Mapping):
        raise ValueError("manifest campaign block has no grid mapping")
    # The manifest is serialised with sorted keys, so the stored grid mapping
    # has lost the axis order that fixes the row-major point numbering; the
    # explicit axis_order list restores it.  (Without it, fall back to the
    # stored order — the caller's spec-hash check catches any mismatch.)
    axis_order = campaign.get("axis_order", list(grid))
    if not isinstance(axis_order, (list, tuple)) or sorted(axis_order) != sorted(grid):
        raise ValueError(
            f"manifest axis_order {axis_order!r} does not name the grid axes {sorted(grid)}"
        )
    try:
        return CampaignSpec(
            name=str(campaign["name"]),
            description=str(campaign.get("description", "")),
            scenario=str(campaign["scenario"]),
            grid={axis: tuple(grid[axis]) for axis in axis_order},
            base_seed=int(campaign["base_seed"]),
            dense=bool(campaign["dense"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"manifest campaign block is malformed: {exc!r}") from None


def load_reusable_results(
    spec: CampaignSpec, out_dir: Path, subdir: Optional[str] = None
) -> Dict[int, "PointResult"]:
    """Per-point results of a previous run of ``spec``, keyed by index.

    ``subdir`` reads a nested artifact directory instead of the campaign
    root — the CLI uses it to resume a shard from its own
    ``<campaign>/shard-I-of-N/`` slice in addition to any campaign-level
    (full or merged) artifacts.

    Returns an empty mapping when there is genuinely nothing to resume from:
    missing artifacts, a manifest without a spec hash (pre-resume schema), or
    a spec hash that does not match the current campaign definition (a
    *different* campaign's artifacts are not damage).  Artifacts that exist
    but cannot be trusted raise :class:`ResumeError` instead — truncated or
    invalid JSON, a results/manifest pair that disagree with each other, a
    malformed point record, or a record that contradicts the *current*
    expansion of the campaign under a matching hash (the hash covers the
    `CampaignSpec` fields, but expansion also depends on registry state —
    the scenario's default horizon, the seed-injection rule).  Silently
    recomputing on top of a half-written results.json would mask a disk or
    truncation problem, so the damage is named and surfaced (the CLI exits
    2).
    """
    from repro.sweep.campaign import expand_campaign
    from repro.sweep.execute import PointResult

    campaign_dir = Path(out_dir) / spec.name
    if subdir is not None:
        campaign_dir = campaign_dir / subdir
    results_path = campaign_dir / "results.json"
    manifest_path = campaign_dir / "manifest.json"
    results = load_artifact_json(results_path)
    manifest = load_artifact_json(manifest_path)
    if results is None or manifest is None:
        return {}
    if manifest.get("spec_hash") != spec_hash(spec):
        return {}
    if results.get("campaign") != spec.name or results.get("scenario") != spec.scenario:
        raise ResumeError(
            f"{results_path}: results are for campaign "
            f"{results.get('campaign')!r} / scenario {results.get('scenario')!r} "
            f"but the manifest's spec_hash matches {spec.name!r} / "
            f"{spec.scenario!r} — the artifact pair is inconsistent"
        )
    points_by_index = {point.index: point for point in expand_campaign(spec)}
    point_walls = _point_walls(manifest)
    reusable: Dict[int, PointResult] = {}
    for record in results.get("points", ()):
        result = point_result_from_record(
            record,
            spec,
            points_by_index,
            walls=point_walls,
            source=str(results_path),
        )
        reusable[result.index] = result
    return reusable


def point_result_from_record(
    record: Mapping[str, object],
    spec: CampaignSpec,
    points_by_index: Mapping[int, object],
    *,
    walls: Mapping[str, float],
    source: str,
) -> "PointResult":
    """Validate one stored point record against the campaign's current
    expansion and return it as a reusable :class:`PointResult`.

    The single validation gate for *every* resume source — a previous
    run's ``results.json`` and the results store both go through here, so
    the two paths cannot drift.  The record's identity fields (scenario,
    horizon, params, seed) must match the expansion's point at that index
    exactly; the spec hash covers the ``CampaignSpec`` fields, but
    expansion also depends on registry state (the scenario's default
    horizon, the seed-injection rule), so a matching hash alone is not
    enough.  Raises :class:`ResumeError` naming ``source`` for a record
    that is malformed or contradicts the expansion.
    """
    from repro.sweep.execute import PointResult

    try:
        index = int(record["index"])
        point = points_by_index.get(index)
        if (
            point is None
            or record["scenario"] != point.scenario
            or int(record["horizon_cycles"]) != point.horizon_cycles
            or dict(record["params"]) != dict(point.params)
            or int(record["seed"]) != point.seed
        ):
            raise ResumeError(
                f"{source}: point record {record.get('index')!r} disagrees "
                f"with the current expansion of campaign {spec.name!r} "
                f"(scenario/horizon/params/seed mismatch) — the artifacts were "
                f"edited or the registry changed; delete them or rerun without "
                f"--resume"
            )
        return PointResult(
            index=index,
            scenario=record["scenario"],
            horizon_cycles=int(record["horizon_cycles"]),
            params=dict(record["params"]),
            seed=int(record["seed"]),
            stats=dict(record["stats"]),
            activity=dict(record["activity"]),
            power_uw=dict(record["power_uw"]),
            area_kge=dict(record["area_kge"]),
            wall_seconds=walls.get(str(index), 0.0),
            reused=True,
        )
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, ResumeError):
            raise
        # One malformed record condemns the artifact set: a partially
        # written results.json must not silently contribute half its
        # points next to a fresh recomputation of the rest.
        raise ResumeError(
            f"{source}: point record {str(record)[:80]!r} failed to "
            f"parse ({exc!r}) — results.json is truncated or corrupt"
        ) from None


def load_point_walls(directory: Path, spec: CampaignSpec) -> Dict[int, float]:
    """Scavenge per-point wall timings from one artifact directory.

    The fleet's cost model calibrates its per-point estimates with the
    ``execution.point_wall_seconds`` of past runs found under ``--out`` —
    shard slices, merged artifacts, full runs, all of them.  Returns ``{}``
    when the directory has no manifest or the manifest belongs to a
    different campaign (``spec_hash`` mismatch); raises :class:`ResumeError`
    (same validation as ``--resume``) for a manifest that exists but cannot
    be parsed, so damage is surfaced rather than silently priced at zero.
    """
    manifest = load_artifact_json(Path(directory) / "manifest.json")
    if manifest is None or manifest.get("spec_hash") != spec_hash(spec):
        return {}
    walls: Dict[int, float] = {}
    for key, value in _point_walls(manifest).items():
        try:
            walls[int(key)] = float(value)
        except (TypeError, ValueError):
            raise ResumeError(
                f"{Path(directory) / 'manifest.json'}: point_wall_seconds entry "
                f"{key!r}: {value!r} is not numeric — the manifest is corrupt"
            ) from None
    return walls


def _point_walls(manifest: Dict[str, object]) -> Dict[str, float]:
    execution = manifest.get("execution")
    if not isinstance(execution, dict):
        return {}
    walls = execution.get("point_wall_seconds")
    return dict(walls) if isinstance(walls, dict) else {}
