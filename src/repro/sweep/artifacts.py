"""Structured sweep artifacts: results.json, results.csv, manifest.json.

One campaign execution writes three files under ``<out_dir>/<campaign>/``:

* ``results.json`` — the full per-point records (params, seed, stats,
  flattened activity counters, power and area breakdowns).  Deterministic:
  sorted keys, no timing, no environment — byte-identical between a serial
  and a sharded run of the same campaign.
* ``results.csv`` — the same data flattened to one row per point with
  namespaced columns (``param.*``, ``stat.*``, ``power_uw.*``,
  ``area_kge.*``) for spreadsheet/pandas consumption.  Activity counters are
  deliberately left to the JSON (hundreds of sparse columns help nobody).
* ``manifest.json`` — everything needed to reproduce and audit the run: the
  campaign spec (scenario, grid, base seed, kernel), the artifact schema
  version, the point count, and the execution record (jobs, wall-clock
  timings, reused/computed point counts, python version).  Timing lives
  *only* here so the two result files stay comparable across executions.

**Sharded runs** (``--shard I/N``) additionally stamp both ``results.json``
and ``manifest.json`` with a ``shard`` block (index, count, covered index
range, full-grid point count); ``n_points`` counts the shard's own points.
An unsharded run's artifacts carry no ``shard`` block, which is exactly the
shape :mod:`repro.sweep.merge` reconstructs when stitching shards together.
"""

from __future__ import annotations

import csv
import json
import platform
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.sweep.campaign import CampaignSpec, ShardSpec
from repro.sweep.execute import CampaignResult, PointResult

#: Bump when the shape of results.json / results.csv / manifest.json changes.
SCHEMA_VERSION = 1

RESULTS_JSON = "results.json"
RESULTS_CSV = "results.csv"
MANIFEST_JSON = "manifest.json"


def point_record(result: PointResult) -> Dict[str, object]:
    """The deterministic JSON record of one point (no timing)."""
    return {
        "index": result.index,
        "scenario": result.scenario,
        "horizon_cycles": result.horizon_cycles,
        "seed": result.seed,
        "params": dict(result.params),
        "stats": dict(result.stats),
        "activity": dict(result.activity),
        "power_uw": dict(result.power_uw),
        "area_kge": dict(result.area_kge),
    }


def shard_record(result: CampaignResult) -> Optional[Dict[str, object]]:
    """The ``shard`` block stamped into sharded artifacts (None when the
    execution covered the whole grid)."""
    if result.shard is None:
        return None
    start, stop = result.shard.bounds(result.points_total)
    return {
        "index": result.shard.index,
        "count": result.shard.count,
        "start": start,
        "stop": stop,
        "points_total": result.points_total,
    }


def results_payload(result: CampaignResult) -> Dict[str, object]:
    """The deterministic results.json payload for one campaign execution.

    A sharded execution adds a ``shard`` block; an unsharded one emits
    exactly the pre-shard schema, byte for byte.
    """
    payload = {
        "schema_version": SCHEMA_VERSION,
        "campaign": result.campaign,
        "scenario": result.scenario,
        "n_points": result.n_points,
        "points": [point_record(point) for point in result.points],
    }
    shard = shard_record(result)
    if shard is not None:
        payload["shard"] = shard
    return payload


def manifest_payload(spec: CampaignSpec, result: CampaignResult) -> Dict[str, object]:
    """The manifest.json payload (reproducibility + execution record).

    ``spec_hash`` is the campaign-identity digest ``--resume`` validates
    before reusing any stored point (see :mod:`repro.sweep.resume`).
    """
    from repro.sweep.resume import spec_hash

    payload = {
        "schema_version": SCHEMA_VERSION,
        "spec_hash": spec_hash(spec),
        "campaign": {
            "name": spec.name,
            "description": spec.description,
            "scenario": spec.scenario,
            "grid": {axis: list(values) for axis, values in spec.grid.items()},
            # The manifest is dumped with sorted keys, which would scramble
            # the grid's axis order — but axis order *is* campaign identity
            # (row-major expansion numbers the points with it).  Record it
            # explicitly so the spec can be reconstructed exactly
            # (resume.spec_from_manifest, sweep merge).
            "axis_order": list(spec.grid),
            "base_seed": spec.base_seed,
            "dense": spec.dense,
            "seed_scheme": "sha256(name:base_seed:index)[:4 bytes]",
        },
        "n_points": result.n_points,
        "artifacts": [RESULTS_JSON, RESULTS_CSV],
        "execution": {
            "jobs": result.jobs,
            "chunk": result.chunk,
            "reused_points": result.n_reused,
            "computed_points": result.n_computed,
            "batched_points": result.batched_points,
            # Why points that could have batched did not (empty when every
            # executed point batched, or when batching was off): audit trail
            # for a campaign that quietly lost its shared-prefix execution.
            "batch_fallbacks": [dict(record) for record in result.batch_fallbacks],
            # Points whose execution raised: structured records (label,
            # params, error, traceback) so a failure is triagable from the
            # artifacts alone.  Failed points are absent from results.json —
            # downstream (merge --heal, the fleet) treats them as missing
            # coverage and re-runs exactly those points.
            "failed_points": [dict(record) for record in result.failed_points],
            # The batch kernel loop that produced the batched points
            # (null when nothing ran batched); see repro.sim.backend.
            "backend": result.backend,
            "wall_seconds": result.wall_seconds,
            "point_wall_seconds": {
                str(point.index): point.wall_seconds for point in result.points
            },
            "python_version": platform.python_version(),
        },
    }
    if result.telemetry is not None:
        # Telemetry (phase profile, metrics registry, trace pointer) lives
        # only in the manifest: results.json/results.csv must stay
        # byte-identical whether a run was traced/profiled or not.
        payload["execution"]["telemetry"] = result.telemetry
    if result.cache is not None:
        # Warm-run provenance: the resolved --plan-cache path plus summed
        # hit/miss/write/error totals (and any swallowed corruption notes).
        # Manifest-only, like telemetry: the cache changes wall-clock, never
        # the comparable payload, so results.json/csv stay byte-identical
        # between cold and warm runs.
        payload["execution"]["cache"] = result.cache
    shard = shard_record(result)
    if shard is not None:
        payload["shard"] = shard
    return payload


def _csv_columns(result: CampaignResult) -> List[str]:
    param_keys = sorted({key for point in result.points for key in point.params})
    stat_keys = sorted({key for point in result.points for key in point.stats})
    power_keys = sorted({key for point in result.points for key in point.power_uw})
    area_keys = sorted({key for point in result.points for key in point.area_kge})
    return (
        ["index", "scenario", "horizon_cycles", "seed"]
        + [f"param.{key}" for key in param_keys]
        + [f"stat.{key}" for key in stat_keys]
        + [f"power_uw.{key}" for key in power_keys]
        + [f"area_kge.{key}" for key in area_keys]
    )


def _csv_cell(value: object) -> object:
    # csv renders True/False; normalise to 0/1 so downstream numeric parsing
    # of stat columns (e.g. ``stat.recovered``) keeps working.
    if isinstance(value, bool):
        return int(value)
    return value


def write_results_csv(result: CampaignResult, path: Path) -> None:
    """Write the per-point CSV table."""
    columns = _csv_columns(result)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(columns)
        for point in result.points:
            row = []
            for column in columns:
                if column == "index":
                    row.append(point.index)
                elif column == "scenario":
                    row.append(point.scenario)
                elif column == "horizon_cycles":
                    row.append(point.horizon_cycles)
                elif column == "seed":
                    row.append(point.seed)
                else:
                    namespace, _, key = column.partition(".")
                    source = {
                        "param": point.params,
                        "stat": point.stats,
                        "power_uw": point.power_uw,
                        "area_kge": point.area_kge,
                    }[namespace]
                    row.append(_csv_cell(source.get(key, "")))
            writer.writerow(row)


def shard_dirname(shard: "ShardSpec") -> str:
    """The shard-qualified artifact subdirectory name a sharded CLI run
    nests under the campaign directory, so shard slices never overwrite the
    campaign-level (full or merged) artifacts: ``shard-I-of-N`` for balanced
    shards, ``shard-I-of-N-span-START-STOP`` for explicit-range shards (the
    span is part of the identity — two cuts sharing an index must not
    clobber each other's artifacts)."""
    if shard.span is not None:
        start, stop = shard.span
        return f"shard-{shard.index}-of-{shard.count}-span-{start}-{stop}"
    return f"shard-{shard.index}-of-{shard.count}"


def write_artifacts(
    spec: CampaignSpec, result: CampaignResult, out_dir: Path, subdir: Optional[str] = None
) -> Dict[str, Path]:
    """Write all three artifacts under ``out_dir / spec.name [/ subdir]``;
    return paths.  ``subdir`` is how the CLI keeps a shard's artifacts
    (``shard-I-of-N``) from clobbering campaign-level ones."""
    campaign_dir = Path(out_dir) / spec.name
    if subdir is not None:
        campaign_dir = campaign_dir / subdir
    campaign_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "results_json": campaign_dir / RESULTS_JSON,
        "results_csv": campaign_dir / RESULTS_CSV,
        "manifest_json": campaign_dir / MANIFEST_JSON,
    }
    # The write phase must land in the manifest it is part of, so it covers
    # the two result files only; the manifest dump itself goes untimed.
    write_start = time.perf_counter()
    paths["results_json"].write_text(
        json.dumps(results_payload(result), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    write_results_csv(result, paths["results_csv"])
    if result.telemetry is not None:
        profile = result.telemetry.setdefault("profile", {})
        profile["write"] = profile.get("write", 0.0) + (time.perf_counter() - write_start)
    paths["manifest_json"].write_text(
        json.dumps(manifest_payload(spec, result), indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return paths
