"""Sweep campaigns: a scenario crossed with a parameter grid.

A :class:`CampaignSpec` names one scenario from
:mod:`repro.workloads.registry` and a grid of parameter axes.
:func:`expand_campaign` turns the spec into the ordered list of
:class:`SweepPoint` instances the executor shards across processes:

* the reserved axis ``horizon_cycles`` sweeps the simulated horizon (when
  absent, the scenario's default horizon is the single value);
* every other axis must be a parameter the scenario declares in
  :attr:`~repro.workloads.registry.ScenarioSpec.params`;
* points are enumerated in row-major order over the axes as written in the
  grid, so point indices — and therefore artifacts — are stable across
  executions, process counts, and machines.

For multi-host distribution, a :class:`ShardSpec` (``--shard I/N`` on the
CLI) deterministically partitions the expanded point list into ``N``
contiguous index ranges; because points are keyed by index, the shards'
artifacts merge back (:mod:`repro.sweep.merge`) into exactly the single-host
run.

Every point carries a **deterministic seed** derived from the campaign name,
the campaign's base seed, and the point's index (:func:`derive_point_seed`).
Scenarios that declare a ``seed`` parameter receive it automatically — but
only when the grid sweeps no other scenario parameter and does not pin
``seed`` itself, because seed-aware scenarios may treat the seed and
explicit parameters as mutually exclusive (watchdog-recovery does).  That is
how the fault-injection campaigns stay reproducible point by point.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.workloads.registry import ScenarioSpec, scenario

#: Grid axis that sweeps the simulated horizon rather than a scenario param.
HORIZON_AXIS = "horizon_cycles"


@dataclass(frozen=True)
class CampaignSpec:
    """One sweep campaign: a scenario name plus a parameter grid."""

    name: str
    description: str
    scenario: str
    #: Axis name -> tuple of values.  ``horizon_cycles`` is reserved for the
    #: simulated horizon; all other axes are scenario parameters.
    grid: Mapping[str, Tuple[object, ...]]
    base_seed: int = 0xC0FFEE
    #: Run every point under the legacy dense kernel (A/B studies only).
    dense: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a campaign needs a non-empty name")
        if not self.grid:
            raise ValueError(f"campaign {self.name!r}: the grid needs at least one axis")
        frozen: Dict[str, Tuple[object, ...]] = {}
        for axis, values in self.grid.items():
            values = tuple(values)
            if not values:
                raise ValueError(f"campaign {self.name!r}: axis {axis!r} has no values")
            frozen[axis] = values
        object.__setattr__(self, "grid", frozen)

    @property
    def n_points(self) -> int:
        """How many points the grid expands to."""
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total


@dataclass(frozen=True)
class SweepPoint:
    """One fully resolved run of a campaign."""

    index: int
    campaign: str
    scenario: str
    horizon_cycles: int
    dense: bool
    params: Mapping[str, object] = field(default_factory=dict)
    seed: int = 0


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a campaign for multi-host distribution: shard ``index``
    of ``count`` **contiguous index ranges** of the expanded point list.

    Contiguous ranges (rather than striding) keep each shard's artifacts in
    row-major order, so merging is a concatenation and every validation rule
    in :mod:`repro.sweep.merge` is a statement about index intervals.

    Two cut geometries share this one type:

    * the balanced form (``span is None``, CLI ``I/N``) partitions the grid
      into equal-as-possible ranges purely from the index count — what a
      human distributes by hand across N hosts;
    * the explicit form (CLI ``I/N@START:STOP``) pins the exact half-open
      range ``[START, STOP)`` this shard covers, which is how the fleet
      orchestrator (:mod:`repro.fleet`) expresses **cost-weighted** cuts and
      grouped heal ranges while still riding the ordinary ``--shard``
      execution path (``index``/``count`` remain the shard's position in its
      fleet cut, so artifact directory names stay unique and stable).
    """

    index: int
    count: int
    #: Explicit half-open index range overriding the balanced cut; validated
    #: against the concrete grid size in :meth:`bounds`.
    span: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be at least 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index} "
                f"(shards are zero-based: the last of {self.count} is "
                f"{self.count - 1}/{self.count})"
            )
        if self.span is not None:
            try:
                start, stop = (int(edge) for edge in self.span)
            except (TypeError, ValueError):
                raise ValueError(f"shard span must be a (start, stop) pair, got {self.span!r}") from None
            if not 0 <= start <= stop:
                raise ValueError(f"shard span must satisfy 0 <= start <= stop, got [{start}, {stop})")
            object.__setattr__(self, "span", (start, stop))

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI forms ``I/N`` (balanced, e.g. ``0/3``) and
        ``I/N@START:STOP`` (explicit range, e.g. ``2/8@12:19``)."""
        spec_text, at, span_text = text.partition("@")
        index_text, sep, count_text = spec_text.partition("/")
        try:
            if not sep:
                raise ValueError
            index, count = int(index_text), int(count_text)
            span = None
            if at:
                start_text, colon, stop_text = span_text.partition(":")
                if not colon:
                    raise ValueError
                span = (int(start_text), int(stop_text))
        except ValueError:
            raise ValueError(
                f"shard must look like I/N (e.g. 1/4) or I/N@START:STOP (e.g. 2/8@12:19), got {text!r}"
            ) from None
        try:
            return cls(index=index, count=count, span=span)
        except ValueError as exc:
            raise ValueError(f"shard {text!r}: {exc}") from None

    def bounds(self, n_points: int) -> Tuple[int, int]:
        """Half-open index range ``[start, stop)`` this shard covers.

        Balanced partition: every shard gets ``n_points // count`` points and
        the first ``n_points % count`` shards one extra, with the union of
        all shards exactly ``range(n_points)`` and no overlap.  A shard may
        be empty when there are fewer points than shards.  An explicit
        ``span`` overrides the balanced cut and must fit the grid.
        """
        if n_points < 0:
            raise ValueError(f"n_points must be non-negative, got {n_points}")
        if self.span is not None:
            start, stop = self.span
            if stop > n_points:
                raise ValueError(
                    f"shard {self} covers indices [{start}, {stop}) but the "
                    f"campaign expands to only {n_points} points"
                )
            return self.span
        return (
            self.index * n_points // self.count,
            (self.index + 1) * n_points // self.count,
        )

    def select(self, points: Sequence[SweepPoint]) -> List[SweepPoint]:
        """The sub-list of ``points`` this shard executes."""
        start, stop = self.bounds(len(points))
        return list(points[start:stop])

    def __str__(self) -> str:
        if self.span is not None:
            return f"{self.index}/{self.count}@{self.span[0]}:{self.span[1]}"
        return f"{self.index}/{self.count}"


def derive_point_seed(campaign: str, base_seed: int, index: int) -> int:
    """Deterministic 32-bit seed for point ``index`` of ``campaign``.

    Hash-based (not ``base_seed + index``) so neighbouring points get
    uncorrelated streams and renaming a campaign reshuffles every seed.
    """
    key = f"{campaign}:{base_seed}:{index}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(key).digest()[:4], "big")


def expand_campaign(spec: CampaignSpec) -> List[SweepPoint]:
    """Expand ``spec`` into its ordered, seeded list of sweep points.

    Raises ``KeyError`` for an unknown scenario and ``ValueError`` for grid
    axes the scenario does not accept, so ``--dry-run`` catches configuration
    mistakes before any process is forked.
    """
    scenario_spec: ScenarioSpec = scenario(spec.scenario)
    axes = list(spec.grid.items())
    param_axes = [axis for axis, _ in axes if axis != HORIZON_AXIS]
    unknown = sorted(set(param_axes) - set(scenario_spec.params))
    if unknown:
        accepted = ", ".join(scenario_spec.params) or "<none>"
        raise ValueError(
            f"campaign {spec.name!r}: scenario {spec.scenario!r} does not accept "
            f"grid axis(es) {unknown}; accepted: {accepted}"
        )
    # Auto-inject the point seed only for pure seed/horizon sweeps: scenarios
    # may treat the seed and explicit parameters as mutually exclusive, and a
    # conflict must not surface as a mid-campaign worker crash that --dry-run
    # never saw.
    inject_seed = "seed" in scenario_spec.params and "seed" not in spec.grid and not param_axes

    points: List[SweepPoint] = []
    for index, combination in enumerate(itertools.product(*(values for _, values in axes))):
        values = dict(zip((axis for axis, _ in axes), combination))
        horizon = values.pop(HORIZON_AXIS, scenario_spec.default_horizon_cycles)
        if not isinstance(horizon, int) or horizon < 1:
            raise ValueError(
                f"campaign {spec.name!r}: horizon_cycles values must be positive ints, got {horizon!r}"
            )
        seed = derive_point_seed(spec.name, spec.base_seed, index)
        if inject_seed:
            values["seed"] = seed
        points.append(
            SweepPoint(
                index=index,
                campaign=spec.name,
                scenario=spec.scenario,
                horizon_cycles=horizon,
                dense=spec.dense,
                params=values,
                seed=seed,
            )
        )
    return points


def grid_from_lists(**axes: Sequence[object]) -> Dict[str, Tuple[object, ...]]:
    """Convenience: build a grid mapping from keyword sequences."""
    return {axis: tuple(values) for axis, values in axes.items()}
