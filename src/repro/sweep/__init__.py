"""repro.sweep — parameterized scenario sweeps over the event-driven kernel.

A **campaign** (:class:`~repro.sweep.campaign.CampaignSpec`) crosses one
scenario from :mod:`repro.workloads.registry` with a parameter grid —
horizons, clock ratios, duty cycles, fault-injection seeds.  The executor
(:func:`~repro.sweep.execute.execute_campaign`) shards the expanded run
matrix across a process pool with deterministic per-point seeding, and the
artifacts layer (:func:`~repro.sweep.artifacts.write_artifacts`) aggregates
each point's stats, activity counters, and power/area model outputs into
structured JSON + CSV under ``results/sweeps/``, with a campaign manifest
for reproducibility.

CLI front end: ``python -m repro.run sweep <campaign> [--jobs N] [--chunk K]
[--resume] [--shard I/N]``.  ``--chunk`` batches points into per-worker
chunks (auto-sized by default), ``--resume`` reuses points already present
in ``results.json`` under an identical campaign manifest
(:mod:`repro.sweep.resume`), and ``--shard I/N`` executes one contiguous
index range of the grid for multi-host distribution — the per-host artifact
directories merge back into the single-host artifacts with
``python -m repro.run sweep merge <dir>...`` (:mod:`repro.sweep.merge`).
``--trace-out``/``--profile`` record telemetry (:mod:`repro.obs`) into the
manifest and a Chrome trace file without perturbing the result artifacts;
``python -m repro.run stats <dir>`` renders it back.
Full documentation: ``docs/sweeps.md`` and ``docs/observability.md``.
"""

from repro.sweep.artifacts import (
    SCHEMA_VERSION,
    manifest_payload,
    point_record,
    results_payload,
    shard_dirname,
    write_artifacts,
)
from repro.sweep.campaign import (
    CampaignSpec,
    ShardSpec,
    SweepPoint,
    derive_point_seed,
    expand_campaign,
    grid_from_lists,
)
from repro.sweep.campaigns import (
    campaign,
    campaign_names,
    campaigns,
    register_campaign,
)
from repro.sweep.execute import (
    CampaignResult,
    PointResult,
    auto_chunk,
    batch_groups,
    execute_campaign,
    run_point,
    run_point_groups,
)
from repro.sweep.merge import (
    HEAL_JSON,
    IncompleteCoverageError,
    MergedCampaign,
    MergeError,
    ShardArtifacts,
    load_shard_dir,
    merge_shard_traces,
    merge_shards,
    plan_heal,
    validate_shard_dir,
    write_heal_plan,
    write_merged_artifacts,
)
from repro.sweep.resume import (
    ResumeError,
    load_artifact_json,
    load_point_walls,
    load_reusable_results,
    point_result_from_record,
    spec_from_manifest,
    spec_hash,
)

__all__ = [
    "CampaignResult",
    "CampaignSpec",
    "HEAL_JSON",
    "IncompleteCoverageError",
    "MergeError",
    "MergedCampaign",
    "PointResult",
    "ResumeError",
    "SCHEMA_VERSION",
    "ShardArtifacts",
    "ShardSpec",
    "SweepPoint",
    "auto_chunk",
    "batch_groups",
    "campaign",
    "campaign_names",
    "campaigns",
    "derive_point_seed",
    "execute_campaign",
    "expand_campaign",
    "grid_from_lists",
    "load_artifact_json",
    "load_point_walls",
    "load_reusable_results",
    "load_shard_dir",
    "manifest_payload",
    "merge_shard_traces",
    "merge_shards",
    "plan_heal",
    "point_record",
    "point_result_from_record",
    "register_campaign",
    "results_payload",
    "run_point",
    "run_point_groups",
    "shard_dirname",
    "spec_from_manifest",
    "spec_hash",
    "validate_shard_dir",
    "write_artifacts",
    "write_heal_plan",
    "write_merged_artifacts",
]
