"""Sweep execution: run every point of a campaign, serially or sharded.

The unit of work is one :class:`~repro.sweep.campaign.SweepPoint`.
:func:`run_point` runs the scenario through the registry's instrumented
entry point and post-processes the SoC into the structured record the
artifacts layer serialises: scalar stats, flattened activity counters, the
Figure 5 power breakdown, and the Figure 6a area breakdown.

:func:`execute_campaign` fans the points out:

* ``jobs == 1`` (or one usable core, or a single chunk) — plain serial loop
  in this process (the reference path);
* otherwise — a ``multiprocessing`` pool over **chunks** of points.  Points
  are batched into per-worker chunks (auto-sized to a few chunks per worker,
  overridable via ``chunk=``/``--chunk``) so small campaigns amortise the
  pickling/dispatch overhead that used to make ``--jobs 2`` *slower* than
  serial; worker processes are additionally capped at the machine's core
  count, because oversubscribing a small host only adds context-switching.

Results are keyed and re-sorted by point index, and every per-point output is
a pure function of the point itself (wall-clock timing is kept out of the
comparable payload), so the aggregated results of a sharded run are
**byte-identical** to the serial run — for any ``jobs`` and any ``chunk`` —
the property ``tests/sweep/test_execute.py`` pins.

**Incremental re-execution** (:func:`execute_campaign` with ``reuse=``):
records recovered from a previous run's ``results.json`` (see
:mod:`repro.sweep.resume`) are dropped into place without re-running their
points, which is how ``python -m repro.run sweep <campaign> --resume`` skips
work that already exists under an identical campaign manifest.

**Multi-host distribution** (:func:`execute_campaign` with ``shard=``): a
:class:`~repro.sweep.campaign.ShardSpec` restricts execution to one
contiguous index range of the expanded grid.  Sharding composes with
``jobs``/``chunk`` (the shard's points still fan out over the local pool)
and with ``reuse`` (reusable indices outside the shard are simply never
consulted), and the shard's artifacts record the slice so
:mod:`repro.sweep.merge` can validate coverage when stitching shards back
together.

**Batched execution** (:func:`execute_campaign` with ``batch=``): scenarios
that register a batch-prepare hook (see
:mod:`repro.workloads.registry`) have their points grouped by parameters —
points that differ only in ``horizon_cycles`` share one prepared simulation
— and every group of a chunk is advanced together by a
:class:`~repro.sim.batch.BatchSimulator`, which interleaves the instances
over span boundaries under one shared schedule plan.  Each point's record
is snapshotted the instant its horizon is reached, through exactly the same
post-processing as :func:`run_point`, so batched artifacts are
byte-identical to per-instance ones (``tests/sweep/test_batch.py`` pins
this for every registry campaign).  ``batch=None`` auto-enables batching
whenever the scenario supports it; batching composes with ``jobs``/
``chunk`` (groups are packed whole into chunks), ``shard``, and ``reuse``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.area.model import PelsAreaModel
from repro.cache.plan_cache import group_cache_key
from repro.obs import tracing
from repro.obs.metrics import KERNEL_STAT_KEYS, CounterSet, MetricsRegistry
from repro.obs.profile import PhaseTimer
from repro.power.model import PowerModel
from repro.sweep.campaign import CampaignSpec, ShardSpec, SweepPoint, expand_campaign
from repro.workloads.registry import (
    BatchUnsupported,
    ScenarioOutcome,
    run_scenario_instrumented,
    scenario,
)


@dataclass
class PointResult:
    """Everything one sweep point produced (deterministic fields only,
    except ``wall_seconds`` which the artifacts layer routes to the manifest
    rather than the comparable results payload)."""

    index: int
    scenario: str
    horizon_cycles: int
    params: Dict[str, object]
    seed: int
    stats: Dict[str, object] = field(default_factory=dict)
    #: Activity counters flattened to ``"component.event" -> count``.
    activity: Dict[str, int] = field(default_factory=dict)
    #: Figure 5 component powers in µW (plus ``Total``); empty when the
    #: scenario exposes no SoC.
    power_uw: Dict[str, float] = field(default_factory=dict)
    #: Figure 6a area components in kGE (plus ``Total``); empty without PELS.
    area_kge: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: True when the record was recovered from a previous run's artifacts
    #: (``--resume``) instead of being executed in this process.
    reused: bool = False


@dataclass
class CampaignResult:
    """All point results of one campaign execution."""

    campaign: str
    scenario: str
    points: List[PointResult]
    jobs: int
    wall_seconds: float
    #: Chunk size the pool dispatch used (1 when serial).
    chunk: int = 1
    #: The slice of the campaign this execution covered (None = the whole
    #: grid); see :class:`~repro.sweep.campaign.ShardSpec`.
    shard: Optional[ShardSpec] = None
    #: Size of the *full* expanded grid (equals ``n_points`` when unsharded).
    points_total: int = 0
    #: How many points were executed through the batched (shared-prefix)
    #: executor rather than the per-instance path; recorded in the manifest.
    batched_points: int = 0
    #: Why points that could have batched did not: one record per fallback
    #: (``{"reason": ..., "points": [indices]}``), recorded in the manifest
    #: next to ``batched_points`` and surfaced in the CLI summary.
    batch_fallbacks: List[Dict[str, object]] = field(default_factory=list)
    #: The resolved batch backend name (``"python"``/``"numpy"``; ``None``
    #: when nothing ran batched).
    backend: Optional[str] = None
    #: Points whose execution raised: one structured record per failure
    #: (see :func:`_failed_record`), sorted by index.  Failed points are
    #: absent from ``points`` — their records never enter the comparable
    #: payload — so downstream they look exactly like missing coverage,
    #: which is what lets ``merge --heal`` / the fleet re-run them.
    failed_points: List[Dict[str, object]] = field(default_factory=list)
    #: Campaign-level telemetry (phase profile + metrics registry), present
    #: only when the execution ran with ``trace=``/``profile=``; the
    #: artifacts layer embeds it as the manifest's ``execution.telemetry``.
    telemetry: Optional[Dict[str, object]] = None
    #: Chrome trace events buffered by worker-owned tracers (``trace=True``
    #: under a pool).  The caller combines these with its own installed
    #: tracer's buffer (which holds the serial/parent-side events) into one
    #: exported document.
    trace_events: List[Dict[str, object]] = field(default_factory=list)
    #: Events the worker tracers dropped at their buffer caps.
    trace_dropped: int = 0
    #: Plan-cache provenance (``--plan-cache``): the resolved cache path
    #: plus hit/miss/write/error totals summed across workers and any
    #: swallowed-failure notes; ``None`` when the execution ran without a
    #: cache.  The artifacts layer embeds it as ``execution.cache``.
    cache: Optional[Dict[str, object]] = None

    @property
    def n_points(self) -> int:
        """Number of executed points."""
        return len(self.points)

    @property
    def n_reused(self) -> int:
        """How many points were recovered from a previous run (``--resume``)."""
        return sum(1 for point in self.points if point.reused)

    @property
    def n_computed(self) -> int:
        """How many points were actually executed (not recovered)."""
        return self.n_points - self.n_reused

    @property
    def n_failed(self) -> int:
        """How many points raised instead of producing a record."""
        return len(self.failed_points)


ProgressCallback = Callable[[int, int, PointResult], None]


def _finalize_point(point: SweepPoint, outcome: ScenarioOutcome, wall: float) -> PointResult:
    """Derive one point's record from its scenario outcome.

    Shared by the per-instance path (:func:`run_point`, at end of run) and
    the batched path (:func:`run_point_groups`, at the instant the point's
    horizon is reached) — one code path, so the two modes cannot drift.
    """
    activity: Dict[str, int] = {}
    power_uw: Dict[str, float] = {}
    area_kge: Dict[str, float] = {}
    soc = outcome.soc
    if soc is not None:
        snapshot = soc.activity.as_dict()
        activity = {f"{component}.{event}": count for (component, event), count in sorted(snapshot.items())}
        # Average over the cycles actually simulated: condition-driven
        # scenarios (e.g. threshold-pels) may stop well short of the
        # requested horizon, and normalising over the request would dilute
        # every dynamic-power column.
        breakdown = PowerModel().estimate(
            snapshot,
            window_cycles=max(soc.simulator.current_cycle, 1),
            frequency_hz=soc.frequency_hz,
            scenario=point.scenario,
            pels_present=soc.pels is not None,
        )
        power_uw = breakdown.as_dict()
        if soc.pels is not None and soc.config.pels_config is not None:
            area_kge = PelsAreaModel().estimate(soc.config.pels_config).as_dict()

    return PointResult(
        index=point.index,
        scenario=point.scenario,
        horizon_cycles=point.horizon_cycles,
        params=dict(point.params),
        seed=point.seed,
        stats=dict(outcome.stats),
        activity=activity,
        power_uw=power_uw,
        area_kge=area_kge,
        wall_seconds=wall,
    )


def run_point(point: SweepPoint) -> PointResult:
    """Execute one sweep point and derive its power/area records."""
    start = time.perf_counter()
    outcome = run_scenario_instrumented(
        point.scenario,
        horizon_cycles=point.horizon_cycles,
        dense=point.dense,
        params=point.params,
    )
    return _finalize_point(point, outcome, time.perf_counter() - start)


@dataclass
class ChunkOutcome:
    """What one pool task produced: the chunk's point records plus the
    batching bookkeeping (how many points actually shared a prepared
    simulation, and why any group fell back to per-instance execution).
    Under ``trace=``/``profile=`` the task additionally ships its telemetry
    home: worker-summed phase seconds, summed kernel stats, batch rounds,
    and (when this process owned its tracer) the buffered trace events."""

    results: List[PointResult] = field(default_factory=list)
    fallbacks: List[Dict[str, object]] = field(default_factory=list)
    #: Structured records of points whose execution raised (one per failed
    #: point; see :func:`_failed_record`).  A failing point must not poison
    #: the chunk — the rest of the chunk's results still ship home.
    failures: List[Dict[str, object]] = field(default_factory=list)
    batched_points: int = 0
    #: Worker-side per-phase wall seconds (empty when telemetry is off).
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    #: Summed ``kernel_stats`` across the chunk's simulations.
    kernel_stats: Dict[str, int] = field(default_factory=dict)
    #: Batch scheduling rounds this chunk executed (batched path only).
    rounds: int = 0
    #: Buffered Chrome trace events from a worker-owned tracer (empty when
    #: the parent owns the tracer — serial mode — or tracing is off).
    trace_events: List[Dict[str, object]] = field(default_factory=list)
    #: Events the worker-owned tracer dropped at its buffer cap.
    dropped_events: int = 0
    #: Plan-cache hit/miss/write/error counts for this chunk (empty when the
    #: task ran without ``plan_cache``); summed into ``execution.cache``.
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Swallowed cache-integrity failures ("<entry>: <why>"), surfaced in
    #: the manifest so silent cold-start fallbacks stay visible.
    cache_notes: List[str] = field(default_factory=list)


class _ChunkTelemetry:
    """One chunk task's telemetry accumulators (phase timer, kernel-stat
    totals, batch rounds); ``None`` stands for telemetry-off everywhere."""

    __slots__ = ("timer", "kernel", "rounds")

    def __init__(self) -> None:
        self.timer = PhaseTimer()
        self.kernel = CounterSet(KERNEL_STAT_KEYS)
        self.rounds = 0


def _chunk_scope(trace: bool, profile: bool):
    """Set up one chunk task's telemetry: accumulators plus tracer ownership.

    A pool worker owns (installs and later drains) its own tracer; in serial
    mode the already-installed parent tracer is used directly and its events
    stay with the parent.  The pid check distinguishes the two: a forked
    worker inherits the parent's tracer object, whose pid no longer matches.
    """
    tele = _ChunkTelemetry() if (trace or profile) else None
    tracer = tracing.TRACER
    owned = False
    if trace and (tracer is None or tracer.pid != os.getpid()):
        tracer = tracing.install()
        owned = True
    return tele, tracer, owned


def _finish_chunk(
    outcome: ChunkOutcome, tele: Optional[_ChunkTelemetry], owned_tracer
) -> ChunkOutcome:
    """Stamp a chunk task's telemetry onto its outcome before it ships."""
    if tele is not None:
        outcome.phase_seconds = {name: s for name, s in tele.timer.as_dict().items() if s > 0.0}
        outcome.kernel_stats = tele.kernel.snapshot()
        outcome.rounds = tele.rounds
    if owned_tracer is not None:
        outcome.trace_events = owned_tracer.drain()
        outcome.dropped_events = owned_tracer.dropped
    return outcome


def _point_task(point: SweepPoint, tele: Optional[_ChunkTelemetry]) -> PointResult:
    """:func:`run_point` with phase attribution, kernel-stat absorption, and
    a ``sweep.point`` trace span (per-instance points report their scenario
    build inside ``simulate``; only the batched path has a distinct
    ``prepare``)."""
    tracer = tracing.TRACER
    if tele is None and tracer is None:
        return run_point(point)
    start_ns = tracer.now_ns() if tracer is not None else 0
    start = time.perf_counter()
    outcome = run_scenario_instrumented(
        point.scenario,
        horizon_cycles=point.horizon_cycles,
        dense=point.dense,
        params=point.params,
    )
    sim_seconds = time.perf_counter() - start
    result = _finalize_point(point, outcome, sim_seconds)
    if tele is not None:
        tele.timer.add("simulate", sim_seconds)
        tele.timer.add("finalize", time.perf_counter() - start - sim_seconds)
        if outcome.soc is not None:
            tele.kernel.add(outcome.soc.simulator.kernel_stats)
    if tracer is not None:
        tracer.event(
            "sweep.point",
            "sweep",
            start_ns,
            tracer.now_ns() - start_ns,
            {"index": point.index, "scenario": point.scenario, "horizon": point.horizon_cycles},
        )
    return result


def _failed_record(point: SweepPoint, exc: BaseException) -> Dict[str, object]:
    """The structured manifest record of one point whose execution raised.

    Everything a human (or the fleet) needs to reproduce and triage the
    failure without the worker's stderr: the point's identity (index, label,
    params, seed) plus the exception and its formatted traceback.
    """
    return {
        "index": point.index,
        "scenario": point.scenario,
        "label": f"{point.scenario}#{point.index}",
        "horizon_cycles": point.horizon_cycles,
        "params": dict(point.params),
        "seed": point.seed,
        "error": f"{type(exc).__name__}: {exc}",
        "traceback": "".join(traceback.format_exception(type(exc), exc, exc.__traceback__)),
    }


def _run_point_guarded(
    point: SweepPoint, outcome: ChunkOutcome, tele: Optional[_ChunkTelemetry]
) -> None:
    """Run one point, routing success to ``outcome.results`` and an exception
    to ``outcome.failures`` — a raising point must not poison the pool task
    (the chunk's other points, and the whole campaign with them, used to die
    with it)."""
    try:
        if tele is None and tracing.TRACER is None:
            outcome.results.append(run_point(point))
        else:
            outcome.results.append(_point_task(point, tele))
    except Exception as exc:
        outcome.failures.append(_failed_record(point, exc))


def run_points(points: Sequence[SweepPoint], trace: bool = False, profile: bool = False) -> ChunkOutcome:
    """Pool task: execute one chunk of points in order (per-instance)."""
    outcome = ChunkOutcome()
    if not (trace or profile) and tracing.TRACER is None:
        for point in points:
            _run_point_guarded(point, outcome, None)
        return outcome
    tele, tracer, owned = _chunk_scope(trace, profile)
    try:
        for point in points:
            _run_point_guarded(point, outcome, tele)
    finally:
        if owned:
            tracing.uninstall()
    return _finish_chunk(outcome, tele, tracer if owned else None)


# ------------------------------------------------------------------ batching


def batch_groups(points: Sequence[SweepPoint]) -> List[List[SweepPoint]]:
    """Group points that can share one prepared simulation.

    Points of the same scenario with identical parameters (and kernel) that
    differ only in ``horizon_cycles`` form one group: the simulation of the
    largest horizon passes through every smaller one, so a single instance
    serves the whole group.  Groups preserve first-occurrence order and each
    group is sorted by horizon.
    """
    grouped: Dict[Tuple, List[SweepPoint]] = {}
    for point in points:
        key = (point.scenario, point.dense, tuple(sorted(point.params.items())))
        grouped.setdefault(key, []).append(point)
    return [sorted(group, key=lambda point: point.horizon_cycles) for group in grouped.values()]


def _fallback_record(group: Sequence[SweepPoint], reason: str) -> Dict[str, object]:
    """One manifest ``batch_fallbacks`` entry (deterministic fields only)."""
    return {"reason": reason, "points": [point.index for point in group]}


def _enroll_group(
    batch,
    group: Sequence[SweepPoint],
    results: List[PointResult],
    tele: Optional["_ChunkTelemetry"] = None,
    cache=None,
) -> Optional[Dict[str, float]]:
    """Prepare one shared-prefix group and register its snapshot stops.

    Returns the group's wall clock; the caller restamps it when the batch
    actually starts running so no group is charged another group's
    preparation time.  Raises :class:`BatchUnsupported` (from the scenario's
    batch-prepare hook) or :class:`SimulationError` (from enrollment) when
    the group cannot share a prepared instance — the caller falls back to
    per-instance execution for just that group.

    With a ``cache`` (:class:`~repro.cache.PlanCache`), every horizon that
    has an exact-match snapshot is served straight from the cache: the
    restore *is* the state at that horizon (a cold run's stop order is
    drives-then-snapshot, so the snapshot already contains the stop's drive
    effects), and its point records are finalized immediately at enrollment
    without simulating a single cycle.  Horizons without an exact snapshot
    are covered the classic way — one instance warm-started from the
    deepest snapshot below the shallowest of them (or a cold prepare),
    publishing fresh snapshots at every stop it reaches, which heals the
    missing entries for the next run.
    """
    first = group[0]
    spec = scenario(first.scenario)
    tracer = tracing.TRACER
    enroll_ns = tracer.now_ns() if tracer is not None else 0
    by_horizon: Dict[int, List[SweepPoint]] = {}
    for point in group:
        by_horizon.setdefault(point.horizon_cycles, []).append(point)
    horizons = sorted(by_horizon)
    prepared = None
    base = 0
    key = None
    pending = list(horizons)
    served: List[Tuple[int, object]] = []
    if cache is not None:
        key = group_cache_key(first.scenario, first.dense, dict(first.params), horizons)
        for horizon in reversed(horizons):
            restored = cache.lookup(key, horizon, exact=True)
            if restored is not None:
                served.append((horizon, restored.prepared))
                pending.remove(horizon)
        if pending:
            # ``pending[0]`` itself cannot be on disk (its exact probe just
            # missed), so the deepest usable base is strictly below it and
            # every pending stop stays at least one cycle out.
            restored = cache.lookup(key, pending[0])
            if restored is not None:
                prepared = restored.prepared
                base = restored.base_tick
    if pending and prepared is None:
        prepared = spec.batch_prepare(horizons, first.dense, **dict(first.params))
    # Wall-clock attribution under interleaving is approximate by nature:
    # each stop is charged the time since this instance's previous stop
    # (manifest diagnostics only — never part of the comparable payload).
    clock = {"last": time.perf_counter()}

    def finalize(instance, elapsed: int, points: Sequence[SweepPoint]) -> None:
        now = time.perf_counter()
        wall, clock["last"] = now - clock["last"], now
        outcome = instance.outcome(elapsed)
        for point in points:
            results.append(_finalize_point(point, outcome, wall))
        if tele is not None:
            tele.timer.add("finalize", time.perf_counter() - now)
        if cache is not None:
            publish_start = time.perf_counter()
            cache.publish(key, instance, elapsed)
            if tele is not None:
                tele.timer.add("cache", time.perf_counter() - publish_start)

    # Snapshot-served horizons finalize right now — BatchInstance stops must
    # be at least one cycle out, and these have nothing left to simulate.
    # Shallow-first keeps the (manifest-only) wall attribution in the same
    # order a cold run would charge it; results are re-sorted by index
    # anyway.
    for horizon, instance in sorted(served):
        finalize(instance, horizon, tuple(by_horizon[horizon]))

    if pending:
        # Merge the scenario's drive script (mid-run testbench interference,
        # e.g. watchdog-recovery's fault injection) into the stop schedule.
        # A drive sharing a cycle with a snapshot stop fires first — exactly
        # the standalone order (interfere, then keep running / observe).
        # Drives beyond the deepest pending horizon are dropped: the
        # instance never simulates past it (deeper horizons were served from
        # snapshots or not requested).  Drives at-or-before a restored base
        # already fired in the run that published the snapshot — their
        # effects are *in* the restored state — so replaying them would
        # double-apply.
        drives_by_cycle: Dict[int, List[Callable[[int], None]]] = {}
        for cycle, callback in prepared.drive_stops():
            if base < cycle <= pending[-1]:
                drives_by_cycle.setdefault(cycle, []).append(callback)

        def stop_at(horizon: int) -> Callable[[int], None]:
            drives = tuple(drives_by_cycle.pop(horizon, ()))
            points = tuple(by_horizon[horizon])

            def fire(elapsed: int) -> None:
                absolute = base + elapsed
                for drive in drives:
                    drive(absolute)
                finalize(prepared, absolute, points)

            return fire

        # Stop cycles are instance-relative (measured from enrollment); a
        # warm instance enrolls at ``base``, so every remaining absolute
        # cycle shifts down by it.
        stops = [(horizon - base, stop_at(horizon)) for horizon in pending]
        for cycle, callbacks in drives_by_cycle.items():

            def fire_drives(elapsed: int, drives=tuple(callbacks)) -> None:
                for drive in drives:
                    drive(base + elapsed)

            stops.append((cycle - base, fire_drives))
        batch.add(prepared.simulator, stops, label=f"{first.scenario}#{first.index}")
    elif tele is not None and served:
        # The whole group was served from snapshots; no simulator of its
        # enters the batch, so absorb kernel stats here instead of in the
        # caller's post-run sweep over ``batch.instances``.  Only the
        # deepest restore counts — it carries the group's fullest history,
        # and summing overlapping histories would inflate the counters.
        tele.kernel.add(served[0][1].simulator.kernel_stats)
    if tracer is not None:
        tracer.event(
            "sweep.enroll",
            "sweep",
            enroll_ns,
            tracer.now_ns() - enroll_ns,
            {
                "scenario": first.scenario,
                "points": len(group),
                "horizons": len(horizons),
                "warm_base": base,
            },
        )
    return clock


def run_point_groups(
    groups: Sequence[Sequence[SweepPoint]],
    backend: Optional[str] = None,
    trace: bool = False,
    profile: bool = False,
    plan_cache: Optional[str] = None,
) -> ChunkOutcome:
    """Pool task: execute one chunk of shared-prefix groups, batched.

    All of the chunk's instances advance through one
    :class:`~repro.sim.batch.BatchSimulator` — in lockstep over span
    boundaries, under one shared schedule plan, on the requested backend —
    and every point's record is snapshotted exactly when its horizon is
    reached.  A group whose batch-prepare hook declines
    (:class:`BatchUnsupported` — e.g. heterogeneous derived parameters) or
    whose enrollment fails runs per-instance inside this same task, with the
    reason recorded in the outcome's ``fallbacks``.  ``plan_cache`` (a
    directory path) warm-starts groups from published prepared-state
    snapshots and publishes new ones; see :mod:`repro.cache.plan_cache`.
    """
    from repro.sim.batch import BatchSimulator
    from repro.sim.simulator import SimulationError

    tele, tracer, owned = _chunk_scope(trace, profile)
    cache = None
    if plan_cache is not None:
        from repro.cache import PlanCache

        cache = PlanCache(plan_cache)
    try:
        batch = BatchSimulator(backend=backend)
        outcome = ChunkOutcome()
        results = outcome.results
        clocks = []
        enrolled: List[SweepPoint] = []
        for group in groups:
            try:
                if tele is None:
                    clocks.append(_enroll_group(batch, group, results, cache=cache))
                else:
                    with tele.timer.phase("prepare"):
                        clocks.append(
                            _enroll_group(batch, group, results, tele=tele, cache=cache)
                        )
            except (BatchUnsupported, SimulationError) as exc:
                outcome.fallbacks.append(_fallback_record(group, str(exc)))
                for point in group:
                    _run_point_guarded(point, outcome, tele)
            else:
                outcome.batched_points += len(group)
                enrolled.extend(group)
        # Restamp every group's clock at the common start line: enrollment
        # built the other groups' SoCs in between, and that cost must not
        # land on the first group's first stop.
        start = time.perf_counter()
        for clock in clocks:
            clock["last"] = start
        finalize_before = tele.timer.seconds["finalize"] if tele is not None else 0.0
        try:
            batch.run()
        except Exception as exc:
            # A mid-run batch failure loses only the enrolled points whose
            # horizons had not been snapshotted yet; everything already
            # snapshotted (and every fallback result) survives in ``results``.
            done = {result.index for result in results}
            lost = [point for point in enrolled if point.index not in done]
            outcome.failures.extend(_failed_record(point, exc) for point in lost)
            outcome.batched_points -= len(lost)
        if tele is not None:
            # The stop callbacks finalize point records mid-run; that time
            # is already charged to "finalize", so "simulate" gets the rest.
            run_wall = time.perf_counter() - start
            finalized = tele.timer.seconds["finalize"] - finalize_before
            tele.timer.add("simulate", max(run_wall - finalized, 0.0))
            tele.rounds += batch.rounds
            for instance in batch.instances:
                tele.kernel.add(instance.simulator.kernel_stats)
        if cache is not None:
            outcome.cache_stats = cache.counters.as_dict()
            outcome.cache_notes = list(cache.notes)
    finally:
        if owned:
            tracing.uninstall()
    return _finish_chunk(outcome, tele, tracer if owned else None)


def _chunked_groups(
    groups: Sequence[Sequence[SweepPoint]], chunk: int
) -> List[List[List[SweepPoint]]]:
    """Pack whole groups into chunks of roughly ``chunk`` points.

    Groups are never split: splitting one would sever the shared prefix and
    re-simulate it per fragment.  A group larger than ``chunk`` therefore
    becomes its own chunk.
    """
    chunks: List[List[List[SweepPoint]]] = []
    current: List[List[SweepPoint]] = []
    count = 0
    for group in groups:
        if current and count + len(group) > chunk:
            chunks.append(current)
            current, count = [], 0
        current.append(group)
        count += len(group)
    if current:
        chunks.append(current)
    return chunks


def auto_chunk(n_points: int, jobs: int) -> int:
    """Default chunk size: about four chunks per worker.

    Large enough to amortise dispatch/pickling on small campaigns, small
    enough that the unordered collection still load-balances points whose
    cost varies (horizon axes span orders of magnitude).
    """
    if jobs <= 1:
        return max(n_points, 1)
    return max(1, n_points // (jobs * 4))


def _chunked(points: Sequence[SweepPoint], chunk: int) -> List[List[SweepPoint]]:
    return [list(points[start : start + chunk]) for start in range(0, len(points), chunk)]


def execute_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    chunk: Optional[int] = None,
    reuse: Optional[Mapping[int, PointResult]] = None,
    shard: Optional[ShardSpec] = None,
    batch: Optional[bool] = None,
    backend: Optional[str] = None,
    trace: bool = False,
    profile: bool = False,
    plan_cache: Optional[str] = None,
) -> CampaignResult:
    """Run every point of ``spec`` and return the aggregated result.

    ``jobs`` is the requested number of worker processes (``1`` runs
    everything in this process; the effective pool is additionally capped at
    the core count and the chunk count).  ``chunk`` overrides the auto-sized
    per-worker batch.  ``reuse`` maps point indices to previously computed
    results (see :mod:`repro.sweep.resume`); those points are not re-run.
    ``shard`` restricts execution to one contiguous index range of the grid
    (see :class:`~repro.sweep.campaign.ShardSpec`); ``reuse`` entries outside
    the shard are ignored.  ``batch`` selects the batched (shared-prefix)
    executor: ``None`` auto-enables it when the scenario registers a
    batch-prepare hook, ``True`` requests it, ``False`` forces the
    per-instance path.  Groups (or whole scenarios) that cannot batch fall
    back to per-instance execution with the reason recorded in
    ``batch_fallbacks`` — never silently.  ``backend`` picks the batch
    kernel loop (``None``/``"auto"`` → numpy when importable, else the
    python reference; see :mod:`repro.sim.backend`); the resolved name is
    recorded on the result.  ``progress`` (if given) is called after each
    completed point with ``(completed, total, result)`` where ``total`` is
    the shard-local point count — note that under sharding or batching the
    completion *order* is nondeterministic even though the aggregated
    results are not.

    ``trace``/``profile`` turn on telemetry collection (``--trace-out`` /
    ``--profile``): the result gains a ``telemetry`` block (phase profile
    plus metrics registry) and, under ``trace``, the worker-buffered trace
    events.  Telemetry never touches the comparable payload — results are
    byte-identical with it on or off (``tests/sweep/test_telemetry.py``).

    ``plan_cache`` (``--plan-cache DIR``) points the batched path at a
    persistent prepared-state snapshot cache: groups warm-start from
    snapshots published by earlier runs (same campaign, another shard,
    another fleet worker) and publish their own at every horizon stop.
    The cache affects wall-clock only — warm artifacts are byte-identical
    to cold ones (``tests/sweep/test_plan_cache_sweep.py``) — and its
    hit/miss totals land in the result's ``cache`` block.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if chunk is not None and chunk < 1:
        raise ValueError("chunk must be at least 1")
    use_batch = batch is not False and scenario(spec.scenario).batch_prepare is not None
    backend_name: Optional[str] = None
    if use_batch:
        from repro.sim.backend import resolve_backend

        # Resolve up front: an explicit --backend numpy without numpy must
        # fail loudly before any point runs, and the workers must all use
        # the concrete backend the parent resolved (not re-resolve "auto").
        backend_name = resolve_backend(backend).name
    telemetry = trace or profile
    timer = PhaseTimer() if telemetry else None
    kernel_totals = CounterSet(KERNEL_STAT_KEYS) if telemetry else None
    campaign_tracer = tracing.TRACER
    campaign_ns = campaign_tracer.now_ns() if campaign_tracer is not None else 0
    if timer is not None:
        with timer.phase("expand"):
            all_points = expand_campaign(spec)
    else:
        all_points = expand_campaign(spec)
    points_total = len(all_points)
    points = shard.select(all_points) if shard is not None else all_points
    total = len(points)
    start = time.perf_counter()
    results: List[PointResult] = []
    fallbacks: List[Dict[str, object]] = []
    failed: List[Dict[str, object]] = []
    if reuse:
        results.extend(reuse[point.index] for point in points if point.index in reuse)
        points = [point for point in points if point.index not in reuse]
        for completed, result in enumerate(results, start=1):
            result.reused = True
            if progress is not None:
                progress(completed, total, result)
    if batch is not False and not use_batch and points:
        # The scenario has no batch-prepare hook at all: one campaign-level
        # fallback record covering every executed point.
        fallbacks.append(
            _fallback_record(
                points, f"scenario {spec.scenario!r} does not support batched execution"
            )
        )

    chunk_size = chunk if chunk is not None else auto_chunk(len(points), jobs)
    if use_batch:
        chunks: List = _chunked_groups(batch_groups(points), chunk_size)
        task: Callable = partial(
            run_point_groups,
            backend=backend_name,
            trace=trace,
            profile=profile,
            plan_cache=plan_cache,
        )
    else:
        chunks = _chunked(points, chunk_size)
        task = partial(run_points, trace=trace, profile=profile) if telemetry else run_points
    # Workers beyond the core count (or the chunk count) only add overhead;
    # the aggregated artifacts are independent of the pool geometry anyway.
    workers = min(jobs, os.cpu_count() or 1, len(chunks))
    batched_points = 0
    batch_rounds = 0
    trace_events: List[Dict[str, object]] = []
    trace_dropped = 0
    cache_totals: Dict[str, int] = {"hits": 0, "misses": 0, "writes": 0, "errors": 0}
    cache_notes: List[str] = []

    def collect(outcome: ChunkOutcome) -> None:
        nonlocal batched_points, batch_rounds, trace_dropped
        batched_points += outcome.batched_points
        fallbacks.extend(outcome.fallbacks)
        failed.extend(outcome.failures)
        if timer is not None:
            timer.merge(outcome.phase_seconds)
            kernel_totals.add(outcome.kernel_stats)
            batch_rounds += outcome.rounds
        trace_events.extend(outcome.trace_events)
        trace_dropped += outcome.dropped_events
        for name, value in outcome.cache_stats.items():
            cache_totals[name] = cache_totals.get(name, 0) + value
        cache_notes.extend(outcome.cache_notes)
        for result in outcome.results:
            results.append(result)
            if progress is not None:
                progress(len(results), total, result)

    if workers <= 1:
        for piece in chunks:
            collect(task(piece))
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            for outcome in pool.imap_unordered(task, chunks):
                collect(outcome)
    results.sort(key=lambda result: result.index)
    # Deterministic fallback/failure order regardless of pool completion order.
    fallbacks.sort(key=lambda record: record["points"])
    failed.sort(key=lambda record: record["index"])
    wall_seconds = time.perf_counter() - start
    cache_payload: Optional[Dict[str, object]] = None
    if plan_cache is not None:
        cache_payload = {"path": str(plan_cache)}
        cache_payload.update(cache_totals)
        cache_payload["notes"] = sorted(set(cache_notes))
    telemetry_payload: Optional[Dict[str, object]] = None
    if telemetry:
        registry = MetricsRegistry()
        registry.absorb_kernel_stats(kernel_totals)
        computed = sum(1 for result in results if not result.reused)
        registry.counter("sweep.points", {"kind": "computed"}).inc(computed)
        registry.counter("sweep.points", {"kind": "reused"}).inc(len(results) - computed)
        registry.counter("sweep.points", {"kind": "batched"}).inc(batched_points)
        registry.counter("sweep.points", {"kind": "failed"}).inc(len(failed))
        registry.counter("batch.rounds").inc(batch_rounds)
        if plan_cache is not None:
            registry.counter("cache.hit").inc(cache_totals["hits"])
            registry.counter("cache.miss").inc(cache_totals["misses"])
            registry.counter("cache.write").inc(cache_totals["writes"])
            registry.counter("cache.error").inc(cache_totals["errors"])
        walls = registry.histogram("sweep.point_wall_seconds")
        for result in results:
            if not result.reused:
                walls.observe(result.wall_seconds)
        telemetry_payload = {
            "enabled": {"trace": trace, "profile": profile},
            "profile": timer.as_dict(),
            "metrics": registry.as_dict(),
        }
    if campaign_tracer is not None:
        campaign_tracer.event(
            "sweep.campaign",
            "sweep",
            campaign_ns,
            campaign_tracer.now_ns() - campaign_ns,
            {"campaign": spec.name, "points": len(results), "jobs": jobs},
        )
    return CampaignResult(
        campaign=spec.name,
        scenario=spec.scenario,
        points=results,
        jobs=jobs,
        wall_seconds=wall_seconds,
        chunk=chunk_size,
        shard=shard,
        points_total=points_total,
        batched_points=batched_points,
        batch_fallbacks=fallbacks,
        failed_points=failed,
        backend=backend_name if batched_points else None,
        telemetry=telemetry_payload,
        trace_events=trace_events,
        trace_dropped=trace_dropped,
        cache=cache_payload,
    )
