"""Sweep execution: run every point of a campaign, serially or sharded.

The unit of work is one :class:`~repro.sweep.campaign.SweepPoint`.
:func:`run_point` runs the scenario through the registry's instrumented
entry point and post-processes the SoC into the structured record the
artifacts layer serialises: scalar stats, flattened activity counters, the
Figure 5 power breakdown, and the Figure 6a area breakdown.

:func:`execute_campaign` fans the points out:

* ``jobs == 1`` (or one usable core, or a single chunk) — plain serial loop
  in this process (the reference path);
* otherwise — a ``multiprocessing`` pool over **chunks** of points.  Points
  are batched into per-worker chunks (auto-sized to a few chunks per worker,
  overridable via ``chunk=``/``--chunk``) so small campaigns amortise the
  pickling/dispatch overhead that used to make ``--jobs 2`` *slower* than
  serial; worker processes are additionally capped at the machine's core
  count, because oversubscribing a small host only adds context-switching.

Results are keyed and re-sorted by point index, and every per-point output is
a pure function of the point itself (wall-clock timing is kept out of the
comparable payload), so the aggregated results of a sharded run are
**byte-identical** to the serial run — for any ``jobs`` and any ``chunk`` —
the property ``tests/sweep/test_execute.py`` pins.

**Incremental re-execution** (:func:`execute_campaign` with ``reuse=``):
records recovered from a previous run's ``results.json`` (see
:mod:`repro.sweep.resume`) are dropped into place without re-running their
points, which is how ``python -m repro.run sweep <campaign> --resume`` skips
work that already exists under an identical campaign manifest.

**Multi-host distribution** (:func:`execute_campaign` with ``shard=``): a
:class:`~repro.sweep.campaign.ShardSpec` restricts execution to one
contiguous index range of the expanded grid.  Sharding composes with
``jobs``/``chunk`` (the shard's points still fan out over the local pool)
and with ``reuse`` (reusable indices outside the shard are simply never
consulted), and the shard's artifacts record the slice so
:mod:`repro.sweep.merge` can validate coverage when stitching shards back
together.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.area.model import PelsAreaModel
from repro.power.model import PowerModel
from repro.sweep.campaign import CampaignSpec, ShardSpec, SweepPoint, expand_campaign
from repro.workloads.registry import run_scenario_instrumented


@dataclass
class PointResult:
    """Everything one sweep point produced (deterministic fields only,
    except ``wall_seconds`` which the artifacts layer routes to the manifest
    rather than the comparable results payload)."""

    index: int
    scenario: str
    horizon_cycles: int
    params: Dict[str, object]
    seed: int
    stats: Dict[str, object] = field(default_factory=dict)
    #: Activity counters flattened to ``"component.event" -> count``.
    activity: Dict[str, int] = field(default_factory=dict)
    #: Figure 5 component powers in µW (plus ``Total``); empty when the
    #: scenario exposes no SoC.
    power_uw: Dict[str, float] = field(default_factory=dict)
    #: Figure 6a area components in kGE (plus ``Total``); empty without PELS.
    area_kge: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: True when the record was recovered from a previous run's artifacts
    #: (``--resume``) instead of being executed in this process.
    reused: bool = False


@dataclass
class CampaignResult:
    """All point results of one campaign execution."""

    campaign: str
    scenario: str
    points: List[PointResult]
    jobs: int
    wall_seconds: float
    #: Chunk size the pool dispatch used (1 when serial).
    chunk: int = 1
    #: The slice of the campaign this execution covered (None = the whole
    #: grid); see :class:`~repro.sweep.campaign.ShardSpec`.
    shard: Optional[ShardSpec] = None
    #: Size of the *full* expanded grid (equals ``n_points`` when unsharded).
    points_total: int = 0

    @property
    def n_points(self) -> int:
        """Number of executed points."""
        return len(self.points)

    @property
    def n_reused(self) -> int:
        """How many points were recovered from a previous run (``--resume``)."""
        return sum(1 for point in self.points if point.reused)

    @property
    def n_computed(self) -> int:
        """How many points were actually executed (not recovered)."""
        return self.n_points - self.n_reused


ProgressCallback = Callable[[int, int, PointResult], None]


def run_point(point: SweepPoint) -> PointResult:
    """Execute one sweep point and derive its power/area records."""
    start = time.perf_counter()
    outcome = run_scenario_instrumented(
        point.scenario,
        horizon_cycles=point.horizon_cycles,
        dense=point.dense,
        params=point.params,
    )
    wall = time.perf_counter() - start

    activity: Dict[str, int] = {}
    power_uw: Dict[str, float] = {}
    area_kge: Dict[str, float] = {}
    soc = outcome.soc
    if soc is not None:
        snapshot = soc.activity.as_dict()
        activity = {f"{component}.{event}": count for (component, event), count in sorted(snapshot.items())}
        # Average over the cycles actually simulated: condition-driven
        # scenarios (e.g. threshold-pels) may stop well short of the
        # requested horizon, and normalising over the request would dilute
        # every dynamic-power column.
        breakdown = PowerModel().estimate(
            snapshot,
            window_cycles=max(soc.simulator.current_cycle, 1),
            frequency_hz=soc.frequency_hz,
            scenario=point.scenario,
            pels_present=soc.pels is not None,
        )
        power_uw = breakdown.as_dict()
        if soc.pels is not None and soc.config.pels_config is not None:
            area_kge = PelsAreaModel().estimate(soc.config.pels_config).as_dict()

    return PointResult(
        index=point.index,
        scenario=point.scenario,
        horizon_cycles=point.horizon_cycles,
        params=dict(point.params),
        seed=point.seed,
        stats=dict(outcome.stats),
        activity=activity,
        power_uw=power_uw,
        area_kge=area_kge,
        wall_seconds=wall,
    )


def run_points(points: Sequence[SweepPoint]) -> List[PointResult]:
    """Pool task: execute one chunk of points in order."""
    return [run_point(point) for point in points]


def auto_chunk(n_points: int, jobs: int) -> int:
    """Default chunk size: about four chunks per worker.

    Large enough to amortise dispatch/pickling on small campaigns, small
    enough that the unordered collection still load-balances points whose
    cost varies (horizon axes span orders of magnitude).
    """
    if jobs <= 1:
        return max(n_points, 1)
    return max(1, n_points // (jobs * 4))


def _chunked(points: Sequence[SweepPoint], chunk: int) -> List[List[SweepPoint]]:
    return [list(points[start : start + chunk]) for start in range(0, len(points), chunk)]


def execute_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
    chunk: Optional[int] = None,
    reuse: Optional[Mapping[int, PointResult]] = None,
    shard: Optional[ShardSpec] = None,
) -> CampaignResult:
    """Run every point of ``spec`` and return the aggregated result.

    ``jobs`` is the requested number of worker processes (``1`` runs
    everything in this process; the effective pool is additionally capped at
    the core count and the chunk count).  ``chunk`` overrides the auto-sized
    per-worker batch.  ``reuse`` maps point indices to previously computed
    results (see :mod:`repro.sweep.resume`); those points are not re-run.
    ``shard`` restricts execution to one contiguous index range of the grid
    (see :class:`~repro.sweep.campaign.ShardSpec`); ``reuse`` entries outside
    the shard are ignored.  ``progress`` (if given) is called after each
    completed point with ``(completed, total, result)`` where ``total`` is
    the shard-local point count — note that under sharding the completion
    *order* is nondeterministic even though the aggregated results are not.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if chunk is not None and chunk < 1:
        raise ValueError("chunk must be at least 1")
    all_points = expand_campaign(spec)
    points_total = len(all_points)
    points = shard.select(all_points) if shard is not None else all_points
    total = len(points)
    start = time.perf_counter()
    results: List[PointResult] = []
    if reuse:
        results.extend(reuse[point.index] for point in points if point.index in reuse)
        points = [point for point in points if point.index not in reuse]
        for completed, result in enumerate(results, start=1):
            result.reused = True
            if progress is not None:
                progress(completed, total, result)

    chunk_size = chunk if chunk is not None else auto_chunk(len(points), jobs)
    chunks = _chunked(points, chunk_size)
    # Workers beyond the core count (or the chunk count) only add overhead;
    # the aggregated artifacts are independent of the pool geometry anyway.
    workers = min(jobs, os.cpu_count() or 1, len(chunks))
    if workers <= 1:
        for point in points:
            result = run_point(point)
            results.append(result)
            if progress is not None:
                progress(len(results), total, result)
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            for batch in pool.imap_unordered(run_points, chunks):
                for result in batch:
                    results.append(result)
                    if progress is not None:
                        progress(len(results), total, result)
    results.sort(key=lambda result: result.index)
    return CampaignResult(
        campaign=spec.name,
        scenario=spec.scenario,
        points=results,
        jobs=jobs,
        wall_seconds=time.perf_counter() - start,
        chunk=chunk_size,
        shard=shard,
        points_total=points_total,
    )
