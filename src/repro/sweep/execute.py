"""Sweep execution: run every point of a campaign, serially or sharded.

The unit of work is one :class:`~repro.sweep.campaign.SweepPoint`.
:func:`run_point` runs the scenario through the registry's instrumented
entry point and post-processes the SoC into the structured record the
artifacts layer serialises: scalar stats, flattened activity counters, the
Figure 5 power breakdown, and the Figure 6a area breakdown.

:func:`execute_campaign` fans the points out:

* ``jobs == 1`` — plain serial loop in this process (the reference path);
* ``jobs >= 2`` — a ``multiprocessing`` pool with one point per task
  (``chunksize=1``, unordered collection for load balancing).

Results are keyed and re-sorted by point index, and every per-point output is
a pure function of the point itself (wall-clock timing is kept out of the
comparable payload), so the aggregated results of a sharded run are
**byte-identical** to the serial run — the property
``tests/sweep/test_execute.py`` pins.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.area.model import PelsAreaModel
from repro.power.model import PowerModel
from repro.sweep.campaign import CampaignSpec, SweepPoint, expand_campaign
from repro.workloads.registry import run_scenario_instrumented


@dataclass
class PointResult:
    """Everything one sweep point produced (deterministic fields only,
    except ``wall_seconds`` which the artifacts layer routes to the manifest
    rather than the comparable results payload)."""

    index: int
    scenario: str
    horizon_cycles: int
    params: Dict[str, object]
    seed: int
    stats: Dict[str, object] = field(default_factory=dict)
    #: Activity counters flattened to ``"component.event" -> count``.
    activity: Dict[str, int] = field(default_factory=dict)
    #: Figure 5 component powers in µW (plus ``Total``); empty when the
    #: scenario exposes no SoC.
    power_uw: Dict[str, float] = field(default_factory=dict)
    #: Figure 6a area components in kGE (plus ``Total``); empty without PELS.
    area_kge: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0


@dataclass
class CampaignResult:
    """All point results of one campaign execution."""

    campaign: str
    scenario: str
    points: List[PointResult]
    jobs: int
    wall_seconds: float

    @property
    def n_points(self) -> int:
        """Number of executed points."""
        return len(self.points)


ProgressCallback = Callable[[int, int, PointResult], None]


def run_point(point: SweepPoint) -> PointResult:
    """Execute one sweep point and derive its power/area records."""
    start = time.perf_counter()
    outcome = run_scenario_instrumented(
        point.scenario,
        horizon_cycles=point.horizon_cycles,
        dense=point.dense,
        params=point.params,
    )
    wall = time.perf_counter() - start

    activity: Dict[str, int] = {}
    power_uw: Dict[str, float] = {}
    area_kge: Dict[str, float] = {}
    soc = outcome.soc
    if soc is not None:
        snapshot = soc.activity.as_dict()
        activity = {f"{component}.{event}": count for (component, event), count in sorted(snapshot.items())}
        # Average over the cycles actually simulated: condition-driven
        # scenarios (e.g. threshold-pels) may stop well short of the
        # requested horizon, and normalising over the request would dilute
        # every dynamic-power column.
        breakdown = PowerModel().estimate(
            snapshot,
            window_cycles=max(soc.simulator.current_cycle, 1),
            frequency_hz=soc.frequency_hz,
            scenario=point.scenario,
            pels_present=soc.pels is not None,
        )
        power_uw = breakdown.as_dict()
        if soc.pels is not None and soc.config.pels_config is not None:
            area_kge = PelsAreaModel().estimate(soc.config.pels_config).as_dict()

    return PointResult(
        index=point.index,
        scenario=point.scenario,
        horizon_cycles=point.horizon_cycles,
        params=dict(point.params),
        seed=point.seed,
        stats=dict(outcome.stats),
        activity=activity,
        power_uw=power_uw,
        area_kge=area_kge,
        wall_seconds=wall,
    )


def execute_campaign(
    spec: CampaignSpec,
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> CampaignResult:
    """Run every point of ``spec`` and return the aggregated result.

    ``jobs`` is the number of worker processes; ``1`` runs everything in this
    process.  ``progress`` (if given) is called after each completed point
    with ``(completed, total, result)`` — note that under sharding the
    completion *order* is nondeterministic even though the aggregated results
    are not.
    """
    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    points = expand_campaign(spec)
    start = time.perf_counter()
    results: List[PointResult] = []
    if jobs == 1:
        for point in points:
            result = run_point(point)
            results.append(result)
            if progress is not None:
                progress(len(results), len(points), result)
    else:
        # One point per task: sweep points vary wildly in cost (horizon axes
        # span orders of magnitude), so fine-grained dispatch beats chunking.
        with multiprocessing.Pool(processes=jobs) as pool:
            for result in pool.imap_unordered(run_point, points, chunksize=1):
                results.append(result)
                if progress is not None:
                    progress(len(results), len(points), result)
    results.sort(key=lambda result: result.index)
    return CampaignResult(
        campaign=spec.name,
        scenario=spec.scenario,
        points=results,
        jobs=jobs,
        wall_seconds=time.perf_counter() - start,
    )
