"""Resume-aware merging of sharded campaign artifacts.

A campaign distributed with ``--shard I/N`` leaves one artifact directory
per host, each holding the shard's ``results.json``/``results.csv``/
``manifest.json`` slice.  :func:`merge_shards` stitches those slices back
into the single-host artifacts:

* every shard directory must be readable and carry the **same**
  ``spec_hash`` — the campaign-identity digest ``--resume`` validates — and
  the same campaign/scenario/schema; the manifest's campaign block is
  additionally reconstructed into a :class:`~repro.sweep.campaign.CampaignSpec`
  and re-hashed, so a hand-edited manifest whose hash and grid disagree is
  rejected rather than trusted;
* the shards' records must cover the full grid **exactly once** — duplicate
  records, out-of-range indices, and missing points are each diagnosed with
  the offending indices and directories named.  Declared ranges may overlap
  as long as the records do not: a shard that lost points to a failure and
  the heal shard that re-ran exactly those points both declare the same
  indices, and that pair must merge;
* records are re-sorted into row-major point order and written through the
  same serialisers as a local run, so the merged
  ``results.json``/``results.csv`` are **byte-identical** to a single-host
  ``--jobs 1`` execution of the campaign (``tests/sweep/test_merge.py`` and
  the ``sweep-distributed`` CI job both ``cmp`` this).

The merged ``manifest.json`` carries the campaign block, the ``spec_hash``,
and the per-point wall timings aggregated from the shards — which makes the
merged directory a first-class ``--resume`` source: any later run of the
same campaign, *including a re-cut to a different shard count*, reuses every
merged point instead of recomputing it.

CLI front end::

    python -m repro.run sweep merge <shard-dir>... [--out results/sweeps]

where each ``<shard-dir>`` is one shard's campaign directory (the directory
that directly contains ``results.json`` and ``manifest.json``).
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import PhaseTimer
from repro.obs.traceio import merge_trace_documents, validate_trace_file, write_trace
from repro.sweep.artifacts import (
    MANIFEST_JSON,
    RESULTS_CSV,
    RESULTS_JSON,
    SCHEMA_VERSION,
    results_payload,
    write_results_csv,
)
from repro.sweep.campaign import CampaignSpec
from repro.sweep.execute import CampaignResult, PointResult
from repro.sweep.resume import _point_walls, spec_from_manifest, spec_hash


class MergeError(ValueError):
    """A shard set that must not be merged (mismatched campaigns, overlapping
    or incomplete coverage, unreadable artifacts).  The message always names
    the offending directories and indices."""


class IncompleteCoverageError(MergeError):
    """Missing point indices — the one merge failure that is *healable* by
    re-running shards.  Carries the validated campaign identity and the gap
    so :func:`plan_heal` can emit the exact re-run commands."""

    def __init__(
        self,
        message: str,
        spec: CampaignSpec,
        points_total: int,
        missing: List[int],
        shards: Sequence["ShardArtifacts"],
    ) -> None:
        super().__init__(message)
        self.spec = spec
        self.points_total = points_total
        self.missing = missing
        self.shards = list(shards)


@dataclass
class ShardArtifacts:
    """One shard directory's parsed artifacts."""

    directory: Path
    manifest: Dict[str, object]
    results: Dict[str, object]

    @property
    def spec_hash(self) -> str:
        return str(self.manifest.get("spec_hash", ""))

    @property
    def campaign_name(self) -> str:
        return str(self.results.get("campaign", ""))

    @property
    def shard_label(self) -> str:
        """Human label for diagnostics: ``dir (shard I/N)`` or just ``dir``."""
        shard = self.manifest.get("shard")
        if isinstance(shard, dict):
            return f"{self.directory} (shard {shard.get('index')}/{shard.get('count')})"
        return str(self.directory)

    def declared_range(self) -> Optional[Tuple[int, int]]:
        """The ``[start, stop)`` index range the manifest declares, when the
        artifacts came from a sharded run (None for unsharded artifacts)."""
        shard = self.manifest.get("shard")
        if not isinstance(shard, dict):
            return None
        try:
            return int(shard["start"]), int(shard["stop"])
        except (KeyError, TypeError, ValueError):
            raise MergeError(
                f"{self.directory}: manifest shard block is malformed: {shard!r}"
            ) from None

    def points_total(self) -> int:
        """Size of the full campaign grid these artifacts are a slice of."""
        shard = self.manifest.get("shard")
        if isinstance(shard, dict):
            try:
                return int(shard["points_total"])
            except (KeyError, TypeError, ValueError):
                raise MergeError(
                    f"{self.directory}: manifest shard block is malformed: {shard!r}"
                ) from None
        try:
            return int(self.manifest["n_points"])
        except (KeyError, TypeError, ValueError):
            raise MergeError(f"{self.directory}: manifest has no usable n_points") from None


@dataclass
class MergedCampaign:
    """The validated, re-assembled single-host view of a shard set."""

    spec: CampaignSpec
    result: CampaignResult
    sources: List[ShardArtifacts]
    #: Point indices absent from every source (non-empty only under
    #: ``merge_shards(..., allow_missing=True)`` — a **partial** merge).  A
    #: partial merge's artifacts carry a ``partial`` manifest block and must
    #: never masquerade as the complete campaign.
    missing: List[int] = field(default_factory=list)


def load_shard_dir(directory: Path) -> ShardArtifacts:
    """Read one shard directory's ``results.json`` + ``manifest.json``."""
    directory = Path(directory)
    if not directory.is_dir():
        raise MergeError(f"{directory}: not a directory")
    payloads: Dict[str, Dict[str, object]] = {}
    for filename in (RESULTS_JSON, MANIFEST_JSON):
        path = directory / filename
        try:
            payloads[filename] = json.loads(path.read_text(encoding="utf-8"))
        except OSError:
            raise MergeError(
                f"{directory}: missing or unreadable {filename} — pass each shard's "
                f"campaign directory (the one that directly contains {RESULTS_JSON})"
            ) from None
        except ValueError as exc:
            raise MergeError(f"{path}: invalid JSON: {exc}") from None
        if not isinstance(payloads[filename], dict):
            raise MergeError(f"{path}: expected a JSON object at the top level")
    return ShardArtifacts(
        directory=directory, manifest=payloads[MANIFEST_JSON], results=payloads[RESULTS_JSON]
    )


def _summarise(indices: Sequence[int], limit: int = 12) -> str:
    shown = ", ".join(str(index) for index in sorted(indices)[:limit])
    extra = len(indices) - limit
    return shown + (f", … ({extra} more)" if extra > 0 else "")


def _validate_identity(shards: Sequence[ShardArtifacts]) -> CampaignSpec:
    """All shards must describe the same campaign; return its spec."""
    reference = shards[0]
    for shard in shards:
        if shard.manifest.get("schema_version") != SCHEMA_VERSION:
            raise MergeError(
                f"{shard.directory}: artifact schema version "
                f"{shard.manifest.get('schema_version')!r} != {SCHEMA_VERSION} — "
                f"re-run the shard with this version of the code"
            )
        if not shard.spec_hash:
            raise MergeError(
                f"{shard.directory}: manifest has no spec_hash (pre-distribution "
                f"schema?) — re-run the shard to get mergeable artifacts"
            )
        if shard.spec_hash != reference.spec_hash:
            raise MergeError(
                "shards disagree on the campaign identity (spec_hash):\n"
                + "\n".join(
                    f"  {other.shard_label}: {other.spec_hash or '<missing>'}" for other in shards
                )
                + "\nall shards must come from the same campaign definition"
            )
        if shard.campaign_name != reference.campaign_name:
            raise MergeError(
                f"{shard.directory}: results are for campaign "
                f"{shard.campaign_name!r}, expected {reference.campaign_name!r}"
            )
    try:
        spec = spec_from_manifest(reference.manifest)
    except ValueError as exc:
        raise MergeError(f"{reference.directory}: {exc}") from None
    if spec_hash(spec) != reference.spec_hash:
        raise MergeError(
            f"{reference.directory}: manifest spec_hash {reference.spec_hash} does not "
            f"match its own campaign block (recomputed {spec_hash(spec)}) — the "
            f"manifest was edited or corrupted"
        )
    return spec


def _validate_ranges(shards: Sequence[ShardArtifacts], points_total: int) -> None:
    """Declared shard ranges must fit the campaign grid.

    Disjointness is deliberately enforced at the **record** level (in
    :func:`_collect_records`), not on the declared ranges: a shard that lost
    points to a failure still declares its full range, and the heal shard
    that re-runs exactly those points declares an overlapping one — their
    *records* are disjoint, which is what byte-identity actually needs.
    """
    for shard in shards:
        bounds = shard.declared_range()
        if bounds is None:
            continue
        start, stop = bounds
        if not 0 <= start <= stop <= points_total:
            raise MergeError(
                f"{shard.shard_label}: declared index range [{start}, {stop}) is "
                f"outside the campaign's {points_total} points"
            )


def _collect_records(
    shards: Sequence[ShardArtifacts], points_total: int
) -> Dict[int, Tuple[Dict[str, object], ShardArtifacts]]:
    """Index every point record, diagnosing duplicates and bad indices."""
    records: Dict[int, Tuple[Dict[str, object], ShardArtifacts]] = {}
    for shard in shards:
        points = shard.results.get("points")
        if not isinstance(points, list):
            raise MergeError(f"{shard.directory}: {RESULTS_JSON} has no points list")
        duplicates: List[int] = []
        for record in points:
            try:
                index = int(record["index"])
            except (KeyError, TypeError, ValueError):
                raise MergeError(
                    f"{shard.directory}: {RESULTS_JSON} contains a record without a "
                    f"valid index: {str(record)[:80]}"
                ) from None
            if not 0 <= index < points_total:
                raise MergeError(
                    f"{shard.shard_label}: record index {index} is outside the "
                    f"campaign's {points_total} points"
                )
            if index in records:
                duplicates.append(index)
                continue
            records[index] = (record, shard)
        if duplicates:
            others = sorted({records[index][1].shard_label for index in duplicates})
            raise MergeError(
                f"duplicate point record(s) {_summarise(duplicates)}: present in "
                f"{shard.shard_label} and in {', '.join(others)} — overlapping "
                f"shards, or the same shard directory was passed twice"
            )
    return records


def _point_from_record(record: Dict[str, object], wall_seconds: float) -> PointResult:
    try:
        return PointResult(
            index=int(record["index"]),
            scenario=str(record["scenario"]),
            horizon_cycles=int(record["horizon_cycles"]),
            params=dict(record["params"]),
            seed=int(record["seed"]),
            stats=dict(record["stats"]),
            activity=dict(record["activity"]),
            power_uw=dict(record["power_uw"]),
            area_kge=dict(record["area_kge"]),
            wall_seconds=wall_seconds,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise MergeError(
            f"point record {record.get('index')!r} is malformed ({exc!r}) — "
            f"the shard's results.json was truncated or hand-edited"
        ) from None


def validate_shard_dir(directory: Path, spec: CampaignSpec) -> ShardArtifacts:
    """Load one shard directory and validate it against campaign ``spec``.

    The fleet's acceptance gate: every worker's artifact directory goes
    through this **regardless of how the worker exited** — a timeout-killed
    worker that flushed valid artifacts first is accepted, a zero-exit
    worker with a truncated ``results.json`` is not.  Checks everything a
    single directory can be checked for: parseable artifacts, schema
    version, a ``spec_hash`` matching *this* campaign (not merely
    self-consistent), an in-bounds declared range, and in-range,
    duplicate-free records that all fall inside the declared range.  Raises
    :class:`MergeError` naming the problem; cross-shard properties
    (duplicates between shards, full coverage) remain :func:`merge_shards`'
    job.
    """
    artifacts = load_shard_dir(directory)
    _validate_identity([artifacts])
    expected = spec_hash(spec)
    if artifacts.spec_hash != expected:
        raise MergeError(
            f"{directory}: artifacts belong to a different campaign definition "
            f"(spec_hash {artifacts.spec_hash}, expected {expected})"
        )
    points_total = artifacts.points_total()
    if points_total != spec.n_points:
        raise MergeError(
            f"{directory}: manifest says the campaign has {points_total} points, "
            f"but {spec.name!r} expands to {spec.n_points}"
        )
    _validate_ranges([artifacts], points_total)
    records = _collect_records([artifacts], points_total)
    declared = artifacts.declared_range()
    if declared is not None:
        start, stop = declared
        strays = sorted(index for index in records if not start <= index < stop)
        if strays:
            raise MergeError(
                f"{artifacts.shard_label}: record index(es) {_summarise(strays)} fall "
                f"outside the declared range [{start}, {stop})"
            )
    return artifacts


def merge_shards(directories: Sequence[Path], allow_missing: bool = False) -> MergedCampaign:
    """Validate and merge the shard directories into one campaign result.

    Raises :class:`MergeError` (with the offending directories and point
    indices named) instead of ever writing artifacts from an inconsistent
    shard set.  ``allow_missing=True`` downgrades exactly one failure —
    incomplete coverage — into a **partial** merge carrying the gap in
    ``MergedCampaign.missing``; every other inconsistency (identity
    mismatch, overlap, duplicates, malformed records) still raises.  That is
    the fleet's graceful-degradation path: on retry-budget exhaustion it
    salvages every completed point into partial artifacts rather than losing
    them.
    """
    if not directories:
        raise MergeError("nothing to merge: pass at least one shard directory")
    shards = [load_shard_dir(directory) for directory in directories]
    spec = _validate_identity(shards)
    totals = {shard.points_total() for shard in shards}
    if len(totals) != 1:
        raise MergeError(
            "shards disagree on the campaign's total point count: "
            + ", ".join(f"{shard.directory}: {shard.points_total()}" for shard in shards)
        )
    points_total = totals.pop()
    _validate_ranges(shards, points_total)
    records = _collect_records(shards, points_total)

    missing = sorted(set(range(points_total)) - set(records))
    if missing and not allow_missing:
        covered = []
        for shard in shards:
            bounds = shard.declared_range()
            covered.append(
                f"  {shard.shard_label}: "
                + (f"indices [{bounds[0]}, {bounds[1]})" if bounds else "unsharded")
            )
        raise IncompleteCoverageError(
            f"incomplete coverage: {len(missing)} of {points_total} point(s) missing "
            f"({_summarise(missing)}); shards present:\n" + "\n".join(covered) + "\n"
            "run the missing shard(s) (sweep merge --heal emits the exact "
            "commands) or --resume the campaign to fill the gap",
            spec=spec,
            points_total=points_total,
            missing=missing,
            shards=shards,
        )

    walls = {id(shard): _point_walls(shard.manifest) for shard in shards}
    points: List[PointResult] = []
    for index in range(points_total):
        if index not in records:
            continue
        record, shard = records[index]
        wall = float(walls[id(shard)].get(str(index), 0.0))
        points.append(_point_from_record(record, wall))

    wall_seconds = 0.0
    for shard in shards:
        execution = shard.manifest.get("execution")
        if isinstance(execution, dict):
            try:
                wall_seconds += float(execution.get("wall_seconds", 0.0))
            except (TypeError, ValueError):
                pass

    result = CampaignResult(
        campaign=spec.name,
        scenario=spec.scenario,
        points=points,
        jobs=0,  # merged, not executed here; the manifest names the sources
        wall_seconds=wall_seconds,
        chunk=0,
        shard=None,
        points_total=points_total,
        telemetry=_merged_telemetry(shards),
    )
    return MergedCampaign(spec=spec, result=result, sources=shards, missing=missing)


def _shard_telemetry(shard: ShardArtifacts) -> Optional[Dict[str, object]]:
    """The shard manifest's ``execution.telemetry`` block, when present."""
    execution = shard.manifest.get("execution")
    if isinstance(execution, dict):
        telemetry = execution.get("telemetry")
        if isinstance(telemetry, dict):
            return telemetry
    return None


def _merged_telemetry(shards: Sequence[ShardArtifacts]) -> Optional[Dict[str, object]]:
    """Fold the shards' telemetry blocks into one campaign-level block.

    Phase profiles sum (worker-summed semantics carry straight through),
    metrics merge by the registry's counter/gauge/histogram rules.  Returns
    ``None`` when no shard ran with telemetry; shards without telemetry
    simply contribute nothing (a fleet may mix traced and untraced hosts).
    """
    blocks = [block for shard in shards if (block := _shard_telemetry(shard)) is not None]
    if not blocks:
        return None
    timer = PhaseTimer()
    registry = MetricsRegistry()
    trace_on = profile_on = False
    for block in blocks:
        enabled = block.get("enabled")
        if isinstance(enabled, dict):
            trace_on = trace_on or bool(enabled.get("trace"))
            profile_on = profile_on or bool(enabled.get("profile"))
        profile = block.get("profile")
        if isinstance(profile, dict):
            timer.merge({name: float(seconds) for name, seconds in profile.items()})
        metrics = block.get("metrics")
        if isinstance(metrics, dict):
            registry.merge_dict(metrics)
    return {
        "enabled": {"trace": trace_on, "profile": profile_on},
        "profile": timer.as_dict(),
        "metrics": registry.as_dict(),
    }


def _shard_lane_label(shard: ShardArtifacts) -> str:
    """The lane-prefix label a shard's trace gets in the merged document."""
    block = shard.manifest.get("shard")
    if isinstance(block, dict) and "index" in block and "count" in block:
        return f"shard-{block['index']}-of-{block['count']}"
    return shard.directory.name


def merge_shard_traces(merged: MergedCampaign) -> Optional[Dict[str, object]]:
    """Stitch the shards' trace files into one validated document.

    Each shard manifest that ran with ``--trace-out`` names its trace file
    in ``execution.telemetry.trace.file`` (relative to the shard
    directory).  Returns ``None`` when no shard carries a trace; raises
    :class:`MergeError` when a named trace file is missing or invalid —
    a shard that claims a trace must deliver it.
    """
    documents: List[Dict[str, object]] = []
    labels: List[str] = []
    for shard in merged.sources:
        telemetry = _shard_telemetry(shard)
        trace = telemetry.get("trace") if telemetry else None
        if not isinstance(trace, dict) or not trace.get("file"):
            continue
        path = shard.directory / str(trace["file"])
        try:
            documents.append(validate_trace_file(path))
        except ValueError as exc:
            raise MergeError(f"{shard.shard_label}: {exc}") from None
        labels.append(_shard_lane_label(shard))
    if not documents:
        return None
    return merge_trace_documents(documents, labels)


def merged_manifest_payload(merged: MergedCampaign) -> Dict[str, object]:
    """The manifest of a merged run: campaign identity + ``spec_hash`` (so
    the merged directory is a valid ``--resume`` source) plus a merge record
    in place of the single-host execution block."""
    reference = merged.sources[0].manifest
    campaign_block = dict(reference["campaign"]) if isinstance(reference.get("campaign"), dict) else {}
    result = merged.result
    sources = []
    for shard in merged.sources:
        block = shard.manifest.get("shard")
        sources.append(
            {
                "directory": str(shard.directory),
                "shard": dict(block) if isinstance(block, dict) else None,
                "n_points": len(shard.results.get("points", [])),
            }
        )
    payload: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "spec_hash": spec_hash(merged.spec),
        "campaign": campaign_block,
        "n_points": result.n_points,
        "artifacts": [RESULTS_JSON, RESULTS_CSV],
        "execution": {
            "merged_from": sources,
            "jobs": None,
            "chunk": None,
            "reused_points": 0,
            "computed_points": result.n_points,
            "batched_points": 0,
            "batch_fallbacks": [],
            "failed_points": [],
            "backend": None,
            "wall_seconds": result.wall_seconds,
            "point_wall_seconds": {
                str(point.index): point.wall_seconds for point in result.points
            },
            "python_version": platform.python_version(),
        },
    }
    if merged.missing:
        # A partial merge (fleet retry budget exhausted) must say so in its
        # own manifest: which indices are absent and how big the full grid
        # is, so nothing downstream mistakes the salvage for the campaign.
        payload["partial"] = {
            "points_total": result.points_total,
            "missing": list(merged.missing),
        }
    if result.telemetry is not None:
        payload["execution"]["telemetry"] = result.telemetry
    return payload


HEAL_JSON = "heal.json"


def _contiguous_runs(indices: Sequence[int]) -> List[Tuple[int, int]]:
    """Collapse a sorted index set into half-open ``[start, stop)`` runs."""
    runs: List[Tuple[int, int]] = []
    for index in sorted(indices):
        if runs and runs[-1][1] == index:
            runs[-1] = (runs[-1][0], index + 1)
        else:
            runs.append((index, index + 1))
    return runs


def plan_heal(error: IncompleteCoverageError, out_dir: Path) -> Dict[str, object]:
    """Turn an incomplete-coverage failure into exact re-run commands.

    Preference order: re-run whole shards of the fleet's original shard
    count ``N`` whose ranges fell entirely into the gap (the common failure —
    a dead fleet member), then close the remaining gaps by contiguous run:
    an isolated point becomes the single-point shard ``i/points_total``
    (shard ``i`` of ``P`` covers exactly ``[i, i+1)``) and a longer run
    becomes one explicit-span shard ``start/points_total@start:stop`` — one
    worker per gap rather than one per point, and never overlapping points
    other shards already carry.  The returned payload is what ``sweep merge
    --heal`` prints and writes to ``<out>/<campaign>/heal.json``:

    * ``commands`` — one entry per re-run with the ``--shard`` spec, the full
      argv, and the artifact directory the run will produce;
    * ``merge_after`` — every directory (the surviving shards plus the new
      ones) to pass to the next ``sweep merge``.
    """
    from repro.sweep.artifacts import shard_dirname
    from repro.sweep.campaign import ShardSpec

    spec = error.spec
    points_total = error.points_total
    missing = set(error.missing)
    counts = sorted(
        {
            int(block["count"])
            for shard in error.shards
            for block in [shard.manifest.get("shard")]
            if isinstance(block, dict) and str(block.get("count", "")).isdigit()
        }
    )
    fleet_count = counts[-1] if counts else None

    shard_specs: List[ShardSpec] = []
    if fleet_count is not None:
        for index in range(fleet_count):
            shard = ShardSpec(index=index, count=fleet_count)
            start, stop = shard.bounds(points_total)
            if start < stop and all(point in missing for point in range(start, stop)):
                shard_specs.append(shard)
                missing.difference_update(range(start, stop))
    # Whatever is left (partial-shard gaps, or no shard blocks to infer a
    # fleet from) is healed run by run.
    for start, stop in _contiguous_runs(missing):
        if stop - start == 1:
            shard_specs.append(ShardSpec(index=start, count=points_total))
        else:
            shard_specs.append(
                ShardSpec(index=start, count=points_total, span=(start, stop))
            )
    shard_specs.sort(key=lambda shard: shard.bounds(points_total))

    out_dir = Path(out_dir)
    commands = []
    new_dirs = []
    for shard in shard_specs:
        argv = [
            "python",
            "-m",
            "repro.run",
            "sweep",
            spec.name,
            "--shard",
            str(shard),
            "--out",
            str(out_dir),
        ]
        artifact_dir = out_dir / spec.name / shard_dirname(shard)
        start, stop = shard.bounds(points_total)
        commands.append(
            {
                "shard": str(shard),
                "points": list(range(start, stop)),
                "argv": argv,
                "command": " ".join(argv),
                "artifact_dir": str(artifact_dir),
            }
        )
        new_dirs.append(str(artifact_dir))

    return {
        "schema_version": SCHEMA_VERSION,
        "campaign": spec.name,
        "spec_hash": spec_hash(spec),
        "points_total": points_total,
        "missing": list(error.missing),
        "commands": commands,
        "merge_after": [str(shard.directory) for shard in error.shards] + new_dirs,
    }


def write_heal_plan(plan: Dict[str, object], out_dir: Path) -> Path:
    """Write ``plan`` to ``<out>/<campaign>/heal.json``; return the path."""
    heal_dir = Path(out_dir) / str(plan["campaign"])
    heal_dir.mkdir(parents=True, exist_ok=True)
    path = heal_dir / HEAL_JSON
    path.write_text(json.dumps(plan, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return path


def write_merged_artifacts(
    merged: MergedCampaign, out_dir: Path, subdir: Optional[str] = None
) -> Dict[str, Path]:
    """Write the merged artifacts under ``out_dir / campaign [/ subdir]``;
    return paths.

    ``results.json``/``results.csv`` go through the same serialisers as a
    local run, so they are byte-identical to a single-host execution.  When
    any shard ran with ``--trace-out``, the shards' traces are stitched into
    ``trace.json`` next to the merged artifacts (per-shard process lanes)
    and the merged manifest's telemetry block points at it.  ``subdir`` is
    how the fleet keeps a *partial* merge (``partial/``) from shadowing the
    campaign-level artifacts a later complete merge will write.
    """
    campaign_dir = Path(out_dir) / merged.spec.name
    if subdir is not None:
        campaign_dir = campaign_dir / subdir
    campaign_dir.mkdir(parents=True, exist_ok=True)
    paths = {
        "results_json": campaign_dir / RESULTS_JSON,
        "results_csv": campaign_dir / RESULTS_CSV,
        "manifest_json": campaign_dir / MANIFEST_JSON,
    }
    merged_trace = merge_shard_traces(merged)
    if merged_trace is not None:
        trace_path = write_trace(campaign_dir / "trace.json", merged_trace)
        paths["trace_json"] = trace_path
        telemetry = merged.result.telemetry
        if telemetry is None:
            telemetry = merged.result.telemetry = {
                "enabled": {"trace": True, "profile": False}
            }
        telemetry["trace"] = {
            "file": trace_path.name,
            "events": sum(
                1 for event in merged_trace["traceEvents"] if event.get("ph") != "M"
            ),
            "dropped": merged_trace["metadata"]["dropped_events"],
        }
    paths["results_json"].write_text(
        json.dumps(results_payload(merged.result), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    write_results_csv(merged.result, paths["results_csv"])
    paths["manifest_json"].write_text(
        json.dumps(merged_manifest_payload(merged), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    # A successful *complete* merge supersedes any heal plan a previous
    # failed attempt left here — a stale heal.json next to complete
    # artifacts would tell automation to re-run shards that are already
    # merged.  A partial merge keeps it: the heal plan is exactly the
    # hand-off describing how to finish the campaign later.
    if not merged.missing:
        (campaign_dir / HEAL_JSON).unlink(missing_ok=True)
    return paths
