"""Built-in sweep campaigns.

Three paper-facing campaigns plus a tiny CI smoke campaign:

* ``pipeline-clock-ratio`` — the multi-link pipeline swept over the
  SoC-to-I/O clock ratio and the sampling period.  Shows where the chained
  links' service time (ADC conversion + UART framing + blinker) overruns the
  sampling period as the peripheral shift clock is divided down.
* ``watchdog-fault-injection`` — the autonomous watchdog-recovery loop swept
  over fault-injection seeds (each seed picks the sampling period and the
  stall instant deterministically) and two horizons.  The headline column is
  ``stat.recovered``: PELS restarts the loop before the bite for every seed.
* ``fig5-long-horizon-power`` — the Figure 5 idle bars (PELS vs the Ibex
  interrupt baseline, 27 vs 55 MHz) stretched to paper-scale horizons, up to
  a full second of simulated time (55 M cycles).  The iso-latency power gap
  between ``mode=ibex @ 55 MHz`` and ``mode=pels @ 27 MHz`` holds flat
  across three orders of magnitude of horizon — the Figure 5 trend.
* ``fleet-scale`` — 1008 cheap duty-cycled-logging points (readout shapes ×
  a dense horizon ladder) sized for the fleet orchestrator's scale and
  chaos testing (``python -m repro.run fleet fleet-scale``).
* ``smoke`` — four cheap duty-cycled-logging points for CI and tests.

Campaigns are looked up by name (:func:`campaign`) from the sweep CLI
(``python -m repro.run sweep <name>``); projects can register more via
:func:`register_campaign`.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.sweep.campaign import CampaignSpec

_CAMPAIGNS: Dict[str, CampaignSpec] = {}


def register_campaign(spec: CampaignSpec) -> CampaignSpec:
    """Register ``spec`` under its name (unique)."""
    if spec.name in _CAMPAIGNS:
        raise ValueError(f"campaign {spec.name!r} is already registered")
    _CAMPAIGNS[spec.name] = spec
    return spec


def campaign(name: str) -> CampaignSpec:
    """Look up a registered campaign by name."""
    try:
        return _CAMPAIGNS[name]
    except KeyError as exc:
        known = ", ".join(sorted(_CAMPAIGNS)) or "<none>"
        raise KeyError(f"unknown campaign {name!r}; registered: {known}") from exc


def campaign_names() -> Tuple[str, ...]:
    """Sorted names of all registered campaigns."""
    return tuple(sorted(_CAMPAIGNS))


def campaigns() -> Tuple[CampaignSpec, ...]:
    """All registered campaigns, sorted by name."""
    return tuple(_CAMPAIGNS[name] for name in campaign_names())


# --------------------------------------------------------------- registrations

register_campaign(
    CampaignSpec(
        name="pipeline-clock-ratio",
        description=(
            "Multi-link pipeline across SoC-to-I/O clock ratios and sampling periods "
            "(56 points): where does the chained service time overrun the period?"
        ),
        scenario="multi-link-pipeline",
        grid={
            # A seven-step horizon ladder: the short end exposes warm-up
            # effects, the long end pins the steady-state rates, and the
            # intermediate rungs trace how quickly each configuration
            # converges.  Horizon depth is nearly free under batched
            # execution — the points of one (ratio, period) pair share a
            # single simulation and only the longest horizon is actually
            # simulated, so the ladder costs one run per group, not seven.
            "horizon_cycles": (10_000, 20_000, 30_000, 40_000, 50_000, 60_000, 70_000),
            "clock_ratio": (1, 2, 4, 8),
            "timer_period_cycles": (150, 600),
        },
    )
)

register_campaign(
    CampaignSpec(
        name="watchdog-fault-injection",
        description=(
            "Autonomous watchdog recovery under 12 seeded fault injections × 2 horizons "
            "(24 points): every seed must end with recovered=1 and zero bites."
        ),
        scenario="watchdog-recovery",
        grid={
            "horizon_cycles": (200_000, 400_000),
            "seed": tuple(range(12)),
        },
    )
)

register_campaign(
    CampaignSpec(
        name="fig5-long-horizon-power",
        description=(
            "Figure 5 idle power (PELS vs Ibex baseline, 27 vs 55 MHz) at paper-scale "
            "horizons up to 1 s of simulated time (24 points)."
        ),
        scenario="figure5-idle",
        grid={
            "mode": ("pels", "ibex"),
            "frequency_mhz": (27.0, 55.0),
            "horizon_cycles": (55_000, 110_000, 550_000, 1_100_000, 5_500_000, 55_000_000),
        },
    )
)

register_campaign(
    CampaignSpec(
        name="fleet-scale",
        description=(
            "Duty-cycled logging across readout shapes and a dense horizon ladder "
            "(1008 points): the fleet-orchestration scale/chaos campaign."
        ),
        scenario="duty-cycled-logging",
        grid={
            # Horizon is the fastest-varying axis so every contiguous fleet
            # span contains whole horizon ladders: batched execution then
            # collapses each (period, words, spi) group to one simulation of
            # its longest horizon, which keeps 1008 points cheap enough to
            # chaos-test in CI while still being a real 1000+-point campaign.
            "sample_period_cycles": (1_500, 2_000, 3_000, 4_000),
            "words_per_readout": (2, 4, 8),
            "spi_cycles_per_word": (8, 16, 24, 32),
            "horizon_cycles": tuple(range(30_000, 135_000, 5_000)),
        },
    )
)

register_campaign(
    CampaignSpec(
        name="smoke",
        description="Tiny duty-cycled-logging campaign (4 points) for CI and tests.",
        scenario="duty-cycled-logging",
        grid={
            "horizon_cycles": (40_000, 60_000),
            "sample_period_cycles": (2_000, 4_000),
        },
    )
)
