"""repro — a Python reproduction of PELS, the Peripheral Event Linking System.

PELS (Ottaviano et al., DATE 2024) is a lightweight, microcode-programmable
event-linking unit for ultra-low-power RISC-V IoT processors.  This package
reproduces the system and its evaluation in pure Python:

* :mod:`repro.core` — PELS itself (microcode ISA, assembler, trigger units,
  SCM, execution units, links, top level).
* :mod:`repro.sim`, :mod:`repro.bus`, :mod:`repro.peripherals`,
  :mod:`repro.cpu`, :mod:`repro.dma`, :mod:`repro.soc` — the PULPissimo-style
  substrate PELS is integrated into.
* :mod:`repro.workloads` — the evaluation workloads.
* :mod:`repro.power`, :mod:`repro.area`, :mod:`repro.analysis` — the models
  that regenerate the paper's figures and tables.
* :mod:`repro.sweep` — sweep campaigns: scenario × parameter grid, sharded
  across processes, aggregated into structured artifacts
  (``python -m repro.run sweep``).
* :mod:`repro.obs` — the telemetry layer: metrics registry, structured span
  tracing (Chrome trace-event export), and sweep profiling hooks
  (``--trace-out``, ``--profile``, ``python -m repro.run stats``).

Quickstart::

    from repro import build_soc, SocConfig, Assembler, TriggerCondition

    soc = build_soc(SocConfig())
    asm = Assembler()
    asm.define_register("GPIO_OUT", 0x1004)   # byte offset from the link base
    program = asm.assemble("set GPIO_OUT 0x1\\nend")
    timer_bit = 1 << soc.fabric.index_of(soc.timer.event_line_name("overflow"))
    soc.pels.program_link(0, program, trigger_mask=timer_bit,
                          base_address=soc.address_map.peripheral_base("udma"))
    soc.timer.start()
    soc.run(500)
"""

from repro.core import (
    Assembler,
    Command,
    JumpCondition,
    Opcode,
    Pels,
    PelsConfig,
    Program,
    TriggerCondition,
)
from repro.soc import PulpissimoSoc, SocConfig, build_soc
from repro.workloads import (
    ThresholdWorkloadConfig,
    run_ibex_threshold_workload,
    run_pels_threshold_workload,
)
from repro.power import PowerModel, run_figure5
from repro.area import PelsAreaModel, figure6a_sweep, figure6b_breakdown
from repro.analysis import format_table1, measure_latency_comparison
from repro.sweep import CampaignSpec, execute_campaign, expand_campaign, write_artifacts
from repro.obs import MetricsRegistry, SpanTracer, capture

__version__ = "0.1.0"

__all__ = [
    "Assembler",
    "CampaignSpec",
    "Command",
    "JumpCondition",
    "MetricsRegistry",
    "Opcode",
    "Pels",
    "PelsAreaModel",
    "PelsConfig",
    "PowerModel",
    "Program",
    "PulpissimoSoc",
    "SocConfig",
    "SpanTracer",
    "ThresholdWorkloadConfig",
    "TriggerCondition",
    "build_soc",
    "capture",
    "execute_campaign",
    "expand_campaign",
    "figure6a_sweep",
    "figure6b_breakdown",
    "format_table1",
    "measure_latency_comparison",
    "run_figure5",
    "run_ibex_threshold_workload",
    "run_pels_threshold_workload",
    "write_artifacts",
    "__version__",
]
