"""repro.obs — the unified telemetry layer.

Three small, dependency-free pieces give every layer of the system (the
simulation kernel, the batch backends, the sweep executor, the CLI) one
observability vocabulary:

* :mod:`repro.obs.metrics` — a **metrics registry**: counters, gauges, and
  histograms with labels, plus the fixed-key :class:`~repro.obs.metrics.CounterSet`
  the kernel's ``kernel_stats`` is built from.  ``KERNEL_STAT_KEYS`` is the
  canonical key set every kernel/backend must agree on, and the
  snapshot/diff protocol is what the stats-parity tests compare.
* :mod:`repro.obs.tracing` — **structured span tracing**: a process-global
  :class:`~repro.obs.tracing.SpanTracer` that instrumented code consults
  through one ``tracing.TRACER is not None`` check.  When no tracer is
  installed (the default), the hot span loop pays a single identity check
  per boundary — enforced below 5% by ``benchmarks/test_bench_telemetry.py``.
  When installed, spans (plan builds, quiescent/skip/advance spans, batch
  enrolment, snapshot stops, sweep phases, artifact writes, and the
  results store's ``store.ingest``/``store.query`` operations) buffer in
  memory per process.
* :mod:`repro.obs.traceio` — export, validation, and merging of the
  buffered spans as **Chrome trace-event JSON** (``--trace-out trace.json``,
  loadable in Perfetto / ``chrome://tracing``), with per-worker process
  lanes and a ``sweep merge``-aware combiner that stitches shard traces
  into one document.
* :mod:`repro.obs.profile` — the sweep executor's **per-phase wall-time
  breakdown** (expand, prepare, simulate, finalize, write) that
  ``sweep --profile`` records into the manifest's ``execution.telemetry``
  block and ``python -m repro.run stats`` renders.

Telemetry is strictly *observational*: enabling it must not perturb
results.  ``results.json``/``results.csv`` of a campaign run with tracing
and profiling on are byte-identical to a run with telemetry off (pinned by
``tests/sweep/test_telemetry.py`` and the ``telemetry-smoke`` CI job);
telemetry output lands only in the manifest, the trace file, and stderr.

Full documentation: ``docs/observability.md``.
"""

from repro.obs.metrics import (
    KERNEL_STAT_KEYS,
    CounterSet,
    MetricsRegistry,
)
from repro.obs.profile import SWEEP_PHASES, PhaseTimer, format_profile
from repro.obs.tracing import SpanTracer, active_tracer, capture, install, uninstall
from repro.obs.traceio import (
    TRACE_SCHEMA,
    merge_trace_documents,
    summarize_trace,
    trace_document,
    validate_trace,
    validate_trace_file,
    write_trace,
)

__all__ = [
    "KERNEL_STAT_KEYS",
    "CounterSet",
    "MetricsRegistry",
    "PhaseTimer",
    "SWEEP_PHASES",
    "SpanTracer",
    "TRACE_SCHEMA",
    "active_tracer",
    "capture",
    "format_profile",
    "install",
    "merge_trace_documents",
    "summarize_trace",
    "trace_document",
    "uninstall",
    "validate_trace",
    "validate_trace_file",
    "write_trace",
]
